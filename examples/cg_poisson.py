"""Solve a 2-D Poisson problem with CG on compressed matrix formats.

The paper's motivating application (Section I): SpMV dominates
iterative solvers, so compressing the matrix working set accelerates
the whole solve.  This example builds a 5-point Laplacian system,
solves it with CG through each format, verifies the solutions agree,
and reports (a) the measured storage savings and (b) the machine
model's predicted 8-thread solve-time savings.

Note the Laplacian has only a handful of distinct values (-1 and the
diagonal), i.e. an *extreme* total-to-unique ratio -- PDE matrices like
this are exactly why the paper found 39% of real matrices CSR-VI-able.

Run:  python examples/cg_poisson.py [grid_side]
"""

import sys

import numpy as np

from repro import convert
from repro.formats.conversions import to_csr
from repro.machine import clovertown_8core, simulate_spmv
from repro.matrices.generators import stencil_2d
from repro.matrices.values import set_matrix_values
from repro.solvers import conjugate_gradient


def build_poisson(n: int):
    """5-point Laplacian on an n x n grid (SPD, ttu ~ nnz/2)."""
    pattern = to_csr(stencil_2d(n, n, points=5))
    rows = pattern.row_of_entry()
    values = np.where(rows == pattern.col_ind, 4.5, -1.0)
    return set_matrix_values(pattern, values)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    A = build_poisson(n)
    rng = np.random.default_rng(0)
    x_true = rng.random(A.ncols)
    b = A.spmv(x_true)
    print(f"Poisson {n}x{n}: {A.nrows} unknowns, {A.nnz} nonzeros, "
          f"ttu = {A.nnz / np.unique(A.values).size:.0f}")

    machine = clovertown_8core().scaled(0.05)
    base_storage = None
    base_time = None
    print(f"\n{'format':>10} {'iters':>6} {'residual':>10} {'matrix MB':>10} "
          f"{'model t(8thr)':>14} {'vs csr':>7}")
    for fmt in ("csr", "csr-du", "csr-vi", "csr-du-vi"):
        m = convert(A, fmt)
        res = conjugate_gradient(m, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)
        mb = m.storage().total_bytes / 1e6
        t8 = simulate_spmv(m, 8, machine).time_s * res.spmv_calls
        if fmt == "csr":
            base_storage, base_time = mb, t8
        print(
            f"{fmt:>10} {res.iterations:>6} {res.residual:>10.2e} "
            f"{mb:>10.3f} {t8 * 1e3:>12.2f}ms {base_time / t8:>6.2f}x"
        )
    print("\nAll formats produce the same iterates: compression is "
          "numerically transparent (bit-exact values flow through CG).")


if __name__ == "__main__":
    main()
