"""Thread-scaling study on the modeled Clovertown.

Reproduces the paper's central plot-in-miniature: for one memory-bound
(ML) and one cacheable (MS) catalog matrix, sweep 1..8 threads in both
placements and all formats, print speedup curves, and name the binding
bottleneck (compute / L2 / FSB / memory controller) per point -- the
quantity the paper infers indirectly, which the model exposes directly.

Run:  python examples/scaling_study.py [scale]
"""

import sys

from repro import convert
from repro.formats.base import working_set_bytes
from repro.machine import clovertown_8core, simulate_spmv
from repro.matrices.collection import entry, realize

THREADS = (1, 2, 4, 8)
FORMATS = ("csr", "csr-du", "csr-vi", "csr-du-vi")


def study(matrix_id: int, scale: float) -> None:
    ent = entry(matrix_id)
    matrix = realize(matrix_id, scale=scale)
    machine = clovertown_8core().scaled(scale)
    ws_mb = working_set_bytes(matrix) / 1e6
    klass = "ML (memory bound)" if ent.in_ml else "MS (cacheable)"
    print(f"\n=== {ent.name}: ws = {ws_mb:.1f} MB at scale {scale:g} -> {klass} ===")
    print(f"{'format':>10} " + " ".join(f"{t:>14}" for t in THREADS)
          + "   (speedup vs serial CSR; bound)")
    serial_csr = simulate_spmv(convert(matrix, "csr"), 1, machine).time_s
    for fmt in FORMATS:
        m = convert(matrix, fmt)
        cells = []
        for t in THREADS:
            res = simulate_spmv(m, t, machine)
            cells.append(f"{serial_csr / res.time_s:6.2f} {res.bound:<7}")
        print(f"{fmt:>10} " + " ".join(cells))
    # The paper's 2-thread placement comparison.
    csr = convert(matrix, "csr")
    close = simulate_spmv(csr, 2, machine, placement="close").time_s
    spread = simulate_spmv(csr, 2, machine, placement="spread").time_s
    print(f"2 threads: shared L2 {serial_csr / close:.2f}x, "
          f"separate L2 {serial_csr / spread:.2f}x "
          f"(cache sharing is {'destructive' if spread < close else 'neutral'})")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 16
    study(69, scale)  # ML_vi: large, memory bound, high ttu
    study(44, scale)  # MS_vi: cacheable at high thread counts
    print(
        "\nReading: for the ML matrix the CSR curve flattens against the "
        "bus while compressed formats keep climbing (Tables III/IV); for "
        "the MS matrix everything fits in aggregate L2 at 8 threads and "
        "compression stops paying (the tables' MS rows)."
    )


if __name__ == "__main__":
    main()
