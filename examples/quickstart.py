"""Quickstart: the paper's running example, end to end.

Builds the 6x6 matrix of Fig. 1, shows its CSR arrays (Fig. 1), its
CSR-DU unit table (Table I) and CSR-VI value structure (Fig. 4), runs
SpMV in every format, and predicts multithreaded performance on the
modeled Clovertown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CSRMatrix, available_formats, convert
from repro.compress.ctl import CtlReader
from repro.machine import clovertown_8core, simulate_spmv

A = np.array(
    [
        [5.4, 1.1, 0.0, 0.0, 0.0, 0.0],
        [0.0, 6.3, 0.0, 7.7, 0.0, 8.8],
        [0.0, 0.0, 1.1, 0.0, 0.0, 0.0],
        [0.0, 0.0, 2.9, 0.0, 3.7, 2.9],
        [9.0, 0.0, 0.0, 1.1, 4.5, 0.0],
        [1.1, 0.0, 2.9, 3.7, 0.0, 1.1],
    ]
)


def main() -> None:
    csr = CSRMatrix.from_dense(A)

    print("=== Fig. 1: CSR arrays ===")
    print("row_ptr:", csr.row_ptr.tolist())
    print("col_ind:", csr.col_ind.tolist())
    print("values: ", csr.values.tolist())

    print("\n=== Table I: CSR-DU units ===")
    du = convert(csr, "csr-du")
    print(f"{'unit':>4} {'uflags':>10} {'usize':>5} {'ujmp':>4}  ucis")
    for i, unit in enumerate(CtlReader(du.ctl)):
        flags = f"u{8 * (1 << unit.cls)}" + (", NR" if unit.new_row else "")
        print(f"{i:>4} {flags:>10} {unit.usize:>5} {unit.ujmp:>4}  {unit.deltas.tolist()}")
    print(f"ctl stream: {len(du.ctl)} bytes "
          f"(CSR index data: {csr.storage().index_bytes} bytes)")

    print("\n=== Fig. 4: CSR-VI value structure ===")
    vi = convert(csr, "csr-vi")
    print("vals_unique:", vi.vals_unique.tolist())
    print("val_ind:    ", vi.val_ind.tolist())
    print(f"ttu = {vi.ttu:.2f} (the paper applies CSR-VI when ttu > 5)")

    print("\n=== SpMV agreement across every format ===")
    x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    reference = A @ x
    for name in available_formats():
        y = convert(csr, name).spmv(x)
        status = "ok" if np.allclose(y, reference) else "MISMATCH"
        print(f"  {name:10s} -> {status}")
    print("y =", reference.tolist())

    print("\n=== Predicted multithreaded SpMV (machine model) ===")
    # Tiny example, so shrink the modeled caches to keep it out of L2
    # and show the memory-bound regime the paper studies.
    machine = clovertown_8core().scaled(1e-4)
    print(f"{'format':>10} " + " ".join(f"{f'{t} thr':>9}" for t in (1, 2, 4, 8)))
    for name in ("csr", "csr-du", "csr-vi", "csr-du-vi"):
        m = convert(csr, name)
        row = [simulate_spmv(m, t, machine).mflops for t in (1, 2, 4, 8)]
        print(f"{name:>10} " + " ".join(f"{v:8.1f}M" for v in row))


if __name__ == "__main__":
    main()
