"""Survey the catalog: which compression wins on which matrix class?

Walks a sample of the 100-matrix catalog, computes each matrix's
statistics (working set, ttu, delta-width profile) and every format's
size, and prints a per-family summary -- the data behind the paper's
set definitions (M0 / ML / MS, the ttu > 5 rule) and behind CSR-DU's
sensitivity to column-delta locality.

Run:  python examples/format_explorer.py [scale]
"""

import sys
from collections import defaultdict

from repro import convert
from repro.matrices.collection import M0_IDS, entry, realize
from repro.matrices.stats import compute_stats


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1 / 32
    sample = M0_IDS[::6]  # every 6th M0 matrix

    print(
        f"{'matrix':<22} {'ws MB':>7} {'ttu':>7} {'u8%':>5} "
        f"{'du idx':>7} {'vi val':>7} {'duvi':>7}   set"
    )
    by_family = defaultdict(list)
    for mid in sample:
        ent = entry(mid)
        m = realize(mid, scale=scale)
        s = compute_stats(m)
        csr = convert(m, "csr")
        du_ratio = (
            convert(m, "csr-du").storage().index_bytes
            / csr.storage().index_bytes
        )
        vi_ratio = (
            convert(m, "csr-vi").storage().value_bytes
            / csr.storage().value_bytes
        )
        duvi_ratio = (
            convert(m, "csr-du-vi").storage().total_bytes
            / csr.storage().total_bytes
        )
        klass = "ML" if ent.in_ml else "MS"
        if ent.in_m0_vi:
            klass += "_vi"
        print(
            f"{ent.name:<22} {s.ws_mb:>7.2f} {s.ttu:>7.1f} "
            f"{100 * s.delta_u8_frac:>4.0f}% {du_ratio:>6.2f}x {vi_ratio:>6.2f}x "
            f"{duvi_ratio:>6.2f}x   {klass}"
        )
        by_family[ent.family].append((du_ratio, vi_ratio))

    print("\nPer-family averages (lower = better compression):")
    print(f"{'family':<14} {'du index ratio':>15} {'vi value ratio':>15}")
    for family, rows in sorted(by_family.items()):
        du = sum(r[0] for r in rows) / len(rows)
        vi = sum(r[1] for r in rows) / len(rows)
        print(f"{family:<14} {du:>14.2f}x {vi:>14.2f}x")

    print(
        "\nReading: stencils/banded matrices (tiny column deltas) give "
        "CSR-DU its ~4x index shrink; value redundancy (ttu) is what "
        "CSR-VI needs and is orthogonal to structure -- the reason the "
        "paper treats the two compressions as independent levers."
    )


if __name__ == "__main__":
    main()
