"""Graph ranking with power iteration on a compressed adjacency matrix.

The paper's conclusion argues the compression methodology generalizes
to "memory intensive problems (e.g. graph or database algorithms)".
This example builds a power-law web-like graph, ranks vertices by
dominant-eigenvector centrality, and shows why graphs are the *ideal*
CSR-VI customer: an unweighted adjacency matrix has exactly one unique
value, so the values array collapses to a single double plus 1-byte
indices -- and CSR-DU squeezes the indices on top.

Run:  python examples/graph_ranking.py [n_vertices]
"""

import sys

import numpy as np

from repro import convert
from repro.formats.conversions import to_csr
from repro.machine import clovertown_8core, simulate_spmv
from repro.matrices.generators import powerlaw_graph
from repro.solvers import power_iteration


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    graph = to_csr(powerlaw_graph(n, avg_degree=12, seed=7))
    # Symmetrize so power iteration converges to a real eigenpair, and
    # keep values at 1.0 (pattern graph).
    sym = graph.to_coo()
    from repro.formats import COOMatrix

    coo = COOMatrix(
        n,
        n,
        np.concatenate([sym.rows, sym.cols]),
        np.concatenate([sym.cols, sym.rows]),
        np.ones(2 * sym.nnz),
    )
    A = to_csr(coo)
    # Re-unify values (duplicate summing created 2.0s on bidirectional edges).
    from repro.matrices.values import set_matrix_values

    A = set_matrix_values(A, np.ones(A.nnz))
    print(f"graph: {n} vertices, {A.nnz} directed edges (symmetrized)")

    print(f"\n{'format':>10} {'bytes':>12} {'vs csr':>7} {'model t(8) us':>14}")
    machine = clovertown_8core().scaled(0.05)
    csr_bytes = A.storage().total_bytes
    variants = {}
    for fmt in ("csr", "csr-du", "csr-vi", "csr-du-vi"):
        m = convert(A, fmt)
        variants[fmt] = m
        t8 = simulate_spmv(m, 8, machine).time_s
        print(
            f"{fmt:>10} {m.storage().total_bytes:>12} "
            f"{csr_bytes / m.storage().total_bytes:>6.2f}x {t8 * 1e6:>13.1f}"
        )

    best = variants["csr-du-vi"]
    res = power_iteration(best, tol=1e-9, maxiter=500)
    ranking = np.argsort(res.x)[::-1][:5]
    print(f"\npower iteration: {res.iterations} iterations, "
          f"{res.spmv_calls} SpMV calls, converged={res.converged}")
    print("top-5 central vertices:", ranking.tolist())

    check = power_iteration(variants["csr"], tol=1e-9, maxiter=500)
    agree = np.allclose(np.abs(res.x), np.abs(check.x), atol=1e-6)
    print(f"matches uncompressed ranking: {agree}")


if __name__ == "__main__":
    main()
