"""Reordering + compression pipeline: related work x contribution.

The paper's related work (Section III-A) lists matrix reordering among
the locality optimizations; its contribution is compression.  This
example shows they compound: RCM restores a scrambled mesh's band
structure, which (a) shrinks CSR-DU's column deltas back into one byte,
(b) shrinks the x-gather footprint, and (c) leaves CG's convergence
untouched (a symmetric permutation preserves the spectrum).

Run:  python examples/reordering_pipeline.py [grid_side]
"""

import sys

import numpy as np

from repro import convert
from repro.formats.conversions import to_csr
from repro.machine import clovertown_8core, simulate_spmv
from repro.matrices.generators import stencil_2d
from repro.matrices.reorder import apply_symmetric_permutation, rcm_reorder
from repro.matrices.stats import compute_stats
from repro.matrices.values import set_matrix_values
from repro.solvers import conjugate_gradient


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    # An SPD Laplacian whose rows arrive in scrambled order, as meshes
    # from partitioners often do.
    pattern = to_csr(stencil_2d(n, n))
    rows = pattern.row_of_entry()
    A = set_matrix_values(
        pattern, np.where(rows == pattern.col_ind, 4.5, -1.0)
    )
    rng = np.random.default_rng(0)
    scramble = rng.permutation(A.nrows).astype(np.int64)
    scrambled = apply_symmetric_permutation(A, scramble)
    reordered, perm = rcm_reorder(scrambled)

    machine = clovertown_8core().scaled(0.05)
    print(f"{'variant':<12} {'bandwidth':>9} {'u8 deltas':>9} "
          f"{'DU ctl bytes':>12} {'model t(8thr)':>14}")
    for label, m in (("scrambled", scrambled), ("rcm", reordered)):
        s = compute_stats(m)
        du = convert(m, "csr-du")
        t8 = simulate_spmv(du, 8, machine).time_s
        print(
            f"{label:<12} {s.bandwidth:>9} {100 * s.delta_u8_frac:>8.0f}% "
            f"{du.storage().index_bytes:>12} {t8 * 1e6:>12.1f}us"
        )

    # Solve on the reordered compressed matrix; map the answer back.
    x_true = rng.random(A.ncols)
    b = scrambled.spmv(x_true)
    du = convert(reordered, "csr-du")
    res = conjugate_gradient(du, b[perm], tol=1e-10)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    recovered = res.x[inv]
    print(f"\nCG on reordered CSR-DU: {res.iterations} iterations, "
          f"converged={res.converged}")
    print(f"solution recovered through the permutation: "
          f"max error {np.abs(recovered - x_true).max():.2e}")

    check = conjugate_gradient(scrambled, b, tol=1e-10)
    print(f"iteration count unchanged by reordering: "
          f"{check.iterations} == {res.iterations}: "
          f"{check.iterations == res.iterations}")


if __name__ == "__main__":
    main()
