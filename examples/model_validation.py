"""Validate the analytic machine model against trace-driven simulation.

The tables in EXPERIMENTS.md come from the analytic model (array-
granularity residency + bandwidth-domain makespan).  This example shows
the model's ground truth: it generates the *actual byte-address trace*
an SpMV kernel issues for CSR / CSR-DU / CSR-VI, replays it through a
real L1+L2 LRU hierarchy, and compares the steady-state DRAM traffic to
the analytic model's prediction in both regimes (working set resident
vs streaming).

Run:  python examples/model_validation.py
"""

import numpy as np

from repro import CSRMatrix, convert
from repro.machine import clovertown_8core, simulate_spmv
from repro.machine.tracesim import format_trace, run_trace


def build_matrix(n: int = 64, density: float = 0.2, seed: int = 7) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    vals = np.round((rng.random((n, n)) + 0.5) * 8) / 8
    return CSRMatrix.from_dense(np.where(mask, vals, 0.0))


def main() -> None:
    matrix = build_matrix()
    print(f"matrix: {matrix.nrows}x{matrix.ncols}, nnz={matrix.nnz}")

    regimes = {
        # (trace cache config, analytic machine) pairs per regime.
        "resident (1 MB L2)": (
            dict(l2_bytes=1024 * 1024),
            clovertown_8core().scaled(0.25),
        ),
        "streaming (2 KB L2)": (
            dict(l1_bytes=256, l1_assoc=4, l2_bytes=2048, l2_assoc=8),
            clovertown_8core().scaled(0.0005),
        ),
    }

    for regime, (cache_cfg, machine) in regimes.items():
        print(f"\n=== {regime} ===")
        print(f"{'format':>8} {'trace DRAM B/iter':>18} {'model B/iter':>14} "
              f"{'model resident':>15}")
        for fmt in ("csr", "csr-du", "csr-vi"):
            m = convert(matrix, fmt)
            trace = format_trace(m)
            measured = run_trace(trace, **cache_cfg)
            modeled = simulate_spmv(m, 1, machine)
            print(
                f"{fmt:>8} {measured.dram_bytes:>18} "
                f"{modeled.total_traffic:>14.0f} "
                f"{modeled.resident_fraction:>14.1%}"
            )

    print(
        "\nReading: with the working set resident, both the trace and the "
        "model report (near) zero DRAM traffic -- iteration 2 onward runs "
        "from cache, which is why the paper's MS matrices stop caring "
        "about compression.  Streaming, the compressed formats move "
        "measurably fewer bytes per iteration, and the model's estimate "
        "tracks the trace within small factors (its x-gather reload "
        "factor is a deliberate overcount for scattered columns)."
    )


if __name__ == "__main__":
    main()
