"""Tests for matrix persistence (save/load .npz)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, convert
from repro.io import load_matrix, save_matrix

from tests.conftest import random_sparse_dense

ALL_FORMATS = (
    "coo",
    "csr",
    "csc",
    "csr-du",
    "csr-vi",
    "csr-du-vi",
    "dcsr",
    "bcsr",
    "ell",
    "jds",
)


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(22, 19, seed=111, quantize=8, empty_rows=True)
    )


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_save_load(self, csr, fmt, tmp_path):
        m = convert(csr, fmt)
        path = tmp_path / f"{fmt}.npz"
        save_matrix(m, path)
        loaded = load_matrix(path)
        assert type(loaded) is type(m)
        assert loaded.shape == m.shape
        assert np.allclose(loaded.to_dense(), m.to_dense())

    def test_compressed_stays_compressed(self, csr, tmp_path):
        """Loading a CSR-DU file must not re-encode: byte-identical ctl."""
        du = convert(csr, "csr-du")
        path = tmp_path / "du.npz"
        save_matrix(du, path)
        loaded = load_matrix(path)
        assert loaded.ctl == du.ctl
        assert np.array_equal(loaded.values, du.values)

    def test_vi_index_width_preserved(self, csr, tmp_path):
        vi = convert(csr, "csr-vi")
        path = tmp_path / "vi.npz"
        save_matrix(vi, path)
        loaded = load_matrix(path)
        assert loaded.val_ind.dtype == vi.val_ind.dtype

    def test_seq_policy_stream_preserved(self, tmp_path):
        from repro.formats.conversions import to_csr
        from repro.matrices.generators import diagonal_bands

        du = convert(to_csr(diagonal_bands(80, (-2, -1, 0, 1, 2))), "csr-du", policy="seq")
        path = tmp_path / "seq.npz"
        save_matrix(du, path)
        loaded = load_matrix(path)
        assert loaded.ctl == du.ctl

    def test_spmv_after_load(self, csr, tmp_path):
        path = tmp_path / "m.npz"
        save_matrix(convert(csr, "csr-du-vi"), path)
        loaded = load_matrix(path)
        x = np.random.default_rng(0).random(csr.ncols)
        assert np.allclose(loaded.spmv(x), csr.spmv(x))


class TestValidation:
    def test_not_a_repro_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(FormatError, match="not a repro"):
            load_matrix(path)
