"""Cross-kernel bit-identity: reference, unitwise and batched CSR-DU
kernels must produce *exactly* the same ``y`` -- same bits, not merely
allclose -- on any matrix and any ctl policy.

This works because all three kernels accumulate each row's products in
element order with scalar-equivalent adds (the reference loop, the
unitwise carried ``cumsum`` chain, and the batched ``np.add.at``), so
there is no floating-point ordering slack to hide behind."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compress.delta import Unit
from repro.compress.ctl import CtlWriter
from repro.compress.unit_table import BatchedColumnDecoder, scan_units
from repro.errors import EncodingError
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.kernels.batched import spmv_csr_du_batched
from repro.kernels.plan import CSRDUPlan
from repro.kernels.reference import spmv_csr_du_reference
from repro.kernels.vectorized import spmv_csr_du_unitwise
from tests.conftest import PAPER_DENSE, random_sparse_dense

POLICIES = ("greedy", "aligned", "seq")


def assert_kernels_bit_identical(dense: np.ndarray, policy: str, seed: int = 0):
    csr = CSRMatrix.from_dense(dense)
    du = CSRDUMatrix.from_csr(csr, policy=policy)
    x = np.random.default_rng(seed).random(dense.shape[1]) - 0.5
    y_ref = spmv_csr_du_reference(du, x)
    y_unit = spmv_csr_du_unitwise(du, x)
    y_bat = spmv_csr_du_batched(du, x)
    assert np.array_equal(y_ref, y_unit), "unitwise differs from reference"
    assert np.array_equal(y_ref, y_bat), "batched differs from reference"
    # And all are right, not merely identically wrong.
    assert np.allclose(y_ref, dense @ x, atol=1e-9)


@st.composite
def sparse_dense(draw):
    nrows = draw(st.integers(min_value=1, max_value=16))
    ncols = draw(st.integers(min_value=1, max_value=400))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    seed = draw(st.integers(0, 1 << 30))
    rng = np.random.default_rng(seed)
    mask = rng.random((nrows, ncols)) < density
    dense = np.where(mask, rng.random((nrows, ncols)) - 0.5, 0.0)
    if draw(st.booleans()) and nrows >= 4:
        dense[nrows // 4 : nrows // 2] = 0.0  # empty-row band
    return dense


class TestCrossKernelProperty:
    @settings(max_examples=40, deadline=None)
    @given(sparse_dense(), st.sampled_from(POLICIES), st.integers(0, 1 << 30))
    def test_bit_identical_random(self, dense, policy, seed):
        assert_kernels_bit_identical(dense, policy, seed)

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(
            np.float64,
            (8, 12),
            elements=st.sampled_from([0.0, 0.0, 1.5, -2.25, 3.0]),
        ),
        st.sampled_from(POLICIES),
    )
    def test_bit_identical_quantized(self, dense, policy):
        assert_kernels_bit_identical(dense, policy)


class TestCrossKernelEdgeCases:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_paper_matrix(self, policy):
        assert_kernels_bit_identical(PAPER_DENSE, policy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_empty_rows(self, policy):
        dense = random_sparse_dense(24, 60, 0.2, seed=7, empty_rows=True)
        dense[0] = 0.0  # leading empty row forces an RJMP opener
        dense[-1] = 0.0
        assert_kernels_bit_identical(dense, policy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_nnz_rows(self, policy):
        dense = np.zeros((10, 50))
        rng = np.random.default_rng(3)
        for i in range(10):
            dense[i, rng.integers(0, 50)] = rng.random() + 0.5
        assert_kernels_bit_identical(dense, policy)

    def test_seq_runs(self):
        """Long constant-stride rows become SEQ units under the seq policy."""
        dense = np.zeros((6, 300))
        dense[0, ::3] = 1.5  # stride-3 run
        dense[2, :64] = 2.0  # stride-1 run
        dense[4, 5] = 1.0  # singleton
        csr = CSRMatrix.from_dense(dense)
        du = CSRDUMatrix.from_csr(csr, policy="seq")
        assert scan_units(du.ctl).seq.any(), "seq policy emitted no SEQ units"
        assert_kernels_bit_identical(dense, "seq")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_wide_deltas(self, policy):
        """Column jumps needing u16/u32 delta classes."""
        dense = np.zeros((4, 200_000))
        dense[0, [0, 300, 70_000, 199_999]] = 1.25
        dense[2, [5, 6, 100_000]] = -2.5
        assert_kernels_bit_identical(dense, policy)

    def test_u64_class_units(self):
        """A hand-built stream using the u64 width class (the encoder
        never emits it for columns that fit u32, but the wire format
        and both decoders must handle it)."""
        writer = CtlWriter()
        writer.append(
            Unit(
                row=0,
                new_row=True,
                row_jump=1,
                ujmp=2,
                deltas=np.array([3, 1, 7], dtype=np.int64),
                cls=3,  # u64 deltas, deliberately non-minimal
                seq=False,
            )
        )
        writer.append(
            Unit(
                row=2,
                new_row=True,
                row_jump=2,
                ujmp=0,
                deltas=np.array([40], dtype=np.int64),
                cls=3,
                seq=False,
            )
        )
        ctl = writer.getvalue()
        values = np.arange(1.0, 7.0)
        du = CSRDUMatrix(3, 60, ctl, values)
        table = scan_units(ctl)
        assert np.array_equal(table.classes, [3, 3])
        assert np.array_equal(
            BatchedColumnDecoder(ctl, table, 6).columns(), [2, 5, 6, 13, 0, 40]
        )
        x = np.random.default_rng(11).random(60)
        y_ref = spmv_csr_du_reference(du, x)
        assert np.array_equal(y_ref, spmv_csr_du_unitwise(du, x))
        assert np.array_equal(y_ref, spmv_csr_du_batched(du, x))


class TestScannerErrors:
    """scan_units rejects the same malformed streams CtlReader does."""

    def test_truncated_header(self):
        with pytest.raises(EncodingError, match="truncated unit header"):
            scan_units(bytes([0x40]))

    def test_unknown_flags(self):
        with pytest.raises(EncodingError, match="unknown flag bits"):
            scan_units(bytes([0x88, 1, 0]))

    def test_zero_size(self):
        with pytest.raises(EncodingError, match="unit size 0"):
            scan_units(bytes([0x40, 0, 0]))

    def test_rjmp_without_nr(self):
        with pytest.raises(EncodingError, match="RJMP flag without NR"):
            scan_units(bytes([0x20, 1, 0, 0]))

    def test_no_leading_new_row(self):
        with pytest.raises(EncodingError, match="start with a new-row unit"):
            scan_units(bytes([0x00, 1, 0]))

    def test_truncated_body(self):
        # u16-class unit of 3 elements: needs 4 body bytes, give 1.
        with pytest.raises(EncodingError, match="truncated fixed-width run"):
            scan_units(bytes([0x41, 3, 0, 7]))

    def test_nnz_mismatch(self):
        ctl = bytes([0x40, 2, 0, 1])  # one u8 unit, 2 elements
        table = scan_units(ctl)
        with pytest.raises(EncodingError, match="expected 5"):
            BatchedColumnDecoder(ctl, table, 5)

    def test_plan_row_bound(self):
        ctl = bytes([0x40, 1, 0, 0x40, 1, 0])  # rows 0 and 1
        with pytest.raises(Exception, match="reaches row 1"):
            CSRDUPlan(1, 4, ctl, 2)

    def test_plan_column_bound(self):
        ctl = bytes([0x40, 2, 0, 9])  # columns 0 and 9
        with pytest.raises(Exception, match="beyond ncols"):
            CSRDUPlan(1, 5, ctl, 2)
