"""Kernel-plan layer: caching, registry wiring, telemetry, no fallback."""

import numpy as np
import pytest

import repro.kernels.plan as plan_mod
from repro.errors import FormatError
from repro.formats import convert
from repro.formats.csr import CSRMatrix
from repro.kernels.plan import (
    CSRDUPlan,
    CSRPlan,
    PLAN_ATTR,
    PLANNABLE_FORMATS,
    get_plan,
    has_plan,
)
from repro.kernels.registry import available_kernels, get_kernel
from repro.telemetry.core import Collector, set_collector
from tests.conftest import random_sparse_dense


@pytest.fixture
def csr():
    return CSRMatrix.from_dense(random_sparse_dense(20, 30, 0.2, seed=1))


class TestPlanCaching:
    @pytest.mark.parametrize("fmt", PLANNABLE_FORMATS)
    def test_plan_built_once_and_cached(self, csr, fmt):
        m = convert(csr, fmt)
        assert not has_plan(m)
        plan = get_plan(m)
        assert has_plan(m)
        assert get_plan(m) is plan  # same object, not a rebuild

    def test_plan_classes(self, csr):
        assert isinstance(get_plan(convert(csr, "csr")), CSRPlan)
        assert isinstance(get_plan(convert(csr, "csr-du")), CSRDUPlan)

    def test_unplannable_format_raises(self, csr):
        with pytest.raises(FormatError, match="no kernel plan"):
            get_plan(convert(csr, "coo"))

    def test_csr_plan_caches_row_ptr_cast(self, csr):
        plan = get_plan(csr)
        assert plan.row_ptr64.dtype == np.int64
        assert plan.row_ptr64 is get_plan(csr).row_ptr64

    def test_spmv_uses_plan(self, csr):
        """The format's spmv goes through the cached plan."""
        x = np.random.default_rng(0).random(csr.ncols)
        csr.spmv(x)
        assert has_plan(csr)


class TestRegistry:
    def test_batched_tier_registered(self):
        kernels = dict.fromkeys(available_kernels())
        for fmt in PLANNABLE_FORMATS:
            assert (fmt, "batched") in kernels

    @pytest.mark.parametrize("fmt", PLANNABLE_FORMATS)
    def test_batched_matches_cached(self, csr, fmt):
        m = convert(csr, fmt)
        x = np.random.default_rng(2).random(m.ncols)
        y_batched = get_kernel(fmt, "batched")(m, x)
        y_cached = get_kernel(fmt, "cached")(m, x)
        assert np.array_equal(y_batched, y_cached)

    def test_default_spmv_is_plan_backed(self, csr):
        """Tier-1 smoke: the default ('cached') CSR-DU kernel selects
        the batched plan path -- evidenced by the plan materializing."""
        du = convert(csr, "csr-du")
        kernel = get_kernel("csr-du")  # default tier
        kernel(du, np.random.default_rng(3).random(du.ncols))
        assert has_plan(du)


class TestNoSilentFallback:
    def test_spmv_propagates_plan_failure(self, csr, monkeypatch):
        """A broken plan layer must raise, never silently fall back to
        a slower decode path."""
        du = convert(csr, "csr-du")

        def boom(matrix):
            raise RuntimeError("plan layer down")

        monkeypatch.setattr(plan_mod, "get_plan", boom)
        with pytest.raises(RuntimeError, match="plan layer down"):
            du.spmv(np.zeros(du.ncols))

    def test_corrupt_ctl_raises_at_plan_build(self, csr):
        du = convert(csr, "csr-du")
        bad = type(du)(du.nrows, du.ncols, du.ctl[:-1], du.values)
        with pytest.raises(Exception):
            bad.spmv(np.zeros(du.ncols))


class TestPlanTelemetry:
    def test_build_hit_miss_counters(self, csr):
        du = convert(csr, "csr-du")
        collector = Collector()
        prev = set_collector(collector)
        try:
            get_plan(du)
            get_plan(du)
            get_plan(du)
        finally:
            set_collector(prev)
        assert collector.counters.get("plan.miss{format=csr-du}") == 1
        assert collector.counters.get("plan.hit{format=csr-du}") == 2
        spans = [e for e in collector.snapshot() if e.kind == "span"]
        assert [s.name for s in spans] == ["plan.build"]
        assert spans[0].attrs["format"] == "csr-du"
        assert spans[0].attrs["nnz"] == du.nnz

    def test_silent_when_disabled(self, csr):
        prev = set_collector(None)
        try:
            get_plan(convert(csr, "csr-vi"))  # must not blow up
        finally:
            set_collector(prev)


class TestPlanOutBuffer:
    @pytest.mark.parametrize("fmt", PLANNABLE_FORMATS)
    def test_out_buffer_reused_and_identical(self, csr, fmt):
        m = convert(csr, fmt)
        x = np.random.default_rng(4).random(m.ncols)
        out = np.full(m.nrows, np.nan)
        y = m.spmv(x, out=out)
        assert y is out
        assert np.array_equal(out, m.spmv(x))

    def test_plan_attr_name_stable(self, csr):
        get_plan(csr)
        assert getattr(csr, PLAN_ATTR) is get_plan(csr)
