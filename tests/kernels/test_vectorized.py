"""Vectorized kernels must agree with the reference kernels exactly."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    CSRDUMatrix,
    CSRDUVIMatrix,
    CSRMatrix,
    CSRVIMatrix,
)
from repro.kernels.reference import spmv_csr_du_reference
from repro.kernels.vectorized import (
    spmv_csr_du_unitwise,
    spmv_csr_du_vi_vectorized,
    spmv_csr_vectorized,
    spmv_csr_vi_vectorized,
)

from tests.conftest import random_sparse_dense


@pytest.fixture(
    scope="module",
    params=[
        dict(seed=40, density=0.1),
        dict(seed=41, density=0.4, quantize=8),
        dict(seed=42, density=0.05, empty_rows=True),
    ],
)
def case(request):
    dense = random_sparse_dense(30, 35, **request.param)
    x = np.random.default_rng(request.param["seed"]).random(35)
    return dense, CSRMatrix.from_dense(dense), x


class TestAgreement:
    def test_csr(self, case):
        dense, csr, x = case
        assert np.allclose(spmv_csr_vectorized(csr, x), dense @ x)

    def test_csr_du_unitwise_matches_reference(self, case):
        _, csr, x = case
        du = CSRDUMatrix.from_csr(csr)
        ref = spmv_csr_du_reference(du, x)
        vec = spmv_csr_du_unitwise(du, x)
        assert np.allclose(vec, ref, atol=1e-12)

    def test_csr_vi(self, case):
        dense, csr, x = case
        vi = CSRVIMatrix.from_csr(csr)
        assert np.allclose(spmv_csr_vi_vectorized(vi, x), dense @ x)

    def test_csr_du_vi(self, case):
        dense, csr, x = case
        duvi = CSRDUVIMatrix.from_csr(csr)
        assert np.allclose(spmv_csr_du_vi_vectorized(duvi, x), dense @ x)

    def test_unitwise_matches_cached(self, case):
        """On-the-fly decode and cached decode must agree bit-for-bit in
        structure (same columns, same order of operations per unit)."""
        _, csr, x = case
        du = CSRDUMatrix.from_csr(csr)
        assert np.allclose(spmv_csr_du_unitwise(du, x), du.spmv(x), atol=1e-12)


class TestShapeChecks:
    def test_wrong_x_shape(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        with pytest.raises(FormatError):
            spmv_csr_du_unitwise(du, np.ones(7))
        with pytest.raises(FormatError):
            spmv_csr_vectorized(paper_matrix, np.ones((6, 1)))


class TestRegistry:
    def test_lookup_and_call(self, paper_matrix, paper_dense):
        from repro.kernels.registry import available_kernels, get_kernel

        x = np.ones(6)
        k = get_kernel("csr", "vectorized")
        assert np.allclose(k(paper_matrix, x), paper_dense @ x)
        assert ("csr-du", "reference") in available_kernels()

    def test_cached_tier_for_all_formats(self, paper_matrix, paper_dense):
        from repro.formats import convert
        from repro.kernels.registry import get_kernel

        x = np.arange(6.0)
        for name in ("coo", "csr", "csc", "csr-du", "csr-vi", "csr-du-vi", "dcsr", "bcsr"):
            k = get_kernel(name, "cached")
            assert np.allclose(
                k(convert(paper_matrix, name), x), paper_dense @ x
            ), name

    def test_unknown_kernel(self):
        from repro.errors import FormatError
        from repro.kernels.registry import get_kernel

        with pytest.raises(FormatError, match="no kernel"):
            get_kernel("csr", "quantum")
