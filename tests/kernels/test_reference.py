"""Tests for the reference kernels (the paper's pseudocode)."""

import numpy as np
import pytest

from repro.formats import CSRDUMatrix, CSRMatrix, CSRVIMatrix, DCSRMatrix
from repro.kernels.reference import (
    spmv_csr_du_reference,
    spmv_csr_reference,
    spmv_csr_vi_reference,
    spmv_dcsr_reference,
)

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(20, 24, seed=30, quantize=8, empty_rows=True)


@pytest.fixture(scope="module")
def x(dense):
    return np.random.default_rng(7).random(dense.shape[1])


class TestAgainstDense:
    def test_csr(self, dense, x):
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(spmv_csr_reference(csr, x), dense @ x)

    def test_csr_du(self, dense, x):
        du = CSRDUMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert np.allclose(spmv_csr_du_reference(du, x), dense @ x)

    def test_csr_vi(self, dense, x):
        vi = CSRVIMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert np.allclose(spmv_csr_vi_reference(vi, x), dense @ x)

    def test_dcsr(self, dense, x):
        dcsr = DCSRMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert np.allclose(spmv_dcsr_reference(dcsr, x), dense @ x)

    def test_paper_example_all(self, paper_matrix, paper_dense):
        x = np.arange(6.0) + 1
        expected = paper_dense @ x
        assert np.allclose(spmv_csr_reference(paper_matrix, x), expected)
        assert np.allclose(
            spmv_csr_du_reference(CSRDUMatrix.from_csr(paper_matrix), x), expected
        )
        assert np.allclose(
            spmv_csr_vi_reference(CSRVIMatrix.from_csr(paper_matrix), x), expected
        )
        assert np.allclose(
            spmv_dcsr_reference(DCSRMatrix.from_csr(paper_matrix), x), expected
        )


class TestCounters:
    """The operation census drives the cost model; pin it to the formats."""

    def test_csr_counters(self, paper_matrix):
        counters = {}
        spmv_csr_reference(paper_matrix, np.ones(6), counters)
        assert counters["elements"] == 16
        assert counters["rows"] == 6

    def test_csr_skips_empty_rows(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = dense[3, 2] = 1.0
        csr = CSRMatrix.from_dense(dense)
        counters = {}
        spmv_csr_reference(csr, np.ones(4), counters)
        assert counters["rows"] == 2

    def test_du_counters_match_format(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        counters = {}
        spmv_csr_du_reference(du, np.ones(6), counters)
        assert counters["units"] == du.units.nunits == 6
        assert counters["elements"] == 16
        assert counters["class_elements"][0] == 16  # all u8 (Table I)

    def test_vi_counters(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        counters = {}
        spmv_csr_vi_reference(vi, np.ones(6), counters)
        assert counters["indirections"] == 16

    def test_dcsr_counters_match_format(self, paper_matrix):
        dcsr = DCSRMatrix.from_csr(paper_matrix)
        counters = {}
        spmv_dcsr_reference(dcsr, np.ones(6), counters)
        assert counters["commands"] == dcsr.command_count

    def test_dcsr_dispatches_finer_than_du(self, dense):
        """Section III-B: DCSR branches per command, CSR-DU per unit."""
        csr = CSRMatrix.from_dense(dense)
        du = CSRDUMatrix.from_csr(csr)
        dcsr = DCSRMatrix.from_csr(csr)
        assert dcsr.command_count >= du.units.nunits
