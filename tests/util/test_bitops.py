"""Tests for varints, width classes and fixed-width packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.util.bitops import (
    WIDTH_BYTES,
    decode_varint,
    decode_varint_array,
    decode_varint_array_reference,
    encode_varint,
    encode_varint_array,
    encode_varint_array_reference,
    pack_fixed,
    scatter_varints,
    unpack_fixed,
    varint_size,
    varint_size_array,
    width_class,
    width_class_array,
)

#: Non-negative values straddling every varint byte-size breakpoint.
varint_values = st.integers(min_value=0, max_value=(1 << 63) - 1)


class TestWidthClass:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, 0),
            (1, 0),
            (255, 0),
            (256, 1),
            (65535, 1),
            (65536, 2),
            ((1 << 32) - 1, 2),
            (1 << 32, 3),
            ((1 << 64) - 1, 3),
        ],
    )
    def test_boundaries(self, value, expected):
        assert width_class(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            width_class(-1)

    def test_too_large_rejected(self):
        with pytest.raises(EncodingError):
            width_class(1 << 64)

    def test_array_matches_scalar(self):
        values = np.array([0, 255, 256, 65535, 65536, 1 << 40])
        classes = width_class_array(values)
        assert classes.tolist() == [width_class(int(v)) for v in values]

    def test_array_negative_rejected(self):
        with pytest.raises(EncodingError):
            width_class_array(np.array([3, -1]))

    def test_empty_array(self):
        assert width_class_array(np.array([], dtype=np.int64)).size == 0

    def test_width_bytes_table(self):
        assert WIDTH_BYTES == (1, 2, 4, 8)


class TestVarint:
    @pytest.mark.parametrize(
        "value,size",
        [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3), (1 << 62, 9)],
    )
    def test_size(self, value, size):
        assert varint_size(value) == size
        buf = bytearray()
        assert encode_varint(value, buf) == size
        assert len(buf) == size

    def test_round_trip_simple(self):
        buf = bytearray()
        encode_varint(300, buf)
        value, pos = decode_varint(bytes(buf), 0)
        assert value == 300
        assert pos == len(buf)

    def test_concatenated_stream(self):
        buf = bytearray()
        values = [0, 1, 127, 128, 300, 1 << 20, 1 << 50]
        for v in values:
            encode_varint(v, buf)
        pos = 0
        for v in values:
            got, pos = decode_varint(bytes(buf), pos)
            assert got == v
        assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_varint(-1, bytearray())
        with pytest.raises(EncodingError):
            varint_size(-5)

    def test_truncated_stream(self):
        buf = bytearray()
        encode_varint(1 << 20, buf)
        with pytest.raises(EncodingError):
            decode_varint(bytes(buf[:-1]), 0)

    def test_empty_stream(self):
        with pytest.raises(EncodingError):
            decode_varint(b"", 0)

    def test_overlong_rejected(self):
        # Ten continuation bytes exceed the 64-bit limit.
        with pytest.raises(EncodingError):
            decode_varint(b"\x80" * 10 + b"\x01", 0)

    @given(st.integers(min_value=0, max_value=(1 << 63) - 1))
    def test_round_trip_property(self, value):
        buf = bytearray()
        encode_varint(value, buf)
        got, pos = decode_varint(bytes(buf), 0)
        assert got == value
        assert pos == varint_size(value)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=50))
    def test_array_round_trip_property(self, values):
        data = encode_varint_array(np.asarray(values, dtype=np.uint64))
        out, pos = decode_varint_array(data, len(values))
        assert out.tolist() == values
        assert pos == len(data)


class TestVarintArrayVectorized:
    """The vectorized array paths against their scalar references."""

    @given(st.lists(varint_values, max_size=60))
    def test_size_array_matches_scalar(self, values):
        sizes = varint_size_array(np.asarray(values, dtype=np.uint64))
        assert sizes.tolist() == [varint_size(v) for v in values]

    @given(st.lists(varint_values, max_size=60))
    def test_encode_matches_reference(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        assert encode_varint_array(arr) == encode_varint_array_reference(arr)

    @given(st.lists(varint_values, max_size=60))
    def test_decode_matches_reference(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        data = encode_varint_array(arr)
        fast, fast_pos = decode_varint_array(data, arr.size)
        slow, slow_pos = decode_varint_array_reference(data, arr.size)
        assert fast.tolist() == slow.tolist()
        assert fast_pos == slow_pos == len(data)

    def test_decode_from_offset(self):
        data = b"\xff\xff" + encode_varint_array(np.asarray([300, 7]))
        out, pos = decode_varint_array(data, 2, pos=2)
        assert out.tolist() == [300, 7]
        assert pos == len(data)

    def test_scatter_matches_concatenated_scalars(self):
        values = np.asarray([0, 127, 128, 16384, 1 << 40], dtype=np.uint64)
        sizes = varint_size_array(values)
        offsets = np.concatenate(([0], np.cumsum(sizes[:-1])))
        buf = np.zeros(int(sizes.sum()), dtype=np.uint8)
        scatter_varints(buf, values, offsets, sizes)
        expected = bytearray()
        for v in values.tolist():
            encode_varint(int(v), expected)
        assert buf.tobytes() == bytes(expected)

    def test_scatter_interleaved_positions(self):
        """Scatter into a stream with gaps the caller fills otherwise."""
        values = np.asarray([5, 300], dtype=np.uint64)
        sizes = varint_size_array(values)
        buf = np.zeros(10, dtype=np.uint8)
        scatter_varints(buf, values, np.asarray([1, 6]), sizes)
        assert decode_varint(buf.tobytes(), 1) == (5, 2)
        assert decode_varint(buf.tobytes(), 6) == (300, 8)

    def test_size_array_negative_rejected(self):
        with pytest.raises(EncodingError):
            varint_size_array(np.asarray([1, -2], dtype=np.int64))

    def test_empty_arrays(self):
        assert varint_size_array(np.empty(0, dtype=np.uint64)).size == 0
        assert encode_varint_array(np.empty(0, dtype=np.uint64)) == b""
        out, pos = decode_varint_array(b"", 0)
        assert out.size == 0 and pos == 0

    def test_decode_truncated_rejected(self):
        data = encode_varint_array(np.asarray([1 << 20], dtype=np.uint64))
        with pytest.raises(EncodingError):
            decode_varint_array(data[:-1], 1)

    def test_decode_overlong_rejected(self):
        with pytest.raises(EncodingError):
            decode_varint_array(b"\x80" * 10 + b"\x01", 1)


class TestPackFixed:
    @pytest.mark.parametrize("cls", [0, 1, 2, 3])
    def test_round_trip(self, cls):
        limit = (1 << (8 * WIDTH_BYTES[cls])) - 1
        values = np.array([0, 1, limit // 2, limit], dtype=np.uint64)
        data = pack_fixed(values, cls)
        assert len(data) == values.size * WIDTH_BYTES[cls]
        out, pos = unpack_fixed(data, values.size, cls)
        assert out.tolist() == values.tolist()
        assert pos == len(data)

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            pack_fixed(np.array([256]), 0)

    def test_truncated_rejected(self):
        data = pack_fixed(np.array([1, 2, 3]), 1)
        with pytest.raises(EncodingError):
            unpack_fixed(data, 4, 1)

    def test_offset_decode(self):
        data = b"\xff" + pack_fixed(np.array([7, 9]), 0)
        out, pos = unpack_fixed(data, 2, 0, pos=1)
        assert out.tolist() == [7, 9]
        assert pos == 3
