"""Tests for the input-validation helpers."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.util.validation import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    as_index_array,
    as_value_array,
    check_dimensions,
    check_in_range,
    check_monotone,
)


class TestAsIndexArray:
    def test_converts_dtype(self):
        out = as_index_array(np.array([1, 2, 3], dtype=np.int64), "x")
        assert out.dtype == INDEX_DTYPE
        assert out.tolist() == [1, 2, 3]

    def test_rejects_float(self):
        with pytest.raises(FormatError, match="integer"):
            as_index_array(np.array([1.0, 2.0]), "x")

    def test_rejects_2d(self):
        with pytest.raises(FormatError, match="1-D"):
            as_index_array(np.zeros((2, 2), dtype=np.int32), "x")

    def test_rejects_overflow(self):
        with pytest.raises(FormatError, match="overflow"):
            as_index_array(np.array([1 << 40]), "x")

    def test_accepts_lists(self):
        assert as_index_array([0, 5], "x").tolist() == [0, 5]

    def test_empty(self):
        assert as_index_array(np.array([], dtype=np.int64), "x").size == 0

    def test_custom_dtype(self):
        out = as_index_array([1, 2], "x", dtype=np.dtype(np.int16))
        assert out.dtype == np.int16


class TestAsValueArray:
    def test_converts(self):
        out = as_value_array([1, 2.5], "v")
        assert out.dtype == VALUE_DTYPE
        assert out.tolist() == [1.0, 2.5]

    def test_rejects_strings(self):
        with pytest.raises(FormatError, match="numeric"):
            as_value_array(np.array(["a"]), "v")

    def test_rejects_2d(self):
        with pytest.raises(FormatError, match="1-D"):
            as_value_array(np.zeros((2, 2)), "v")


class TestChecks:
    def test_dimensions(self):
        assert check_dimensions(3, 4) == (3, 4)
        with pytest.raises(FormatError):
            check_dimensions(-1, 4)

    def test_monotone(self):
        check_monotone(np.array([0, 0, 2, 5]), "p")
        with pytest.raises(FormatError, match="non-decreasing"):
            check_monotone(np.array([0, 3, 1]), "p")

    def test_in_range(self):
        check_in_range(np.array([0, 4]), 5, "c")
        with pytest.raises(FormatError):
            check_in_range(np.array([5]), 5, "c")
        with pytest.raises(FormatError):
            check_in_range(np.array([-1]), 5, "c")
        check_in_range(np.array([], dtype=np.int32), 0, "c")  # empty is fine
