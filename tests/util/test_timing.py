"""Tests for the wall-clock measurement helpers."""

import statistics

import pytest

from repro.errors import ReproError
from repro.util.timing import Measurement, Timer, measure


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(1000))
        assert t.elapsed >= first >= 0.0

    def test_nonnegative(self):
        t = Timer()
        with t:
            pass
        assert t.elapsed >= 0.0

    def test_exit_without_enter_raises_repro_error(self):
        t = Timer()
        with pytest.raises(ReproError, match="without entering"):
            t.__exit__(None, None, None)

    def test_double_exit_raises(self):
        t = Timer()
        with t:
            pass
        with pytest.raises(ReproError):
            t.__exit__(None, None, None)


class TestMeasure:
    def test_counts(self):
        calls = []
        m = measure(lambda: calls.append(1), calls=5, repeats=2)
        assert len(calls) == 10
        assert m.calls == 5
        assert m.repeats == 2
        assert len(m.all_repeats) == 2

    def test_per_call_consistent(self):
        m = measure(lambda: None, calls=4, repeats=3)
        assert m.per_call == pytest.approx(m.total / 4)
        assert m.total == min(m.all_repeats)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            measure(lambda: None, calls=0)
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_measurement_frozen(self):
        m = Measurement(per_call=1.0, total=4.0, calls=4, repeats=1)
        with pytest.raises(AttributeError):
            m.per_call = 2.0

    def test_stdev_defaults_to_zero(self):
        m = Measurement(per_call=1.0, total=4.0, calls=4, repeats=1)
        assert m.stdev == 0.0

    def test_stdev_matches_per_call_spread(self):
        m = measure(lambda: sum(range(200)), calls=3, repeats=4)
        expected = statistics.pstdev(t / m.calls for t in m.all_repeats)
        assert m.stdev == pytest.approx(expected)

    def test_stdev_zero_for_single_repeat(self):
        m = measure(lambda: None, calls=2, repeats=1)
        assert m.stdev == 0.0
