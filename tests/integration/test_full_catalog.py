"""Whole-catalog integration: all 100 matrices, class-faithful and
convertible, at a tiny scale."""

import numpy as np
import pytest

from repro.formats import convert, working_set_bytes
from repro.matrices.collection import (
    ALL_IDS,
    M0_IDS,
    M0_VI_IDS,
    ML_IDS,
    MS_IDS,
    entry,
    realize,
)
from repro.matrices.stats import compute_stats

SCALE = 1 / 64
_MB = 1024 * 1024


@pytest.fixture(scope="module")
def realized():
    """All 100 matrices at 1/64 scale (a few seconds total)."""
    return {mid: realize(mid, scale=SCALE) for mid in ALL_IDS}


class TestWholeCatalog:
    def test_every_matrix_in_its_paper_class(self, realized):
        """The catalog's reason to exist: the paper's id sets hold."""
        failures = []
        for mid, m in realized.items():
            ws = working_set_bytes(m)
            if mid in ML_IDS and ws < 17 * _MB * SCALE:
                failures.append((mid, "ML too small"))
            if mid in MS_IDS and not (
                3 * _MB * SCALE * 0.95 <= ws < 17 * _MB * SCALE
            ):
                failures.append((mid, "MS out of band"))
            if mid not in M0_IDS and mid != 1 and ws >= 3 * _MB * SCALE:
                failures.append((mid, "small matrix too big"))
        assert not failures, failures

    def test_vi_classification_holds(self, realized):
        failures = []
        for mid in M0_IDS:
            ttu = compute_stats(realized[mid]).ttu
            if mid in M0_VI_IDS and ttu <= 5:
                failures.append((mid, "vi member with ttu <= 5"))
            if mid not in M0_VI_IDS and ttu > 5:
                failures.append((mid, "non-vi member with ttu > 5"))
        assert not failures, failures

    def test_all_matrices_encode_and_multiply(self, realized):
        """Every catalog matrix survives both compressions and agrees
        with plain CSR on an SpMV (spot-sampled x)."""
        rng = np.random.default_rng(0)
        failures = []
        for mid in M0_IDS[::4]:  # every 4th: keeps runtime in seconds
            csr = realized[mid]
            x = rng.random(csr.ncols)
            ref = csr.spmv(x)
            for fmt in ("csr-du", "csr-vi"):
                got = convert(csr, fmt).spmv(x)
                if not np.allclose(got, ref, atol=1e-9):
                    failures.append((mid, fmt))
        assert not failures, failures

    def test_compression_ratios_in_sane_band(self, realized):
        """Across the whole set: CSR-DU index reduction lands between
        'nothing' and '4x'; CSR-VI value reduction requires ttu > 5."""
        for mid in M0_IDS[::7]:
            csr = realized[mid]
            du = convert(csr, "csr-du")
            ratio = du.storage().index_bytes / csr.storage().index_bytes
            assert 0.2 < ratio <= 1.35, (mid, ratio)
            if entry(mid).in_m0_vi:
                vi = convert(csr, "csr-vi")
                assert (
                    vi.storage().value_bytes < csr.storage().value_bytes
                ), mid
