"""Smoke tests: every example script must run clean end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess with small arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", []),
    ("cg_poisson.py", ["24"]),
    ("scaling_study.py", ["0.03125"]),
    ("graph_ranking.py", ["2000"]),
    ("format_explorer.py", ["0.02"]),
    ("model_validation.py", []),
    ("reordering_pipeline.py", ["24"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # examples must say something


def test_quickstart_prints_table1():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    out = result.stdout
    assert "row_ptr: [0, 2, 5, 6, 9, 12, 16]" in out
    assert "u8, NR" in out  # Table I rendering
    assert "vals_unique" in out  # Fig. 4 rendering
