"""Integration tests: catalog -> formats -> kernels -> solvers -> model,
all consistent with each other and with the paper's claims."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentConfig, run_format_matrix
from repro.formats import convert, to_csr, working_set_bytes
from repro.kernels.registry import get_kernel
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import clovertown_8core
from repro.matrices.collection import entry, realize
from repro.parallel.executor import ParallelSpMV
from repro.solvers import conjugate_gradient, gmres

SCALE = 1 / 64
FORMATS = ("csr", "csr-du", "csr-vi", "csr-du-vi", "dcsr")


@pytest.fixture(scope="module")
def matrix():
    return realize(47, scale=SCALE)  # MS_vi: high ttu, diagonals family


class TestPipelineConsistency:
    def test_all_formats_all_kernels_agree(self, matrix):
        """Every (format, kernel tier) pair computes the same y."""
        x = np.random.default_rng(0).random(matrix.ncols)
        reference = matrix.spmv(x)
        for fmt in FORMATS:
            m = convert(matrix, fmt)
            for tier in ("cached", "vectorized", "reference"):
                try:
                    kernel = get_kernel(fmt, tier)
                except Exception:
                    continue  # not every pair is registered
                assert np.allclose(
                    kernel(m, x), reference, atol=1e-9
                ), (fmt, tier)

    def test_threaded_equals_serial_on_catalog_matrix(self, matrix):
        x = np.random.default_rng(1).random(matrix.ncols)
        with ParallelSpMV(matrix, 4, format_name="csr-du") as p:
            assert np.allclose(p(x), matrix.spmv(x))

    def test_solver_on_symmetrized_catalog_matrix(self, matrix):
        """Build an SPD system from the catalog matrix, solve with a
        compressed format (the paper's intro scenario)."""
        csr = to_csr(matrix)
        dense = csr.to_dense()
        n = min(120, dense.shape[0])
        spd = dense[:n, :n] + dense[:n, :n].T
        np.fill_diagonal(spd, np.abs(spd).sum(axis=1) + 1.0)
        from repro.formats import CSRMatrix

        A = convert(CSRMatrix.from_dense(spd), "csr-vi")
        x_true = np.random.default_rng(2).random(n)
        res = conjugate_gradient(A, A.spmv(x_true), tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_gmres_on_catalog_matrix(self, matrix):
        csr = to_csr(matrix)
        dense = csr.to_dense()
        n = min(80, dense.shape[0])
        sub = dense[:n, :n].copy()
        np.fill_diagonal(sub, np.abs(sub).sum(axis=1) + 1.0)
        from repro.formats import CSRMatrix

        A = convert(CSRMatrix.from_dense(sub), "csr-du")
        x_true = np.random.default_rng(3).random(n)
        res = gmres(A, A.spmv(x_true), tol=1e-9)
        assert res.converged


class TestModelStorageConsistency:
    def test_model_traffic_bounded_by_working_set(self, matrix):
        """Steady-state DRAM traffic per iteration can exceed the
        paper's ws only through the x-gather reload factor."""
        machine = clovertown_8core().scaled(SCALE)
        for fmt in ("csr", "csr-du", "csr-vi"):
            m = convert(matrix, fmt)
            res = simulate_spmv(m, 1, machine)
            ws = working_set_bytes(m)
            assert res.total_traffic <= ws * machine.x_reload

    def test_compression_reduces_bytes_and_model_notices(self, matrix):
        machine = clovertown_8core().scaled(SCALE)
        csr = convert(matrix, "csr")
        duvi = convert(matrix, "csr-du-vi")
        assert duvi.storage().total_bytes < csr.storage().total_bytes
        t_csr = simulate_spmv(csr, 8, machine).time_s
        t_duvi = simulate_spmv(duvi, 8, machine).time_s
        assert t_duvi < t_csr

    def test_harness_matches_direct_simulation(self, matrix):
        config = ExperimentConfig(scale=SCALE)
        res = run_format_matrix(matrix, "csr", config)
        direct = simulate_spmv(
            convert(matrix, "csr"), 8, config.scaled_machine()
        )
        assert res.times[(8, "close")] == pytest.approx(direct.time_s)


class TestCatalogExperimentSanity:
    @pytest.mark.parametrize("mid", [9, 44, 69])
    def test_vi_applicability_respected(self, mid):
        """All *_vi catalog ids produce profitable CSR-VI encodings."""
        m = realize(mid, scale=SCALE)
        vi = convert(m, "csr-vi")
        assert entry(mid).in_m0_vi == vi.is_profitable() or vi.is_profitable()

    def test_round_trip_on_every_family(self):
        """One id per structural family: full conversion cycle."""
        seen = set()
        for mid in range(2, 30):
            fam = entry(mid).family
            if fam in seen:
                continue
            seen.add(fam)
            m = realize(mid, scale=1 / 128)
            dense = to_csr(m).to_dense()
            for fmt in FORMATS:
                back = to_csr(convert(m, fmt))
                assert np.allclose(back.to_dense(), dense), (mid, fmt)
