"""Streamed out-of-core SpMV: identity, checkpoints, resume, refusal."""

import json
import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.formats import CSRMatrix
from repro.storage import ShardStore, streamed_spmv
from repro.storage.stream import PROGRESS_NAME

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(50, 41, seed=13, empty_rows=True)
    )


@pytest.fixture(scope="module")
def x(csr):
    return np.random.default_rng(14).random(csr.ncols)


@pytest.fixture()
def store(csr, tmp_path):
    with ShardStore.build(
        csr, "csr", 4, storage="mmap", directory=str(tmp_path / "shards")
    ) as s:
        yield s


def test_matches_full_product(store, csr, x):
    result = streamed_spmv(store, x)
    assert result.resumed_from == 0
    assert result.shards_done == store.nshards
    assert np.array_equal(result.y, csr.spmv(x))


def test_checkpointed_run_and_trivial_resume(store, csr, x, tmp_path):
    ckpt = str(tmp_path / "ckpt")
    first = streamed_spmv(store, x, checkpoint_dir=ckpt)
    assert np.array_equal(np.asarray(first.y), csr.spmv(x))
    again = streamed_spmv(store, x, checkpoint_dir=ckpt)
    assert again.resumed_from == store.nshards
    assert again.shards_done == 0
    assert np.array_equal(np.asarray(again.y), csr.spmv(x))


def test_resume_from_midpoint(store, csr, x, tmp_path):
    """Crash-after-shard-k state: progress says k, y holds k shards."""
    ckpt = str(tmp_path / "ckpt")
    streamed_spmv(store, x, checkpoint_dir=ckpt)
    progress_path = os.path.join(ckpt, PROGRESS_NAME)
    with open(progress_path, "r", encoding="ascii") as fh:
        progress = json.load(fh)
    progress["shards_done"] = 2
    with open(progress_path, "w", encoding="ascii") as fh:
        json.dump(progress, fh)
    resumed = streamed_spmv(store, x, checkpoint_dir=ckpt)
    assert resumed.resumed_from == 2
    assert resumed.shards_done == store.nshards - 2
    assert np.array_equal(np.asarray(resumed.y), csr.spmv(x))


def test_refuses_foreign_checkpoint(store, csr, x, tmp_path):
    """A checkpoint written for another x must not be resumed."""
    ckpt = str(tmp_path / "ckpt")
    streamed_spmv(store, x, checkpoint_dir=ckpt)
    with pytest.raises(StorageError):
        streamed_spmv(store, x + 1.0, checkpoint_dir=ckpt)


def test_wrong_x_shape(store):
    from repro.errors import FormatError

    with pytest.raises(FormatError):
        streamed_spmv(store, np.ones(store.ncols + 3))


def test_build_streaming_blocks(csr, x, tmp_path):
    """Block-iterator build: the full matrix never needs to exist."""
    cuts = [0, 17, 30, csr.nrows]

    def blocks():
        for lo, hi in zip(cuts, cuts[1:]):
            yield lo, hi, csr.row_slice(lo, hi)

    with ShardStore.build_streaming(
        blocks(), "csr", ncols=csr.ncols, storage="mmap",
        directory=str(tmp_path / "s"),
    ) as store:
        assert store.boundaries == cuts
        result = streamed_spmv(store, x)
        assert np.array_equal(result.y, csr.spmv(x))


def test_build_streaming_rejects_gaps(csr, tmp_path):
    def blocks():
        yield 0, 10, csr.row_slice(0, 10)
        yield 12, 20, csr.row_slice(12, 20)  # gap: rows 10..12 missing

    with pytest.raises(StorageError):
        ShardStore.build_streaming(
            blocks(), "csr", ncols=csr.ncols, storage="mmap",
            directory=str(tmp_path / "s"),
        )
