"""Buffer providers: packed layout, round-trips, CRC seals, attach."""

import numpy as np
import pytest

from repro.errors import IntegrityError, StorageError
from repro.storage import attach, make_provider
from repro.storage.provider import (
    FieldSpec,
    pack_layout,
    write_fields,
)

FIELDS = {
    "values": np.arange(7, dtype=np.float64),
    "col_ind": np.arange(7, dtype=np.int32),
    "ctl": b"\x01\x02\x03",
}


def make(kind, tmp_path):
    if kind == "mmap":
        return make_provider("mmap", directory=str(tmp_path))
    return make_provider(kind)


class TestPackLayout:
    def test_deterministic_and_aligned(self):
        specs, total = pack_layout(FIELDS)
        assert [s.name for s in specs] == sorted(FIELDS)  # name order
        for s in specs:
            assert s.offset % 8 == 0
        specs2, total2 = pack_layout(dict(reversed(list(FIELDS.items()))))
        assert specs == specs2 and total == total2

    def test_fields_do_not_overlap(self):
        specs, total = pack_layout(FIELDS)
        spans = sorted((s.offset, s.offset + s.nbytes) for s in specs)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end
        assert total >= spans[-1][1]

    def test_write_then_view(self):
        specs, total = pack_layout(FIELDS)
        buf = bytearray(total)
        write_fields(buf, specs, FIELDS)
        from repro.storage.provider import _views_from_buffer

        views = _views_from_buffer(buf, specs, verify=True, context="test")
        assert np.array_equal(views["values"], FIELDS["values"])
        assert np.array_equal(views["col_ind"], FIELDS["col_ind"])
        assert views["ctl"] == FIELDS["ctl"]

    def test_spec_dict_round_trip(self):
        specs, _ = pack_layout(FIELDS)
        for s in specs:
            assert FieldSpec.from_dict(s.as_dict()) == s


class TestProviders:
    @pytest.mark.parametrize("kind", ["mem", "shm", "mmap"])
    def test_store_resolve_round_trip(self, kind, tmp_path):
        provider = make(kind, tmp_path)
        try:
            handle = provider.store(0, FIELDS)
            assert handle["kind"] == kind
            views = provider.resolve(handle, verify=True)
            assert np.array_equal(views["values"], FIELDS["values"])
            assert views["ctl"] == FIELDS["ctl"]
        finally:
            provider.close()

    @pytest.mark.parametrize("kind", ["shm", "mmap"])
    def test_handle_attaches_without_provider(self, kind, tmp_path):
        """What a process-pool worker does: handle dict -> views."""
        provider = make(kind, tmp_path)
        try:
            handle = provider.store(3, FIELDS)
            views = attach(handle, verify=True)
            assert np.array_equal(views["col_ind"], FIELDS["col_ind"])
        finally:
            provider.close()

    def test_mem_handle_refuses_cross_process(self):
        provider = make_provider("mem")
        try:
            handle = provider.store(0, FIELDS)
            with pytest.raises(StorageError):
                attach(handle)
        finally:
            provider.close()

    def test_mem_tracks_resident_bytes(self):
        provider = make_provider("mem")
        try:
            provider.store(0, FIELDS)
            assert provider.resident_bytes > 0
            provider.free(0)
            assert provider.resident_bytes == 0
        finally:
            provider.close()

    def test_mmap_resident_is_zero(self, tmp_path):
        provider = make(("mmap"), tmp_path)
        try:
            provider.store(0, FIELDS)
            assert provider.resident_bytes == 0
            assert provider.stored_bytes > 0
        finally:
            provider.close()

    def test_poisoned_mmap_fails_crc(self, tmp_path):
        provider = make("mmap", tmp_path)
        try:
            handle = provider.store(0, FIELDS)
            with open(handle["path"], "r+b") as fh:
                fh.seek(handle["layout"][0]["offset"])
                fh.write(b"\xff\xff")
            with pytest.raises(IntegrityError):
                attach(handle, verify=True)
            attach(handle, verify=False)  # unverified attach still maps
        finally:
            provider.close()

    def test_store_replaces_previous_shard(self, tmp_path):
        provider = make("mmap", tmp_path)
        try:
            provider.store(0, FIELDS)
            first = provider.stored_bytes
            handle = provider.store(0, {"values": np.zeros(2)})
            assert provider.stored_bytes < first
            views = attach(handle)
            assert np.array_equal(views["values"], np.zeros(2))
        finally:
            provider.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError):
            make_provider("tape")
        with pytest.raises(StorageError):
            attach({"kind": "tape", "layout": []})

    def test_mmap_needs_directory(self):
        with pytest.raises(StorageError):
            make_provider("mmap")
