"""Field codec round-trips: take a matrix apart, rebuild it bit-exact."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.formats import CSRMatrix, convert
from repro.storage import CODEC_FORMATS, extract_fields, rebuild_matrix

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(40, 33, seed=5, quantize=8, empty_rows=True)
    )


@pytest.mark.parametrize("fmt", CODEC_FORMATS)
def test_round_trip_bit_identical(csr, fmt):
    original = convert(csr, fmt)
    fields, meta = extract_fields(original)
    rebuilt = rebuild_matrix(fields, meta)
    assert type(rebuilt) is type(original)
    assert rebuilt.shape == original.shape
    x = np.random.default_rng(6).random(csr.ncols)
    assert np.array_equal(rebuilt.spmv(x), original.spmv(x))


@pytest.mark.parametrize("fmt", CODEC_FORMATS)
def test_meta_is_json_safe(csr, fmt):
    import json

    _fields, meta = extract_fields(convert(csr, fmt))
    assert meta["format"] == fmt
    json.dumps(meta)  # no ndarray/bytes leaked into the metadata


def test_fields_cover_storage(csr):
    """Every stored byte of the matrix lands in some field."""
    original = convert(csr, "csr-du")
    fields, _meta = extract_fields(original)
    total = sum(
        v.nbytes if isinstance(v, np.ndarray) else len(v)
        for v in fields.values()
    )
    assert total >= original.storage().total_bytes


def test_unsupported_format_raises(csr):
    class Odd:
        pass

    with pytest.raises(StorageError):
        extract_fields(Odd())
    with pytest.raises(StorageError):
        rebuild_matrix({}, {"format": "no-such-format", "nrows": 1, "ncols": 1})
