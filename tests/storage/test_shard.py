"""ShardStore: build/attach identity, manifests, budgets, rebuilds."""

import json
import os

import numpy as np
import pytest

from repro.compress.encode_cache import ConvertCache
from repro.errors import IntegrityError, StorageError
from repro.formats import CSRMatrix, convert
from repro.storage import CODEC_FORMATS, MANIFEST_NAME, ShardStore, attach_shard

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(48, 37, seed=9, quantize=8, empty_rows=True)
    )


@pytest.fixture(scope="module")
def x(csr):
    return np.random.default_rng(10).random(csr.ncols)


def shard_product(store, x):
    """y assembled shard by shard (each shard owns its row range)."""
    y = np.empty(store.nrows)
    for i in range(store.nshards):
        lo, hi = store.rows_of(i)
        store.attach(i).spmv(x, out=y[lo:hi])
    return y


class TestBuild:
    @pytest.mark.parametrize("fmt", CODEC_FORMATS)
    @pytest.mark.parametrize("storage", ["mem", "shm", "mmap"])
    def test_sharded_product_matches_whole(self, csr, x, fmt, storage, tmp_path):
        """Per-shard encode + multiply == whole-matrix encode at the same
        row cuts (rows never split mid-shard, so row order is preserved)."""
        kwargs = {"directory": str(tmp_path)} if storage == "mmap" else {}
        with ShardStore.build(csr, fmt, 3, storage=storage, **kwargs) as store:
            y = shard_product(store, x)
            y_ref = np.empty(csr.nrows)
            for i in range(store.nshards):
                lo, hi = store.rows_of(i)
                convert(csr.row_slice(lo, hi), fmt).spmv(x, out=y_ref[lo:hi])
            assert np.array_equal(y, y_ref)
            assert np.allclose(y, convert(csr, fmt).spmv(x))

    def test_explicit_boundaries(self, csr, x):
        bounds = [0, 7, 30, csr.nrows]
        with ShardStore.build(csr, "csr", 3, boundaries=bounds) as store:
            assert store.boundaries == bounds
            assert np.allclose(shard_product(store, x), csr.spmv(x))

    def test_bad_boundaries_rejected(self, csr):
        with pytest.raises(StorageError):
            ShardStore.build(csr, "csr", 3, boundaries=[0, csr.nrows])

    def test_attach_spec_is_picklable(self, csr, x):
        import pickle

        with ShardStore.build(csr, "csr", 2, storage="shm") as store:
            spec = pickle.loads(pickle.dumps(store.attach_spec(1)))
            lo, hi = store.rows_of(1)
            m = attach_shard(spec)
            assert np.array_equal(m.spmv(x), csr.row_slice(lo, hi).spmv(x))

    def test_shared_encodes_with_cache(self, csr):
        cache = ConvertCache(capacity=16)
        with ShardStore.build(csr, "csr-du", 2, convert_cache=cache):
            pass
        first_misses = cache.misses
        with ShardStore.build(csr, "csr-du", 2, convert_cache=cache):
            pass
        assert cache.misses == first_misses  # second build was all hits


class TestBudget:
    def test_mem_build_over_budget_raises(self, csr):
        with pytest.raises(StorageError):
            ShardStore.build(csr, "csr", 4, storage="mem", budget_bytes=64)

    def test_mmap_build_passes_same_budget(self, csr, x, tmp_path):
        with ShardStore.build(
            csr, "csr", 4, storage="mmap", directory=str(tmp_path),
            budget_bytes=64,
        ) as store:
            assert store.resident_bytes == 0
            assert store.stored_bytes > 64
            assert np.allclose(shard_product(store, x), csr.spmv(x))


class TestManifest:
    def test_reopen_matches(self, csr, x, tmp_path):
        with ShardStore.build(
            csr, "csr-vi", 3, storage="mmap", directory=str(tmp_path)
        ) as store:
            y_first = shard_product(store, x)
            store.close(unlink=False)
        with ShardStore.open(str(tmp_path)) as reopened:
            assert reopened.format_name == "csr-vi"
            assert reopened.boundaries == store.boundaries
            assert np.array_equal(shard_product(reopened, x), y_first)

    def test_tampered_manifest_fails_seal(self, csr, tmp_path):
        store = ShardStore.build(
            csr, "csr", 2, storage="mmap", directory=str(tmp_path)
        )
        store.close(unlink=False)
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "r", encoding="ascii") as fh:
            doc = json.load(fh)
        doc["shards"][0]["rows"][1] += 1
        with open(path, "w", encoding="ascii") as fh:
            json.dump(doc, fh)
        with pytest.raises(IntegrityError):
            ShardStore.open(str(tmp_path))

    def test_opened_store_cannot_rebuild(self, csr, tmp_path):
        store = ShardStore.build(
            csr, "csr", 2, storage="mmap", directory=str(tmp_path)
        )
        store.close(unlink=False)
        with ShardStore.open(str(tmp_path)) as reopened:
            with pytest.raises(StorageError):
                reopened.rebuild_shard(0)


class TestRebuild:
    def test_poisoned_shard_caught_then_rebuilt(self, csr, x, tmp_path):
        """The retry contract: corrupt file -> IntegrityError at attach,
        rebuild_shard bumps the generation and restores clean bytes."""
        with ShardStore.build(
            csr, "csr", 3, storage="mmap", directory=str(tmp_path)
        ) as store:
            handle = store.shards[1]["handle"]
            with open(handle["path"], "r+b") as fh:
                fh.seek(handle["layout"][0]["offset"])
                fh.write(b"\xee\xee\xee")
            with pytest.raises(IntegrityError):
                store.attach(1)
            spec = store.rebuild_shard(1)
            assert spec["generation"] == 1
            assert np.allclose(shard_product(store, x), csr.spmv(x))

    def test_closed_store_refuses(self, csr):
        store = ShardStore.build(csr, "csr", 2)
        store.close()
        with pytest.raises(StorageError):
            store.attach(0)
