"""Real-crash resume: SIGKILL inside the torn-checkpoint window.

``streamed_spmv`` flushes the y memmap *before* rewriting
``progress.json``, so a crash between the two leaves y one shard ahead
of the recorded progress.  That ordering makes the torn state safe:
resume replays the shard whose checkpoint was torn (idempotent — the
shard's rows are simply rewritten) instead of skipping work whose
y-partial never landed.  These tests kill a real child process inside
that window via the ``stream.checkpoint`` chaos site and verify the
resume contract end to end.
"""

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.errors import StorageError
from repro.formats import CSRMatrix
from repro.storage import ShardStore, streamed_spmv
from repro.storage.stream import PROGRESS_NAME

from tests.conftest import random_sparse_dense

NSHARDS = 3
X_SEED = 19

_CHILD_SCRIPT = """
import numpy as np
from repro.resilience import chaos
from repro.storage.shard import ShardStore
from repro.storage.stream import streamed_spmv

store = ShardStore.open({store_dir!r})
x = np.random.default_rng({x_seed}).random(store.ncols)
chaos.arm("stream.checkpoint", "kill", match={{"shard": 1}})
streamed_spmv(store, x, checkpoint_dir={ckpt_dir!r})
raise SystemExit("chaos kill did not fire")
"""


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(random_sparse_dense(60, 60, seed=37))


@pytest.fixture()
def torn(csr, tmp_path):
    """Run a child to the SIGKILL and hand back the torn directories."""
    store_dir = str(tmp_path / "store")
    ckpt_dir = str(tmp_path / "ckpt")
    os.makedirs(store_dir)
    build = ShardStore.build(
        csr, "csr", NSHARDS, storage="mmap", directory=store_dir
    )
    build.save_manifest()
    build.close(unlink=False)
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD_SCRIPT.format(
                store_dir=store_dir, ckpt_dir=ckpt_dir, x_seed=X_SEED
            ),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"child exited {proc.returncode}, wanted -SIGKILL; "
        f"stderr: {proc.stderr[-500:]}"
    )
    return store_dir, ckpt_dir


def test_torn_window_leaves_progress_behind_y(torn):
    """The kill landed after y's flush, before the progress rewrite."""
    _, ckpt_dir = torn
    with open(os.path.join(ckpt_dir, PROGRESS_NAME), encoding="ascii") as fh:
        progress = json.load(fh)
    assert progress["shards_done"] == 1  # shard 1's y rows are ahead


def test_resume_is_bit_identical(torn, csr):
    store_dir, ckpt_dir = torn
    x = np.random.default_rng(X_SEED).random(csr.ncols)
    store = ShardStore.open(store_dir)
    try:
        result = streamed_spmv(store, x, checkpoint_dir=ckpt_dir)
        # The torn shard is replayed, not skipped.
        assert result.resumed_from == 1
        assert result.shards_done == NSHARDS - 1
        assert np.array_equal(np.asarray(result.y), csr.spmv(x))
    finally:
        store.close(unlink=False)


def test_resume_validates_the_fingerprint(torn, csr):
    """A torn checkpoint for one x must not seed a run with another."""
    store_dir, ckpt_dir = torn
    x = np.random.default_rng(X_SEED).random(csr.ncols)
    store = ShardStore.open(store_dir)
    try:
        with pytest.raises(StorageError):
            streamed_spmv(store, x + 1.0, checkpoint_dir=ckpt_dir)
        # The refusal left the checkpoint intact: the rightful x still
        # resumes bit-identically afterwards.
        result = streamed_spmv(store, x, checkpoint_dir=ckpt_dir)
        assert result.resumed_from == 1
        assert np.array_equal(np.asarray(result.y), csr.spmv(x))
    finally:
        store.close(unlink=False)
