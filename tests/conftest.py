"""Shared fixtures: the paper's example matrix and random-matrix factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix

#: The 6x6 example matrix of the paper's Fig. 1 (also Table I, Figs 4/5).
PAPER_DENSE = np.array(
    [
        [5.4, 1.1, 0.0, 0.0, 0.0, 0.0],
        [0.0, 6.3, 0.0, 7.7, 0.0, 8.8],
        [0.0, 0.0, 1.1, 0.0, 0.0, 0.0],
        [0.0, 0.0, 2.9, 0.0, 3.7, 2.9],
        [9.0, 0.0, 0.0, 1.1, 4.5, 0.0],
        [1.1, 0.0, 2.9, 3.7, 0.0, 1.1],
    ]
)


@pytest.fixture
def paper_matrix() -> CSRMatrix:
    """The Fig. 1 matrix as CSR."""
    return CSRMatrix.from_dense(PAPER_DENSE)


@pytest.fixture
def paper_dense() -> np.ndarray:
    return PAPER_DENSE.copy()


def random_sparse_dense(
    nrows: int,
    ncols: int,
    density: float = 0.15,
    seed: int = 0,
    *,
    quantize: int | None = None,
    empty_rows: bool = False,
) -> np.ndarray:
    """A random dense array with sparse structure, for format tests.

    ``quantize`` limits distinct values (CSR-VI scenarios);
    ``empty_rows`` zeroes out a band of rows entirely.
    """
    rng = np.random.default_rng(seed)
    mask = rng.random((nrows, ncols)) < density
    vals = rng.random((nrows, ncols)) + 0.5
    if quantize:
        vals = np.round(vals * quantize) / quantize
    dense = np.where(mask, vals, 0.0)
    if empty_rows and nrows >= 4:
        dense[nrows // 4 : nrows // 2] = 0.0
    return dense


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
