"""Tests for the experiment harness."""

import pytest

from repro.bench.harness import (
    SPEEDUP_THREADS,
    TABLE2_CONFIGS,
    ExperimentConfig,
    aggregate,
    count_slowdowns,
    run_format_matrix,
    run_set,
)
from repro.errors import ReproError
from repro.matrices.collection import realize

SCALE = 1 / 64


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=SCALE)


@pytest.fixture(scope="module")
def matrix():
    return realize(47, scale=SCALE)


class TestRunFormatMatrix:
    def test_model_clock(self, matrix, config):
        res = run_format_matrix(matrix, "csr", config, matrix_id=47)
        assert res.matrix_id == 47
        assert set(res.times) == set(TABLE2_CONFIGS)
        assert all(t > 0 for t in res.times.values())
        assert all(b in ("compute", "core-bw", "die-bw", "l2-bw", "fsb", "mem")
                   for b in res.bounds.values())

    def test_size_reduction_sign(self, matrix, config):
        du = run_format_matrix(matrix, "csr-du", config)
        assert 0.0 < du.size_reduction < 0.5
        csr = run_format_matrix(matrix, "csr", config)
        assert csr.size_reduction == 0.0

    def test_speedup_vs(self, matrix, config):
        csr = run_format_matrix(matrix, "csr", config)
        vi = run_format_matrix(matrix, "csr-vi", config)
        key = (8, "close")
        sp = vi.speedup_vs(csr, key)
        assert sp == pytest.approx(csr.times[key] / vi.times[key])

    def test_scaling(self, matrix, config):
        csr = run_format_matrix(matrix, "csr", config)
        assert csr.scaling((1, "close")) == 1.0
        assert csr.scaling((8, "close")) > 0.5

    def test_real_clock_serial(self, matrix):
        config = ExperimentConfig(scale=SCALE, clock="real", real_calls=2)
        res = run_format_matrix(
            matrix, "csr", config, configs=((1, "close"),)
        )
        assert res.times[(1, "close")] > 0
        assert res.bounds[(1, "close")] == "wallclock"

    def test_real_clock_multiworker_uses_executor(self, matrix):
        config = ExperimentConfig(scale=SCALE, clock="real", real_calls=1)
        res = run_format_matrix(
            matrix, "csr", config, configs=((2, "close"),)
        )
        assert res.times[(2, "close")] > 0
        assert res.bounds[(2, "close")] == "wallclock"

    def test_unknown_clock(self, matrix):
        config = ExperimentConfig(scale=SCALE, clock="sundial")
        with pytest.raises(ReproError, match="clock"):
            run_format_matrix(matrix, "csr", config)


class TestRunSet:
    def test_structure(self, config):
        out = run_set((41, 47), ("csr", "csr-vi"), config)
        assert set(out) == {41, 47}
        assert set(out[41]) == {"csr", "csr-vi"}

    def test_speedup_threads_constant(self):
        assert SPEEDUP_THREADS == (1, 2, 4, 8)

    def test_csr_baseline_converted_once_per_matrix(self, config, monkeypatch):
        """run_set encodes CSR once; the csr cell is a cache hit."""
        import repro.formats.conversions as conv_mod

        real_convert = conv_mod.convert
        csr_targets = []

        def counting_convert(matrix, name, **kwargs):
            if name == "csr":
                csr_targets.append(name)
            return real_convert(matrix, name, **kwargs)

        monkeypatch.setattr(conv_mod, "convert", counting_convert)
        out = run_set((47,), ("csr", "csr-du", "csr-vi"), config)
        # The per-matrix conversion cache serves the "csr" cell from the
        # baseline's entry, so the underlying conversion runs once (the
        # pre-cache code converted twice, and the pre-PR-1 code once per
        # cell).
        assert csr_targets.count("csr") == 1
        assert out[47]["csr-du"].csr_storage == out[47]["csr"].storage

    def test_explicit_csr_storage_is_used(self, matrix, config):
        baseline = run_format_matrix(matrix, "csr", config).storage
        res = run_format_matrix(
            matrix, "csr-du", config, csr_storage=baseline
        )
        assert res.csr_storage == baseline
        assert res.size_reduction > 0.0


class TestAggregation:
    def test_aggregate(self):
        assert aggregate([1.0, 2.0, 3.0]) == (2.0, 3.0, 1.0)

    def test_aggregate_empty(self):
        with pytest.raises(ReproError):
            aggregate([])

    def test_count_slowdowns(self):
        """The paper's < 0.98 criterion for 'non-negligible slowdown'."""
        assert count_slowdowns([1.1, 0.979, 0.98, 0.5]) == 2
