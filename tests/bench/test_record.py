"""Tests for structured experiment recording."""

import json

import pytest

from repro.bench.experiments import ablation_du_vi, fig8, table2, table4
from repro.bench.harness import ExperimentConfig
from repro.bench.record import load_run, record_run, result_to_dict

SCALE = 1 / 64


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=SCALE)


class TestResultToDict:
    def test_table2(self, config):
        d = result_to_dict(table2(config, limit=2))
        assert "serial_mflops" in d
        assert "MS" in d["serial_mflops"]
        json.dumps(d)  # round-trippable

    def test_speedup_table(self, config):
        d = result_to_dict(table4(config, limit=2))
        assert d["format_name"] == "csr-vi"
        json.dumps(d)

    def test_fig(self, config):
        d = result_to_dict(fig8(config, limit=2))
        assert len(d["series"]) == 2
        json.dumps(d)

    def test_ablation_rows(self, config):
        d = result_to_dict(ablation_du_vi(config, ids=(47,)))
        assert len(d["rows"]) == 4
        json.dumps(d)

    def test_tuple_keys_flattened(self, config):
        d = result_to_dict(table2(config, limit=2))
        assert "2|close" in d["speedups"]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict(object())


class TestRecordRun:
    def test_round_trip(self, config, tmp_path):
        path = tmp_path / "run.json"
        record_run({"table2": table2(config, limit=2)}, config, path)
        loaded = load_run(path)
        assert loaded["scale"] == SCALE
        assert "cost_model" in loaded
        assert "per_element" in loaded["cost_model"]
        assert loaded["machine_spec"]["l2_bytes"] > 0
        assert "table2" in loaded["experiments"]

    def test_comparable_across_runs(self, config, tmp_path):
        """Two identical runs must serialize identically (determinism)."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        record_run({"t": table2(config, limit=2)}, config, a)
        record_run({"t": table2(config, limit=2)}, config, b)
        assert a.read_text() == b.read_text()


class TestCLIJson:
    def test_json_flag(self, tmp_path, capsys):
        from repro.bench.cli import main

        path = tmp_path / "cli.json"
        assert (
            main(
                [
                    "table3",
                    "--scale",
                    "0.015625",
                    "--limit",
                    "2",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        loaded = load_run(path)
        assert "table3" in loaded["experiments"]
