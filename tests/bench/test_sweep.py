"""Tests for the sensitivity sweeps."""

import pytest

from repro.bench.sweep import (
    bandwidth_sweep,
    cache_sweep,
    format_sweep_table,
    thread_sweep,
)
from repro.machine.topology import clovertown_8core
from repro.matrices.collection import realize

SCALE = 1 / 64


@pytest.fixture(scope="module")
def matrix():
    return realize(69, scale=SCALE)  # ML_vi: memory bound, high ttu


@pytest.fixture(scope="module")
def machine():
    return clovertown_8core().scaled(SCALE)


class TestBandwidthSweep:
    def test_compression_crossover(self, matrix, machine):
        """Bandwidth-starved: compression wins big; bandwidth-rich: the
        advantage shrinks toward (or below) parity -- the paper's whole
        premise as a curve."""
        points = bandwidth_sweep(
            matrix, factors=(0.25, 64.0), machine=machine
        )
        by = {(p.knob_value, p.format_name): p.time_s for p in points}
        gain_starved = by[(0.25, "csr")] / by[(0.25, "csr-vi")]
        gain_rich = by[(64.0, "csr")] / by[(64.0, "csr-vi")]
        assert gain_starved > gain_rich
        assert gain_starved > 1.2
        # With abundant bandwidth the extra decode cycles dominate:
        # compression at best breaks even.
        assert gain_rich < 1.05

    def test_more_bandwidth_never_slower(self, matrix, machine):
        points = bandwidth_sweep(
            matrix, factors=(0.5, 1.0, 2.0), formats=("csr",), machine=machine
        )
        times = [p.time_s for p in sorted(points, key=lambda p: p.knob_value)]
        assert times == sorted(times, reverse=True)


class TestCacheSweep:
    def test_regime_migration(self, matrix, machine):
        """Growing L2 moves the matrix from streaming to resident."""
        points = cache_sweep(
            matrix, factors=(0.25, 16.0), threads=8, machine=machine
        )
        small, big = (
            p for p in sorted(points, key=lambda p: p.knob_value)
        )
        assert big.time_s <= small.time_s
        assert small.bound in ("mem", "fsb", "die-bw", "core-bw")

    def test_monotone(self, matrix, machine):
        points = cache_sweep(
            matrix, factors=(0.5, 1.0, 2.0, 4.0), machine=machine
        )
        times = [p.time_s for p in sorted(points, key=lambda p: p.knob_value)]
        assert all(b <= a + 1e-15 for a, b in zip(times, times[1:]))


class TestThreadSweep:
    def test_grid_complete(self, matrix, machine):
        points = thread_sweep(
            matrix, thread_counts=(1, 4), formats=("csr", "csr-du"), machine=machine
        )
        assert len(points) == 4
        assert {(p.format_name, p.threads) for p in points} == {
            ("csr", 1),
            ("csr", 4),
            ("csr-du", 1),
            ("csr-du", 4),
        }


class TestFormatting:
    def test_table(self, matrix, machine):
        points = thread_sweep(
            matrix, thread_counts=(1,), formats=("csr",), machine=machine
        )
        text = format_sweep_table(points)
        assert "threads" in text
        assert "csr" in text
