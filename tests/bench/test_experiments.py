"""Tests for the per-table/figure experiment drivers (tiny scale)."""

import pytest

from repro.bench.experiments import (
    ablation_dcsr,
    ablation_du_vi,
    ablation_index_width,
    ablation_placement,
    ablation_unit_policy,
    fig7,
    fig8,
    table2,
    table3,
    table4,
)
from repro.bench.harness import ExperimentConfig

SCALE = 1 / 64
LIMIT = 3


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=SCALE)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, config):
        return table2(config, limit=LIMIT)

    def test_sets_present(self, result):
        assert set(result.serial_mflops) == {"MS", "ML", "M0"}
        assert len(result.ids_used["MS"]) == LIMIT
        assert len(result.ids_used["ML"]) == LIMIT

    def test_serial_band(self, result):
        avg, mx, mn = result.serial_mflops["M0"]
        assert 100 < mn <= avg <= mx < 2000

    def test_speedup_rows(self, result):
        assert (8, "close") in result.speedups
        avg_ms = result.speedups[(8, "close")]["MS"][0]
        avg_ml = result.speedups[(8, "close")]["ML"][0]
        # The paper's headline: cacheable matrices scale much better.
        assert avg_ms > avg_ml

    def test_ml_bounded_scaling(self, result):
        """Memory-bound matrices can't scale past the bus ratio."""
        avg_ml = result.speedups[(8, "close")]["ML"][0]
        assert 1.0 < avg_ml < 4.0


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, config):
        return table3(config, limit=LIMIT)

    def test_structure(self, result):
        assert result.format_name == "csr-du"
        assert set(result.rows) == {1, 2, 4, 8}
        assert set(result.rows[1]) == {"MS", "ML", "M0"}

    def test_multithreaded_gain_ml(self, result):
        """Table III: CSR-DU helps memory-bound matrices at 8 threads."""
        avg = result.rows[8]["ML"][0]
        assert avg > 1.0

    def test_serial_near_parity(self, result):
        avg = result.rows[1]["ML"][0]
        assert 0.8 < avg < 1.3

    def test_slowdown_counts_in_range(self, result):
        for per_set in result.rows.values():
            for (_, _, _, slow) in per_set.values():
                assert 0 <= slow <= LIMIT * 2


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, config):
        return table4(config, limit=LIMIT)

    def test_structure(self, result):
        assert result.format_name == "csr-vi"
        assert set(result.rows[8]) == {"MS_vi", "ML_vi", "M0_vi"}

    def test_vi_gains_exceed_du_on_ml(self, config, result):
        """Values are 2/3 of the working set: CSR-VI's 8-thread gain on
        memory-bound high-ttu matrices beats CSR-DU's (paper Secs IV/V)."""
        du = table3(config, limit=LIMIT)
        assert result.rows[8]["ML_vi"][0] > du.rows[8]["ML"][0]


class TestFigures:
    def test_fig7_series(self, config):
        res = fig7(config, limit=4)
        assert res.format_name == "csr-du"
        assert len(res.series) == 4
        # Sorted ascending by 8-thread speedup, paper-style.
        sp = [s.compressed_speedups[8] for s in res.series]
        assert sp == sorted(sp)
        for s in res.series:
            assert set(s.compressed_speedups) == {1, 2, 4, 8}
            assert -0.2 < s.size_reduction < 0.9

    def test_fig8_series(self, config):
        res = fig8(config, limit=3)
        assert res.format_name == "csr-vi"
        assert len(res.series) == 3
        for s in res.series:
            assert s.size_reduction > 0  # ttu > 5 guarantees value shrink


class TestAblations:
    def test_unit_policy(self, config):
        rows = ablation_unit_policy(config, ids=(55,))
        labels = {r.label for r in rows}
        assert labels == {"csr-du/greedy", "csr-du/aligned"}
        greedy = next(r for r in rows if r.label.endswith("greedy"))
        aligned = next(r for r in rows if r.label.endswith("aligned"))
        assert greedy.index_bytes <= aligned.index_bytes

    def test_dcsr(self, config):
        """Section III-B: on regular matrices DCSR is competitive
        (even slightly ahead); on pattern-diverse matrices its
        per-command dispatch penalty puts CSR-DU ahead."""
        regular = {r.label: r for r in ablation_dcsr(config, ids=(55,))}
        assert regular["dcsr"].index_bytes < regular["csr"].index_bytes
        assert regular["dcsr"].time_1t < regular["csr"].time_1t * 1.3
        diverse = {r.label: r for r in ablation_dcsr(config, ids=(69,))}
        assert diverse["dcsr"].time_1t >= diverse["csr-du"].time_1t

    def test_index_width(self, config):
        rows = ablation_index_width(config, ids=(41,))
        by_label = {r.label: r for r in rows}
        if "csr/16-bit" in by_label:
            assert (
                by_label["csr/16-bit"].index_bytes
                < by_label["csr/32-bit"].index_bytes
            )

    def test_placement(self, config):
        out = ablation_placement(config, ids=(55,))
        assert (55, 2, "close") in out
        assert out[(55, 2, "spread")] <= out[(55, 2, "close")] * 1.05

    def test_du_vi_composes(self, config):
        rows = ablation_du_vi(config, ids=(47,))
        by_label = {r.label: r for r in rows}
        duvi = by_label["csr-du-vi"]
        assert duvi.total_bytes < by_label["csr-du"].total_bytes
        assert duvi.total_bytes < by_label["csr-vi"].total_bytes
