"""Tier-1 wiring of tools/smoke_trace.py: traced bench run + schema check."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro import telemetry
from repro.telemetry.export import read_jsonl

_TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "smoke_trace.py"


@pytest.fixture(scope="module")
def smoke_trace():
    spec = importlib.util.spec_from_file_location("smoke_trace", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSmokeTrace:
    def test_traced_table2_validates(self, smoke_trace, tmp_path):
        path = str(tmp_path / "t.jsonl")
        assert smoke_trace.run(scale=0.015625, limit=2, path=path) == 0
        events = read_jsonl(path)
        names = {ev["name"] for ev in events}
        # The acceptance signals: per-matrix spans, CSR-DU width
        # histograms, per-thread nnz counters.
        assert "bench.matrix" in names
        assert "encode.csr_du.units" in names
        assert "partition.nnz" in names
        matrix_ids = {
            ev["attrs"]["matrix_id"]
            for ev in events
            if ev["name"] == "bench.matrix"
        }
        assert len(matrix_ids) >= 2

    def test_collector_restored_after_run(self, smoke_trace, tmp_path):
        before = telemetry.get_collector()
        smoke_trace.run(scale=0.015625, limit=1, path=str(tmp_path / "t.jsonl"))
        assert telemetry.get_collector() is before

    def test_cli_entry(self, smoke_trace, tmp_path, capsys):
        rc = smoke_trace.main(
            ["--scale", "0.015625", "--limit", "1", "--trace", str(tmp_path / "t.jsonl")]
        )
        assert rc == 0
        assert "all valid" in capsys.readouterr().out
