"""The perf regression gate: noise bands, snapshots, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.bench.baseline import (
    DEFAULT_MAX_RUNS,
    check_run,
    load_history,
    main,
    new_history,
    snapshot,
    validate_history,
)


def run_with(time_value: float, extra: float = 50.0) -> dict:
    return {
        "experiments": {
            "table2": {"speedups": {"8|close": {"MS": [time_value, 2.0]}}},
            "fig7": {"series": [extra]},
        }
    }


class TestSnapshotAndCheck:
    def test_empty_history_flags_nothing(self):
        assert check_run(new_history(), run_with(1.0)) == []

    def test_clean_rerun_passes(self):
        history = new_history()
        for t in (1.00, 1.02, 0.98):
            snapshot(history, run_with(t))
        assert check_run(history, run_with(1.01)) == []

    def test_injected_regression_flagged(self):
        history = new_history()
        for t in (1.00, 1.02, 0.98):
            snapshot(history, run_with(t))
        regs = check_run(history, run_with(1.6))
        assert len(regs) == 1
        assert "MS[0]" in regs[0].path
        assert regs[0].value == pytest.approx(1.6)
        assert regs[0].mean == pytest.approx(1.0)

    def test_noisy_cell_gets_wider_band(self):
        """A cell with 20% historical spread tolerates a move the 2%
        fixed tolerance alone would flag."""
        history = new_history()
        for t in (0.8, 1.2, 1.0, 0.9, 1.1):
            snapshot(history, run_with(t))
        assert check_run(history, run_with(1.25), tolerance=0.02, k=3.0) == []
        assert check_run(history, run_with(2.0), tolerance=0.02, k=3.0)

    def test_exact_cell_zero_stdev(self):
        history = new_history()
        for _ in range(3):
            snapshot(history, run_with(1.0))
        assert check_run(history, run_with(1.0)) == []
        assert check_run(history, run_with(1.05))  # beyond 2% of mean

    def test_window_bounded(self):
        history = new_history()
        for i in range(3 * DEFAULT_MAX_RUNS):
            snapshot(history, run_with(1.0 + i * 1e-9))
        assert all(
            len(v) == DEFAULT_MAX_RUNS for v in history["cells"].values()
        )

    def test_new_cells_ignored_until_snapshotted(self):
        history = new_history()
        snapshot(history, run_with(1.0))
        grown = run_with(1.0)
        grown["experiments"]["table9"] = {"x": 99.0}
        assert check_run(history, grown) == []


class TestValidation:
    def test_fresh_history_valid(self):
        assert validate_history(new_history()) == []

    def test_bad_schema_and_cells(self):
        assert validate_history({"schema": 99, "cells": {}})
        assert validate_history({"schema": 1, "cells": {"p": []}})
        assert validate_history({"schema": 1, "cells": {"p": [1, "x"]}})
        assert validate_history({"schema": 1, "cells": "nope"})

    def test_load_missing_is_empty(self, tmp_path):
        h = load_history(tmp_path / "absent.json")
        assert h["cells"] == {}

    def test_load_invalid_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 99, "cells": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_history(p)


class TestCLI:
    """Acceptance: exit 1 on injected regression, 0 on clean rerun."""

    @pytest.fixture
    def paths(self, tmp_path):
        run = tmp_path / "run.json"
        run.write_text(json.dumps(run_with(1.0)))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(run_with(1.7)))
        return {"run": str(run), "bad": str(bad), "hist": str(tmp_path / "h.json")}

    def test_gate_lifecycle(self, paths, capsys):
        # First snapshot: nothing to check yet, history created.
        assert main([paths["run"], "--history", paths["hist"], "--snapshot"]) == 0
        # Clean rerun passes.
        assert main([paths["run"], "--history", paths["hist"]]) == 0
        # Injected regression fails and is not snapshotted.
        assert main([paths["bad"], "--history", paths["hist"], "--snapshot"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "not snapshotting" in out
        # History unchanged by the regressed run: clean still passes.
        assert main([paths["run"], "--history", paths["hist"]]) == 0

    def test_check_schema_self_test(self, paths, capsys):
        assert main(["--check-schema", "--history", paths["hist"]]) == 0
        assert "self-test OK" in capsys.readouterr().out

    def test_check_schema_rejects_corrupt_history(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        hist.write_text(json.dumps({"schema": 0, "cells": {}}))
        assert main(["--check-schema", "--history", str(hist)]) == 1

    def test_run_required_without_check_schema(self):
        with pytest.raises(SystemExit):
            main(["--history", "x.json"])
