"""Tests for the ASCII report formatters."""

import pytest

from repro.bench.experiments import fig8, table2, table3, table4
from repro.bench.harness import ExperimentConfig
from repro.bench.report import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_fig_series,
    format_speedup_table,
    format_table2,
)

SCALE = 1 / 64


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=SCALE)


class TestPaperConstants:
    """The embedded paper values are the cross-check baseline -- pin a
    few cells straight from the PDF tables."""

    def test_table2_cells(self):
        assert PAPER_TABLE2["serial"]["MS"] == (619.4, 886.6, 465.2)
        assert PAPER_TABLE2[(8, "close")]["ML"] == (2.12, 6.30, 1.58)

    def test_table3_cells(self):
        assert PAPER_TABLE3[8]["ML"] == (1.20, 1.82, 0.99, 0)
        assert PAPER_TABLE3[1]["MS"] == (1.02, 1.12, 0.80, 5)

    def test_table4_cells(self):
        assert PAPER_TABLE4[8]["ML_vi"] == (1.59, 2.50, 0.99, 0)
        assert PAPER_TABLE4[2]["M0_vi"] == (1.35,)


class TestFormatting:
    def test_table2_output(self, config):
        text = format_table2(table2(config, limit=2))
        assert "Table II" in text
        assert "MFLOPS" in text
        assert "2 (1xL2)" in text and "2 (2xL2)" in text
        assert "paper" in text

    def test_table2_without_paper(self, config):
        text = format_table2(table2(config, limit=2), with_paper=False)
        assert "paper" not in text

    def test_table3_output(self, config):
        text = format_speedup_table(table3(config, limit=2))
        assert "Table III" in text
        assert "<0.98" in text

    def test_table4_output(self, config):
        text = format_speedup_table(table4(config, limit=2))
        assert "Table IV" in text
        assert "MS_vi" in text

    def test_fig_output(self, config):
        res = fig8(config, limit=2)
        text = format_fig_series(res)
        assert "Figure 8" in text
        for s in res.series:
            assert s.name in text

    def test_fig_max_rows(self, config):
        res = fig8(config, limit=3)
        text = format_fig_series(res, max_rows=1)
        assert sum(1 for line in text.splitlines() if line.startswith("syn")) == 1
