"""CLI smoke tests."""

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_table2(self, capsys):
        assert main(["table2", "--scale", "0.015625", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_multiple_experiments(self, capsys):
        assert (
            main(["table3", "table4", "--scale", "0.015625", "--limit", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Table III" in out and "Table IV" in out

    def test_fig_with_limit(self, capsys):
        assert main(["fig8", "--scale", "0.015625", "--limit", "2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.txt"
        assert (
            main(
                [
                    "table2",
                    "--scale",
                    "0.015625",
                    "--limit",
                    "2",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        assert "Table II" in out_file.read_text()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["tableX", "--scale", "0.015625"])
