"""CLI smoke tests."""

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_table2(self, capsys):
        assert main(["table2", "--scale", "0.015625", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_multiple_experiments(self, capsys):
        assert (
            main(["table3", "table4", "--scale", "0.015625", "--limit", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Table III" in out and "Table IV" in out

    def test_fig_with_limit(self, capsys):
        assert main(["fig8", "--scale", "0.015625", "--limit", "2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.txt"
        assert (
            main(
                [
                    "table2",
                    "--scale",
                    "0.015625",
                    "--limit",
                    "2",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        assert "Table II" in out_file.read_text()

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["tableX", "--scale", "0.015625"])


class TestTelemetryCLI:
    def test_trace_writes_jsonl(self, tmp_path, capsys):
        from repro import telemetry
        from repro.telemetry.export import read_jsonl, validate_event

        trace = tmp_path / "t.jsonl"
        rc = main(
            ["table2", "--scale", "0.015625", "--limit", "2", "--trace", str(trace)]
        )
        assert rc == 0
        assert "[telemetry] wrote" in capsys.readouterr().out
        events = read_jsonl(str(trace))
        assert events
        for ev in events:
            validate_event(ev)
        # The CLI scopes its collector: disabled again afterwards.
        assert telemetry.get_collector() is None

    def test_chrome_trace_writes_json(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        rc = main(
            [
                "table2",
                "--scale",
                "0.015625",
                "--limit",
                "1",
                "--chrome-trace",
                str(trace),
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]

    def test_profile_prints_summary(self, capsys):
        rc = main(["profile", "table2", "--scale", "0.015625", "--limit", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "top spans" in out
        assert "bench.matrix" in out

    def test_profile_without_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["profile"])

class TestReportHTML:
    def test_writes_self_contained_report(self, tmp_path, capsys):
        from html.parser import HTMLParser

        out = tmp_path / "r.html"
        rc = main(
            [
                "report-html",
                "table2",
                "--scale",
                "0.015625",
                "--limit",
                "1",
                "--html",
                str(out),
            ]
        )
        assert rc == 0
        assert "[dashboard] wrote" in capsys.readouterr().out
        text = out.read_text()
        parser = HTMLParser()
        parser.feed(text)  # must not blow up
        assert "Attribution" in text
        assert "<script" not in text and "<link" not in text

    def test_baseline_deltas_section(self, tmp_path, capsys):
        run = tmp_path / "run.json"
        rc = main(
            [
                "table2",
                "--scale",
                "0.015625",
                "--limit",
                "1",
                "--json",
                str(run),
            ]
        )
        assert rc == 0
        out = tmp_path / "r.html"
        rc = main(
            [
                "report-html",
                "table2",
                "--scale",
                "0.015625",
                "--limit",
                "1",
                "--html",
                str(out),
                "--baseline",
                str(run),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert "Baseline deltas" in out.read_text()

    def test_report_html_without_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["report-html"])


class TestProfileTop:
    def test_top_caps_span_rows(self, capsys):
        rc = main(
            ["profile", "table2", "--scale", "0.015625", "--limit", "1", "--top", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "showing 3" in out

    def test_counter_breakdown_grouped(self, capsys):
        rc = main(["profile", "table2", "--scale", "0.015625", "--limit", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        # Base totals with indented per-label lines.
        assert "perf.attribution" in out
        assert "perf.attribution{format=csr" in out


class TestPerfGateDelegation:
    def test_check_schema_through_bench_cli(self, capsys):
        assert main(["perf-gate", "--check-schema"]) == 0
        assert "self-test OK" in capsys.readouterr().out
