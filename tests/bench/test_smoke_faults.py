"""Tier-1 wiring of tools/smoke_faults.py: the no-silent-wrong-answer sweep."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "smoke_faults.py"


@pytest.fixture(scope="module")
def smoke_faults():
    spec = importlib.util.spec_from_file_location("smoke_faults", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSmokeFaults:
    def test_sweep_holds_contract(self, smoke_faults):
        # Reduced seeds keep tier-1 fast; CI runs the full default sweep.
        assert smoke_faults.run(seeds=2, size=48) == 0

    def test_formats_cover_the_paper(self, smoke_faults):
        assert set(smoke_faults.FORMATS) == {
            "csr",
            "csr-vi",
            "csr-du",
            "csr-du-vi",
        }
