"""Tests for the run-comparison tool."""

import pytest

from repro.bench.compare import Deviation, compare_runs, format_comparison, main
from repro.bench.experiments import table4
from repro.bench.harness import ExperimentConfig
from repro.bench.record import record_run

SCALE = 1 / 64


@pytest.fixture(scope="module")
def run_file(tmp_path_factory):
    config = ExperimentConfig(scale=SCALE)
    path = tmp_path_factory.mktemp("runs") / "run.json"
    record_run({"table4": table4(config, limit=2)}, config, path)
    return path


class TestCompareRuns:
    def test_identical_runs_no_deviation(self, run_file):
        from repro.bench.record import load_run

        run = load_run(run_file)
        deviations, mismatches = compare_runs(run, run)
        assert mismatches == []
        assert all(d.relative == 0.0 for d in deviations)
        assert len(deviations) > 10

    def test_detects_change(self, run_file):
        from repro.bench.record import load_run

        a = load_run(run_file)
        b = load_run(run_file)
        # Perturb one leaf.
        key = next(iter(b["experiments"]["table4"]["rows"]))
        b["experiments"]["table4"]["rows"][key]["ML_vi"][0] *= 1.5
        deviations, _ = compare_runs(a, b)
        moved = [d for d in deviations if d.relative > 0.01]
        assert len(moved) == 1
        assert "ML_vi" in moved[0].path

    def test_structure_mismatch(self, run_file):
        from repro.bench.record import load_run

        a = load_run(run_file)
        b = load_run(run_file)
        del b["experiments"]["table4"]["format_name"]
        b["experiments"]["extra"] = {"x": 1}
        _, mismatches = compare_runs(a, b)
        assert any("extra" in m for m in mismatches)


class TestFormatting:
    def test_summary(self):
        devs = [Deviation(path="a.b", old=1.0, new=1.2)]
        text = format_comparison(devs, [], tolerance=0.05)
        assert "1 moved" in text
        assert "a.b" in text

    def test_relative_handles_zero(self):
        assert Deviation(path="p", old=0.0, new=0.0).relative == 0.0


class TestCLI:
    def test_identical_exit_zero(self, run_file, capsys):
        assert main([str(run_file), str(run_file)]) == 0
        assert "0 moved" in capsys.readouterr().out

    def test_changed_exit_one(self, run_file, tmp_path, capsys):
        import json

        data = json.loads(run_file.read_text())
        key = next(iter(data["experiments"]["table4"]["rows"]))
        data["experiments"]["table4"]["rows"][key]["M0_vi"][0] *= 2
        other = tmp_path / "changed.json"
        other.write_text(json.dumps(data))
        assert main([str(run_file), str(other)]) == 1


class TestStructureDiff:
    def test_added_and_removed_directions(self):
        from repro.bench.compare import structure_diff

        old = {"experiments": {"t": {"kept": 1.0, "gone": 2.0}}}
        new = {"experiments": {"t": {"kept": 1.0, "fresh": 3.0}}}
        added, removed = structure_diff(old, new)
        assert any("fresh" in p for p in added)
        assert any("gone" in p for p in removed)
        assert not any("kept" in p for p in added + removed)

    def test_identical_runs_empty(self):
        from repro.bench.compare import structure_diff

        run = {"experiments": {"t": {"a": 1.0}}}
        assert structure_diff(run, run) == ([], [])

    def test_format_comparison_labels_directions(self):
        text = format_comparison(
            [], [], tolerance=0.05, added=["e.new_path"], removed=["e.old_path"]
        )
        assert "added (only in new run)" in text
        assert "e.new_path" in text
        assert "removed (only in old run)" in text
        assert "e.old_path" in text

    def test_cli_reports_directions(self, run_file, tmp_path, capsys):
        import json

        data = json.loads(run_file.read_text())
        key = next(iter(data["experiments"]["table4"]["rows"]))
        del data["experiments"]["table4"]["rows"][key]
        data["experiments"]["extra"] = {"x": 1.0}
        other = tmp_path / "grown.json"
        other.write_text(json.dumps(data))
        assert main([str(run_file), str(other)]) == 1
        out = capsys.readouterr().out
        assert "added (only in new run)" in out
        assert "removed (only in old run)" in out
