"""Checkpoint/resume: lossless cells, fingerprint scoping, crash tolerance."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.bench import harness
from repro.bench.checkpoint import (
    FORMAT_VERSION,
    CheckpointLog,
    fingerprint,
    result_from_json,
    result_to_json,
)
from repro.bench.harness import TABLE2_CONFIGS, ExperimentConfig, run_set

SCALE = 1 / 64
IDS = (41, 47)
FORMATS = ("csr", "csr-du")


def _normalize(results):
    """Strip the one wall-clock field (setup_s) for comparisons."""
    out = {}
    for mid, per_fmt in results.items():
        for fmt, res in per_fmt.items():
            cell = result_to_json(res)
            for attr in cell["attributions"].values():
                attr["setup_s"] = 0.0
            out[(mid, fmt)] = cell
    return out


@pytest.fixture
def config(tmp_path):
    return ExperimentConfig(
        scale=SCALE, checkpoint_path=str(tmp_path / "ckpt.jsonl")
    )


class TestRoundTrip:
    def test_result_json_lossless(self, config):
        from repro.matrices.collection import realize

        matrix = realize(47, scale=SCALE)
        res = harness.run_format_matrix(matrix, "csr-du", config, matrix_id=47)
        back = result_from_json(json.loads(json.dumps(result_to_json(res))))
        assert back == res  # dataclass equality: every float bit-exact

    def test_fingerprint_sensitivity(self):
        base = ExperimentConfig(scale=SCALE)
        assert fingerprint(base, TABLE2_CONFIGS) == fingerprint(
            ExperimentConfig(scale=SCALE), TABLE2_CONFIGS
        )
        assert fingerprint(base, TABLE2_CONFIGS) != fingerprint(
            ExperimentConfig(scale=SCALE / 2), TABLE2_CONFIGS
        )
        assert fingerprint(base, TABLE2_CONFIGS) != fingerprint(
            base, TABLE2_CONFIGS[:1]
        )


class TestResume:
    def test_uninterrupted_vs_resumed_equal_modulo_timestamps(
        self, config, tmp_path
    ):
        """Kill after the first matrix; the resumed bundle matches an
        uninterrupted run's except for measured setup wall-clock."""
        fresh = run_set(IDS, FORMATS, ExperimentConfig(scale=SCALE))

        # Simulate the crash: run only the first matrix, checkpointed.
        run_set(IDS[:1], FORMATS, config)
        # Resume over the full id set.
        resumed = run_set(IDS, FORMATS, config)

        assert _normalize(resumed) == _normalize(fresh)

    def test_completed_cells_not_recomputed(self, config, monkeypatch):
        run_set(IDS, FORMATS, config)

        calls = []
        real = harness.run_format_matrix

        def counting(matrix, fmt, cfg, **kwargs):
            calls.append((kwargs.get("matrix_id"), fmt))
            return real(matrix, fmt, cfg, **kwargs)

        monkeypatch.setattr(harness, "run_format_matrix", counting)
        restored = run_set(IDS, FORMATS, config)
        assert calls == []  # nothing recomputed
        assert set(restored) == set(IDS)
        # A fully-restored run is deterministic down to setup_s: the
        # stored records ARE the result.
        again = run_set(IDS, FORMATS, config)
        for mid in IDS:
            for fmt in FORMATS:
                assert restored[mid][fmt] == again[mid][fmt]

    def test_foreign_fingerprint_ignored(self, config, monkeypatch):
        run_set(IDS[:1], FORMATS, config)
        other = dataclasses.replace(config, scale=SCALE / 2)
        log = CheckpointLog(
            config.checkpoint_path, fingerprint(other, TABLE2_CONFIGS)
        )
        assert log.load() == {}
        assert log.skipped == len(FORMATS)

    def test_torn_final_line_tolerated(self, config):
        run_set(IDS[:1], FORMATS, config)
        # Tear the last record mid-write, no trailing newline.
        with open(config.checkpoint_path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(config.checkpoint_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][: len(lines[-1]) // 3])

        log = CheckpointLog(
            config.checkpoint_path,
            fingerprint(config, TABLE2_CONFIGS),
        )
        done = log.load()
        assert len(done) == len(FORMATS) - 1
        assert log.skipped == 1

        # Resuming repairs the tail: the recomputed cell is appended on
        # its own line and a fresh load sees every cell exactly once.
        resumed = run_set(IDS[:1], FORMATS, config)
        reloaded = CheckpointLog(
            config.checkpoint_path, fingerprint(config, TABLE2_CONFIGS)
        ).load()
        assert set(reloaded) == {(IDS[0], f) for f in FORMATS}
        fresh = run_set(IDS[:1], FORMATS, ExperimentConfig(scale=SCALE))
        assert _normalize(resumed) == _normalize(fresh)

    def test_wrong_version_ignored(self, config):
        run_set(IDS[:1], FORMATS, config)
        with open(config.checkpoint_path, "r", encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        for rec in records:
            rec["v"] = FORMAT_VERSION + 1
        with open(config.checkpoint_path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")
        log = CheckpointLog(
            config.checkpoint_path, fingerprint(config, TABLE2_CONFIGS)
        )
        assert log.load() == {}
        assert log.skipped == len(records)

    def test_later_line_wins(self, config):
        run_set(IDS[:1], FORMATS, config)
        log = CheckpointLog(
            config.checkpoint_path, fingerprint(config, TABLE2_CONFIGS)
        )
        done = log.load()
        key = (IDS[0], FORMATS[0])
        doctored = dataclasses.replace(done[key], format_name=FORMATS[0])
        times = dict(doctored.times)
        first = next(iter(times))
        times[first] = times[first] * 2
        doctored = dataclasses.replace(doctored, times=times)
        log.append(doctored)
        reloaded = CheckpointLog(
            config.checkpoint_path, fingerprint(config, TABLE2_CONFIGS)
        ).load()
        assert reloaded[key].times[first] == times[first]


class TestCLI:
    def test_resume_flag_wires_checkpoint(self, tmp_path):
        from repro.bench.cli import main as bench_main

        ckpt = tmp_path / "resume.jsonl"
        args = [
            "table2",
            "--scale",
            str(SCALE),
            "--limit",
            "1",
            "--resume",
            str(ckpt),
        ]
        assert bench_main(args) == 0
        lines = ckpt.read_text().strip().splitlines()
        assert lines  # one record per cell was appended
        rec = json.loads(lines[0])
        assert rec["v"] == FORMAT_VERSION
        # Second invocation restores everything from the checkpoint.
        assert bench_main(args) == 0
        assert len(ckpt.read_text().strip().splitlines()) == len(lines)
