"""The HTML dashboard: self-contained output that actually parses."""

from __future__ import annotations

from html.parser import HTMLParser

import pytest

from repro.bench.dashboard import (
    attribution_records,
    render_dashboard,
    write_dashboard,
)


def _counter(name, value=1.0, **attrs):
    return {
        "kind": "counter",
        "name": name,
        "ts_us": 0.0,
        "dur_us": 0.0,
        "value": value,
        "thread": "m",
        "tid": 1,
        "depth": 0,
        "attrs": attrs,
    }


def _span(name, ts, dur, tid=1, **attrs):
    return {
        "kind": "span",
        "name": name,
        "ts_us": float(ts),
        "dur_us": float(dur),
        "value": 0.0,
        "thread": "w",
        "tid": tid,
        "depth": 0,
        "attrs": attrs,
    }


def _attribution_event(fmt="csr", threads=1, ratio=1.0, speedup=0.0):
    return _counter(
        "perf.attribution",
        format=fmt,
        threads=threads,
        placement="close",
        matrix_id=5,
        time_s=1e-6,
        mflops=900.0,
        bytes_per_iter=332,
        index_bytes=92,
        value_bytes=128,
        vector_bytes=112,
        flops_per_byte=0.096,
        effective_gbps=3.2,
        dram_bytes=0.0,
        attainable_mflops=5000.0,
        roofline_pct=18.0,
        bound="mem",
        nnz_imbalance=1.0,
        time_imbalance=1.05,
        compression_ratio=ratio,
        speedup_vs_csr=speedup,
        plan_hits=4,
        plan_misses=1,
    )


@pytest.fixture
def events():
    return [
        _attribution_event("csr", 1),
        _attribution_event("csr-du", 1, ratio=0.7, speedup=1.2),
        _attribution_event("csr-vi", 1, ratio=0.5, speedup=1.4),
        _span("parallel.chunk", 2, 40, tid=11, thread=0, nnz=60, kind="row"),
        _span("parallel.chunk", 2, 60, tid=12, thread=1, nnz=40, kind="row"),
        _span("parallel.spmv", 0, 70, tid=10, threads=2),
    ]


class _Checker(HTMLParser):
    """Parses the document; records tags; rejects external references."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.tags: list[str] = []
        self.errors: list[str] = []

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        if tag in ("script", "link", "img", "iframe"):
            self.errors.append(f"external-asset tag <{tag}>")
        for name, value in attrs:
            if name in ("src", "href") and value:
                self.errors.append(f"<{tag} {name}={value!r}>")


class TestRenderDashboard:
    def test_parses_and_is_self_contained(self, events):
        text = render_dashboard(events, title="test run")
        checker = _Checker()
        checker.feed(text)
        checker.close()
        assert checker.errors == []
        assert "html" in checker.tags
        assert "style" in checker.tags
        assert "table" in checker.tags
        assert "svg" in checker.tags

    def test_attribution_table_contents(self, events):
        text = render_dashboard(events)
        assert "Attribution (3 cells)" in text
        assert "csr-du" in text
        assert "18.0%" in text  # roofline column
        assert "4/1" in text  # plan hits/misses

    def test_correlation_reported(self, events):
        text = render_dashboard(events)
        # (0.3, 1.2) and (0.5, 1.4): two points, perfect positive.
        assert "Pearson correlation" in text
        assert "+1.000" in text

    def test_balance_and_timeline(self, events):
        text = render_dashboard(events)
        assert "1 multithreaded calls" in text
        assert "tid 11" in text
        assert "parallel.chunk" in text

    def test_title_escaped(self, events):
        text = render_dashboard(events, title="<b>sneaky</b>")
        assert "<b>sneaky</b>" not in text
        assert "&lt;b&gt;sneaky&lt;/b&gt;" in text

    def test_empty_trace_still_renders(self):
        text = render_dashboard([])
        checker = _Checker()
        checker.feed(text)
        assert checker.errors == []
        assert "No attribution records" in text
        assert "No parallel spans" in text

    def test_baseline_deltas(self, events):
        baseline = {"experiments": {"t": {"a": 1.0, "b": 2.0}}}
        current = {"experiments": {"t": {"a": 1.5, "c": 3.0}}}
        text = render_dashboard(events, baseline=baseline, current=current)
        assert "Baseline deltas" in text
        assert "33.33%" in text  # |1.5-1.0| / max(1.0, 1.5)
        assert "structural mismatches" in text


class TestAttributionRecords:
    def test_rebuild_and_sort(self, events):
        rows = attribution_records(events)
        assert [r["format"] for r in rows] == ["csr", "csr-du", "csr-vi"]
        assert rows[0]["bytes_per_iter"] == 332

    def test_ignores_other_events(self):
        assert attribution_records([_counter("plan.hit", format="csr")]) == []


class TestWriteDashboard:
    def test_round_trip(self, events, tmp_path):
        path = tmp_path / "report.html"
        assert write_dashboard(path, events) == str(path)
        text = path.read_text(encoding="utf-8")
        assert text.startswith("<!DOCTYPE html>")
        checker = _Checker()
        checker.feed(text)
        assert checker.errors == []
