"""Tests for the sequential-unit extension (the "seq" policy)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.ctl import FLAG_SEQ, CtlReader, CtlWriter, decode_units
from repro.compress.delta import MIN_SEQ_RUN, Unit, split_row_units
from repro.errors import EncodingError
from repro.formats import CSRDUMatrix, convert
from repro.formats.conversions import to_csr
from repro.matrices.generators import diagonal_bands


def reconstruct(units) -> list[int]:
    cols, col = [], 0
    for u in units:
        ucols = u.columns(col)
        col = int(ucols[-1])
        cols.extend(ucols.tolist())
    return cols


class TestSplitSeq:
    def test_contiguous_run_becomes_seq(self):
        cols = np.arange(100, 130)
        units = split_row_units(cols, 0, policy="seq")
        assert any(u.seq for u in units)
        assert reconstruct(units) == cols.tolist()
        seq = next(u for u in units if u.seq)
        assert seq.stride == 1

    def test_strided_run(self):
        cols = np.arange(0, 140, 7)  # stride 7
        units = split_row_units(cols, 0, policy="seq")
        seq = next(u for u in units if u.seq)
        assert seq.stride == 7
        assert reconstruct(units) == cols.tolist()

    def test_short_run_stays_plain(self):
        cols = np.array([0, 1, 2, 3, 100])  # run of 1s shorter than MIN_SEQ_RUN+1
        units = split_row_units(cols, 0, policy="seq")
        assert not any(u.seq for u in units)

    def test_mixed_plain_and_seq(self):
        cols = np.concatenate(
            [np.array([5, 900, 907]), np.arange(1000, 1020), np.array([5000])]
        )
        units = split_row_units(cols, 0, policy="seq")
        assert any(u.seq for u in units)
        assert any(not u.seq for u in units)
        assert reconstruct(units) == cols.tolist()

    def test_long_run_splits_at_max_unit(self):
        cols = np.arange(0, 600)
        units = split_row_units(cols, 0, policy="seq")
        assert all(u.usize <= 255 for u in units)
        # The leading 0-delta opens a plain singleton; the rest is seq.
        assert sum(u.usize for u in units if u.seq) >= 599
        assert reconstruct(units) == cols.tolist()

    def test_min_seq_run_constant(self):
        assert MIN_SEQ_RUN >= 3

    @given(
        st.lists(
            st.integers(min_value=0, max_value=3000), min_size=1, max_size=80
        ).map(lambda xs: np.asarray(sorted(set(xs)), dtype=np.int64))
    )
    def test_round_trip_property(self, cols):
        units = split_row_units(cols, 0, policy="seq")
        assert reconstruct(units) == cols.tolist()

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=6, max_value=300),
    )
    def test_pure_runs_compress_to_header_size(self, stride, count):
        """A pure constant-stride row costs O(units), not O(count)."""
        cols = np.arange(0, stride * count, stride)
        units = split_row_units(cols, 0, policy="seq")
        plain = split_row_units(cols, 0, policy="greedy")
        w_seq, w_plain = CtlWriter(), CtlWriter()
        for u in units:
            w_seq.append(u)
        for u in plain:
            w_plain.append(u)
        assert len(w_seq.getvalue()) <= len(w_plain.getvalue())


class TestSeqSerialization:
    def test_flag_round_trip(self):
        unit = Unit(
            row=0, new_row=True, row_jump=1, ujmp=3,
            deltas=np.full(10, 4, dtype=np.int64), cls=0, seq=True,
        )
        w = CtlWriter()
        w.append(unit)
        ctl = w.getvalue()
        assert ctl[0] & FLAG_SEQ
        out = list(CtlReader(ctl))[0]
        assert out.seq
        assert out.stride == 4
        assert out.deltas.tolist() == [4] * 10

    def test_wire_size_is_constant(self):
        """A seq unit's bytes don't grow with usize."""
        def size_of(count):
            u = Unit(
                row=0, new_row=True, row_jump=1, ujmp=1,
                deltas=np.ones(count, dtype=np.int64), cls=0, seq=True,
            )
            w = CtlWriter()
            w.append(u)
            return len(w.getvalue())

        assert size_of(200) == size_of(10) == 4  # flags+usize+ujmp+stride

    def test_nonconstant_deltas_rejected(self):
        unit = Unit(
            row=0, new_row=True, row_jump=1, ujmp=0,
            deltas=np.array([1, 2]), cls=0, seq=True,
        )
        with pytest.raises(EncodingError, match="constant"):
            CtlWriter().append(unit)

    def test_decode_units_offsets_with_seq(self):
        cols = np.arange(50, 90)
        units = split_row_units(cols, 0, policy="seq")
        w = CtlWriter()
        for u in units:
            w.append(u)
        ctl = w.getvalue()
        du = decode_units(ctl, cols.size)
        assert int(du.ctl_offsets[-1]) == len(ctl)
        assert du.seq.any()
        assert du.columns.tolist() == cols.tolist()


class TestSeqFormat:
    def test_diagonal_matrix_shrinks(self):
        csr = to_csr(diagonal_bands(300, tuple(range(-5, 6))))
        greedy = convert(csr, "csr-du", policy="greedy")
        seq = convert(csr, "csr-du", policy="seq")
        assert len(seq.ctl) < len(greedy.ctl)
        x = np.random.default_rng(0).random(300)
        assert np.allclose(seq.spmv(x), csr.spmv(x))

    def test_all_kernels_handle_seq(self):
        from repro.kernels.reference import spmv_csr_du_reference
        from repro.kernels.vectorized import spmv_csr_du_unitwise

        csr = to_csr(diagonal_bands(100, tuple(range(-3, 4))))
        du = CSRDUMatrix.from_csr(csr, policy="seq")
        x = np.random.default_rng(1).random(100)
        expected = csr.spmv(x)
        assert np.allclose(spmv_csr_du_reference(du, x), expected)
        assert np.allclose(spmv_csr_du_unitwise(du, x), expected)
        assert np.allclose(du.spmv(x), expected)

    def test_traffic_accounts_seq(self):
        from repro.machine.traffic import analyze_threads

        csr = to_csr(diagonal_bands(200, tuple(range(-4, 5))))
        du = CSRDUMatrix.from_csr(csr, policy="seq")
        _, works = analyze_threads(du, 2)
        assert sum(w.seq_units for w in works) == int(du.units.seq.sum())
        assert sum(w.seq_elements for w in works) == int(
            du.units.sizes[du.units.seq].sum()
        )
        assert sum(w.private_bytes["ctl"] for w in works) == len(du.ctl)

    def test_model_rewards_seq(self):
        """Less ctl traffic + cheaper decode -> never slower at 8 threads."""
        from repro.machine.simulate import simulate_spmv
        from repro.machine.topology import clovertown_8core

        csr = to_csr(diagonal_bands(3000, tuple(range(-8, 9))))
        machine = clovertown_8core().scaled(0.002)
        t_greedy = simulate_spmv(
            convert(csr, "csr-du", policy="greedy"), 8, machine
        ).time_s
        t_seq = simulate_spmv(
            convert(csr, "csr-du", policy="seq"), 8, machine
        ).time_s
        assert t_seq <= t_greedy * 1.001

    def test_stride_requires_seq(self):
        u = Unit(
            row=0, new_row=True, row_jump=1, ujmp=0,
            deltas=np.array([1]), cls=0,
        )
        with pytest.raises(EncodingError):
            u.stride
