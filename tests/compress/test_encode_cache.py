"""Structure-keyed conversion cache (`repro.compress.encode_cache`)."""

import numpy as np
import pytest

from repro.compress.encode_cache import (
    ConvertCache,
    cache_key,
    cached_convert,
    matrix_token,
)
from repro.formats.csr import CSRMatrix
from repro.parallel.executor import ParallelSpMV
from repro.telemetry import Collector, set_collector
from tests.conftest import random_sparse_dense


@pytest.fixture
def collector():
    c = Collector()
    prev = set_collector(c)
    yield c
    set_collector(prev)


@pytest.fixture
def csr():
    return CSRMatrix.from_dense(random_sparse_dense(48, 48, seed=9, quantize=8))


class TestMatrixToken:
    def test_stable_per_object(self, csr):
        assert matrix_token(csr) == matrix_token(csr)

    def test_distinct_objects_distinct_tokens(self, csr):
        other = CSRMatrix.from_dense(
            random_sparse_dense(48, 48, seed=9, quantize=8)
        )
        assert matrix_token(csr) != matrix_token(other)


class TestCacheKey:
    def test_kwargs_order_insensitive(self, csr):
        a = cache_key(csr, "csr-du", {"policy": "seq", "max_unit": 7}, None)
        b = cache_key(csr, "csr-du", {"max_unit": 7, "policy": "seq"}, None)
        assert a == b

    def test_rows_distinguish(self, csr):
        whole = cache_key(csr, "csr-du", {}, None)
        chunk = cache_key(csr, "csr-du", {}, (0, 24))
        assert whole != chunk

    def test_unhashable_kwargs_frozen(self, csr):
        key = cache_key(csr, "bcsr", {"block": [2, 2]}, None)
        hash(key)  # must not raise


class TestConvertCache:
    def test_hit_returns_same_object(self, csr):
        cache = ConvertCache()
        first = cache.get_or_convert(csr, "csr-du")
        second = cache.get_or_convert(csr, "csr-du")
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_kwargs_are_distinct_entries(self, csr):
        cache = ConvertCache()
        a = cache.get_or_convert(csr, "csr-du", max_unit=7)
        b = cache.get_or_convert(csr, "csr-du", max_unit=255)
        assert a is not b
        assert len(a.ctl) > len(b.ctl)
        assert cache.misses == 2

    def test_row_slice_chunks(self, csr):
        cache = ConvertCache()
        chunk = cache.get_or_convert(csr, "csr-du", rows=(8, 32))
        assert chunk.nrows == 24
        assert chunk is cache.get_or_convert(csr, "csr-du", rows=(8, 32))
        x = np.arange(csr.ncols, dtype=np.float64)
        assert np.array_equal(chunk.spmv(x), csr.spmv(x)[8:32])

    def test_lru_eviction(self, csr):
        cache = ConvertCache(capacity=2)
        first = cache.get_or_convert(csr, "csr-du", max_unit=3)
        cache.get_or_convert(csr, "csr-du", max_unit=4)
        cache.get_or_convert(csr, "csr-du", max_unit=5)  # evicts max_unit=3
        assert len(cache) == 2
        again = cache.get_or_convert(csr, "csr-du", max_unit=3)
        assert again is not first
        assert cache.misses == 4

    def test_hit_refreshes_lru_rank(self, csr):
        cache = ConvertCache(capacity=2)
        first = cache.get_or_convert(csr, "csr-du", max_unit=3)
        cache.get_or_convert(csr, "csr-du", max_unit=4)
        cache.get_or_convert(csr, "csr-du", max_unit=3)  # refresh
        cache.get_or_convert(csr, "csr-du", max_unit=5)  # evicts max_unit=4
        assert cache.get_or_convert(csr, "csr-du", max_unit=3) is first

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            ConvertCache(capacity=0)

    def test_counters_emitted(self, collector, csr):
        cache = ConvertCache()
        cache.get_or_convert(csr, "csr-du")
        cache.get_or_convert(csr, "csr-du")
        assert collector.counters["convert.cache.miss{format=csr-du}"] == 1
        assert collector.counters["convert.cache.hit{format=csr-du}"] == 1

    def test_cached_convert_accepts_explicit_cache(self, csr):
        cache = ConvertCache()
        out = cached_convert(csr, "csr-vi", cache=cache)
        assert cached_convert(csr, "csr-vi", cache=cache) is out
        assert (cache.hits, cache.misses) == (1, 1)


class TestExecutorIntegration:
    def test_rebuild_reuses_chunk_encodes(self, csr):
        """Two executors at one thread count share every chunk encode."""
        cache = ConvertCache()
        x = np.arange(csr.ncols, dtype=np.float64)
        with ParallelSpMV(
            csr, 4, format_name="csr-du", convert_cache=cache
        ) as par:
            first = par(x)
        misses_after_first = cache.misses
        with ParallelSpMV(
            csr, 4, format_name="csr-du", convert_cache=cache
        ) as par:
            second = par(x)
        assert cache.misses == misses_after_first
        assert cache.hits >= 4
        assert np.array_equal(first, second)
        assert np.allclose(first, csr.spmv(x), rtol=1e-13, atol=1e-13)


class TestByteBudget:
    """Optional max_bytes budget: summed storage().total_bytes bound."""

    def test_total_bytes_tracks_entries(self, csr):
        cache = ConvertCache(capacity=8)
        a = cache.get_or_convert(csr, "csr-du")
        assert cache.total_bytes == a.storage().total_bytes
        b = cache.get_or_convert(csr, "csr-vi")
        assert cache.total_bytes == (
            a.storage().total_bytes + b.storage().total_bytes
        )

    def test_byte_budget_evicts_lru(self, csr):
        one = ConvertCache(capacity=8).get_or_convert(csr, "csr-du")
        budget = int(one.storage().total_bytes * 1.5)
        cache = ConvertCache(capacity=8, max_bytes=budget)
        cache.get_or_convert(csr, "csr-du")
        cache.get_or_convert(csr, "csr-du", rows=(0, 24))
        cache.get_or_convert(csr, "csr-du", rows=(24, 48))
        assert cache.total_bytes <= budget
        assert cache.evicted_bytes > 0
        assert len(cache) < 3

    def test_oversized_entry_returned_uncached(self, csr):
        cache = ConvertCache(capacity=8, max_bytes=16)
        result = cache.get_or_convert(csr, "csr-du")
        assert result.nnz == csr.nnz
        assert len(cache) == 0
        assert cache.misses == 1
        assert cache.total_bytes == 0

    def test_invalidate_returns_bytes(self, csr):
        cache = ConvertCache(capacity=8, max_bytes=1 << 20)
        cache.get_or_convert(csr, "csr-du")
        assert cache.total_bytes > 0
        assert cache.invalidate(csr, "csr-du")
        assert cache.total_bytes == 0

    def test_eviction_telemetry(self, collector, csr):
        one = ConvertCache(capacity=8).get_or_convert(csr, "csr-du")
        budget = int(one.storage().total_bytes * 1.5)
        cache = ConvertCache(capacity=8, max_bytes=budget)
        cache.get_or_convert(csr, "csr-du")
        cache.get_or_convert(csr, "csr-vi")
        events = [
            e for e in collector.snapshot()
            if e.name == "convert.cache.evict.bytes"
        ]
        assert events
        assert events[0].attrs["format"] == "csr-du"  # the LRU entry
        assert events[0].value == one.storage().total_bytes

    def test_max_bytes_validated(self):
        with pytest.raises(ValueError):
            ConvertCache(max_bytes=0)

    def test_clear_resets_byte_total(self, csr):
        cache = ConvertCache(capacity=8, max_bytes=1 << 20)
        cache.get_or_convert(csr, "csr-du")
        cache.clear()
        assert cache.total_bytes == 0 and len(cache) == 0
