"""Tests for unique-value indexing (CSR-VI compression core)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.unique import (
    TTU_THRESHOLD,
    index_dtype_for,
    total_to_unique_ratio,
    unique_index_values,
)
from repro.errors import FormatError


class TestIndexDtype:
    @pytest.mark.parametrize(
        "count,dtype",
        [
            (0, np.uint8),
            (1, np.uint8),
            (256, np.uint8),
            (257, np.uint16),
            (1 << 16, np.uint16),
            ((1 << 16) + 1, np.uint32),
            (1 << 32, np.uint32),
            ((1 << 32) + 1, np.uint64),
        ],
    )
    def test_boundaries(self, count, dtype):
        """The paper's rule: 2^8 < uv <= 2^16 -> 2-byte indices, etc."""
        assert index_dtype_for(count) == np.dtype(dtype)

    def test_negative_rejected(self):
        with pytest.raises(FormatError):
            index_dtype_for(-1)


class TestTTU:
    def test_basic(self):
        assert total_to_unique_ratio(np.array([1.0, 1.0, 2.0, 2.0])) == 2.0

    def test_all_same(self):
        assert total_to_unique_ratio(np.full(10, 3.3)) == 10.0

    def test_all_unique(self):
        assert total_to_unique_ratio(np.arange(5.0)) == 1.0

    def test_empty(self):
        assert total_to_unique_ratio(np.array([])) == 0.0

    def test_threshold_constant(self):
        assert TTU_THRESHOLD == 5.0


class TestUniqueIndexValues:
    def test_paper_fig4_example(self):
        """Fig. 4: the Fig. 1 values map onto 10 unique values."""
        values = np.array(
            [5.4, 1.1, 6.3, 7.7, 8.8, 1.1, 2.9, 3.7, 2.9, 9.0, 1.1, 4.5, 1.1, 2.9, 3.7, 1.1]
        )
        uv = unique_index_values(values)
        assert uv.vals_unique.tolist() == sorted(
            [1.1, 2.9, 3.7, 4.5, 5.4, 6.3, 7.7, 8.8, 9.0]
        )
        assert uv.vals_unique.size == 9
        assert uv.val_ind.dtype == np.uint8
        assert np.array_equal(uv.reconstruct(), values)
        assert uv.ttu == pytest.approx(16 / 9)

    def test_round_trip_exact_bits(self):
        rng = np.random.default_rng(0)
        values = rng.choice(rng.random(7), size=500)
        uv = unique_index_values(values)
        assert np.array_equal(uv.reconstruct(), values)
        assert uv.vals_unique.size == 7

    def test_nbytes_accounting(self):
        values = np.repeat(np.arange(4.0), 100)
        uv = unique_index_values(values)
        assert uv.nbytes == 4 * 8 + 400 * 1

    def test_wider_index_when_needed(self):
        values = np.arange(300.0)
        uv = unique_index_values(values)
        assert uv.val_ind.dtype == np.uint16

    def test_empty(self):
        uv = unique_index_values(np.array([]))
        assert uv.ttu == 0.0
        assert uv.val_ind.size == 0

    def test_nan_rejected(self):
        with pytest.raises(FormatError, match="NaN"):
            unique_index_values(np.array([1.0, np.nan]))

    def test_negative_zero_and_zero_collapse(self):
        # np.unique treats -0.0 == 0.0; the reconstruction is still
        # numerically equal, which is what SpMV needs.
        uv = unique_index_values(np.array([-0.0, 0.0, 1.0]))
        assert np.array_equal(uv.reconstruct(), np.array([0.0, 0.0, 1.0]))

    @given(
        st.lists(
            st.sampled_from([0.5, 1.25, 2.0, 3.75, 9.5]), min_size=1, max_size=200
        )
    )
    def test_round_trip_property(self, values):
        arr = np.asarray(values)
        uv = unique_index_values(arr)
        assert np.array_equal(uv.reconstruct(), arr)
        assert uv.ttu == pytest.approx(arr.size / np.unique(arr).size)
