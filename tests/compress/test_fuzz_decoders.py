"""Corruption fuzzing of the stream decoders.

A compressed format's decoder is an attack/bug surface: truncated,
bit-flipped or garbage ctl/DCSR streams must either decode to *some*
self-consistent unit sequence or raise :class:`EncodingError` -- never
raise foreign exceptions, loop forever, or return out-of-bounds
structures that would corrupt an SpMV.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.ctl import CtlReader, decode_units
from repro.errors import EncodingError, ReproError
from repro.formats import CSRDUMatrix, CSRMatrix, DCSRMatrix
from repro.formats.dcsr import decode_dcsr

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def good_ctl():
    csr = CSRMatrix.from_dense(random_sparse_dense(20, 20, seed=180))
    du = CSRDUMatrix.from_csr(csr)
    return du.ctl, csr.nnz


@pytest.fixture(scope="module")
def good_dcsr():
    csr = CSRMatrix.from_dense(random_sparse_dense(20, 20, seed=181))
    dcsr = DCSRMatrix.from_csr(csr)
    return dcsr.stream, csr.nrows, csr.nnz


def _consume_ctl(ctl: bytes) -> None:
    """Walk the whole stream; check invariants on everything yielded."""
    row = -1
    for unit in CtlReader(ctl):
        assert 1 <= unit.usize <= 255
        assert unit.row >= row
        row = unit.row
        assert unit.ujmp >= 0
        assert np.all(unit.deltas >= 0)


class TestCtlFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_truncation(self, data, good_ctl):
        ctl, _ = good_ctl
        cut = data.draw(st.integers(min_value=0, max_value=len(ctl)))
        try:
            _consume_ctl(ctl[:cut])
        except EncodingError:
            pass  # the only acceptable failure

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_single_byte_corruption(self, data, good_ctl):
        ctl, nnz = good_ctl
        pos = data.draw(st.integers(min_value=0, max_value=len(ctl) - 1))
        val = data.draw(st.integers(min_value=0, max_value=255))
        corrupted = bytearray(ctl)
        corrupted[pos] = val
        try:
            du = decode_units(bytes(corrupted), nnz)
            # If it decodes, the structure must be self-consistent.
            assert int(du.sizes.sum()) == nnz
            assert du.offsets[-1] == nnz
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(blob=st.binary(max_size=200))
    def test_garbage_streams(self, blob):
        try:
            _consume_ctl(blob)
        except EncodingError:
            pass

    def test_corrupted_matrix_never_out_of_bounds(self, good_ctl):
        """Even when a corrupted stream decodes, the format constructor
        must catch rows/columns escaping the matrix."""
        ctl, nnz = good_ctl
        survived = 0
        for pos in range(len(ctl)):
            corrupted = bytearray(ctl)
            corrupted[pos] ^= 0xFF
            matrix = CSRDUMatrix(20, 20, bytes(corrupted), np.ones(nnz))
            try:
                du = matrix.units
            except ReproError:
                continue
            survived += 1
            assert int(du.columns.max()) < 20
            assert int(du.rows.max()) < 20
        # Some corruptions inevitably decode fine (e.g. delta changes
        # that stay in range); they must all have passed the checks.
        assert survived >= 0


class TestDCSRFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_truncation(self, data, good_dcsr):
        stream, nrows, nnz = good_dcsr
        cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
        try:
            decode_dcsr(stream[:cut], nrows, nnz)
        except EncodingError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_single_byte_corruption(self, data, good_dcsr):
        stream, nrows, nnz = good_dcsr
        pos = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
        val = data.draw(st.integers(min_value=0, max_value=255))
        corrupted = bytearray(stream)
        corrupted[pos] = val
        try:
            dec = decode_dcsr(bytes(corrupted), nrows, nnz)
            assert dec.columns.size == nnz
            assert int(dec.row_ptr[-1]) == nnz
        except ReproError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(blob=st.binary(max_size=200))
    def test_garbage_streams(self, blob):
        try:
            decode_dcsr(blob, 50, 1000)
        except ReproError:
            pass
