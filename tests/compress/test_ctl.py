"""Tests for the ctl byte-stream serializer/deserializer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.ctl import (
    FLAG_NR,
    FLAG_RJMP,
    CtlReader,
    CtlWriter,
    decode_units,
)
from repro.compress.delta import Unit, unitize
from repro.errors import EncodingError


def make_unit(row=0, new_row=True, row_jump=1, ujmp=0, deltas=(), cls=None):
    deltas = np.asarray(deltas, dtype=np.int64)
    if cls is None:
        cls = 0
        if deltas.size and int(deltas.max()) > 255:
            cls = 1
    return Unit(
        row=row, new_row=new_row, row_jump=row_jump, ujmp=ujmp, deltas=deltas, cls=cls
    )


def write_units(units):
    w = CtlWriter()
    for u in units:
        w.append(u)
    return w.getvalue()


class TestRoundTrip:
    def test_single_unit(self):
        ctl = write_units([make_unit(ujmp=5, deltas=[1, 2, 3])])
        units = list(CtlReader(ctl))
        assert len(units) == 1
        u = units[0]
        assert (u.row, u.ujmp, u.deltas.tolist()) == (0, 5, [1, 2, 3])

    def test_multi_row(self):
        src = [
            make_unit(row=0, ujmp=0, deltas=[1]),
            make_unit(row=1, ujmp=2, deltas=[300, 400], cls=1),
            make_unit(row=1, new_row=False, ujmp=7, deltas=[]),
        ]
        out = list(CtlReader(write_units(src)))
        assert [u.row for u in out] == [0, 1, 1]
        assert [u.cls for u in out] == [0, 1, 0]
        assert out[1].deltas.tolist() == [300, 400]

    def test_row_jump(self):
        src = [
            make_unit(row=0, ujmp=1),
            make_unit(row=5, row_jump=5, ujmp=3),
        ]
        out = list(CtlReader(write_units(src)))
        assert out[1].row == 5
        assert out[1].row_jump == 5

    def test_wide_classes(self):
        src = [make_unit(ujmp=0, deltas=[1 << 40], cls=3)]
        out = list(CtlReader(write_units(src)))
        assert out[0].deltas.tolist() == [1 << 40]

    def test_large_ujmp_varint(self):
        src = [make_unit(ujmp=(1 << 30) + 7)]
        out = list(CtlReader(write_units(src)))
        assert out[0].ujmp == (1 << 30) + 7


class TestWriterValidation:
    def test_rejects_oversized_unit(self):
        with pytest.raises(EncodingError):
            write_units([make_unit(deltas=[1] * 300)])

    def test_rejects_rowjump_without_newrow(self):
        with pytest.raises(EncodingError):
            write_units([make_unit(new_row=False, row_jump=2)])


class TestWriterFinalization:
    def test_getvalue_finalizes(self):
        w = CtlWriter()
        w.append(make_unit(ujmp=0, deltas=[1]))
        assert not w.finalized
        ctl = w.getvalue()
        assert w.finalized
        assert len(ctl) > 0

    def test_second_getvalue_raises(self):
        w = CtlWriter()
        w.append(make_unit(ujmp=0, deltas=[1]))
        w.getvalue()
        with pytest.raises(EncodingError, match="twice"):
            w.getvalue()

    def test_append_after_finalize_raises(self):
        w = CtlWriter()
        w.append(make_unit(ujmp=0, deltas=[1]))
        w.getvalue()
        with pytest.raises(EncodingError, match="finalized"):
            w.append(make_unit(row=1, ujmp=2))

    def test_empty_writer_still_finalizes(self):
        w = CtlWriter()
        assert w.getvalue() == b""
        with pytest.raises(EncodingError):
            w.getvalue()


class TestReaderValidation:
    def test_truncated_header(self):
        with pytest.raises(EncodingError):
            list(CtlReader(bytes([FLAG_NR])))

    def test_zero_usize(self):
        with pytest.raises(EncodingError):
            list(CtlReader(bytes([FLAG_NR, 0, 0])))

    def test_unknown_flags(self):
        with pytest.raises(EncodingError, match="unknown flag"):
            list(CtlReader(bytes([0x80 | FLAG_NR, 1, 0])))

    def test_rjmp_without_nr(self):
        with pytest.raises(EncodingError, match="RJMP"):
            list(CtlReader(bytes([FLAG_RJMP, 1, 1, 0])))

    def test_stream_must_open_with_new_row(self):
        with pytest.raises(EncodingError, match="new-row"):
            list(CtlReader(bytes([0, 1, 0])))

    def test_truncated_deltas(self):
        good = write_units([make_unit(ujmp=0, deltas=[1, 2, 3])])
        with pytest.raises(EncodingError):
            list(CtlReader(good[:-1]))


class TestDecodeUnits:
    def test_structure_and_offsets(self):
        ctl = write_units(
            [
                make_unit(row=0, ujmp=2, deltas=[3, 4]),
                make_unit(row=2, row_jump=2, ujmp=1),
            ]
        )
        du = decode_units(ctl, 4)
        assert du.nunits == 2
        assert du.rows.tolist() == [0, 2]
        assert du.sizes.tolist() == [3, 1]
        assert du.offsets.tolist() == [0, 3, 4]
        assert du.columns.tolist() == [2, 5, 9, 1]
        assert du.new_row.tolist() == [True, True]
        assert du.ctl_offsets[0] == 0
        assert int(du.ctl_offsets[-1]) == len(ctl)

    def test_ctl_offsets_slice_reparses(self):
        """Any unit-aligned suffix of the stream is itself parseable."""
        ctl = write_units(
            [
                make_unit(row=0, ujmp=0, deltas=[1, 2]),
                make_unit(row=1, ujmp=5, deltas=[700], cls=1),
                make_unit(row=1, new_row=False, ujmp=9),
            ]
        )
        du = decode_units(ctl, 6)
        # Suffix starting at unit 1 begins with a new-row unit.
        off = int(du.ctl_offsets[1])
        tail_units = list(CtlReader(ctl[off:]))
        assert len(tail_units) == 2

    def test_nnz_mismatch(self):
        ctl = write_units([make_unit(ujmp=0, deltas=[1])])
        with pytest.raises(EncodingError, match="expected"):
            decode_units(ctl, 5)

    def test_empty_stream(self):
        du = decode_units(b"", 0)
        assert du.nunits == 0
        assert du.columns.size == 0

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=4000), min_size=1, max_size=20
            ).map(lambda xs: sorted(set(xs))),
            min_size=1,
            max_size=10,
        )
    )
    def test_unitize_write_decode_round_trip(self, rows):
        """unitize -> CtlWriter -> decode_units reproduces the columns."""
        lens = [len(r) for r in rows]
        row_ptr = np.concatenate(([0], np.cumsum(lens)))
        col_ind = np.concatenate([np.asarray(r) for r in rows])
        ctl = write_units(unitize(row_ptr, col_ind))
        du = decode_units(ctl, int(row_ptr[-1]))
        assert du.columns.tolist() == col_ind.tolist()
        rows_expanded = np.repeat(du.rows, du.sizes)
        expected_rows = np.repeat(np.arange(len(rows)), lens)
        assert rows_expanded.tolist() == expected_rows.tolist()
