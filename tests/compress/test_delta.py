"""Tests for delta analysis and unit splitting (CSR-DU encoder core)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.delta import (
    MAX_UNIT_SIZE,
    column_deltas,
    split_row_units,
    unitize,
)
from repro.errors import EncodingError, FormatError


def row_columns(max_cols: int = 5000, max_len: int = 60):
    """Strictly increasing column index lists."""
    return st.lists(
        st.integers(min_value=0, max_value=max_cols), min_size=1, max_size=max_len
    ).map(lambda xs: np.asarray(sorted(set(xs)), dtype=np.int64))


def reconstruct(units, row: int) -> np.ndarray:
    """Columns encoded by a row's unit list."""
    cols = []
    col = 0
    for u in units:
        assert u.row == row
        ucols = u.columns(col)
        col = int(ucols[-1])
        cols.extend(ucols.tolist())
    return np.asarray(cols)


class TestColumnDeltas:
    def test_basic(self):
        assert column_deltas(np.array([3, 5, 10])).tolist() == [3, 2, 5]

    def test_empty(self):
        assert column_deltas(np.array([], dtype=np.int64)).size == 0

    def test_rejects_nonincreasing(self):
        with pytest.raises(EncodingError):
            column_deltas(np.array([3, 3]))
        with pytest.raises(EncodingError):
            column_deltas(np.array([5, 2]))

    def test_rejects_negative_first(self):
        with pytest.raises(EncodingError):
            column_deltas(np.array([-1, 2]))


class TestSplitRowUnits:
    def test_paper_table1_rows(self):
        """Each row of the paper's Fig. 1 matrix produces Table I's unit."""
        expectations = [
            (np.array([0, 1]), 2, 0, [1]),
            (np.array([1, 3, 5]), 3, 1, [2, 2]),
            (np.array([2]), 1, 2, []),
            (np.array([2, 4, 5]), 3, 2, [2, 1]),
            (np.array([0, 3, 4]), 3, 0, [3, 1]),
            (np.array([0, 2, 3, 5]), 4, 0, [2, 1, 2]),
        ]
        for row, (cols, usize, ujmp, ucis) in enumerate(expectations):
            units = split_row_units(cols, row)
            assert len(units) == 1
            u = units[0]
            assert (u.usize, u.ujmp, u.deltas.tolist()) == (usize, ujmp, ucis)
            assert u.cls == 0
            assert u.new_row

    def test_class_change_splits(self):
        # deltas: 1000 (u16), then 2,2 (u8): greedy steals 1000 as ujmp.
        cols = np.array([1000, 1002, 1004])
        units = split_row_units(cols, 0)
        assert len(units) == 1
        assert units[0].ujmp == 1000
        assert units[0].cls == 0

    def test_two_runs_two_units(self):
        # u8 run then u16 run: two units.
        cols = np.array([0, 1, 2, 1000, 2000])
        units = split_row_units(cols, 0)
        assert len(units) == 2
        assert units[0].cls == 0 and units[0].usize == 3
        assert units[1].cls == 1 and units[1].usize == 2
        assert not units[1].new_row

    def test_max_unit_split(self):
        cols = np.arange(0, 600)
        units = split_row_units(cols, 0)
        assert all(u.usize <= MAX_UNIT_SIZE for u in units)
        assert sum(u.usize for u in units) == 600
        assert reconstruct(units, 0).tolist() == cols.tolist()

    def test_custom_max_unit(self):
        cols = np.arange(0, 20)
        units = split_row_units(cols, 0, max_unit=5)
        assert all(u.usize <= 5 for u in units)
        assert reconstruct(units, 0).tolist() == cols.tolist()

    def test_aligned_policy_fragments(self):
        """aligned never lets an out-of-class delta open a unit."""
        cols = np.array([1000, 1002, 1004])
        units = split_row_units(cols, 0, policy="aligned")
        assert len(units) == 2  # [1000] alone, then the u8 pair
        assert units[0].usize == 1

    def test_bad_policy(self):
        with pytest.raises(FormatError):
            split_row_units(np.array([1]), 0, policy="magic")

    def test_bad_max_unit(self):
        with pytest.raises(FormatError):
            split_row_units(np.array([1]), 0, max_unit=1)
        with pytest.raises(FormatError):
            split_row_units(np.array([1]), 0, max_unit=500)

    def test_row_jump_recorded(self):
        units = split_row_units(np.array([5]), 7, row_jump=3)
        assert units[0].row_jump == 3

    @given(row_columns(), st.sampled_from(["greedy", "aligned"]))
    def test_round_trip_property(self, cols, policy):
        units = split_row_units(cols, 0, policy=policy)
        assert reconstruct(units, 0).tolist() == cols.tolist()
        # Each unit's stored deltas must fit its declared class.
        for u in units:
            if u.deltas.size:
                assert int(u.deltas.max()) < (1 << (8 * (1 << u.cls)))
            assert 1 <= u.usize <= MAX_UNIT_SIZE

    @given(row_columns())
    def test_greedy_never_worse_units_than_aligned(self, cols):
        greedy = split_row_units(cols, 0, policy="greedy")
        aligned = split_row_units(cols, 0, policy="aligned")
        assert len(greedy) <= len(aligned)


class TestUnitize:
    def test_empty_rows_skipped_with_jump(self):
        row_ptr = np.array([0, 1, 1, 1, 2])
        col_ind = np.array([3, 4])
        units = unitize(row_ptr, col_ind)
        assert [u.row for u in units] == [0, 3]
        assert units[1].row_jump == 3

    def test_leading_empty_rows(self):
        row_ptr = np.array([0, 0, 0, 2])
        col_ind = np.array([1, 2])
        units = unitize(row_ptr, col_ind)
        assert units[0].row == 2
        assert units[0].row_jump == 3

    def test_empty_matrix(self):
        assert unitize(np.array([0, 0]), np.array([], dtype=np.int64)) == []

    def test_covers_all_nnz(self):
        rng = np.random.default_rng(3)
        lens = rng.integers(0, 9, size=40)
        row_ptr = np.concatenate(([0], np.cumsum(lens)))
        col_ind = np.concatenate(
            [np.sort(rng.choice(500, size=k, replace=False)) for k in lens]
        )
        units = unitize(row_ptr, col_ind)
        assert sum(u.usize for u in units) == int(row_ptr[-1])


class TestBulkEquivalence:
    """unitize's vectorized whole-matrix pass must produce exactly what
    per-row split_row_units produces (it is the same algorithm with the
    delta/class computation hoisted)."""

    @pytest.mark.parametrize("policy", ["greedy", "aligned", "seq"])
    def test_matches_per_row(self, policy):
        rng = np.random.default_rng(77)
        lens = rng.integers(0, 40, size=60)
        row_ptr = np.concatenate(([0], np.cumsum(lens)))
        col_ind = np.concatenate(
            [
                np.sort(rng.choice(100_000, size=k, replace=False))
                for k in lens
            ]
        )
        bulk = unitize(row_ptr, col_ind, policy=policy)
        per_row = []
        jump = 1
        for row, k in enumerate(lens):
            lo, hi = int(row_ptr[row]), int(row_ptr[row + 1])
            if lo == hi:
                jump += 1
                continue
            per_row.extend(
                split_row_units(col_ind[lo:hi], row, jump, policy=policy)
            )
            jump = 1
        assert len(bulk) == len(per_row)
        for a, b in zip(bulk, per_row):
            assert (a.row, a.new_row, a.row_jump, a.ujmp, a.cls, a.seq) == (
                b.row, b.new_row, b.row_jump, b.ujmp, b.cls, b.seq,
            )
            assert a.deltas.tolist() == b.deltas.tolist()

    def test_validation_still_enforced(self):
        with pytest.raises(EncodingError):
            unitize(np.array([0, 2]), np.array([5, 5]))
        with pytest.raises(EncodingError):
            unitize(np.array([0, 1]), np.array([-1]))
