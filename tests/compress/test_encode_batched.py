"""Byte-identity of the batched one-pass encoder against the reference.

The :class:`~repro.compress.ctl.CtlWriter` pipeline is the executable
specification; :func:`~repro.compress.encode_batched.encode_ctl_batched`
must reproduce its stream *byte for byte* (and ``scan_units``'s table
field for field) across policies, width classes, RJMP empty-row jumps,
and ``max_unit`` boundary sizes -- hypothesis drives the structures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.ctl import CtlWriter, decode_units
from repro.compress.delta import MAX_UNIT_SIZE, _POLICIES, unitize
from repro.compress.encode_batched import encode_ctl_batched, pack_value_index
from repro.compress.unit_table import scan_units
from repro.errors import EncodingError, FormatError
from repro.formats import CSRDUMatrix, CSRMatrix
from tests.conftest import random_sparse_dense

TABLE_FIELDS = (
    "flags", "sizes", "classes", "rows", "new_row", "seq",
    "ujmps", "strides", "body_offsets", "ctl_offsets",
)

#: (policy, max_unit) grid covering chop boundaries (2 is the minimum,
#: 3 exercises the absorbed+chop interaction, 255 is the wire maximum).
GRID = [(p, m) for p in _POLICIES for m in (2, 3, 7, 255)]


def reference_ctl(row_ptr, col_ind, policy="greedy", max_unit=MAX_UNIT_SIZE):
    w = CtlWriter()
    for unit in unitize(row_ptr, col_ind, policy=policy, max_unit=max_unit):
        w.append(unit)
    return w.getvalue()


def from_rows(rows):
    """(row_ptr, col_ind) from per-row sorted column lists."""
    lens = [len(r) for r in rows]
    row_ptr = np.concatenate(([0], np.cumsum(lens, dtype=np.int64)))
    if row_ptr[-1]:
        col_ind = np.concatenate(
            [np.asarray(r, dtype=np.int64) for r in rows if r]
        )
    else:
        col_ind = np.empty(0, dtype=np.int64)
    return row_ptr, col_ind


def assert_equivalent(row_ptr, col_ind, policy, max_unit):
    ref = reference_ctl(row_ptr, col_ind, policy, max_unit)
    enc = encode_ctl_batched(
        row_ptr, col_ind, policy=policy, max_unit=max_unit
    )
    assert enc.ctl == ref
    scanned = scan_units(ref)
    for field in TABLE_FIELDS:
        got = getattr(enc.table, field)
        want = getattr(scanned, field)
        assert got.dtype == want.dtype, field
        assert np.array_equal(got, want), field
    return enc


# Rows of sorted unique columns; empties included (RJMP path), column
# range spans all four delta width classes (up to > 2^32 deltas).
row_columns = st.lists(
    st.integers(min_value=0, max_value=1 << 35), min_size=0, max_size=24
).map(lambda xs: sorted(set(xs)))
matrices = st.lists(row_columns, min_size=1, max_size=12)


class TestByteIdentity:
    @settings(max_examples=120, deadline=None)
    @given(
        rows=matrices,
        policy=st.sampled_from(_POLICIES),
        max_unit=st.sampled_from((2, 3, 7, 255)),
    )
    def test_random_structures(self, rows, policy, max_unit):
        row_ptr, col_ind = from_rows(rows)
        assert_equivalent(row_ptr, col_ind, policy, max_unit)

    @pytest.mark.parametrize("policy,max_unit", GRID)
    def test_empty_matrix(self, policy, max_unit):
        row_ptr = np.zeros(4, dtype=np.int64)
        enc = assert_equivalent(
            row_ptr, np.empty(0, dtype=np.int64), policy, max_unit
        )
        assert enc.ctl == b""
        assert enc.nunits == 0

    @pytest.mark.parametrize("policy,max_unit", GRID)
    def test_empty_row_jumps(self, policy, max_unit):
        """Leading, interior and trailing empty rows (the RJMP paths)."""
        row_ptr = np.asarray([0, 0, 0, 3, 3, 7, 7], dtype=np.int64)
        col_ind = np.asarray(
            [1, 5, 260, 0, 2, 70000, 70001], dtype=np.int64
        )
        assert_equivalent(row_ptr, col_ind, policy, max_unit)

    @pytest.mark.parametrize("policy,max_unit", GRID)
    def test_all_width_classes(self, policy, max_unit):
        """Deltas landing in u8 / u16 / u32 / u64 bodies."""
        deltas = np.asarray(
            [1, 3, 200, 300, 70_000, 80_000, 1 << 33, 1 << 34, 2, 4],
            dtype=np.int64,
        )
        col_ind = np.cumsum(deltas)
        row_ptr = np.asarray([0, col_ind.size], dtype=np.int64)
        enc = assert_equivalent(row_ptr, col_ind, policy, max_unit)
        if max_unit == 2:
            assert sum(enc.class_counts[1:]) > 0

    @pytest.mark.parametrize("policy,max_unit", GRID)
    def test_singleton_absorption_chain(self, policy, max_unit):
        """Alternating classes: greedy's pending-singleton parity."""
        deltas = np.asarray([3, 300, 2, 400, 1, 500, 9, 600, 4] * 3)
        col_ind = np.cumsum(deltas)
        row_ptr = np.asarray([0, col_ind.size], dtype=np.int64)
        assert_equivalent(row_ptr, col_ind, policy, max_unit)

    @pytest.mark.parametrize("policy,max_unit", GRID)
    def test_seq_runs(self, policy, max_unit):
        """Constant-stride stretches plus irregular tails."""
        cols = np.concatenate(
            [np.arange(0, 40, 2), [41, 47, 60], np.arange(100, 170, 7)]
        ).astype(np.int64)
        row_ptr = np.asarray([0, cols.size], dtype=np.int64)
        enc = assert_equivalent(row_ptr, cols, policy, max_unit)
        if policy == "seq" and max_unit == 255:
            assert enc.seq_units > 0

    def test_max_unit_exactly_fills_units(self):
        """Row lengths hitting the chop remainder on both sides."""
        for nnz in (254, 255, 256, 509, 510, 511):
            cols = np.arange(1, 3 * nnz, 3, dtype=np.int64)[:nnz]
            row_ptr = np.asarray([0, nnz], dtype=np.int64)
            assert_equivalent(row_ptr, cols, "greedy", 255)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(rows=matrices, policy=st.sampled_from(_POLICIES))
    def test_decode_recovers_columns(self, rows, policy):
        row_ptr, col_ind = from_rows(rows)
        enc = encode_ctl_batched(row_ptr, col_ind, policy=policy)
        du = decode_units(enc.ctl, int(col_ind.size))
        assert du.columns.tolist() == col_ind.tolist()
        rows_expanded = np.repeat(du.rows, du.sizes)
        expected = np.repeat(
            np.arange(len(rows)), np.diff(row_ptr)
        )
        assert rows_expanded.tolist() == expected.tolist()


class TestValidation:
    def test_unknown_policy(self):
        row_ptr = np.asarray([0, 1], dtype=np.int64)
        col_ind = np.asarray([0], dtype=np.int64)
        with pytest.raises(FormatError, match="policy"):
            encode_ctl_batched(row_ptr, col_ind, policy="zigzag")

    @pytest.mark.parametrize("max_unit", [0, 1, 256])
    def test_max_unit_out_of_range(self, max_unit):
        row_ptr = np.asarray([0, 1], dtype=np.int64)
        col_ind = np.asarray([0], dtype=np.int64)
        with pytest.raises(FormatError, match="max_unit"):
            encode_ctl_batched(row_ptr, col_ind, max_unit=max_unit)

    def test_empty_input_still_validates(self):
        empty = np.empty(0, dtype=np.int64)
        row_ptr = np.zeros(1, dtype=np.int64)
        with pytest.raises(FormatError):
            encode_ctl_batched(row_ptr, empty, policy="zigzag")
        with pytest.raises(FormatError):
            encode_ctl_batched(row_ptr, empty, max_unit=1)


class TestFormatIntegration:
    @pytest.fixture(scope="class")
    def csr(self):
        return CSRMatrix.from_dense(
            random_sparse_dense(60, 60, seed=7, quantize=8)
        )

    def test_encoders_build_identical_matrices(self, csr):
        batched = CSRDUMatrix.from_csr(csr, encoder="batched")
        reference = CSRDUMatrix.from_csr(csr, encoder="reference")
        assert batched.ctl == reference.ctl
        assert np.array_equal(batched.values, reference.values)

    def test_batched_attaches_unit_table(self, csr):
        du = CSRDUMatrix.from_csr(csr, encoder="batched")
        table = du._unit_table
        scanned = scan_units(du.ctl)
        for field in TABLE_FIELDS:
            assert np.array_equal(
                getattr(table, field), getattr(scanned, field)
            ), field

    def test_spmv_agrees_across_encoders(self, csr):
        x = np.arange(csr.ncols, dtype=np.float64)
        batched = CSRDUMatrix.from_csr(csr, encoder="batched")
        reference = CSRDUMatrix.from_csr(csr, encoder="reference")
        assert np.array_equal(batched.spmv(x), reference.spmv(x))
        assert np.array_equal(batched.spmv(x), csr.spmv(x))

    def test_unknown_encoder_rejected(self, csr):
        with pytest.raises(FormatError, match="encoder"):
            CSRDUMatrix.from_csr(csr, encoder="quantum")


class TestPackValueIndex:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32])
    def test_narrows_and_preserves(self, dtype):
        inverse = np.asarray([0, 3, 1, 2, 3, 0], dtype=np.int64)
        packed = pack_value_index(inverse, np.dtype(dtype))
        assert packed.dtype == np.dtype(dtype)
        assert packed.tolist() == inverse.tolist()
        assert packed.flags["C_CONTIGUOUS"]


class TestErrorParity:
    """Adversarial (row_ptr, col_ind) fail identically in both encoders.

    Both pipelines share the structural validation in
    :func:`repro.compress.delta.matrix_deltas`, so a malformed input
    raises the same :class:`~repro.errors.EncodingError` class from
    either — never a garbage stream from one and an error from the
    other.
    """

    def _outcome(self, encode, row_ptr, col_ind):
        try:
            return ("ok", bytes(encode(row_ptr, col_ind)))
        except EncodingError:
            return ("error", "EncodingError")

    def _both(self, row_ptr, col_ind):
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        col_ind = np.asarray(col_ind, dtype=np.int64)
        ref = self._outcome(reference_ctl, row_ptr, col_ind)
        bat = self._outcome(
            lambda rp, ci: encode_ctl_batched(rp, ci).ctl, row_ptr, col_ind
        )
        return ref, bat

    @settings(max_examples=150, deadline=None)
    @given(
        row_ptr=st.lists(
            st.integers(min_value=-3, max_value=12), min_size=0, max_size=6
        ),
        col_ind=st.lists(
            st.integers(min_value=0, max_value=9), min_size=0, max_size=10
        ),
    )
    def test_adversarial_inputs_agree(self, row_ptr, col_ind):
        ref, bat = self._both(row_ptr, col_ind)
        assert ref == bat

    @pytest.mark.parametrize(
        "row_ptr, col_ind",
        [
            ([0, -1, 3], [0, 1, 2]),        # negative interior
            ([1, 2, 3], [0, 1, 2]),         # nonzero start
            ([0, 2, 1, 3], [0, 1, 2]),      # non-monotone
            ([0, 1, 5], [0, 1, 2]),         # end past nnz
            ([0, 1, 2], [0, 1, 2]),         # end short of nnz
            ([], [0, 1]),                   # empty row_ptr, nnz > 0
        ],
    )
    def test_known_bad_row_ptr(self, row_ptr, col_ind):
        ref, bat = self._both(row_ptr, col_ind)
        assert ref == bat == ("error", "EncodingError")

    def test_good_input_still_byte_identical(self):
        rp, ci = from_rows([[0, 3, 7], [], [2, 4]])
        ref, bat = self._both(rp, ci)
        assert ref[0] == "ok"
        assert ref == bat
