"""Tests for segmented array primitives (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.nputil.segops import (
    SegmentedReducer,
    first_in_segment_mask,
    segment_ids_from_offsets,
    segment_lengths,
    segmented_cumsum,
    segmented_reduce,
)


def offsets_strategy(max_segments: int = 12, max_len: int = 8):
    """Random CSR-style offsets arrays (empty segments included)."""
    return st.lists(
        st.integers(min_value=0, max_value=max_len), max_size=max_segments, min_size=1
    ).map(lambda lens: np.concatenate(([0], np.cumsum(lens))).astype(np.int64))


class TestSegmentIds:
    def test_basic(self):
        ids = segment_ids_from_offsets(np.array([0, 2, 2, 5]), 5)
        assert ids.tolist() == [0, 0, 2, 2, 2]

    def test_empty_everything(self):
        assert segment_ids_from_offsets(np.array([0]), 0).size == 0

    def test_all_empty_segments(self):
        assert segment_ids_from_offsets(np.array([0, 0, 0]), 0).size == 0

    def test_rejects_bad_offsets(self):
        with pytest.raises(FormatError):
            segment_ids_from_offsets(np.array([0, 3]), 5)
        with pytest.raises(FormatError):
            segment_ids_from_offsets(np.array([1, 5]), 5)
        with pytest.raises(FormatError):
            segment_ids_from_offsets(np.array([0, 4, 2, 5]), 5)

    @given(offsets_strategy())
    def test_lengths_consistent(self, offsets):
        n = int(offsets[-1])
        ids = segment_ids_from_offsets(offsets, n)
        counts = np.bincount(ids, minlength=offsets.size - 1)
        assert counts.tolist() == segment_lengths(offsets).tolist()


class TestFirstInSegment:
    def test_basic(self):
        mask = first_in_segment_mask(np.array([0, 2, 2, 5]), 5)
        assert mask.tolist() == [True, False, True, False, False]

    def test_empty(self):
        assert first_in_segment_mask(np.array([0]), 0).size == 0


class TestSegmentedCumsum:
    def test_basic(self):
        out = segmented_cumsum(np.array([1, 2, 3, 4]), np.array([0, 2, 4]))
        assert out.tolist() == [1, 3, 3, 7]

    def test_with_empty_segments(self):
        out = segmented_cumsum(np.array([5, 1, 1]), np.array([0, 1, 1, 3]))
        assert out.tolist() == [5, 1, 2]

    def test_empty_input(self):
        out = segmented_cumsum(np.array([], dtype=np.int64), np.array([0, 0]))
        assert out.size == 0

    def test_single_segment_matches_cumsum(self):
        values = np.arange(10)
        out = segmented_cumsum(values, np.array([0, 10]))
        assert out.tolist() == np.cumsum(values).tolist()

    @given(offsets_strategy(), st.data())
    def test_matches_python_reference(self, offsets, data):
        n = int(offsets[-1])
        values = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=-100, max_value=100),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=np.int64,
        )
        out = segmented_cumsum(values, offsets)
        expected = np.empty(n, dtype=np.int64)
        for s in range(offsets.size - 1):
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            acc = 0
            for i in range(lo, hi):
                acc += int(values[i])
                expected[i] = acc
        assert out.tolist() == expected.tolist()


class TestSegmentedReduce:
    def test_basic_with_empty(self):
        out = segmented_reduce(np.array([1.0, 2.0, 3.0]), np.array([0, 2, 2, 3]))
        assert out.tolist() == [3.0, 0.0, 3.0]

    def test_all_empty(self):
        out = segmented_reduce(np.array([], dtype=np.float64), np.array([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_no_segments(self):
        out = segmented_reduce(np.array([], dtype=np.float64), np.array([0]))
        assert out.size == 0

    def test_int_input_widens(self):
        out = segmented_reduce(np.array([1, 2], dtype=np.int8), np.array([0, 2]))
        assert out.dtype == np.int64

    @given(offsets_strategy(), st.data())
    def test_matches_python_reference(self, offsets, data):
        n = int(offsets[-1])
        values = np.asarray(
            data.draw(
                st.lists(
                    st.floats(
                        min_value=-100, max_value=100, allow_nan=False
                    ),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=np.float64,
        )
        out = segmented_reduce(values, offsets)
        expected = [
            float(values[int(offsets[s]) : int(offsets[s + 1])].sum())
            for s in range(offsets.size - 1)
        ]
        assert np.allclose(out, expected)


class TestSegmentedReducer:
    """The pre-validated fast path must agree with segmented_reduce."""

    @given(offsets_strategy(), st.integers(0, 1 << 30))
    def test_matches_segmented_reduce(self, offsets, seed):
        n = int(offsets[-1])
        values = np.random.default_rng(seed).random(n)
        reducer = SegmentedReducer(offsets, n)
        assert np.array_equal(
            reducer.reduce(values), segmented_reduce(values, offsets)
        )

    def test_n_inferred_from_offsets(self):
        reducer = SegmentedReducer(np.array([0, 2, 5]))
        assert reducer.n == 5
        assert reducer.nseg == 2

    def test_reused_across_calls(self):
        reducer = SegmentedReducer(np.array([0, 2, 2, 3]), 3)
        a = reducer.reduce(np.array([1.0, 2.0, 3.0]))
        b = reducer.reduce(np.array([10.0, 20.0, 30.0]))
        assert a.tolist() == [3.0, 0.0, 3.0]
        assert b.tolist() == [30.0, 0.0, 30.0]

    def test_out_buffer(self):
        reducer = SegmentedReducer(np.array([0, 2, 2, 3]), 3)
        out = np.full(3, np.nan)
        ret = reducer.reduce(np.array([1.0, 2.0, 3.0]), out=out)
        assert ret is out
        assert out.tolist() == [3.0, 0.0, 3.0]  # empty segment overwritten

    def test_out_buffer_all_nonempty(self):
        reducer = SegmentedReducer(np.array([0, 2, 3]), 3)
        out = np.full(2, np.nan)
        assert reducer.reduce(np.ones(3), out=out).tolist() == [2.0, 1.0]

    def test_two_dimensional_values(self):
        reducer = SegmentedReducer(np.array([0, 2, 2, 3]), 3)
        vals = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        out = reducer.reduce(vals)
        assert out.tolist() == [[3.0, 30.0], [0.0, 0.0], [3.0, 30.0]]

    def test_all_segments_empty(self):
        reducer = SegmentedReducer(np.array([0, 0, 0]), 0)
        assert reducer.reduce(np.empty(0)).tolist() == [0.0, 0.0]
        out = np.ones(2)
        assert reducer.reduce(np.empty(0), out=out).tolist() == [0.0, 0.0]

    def test_rejects_bad_offsets(self):
        with pytest.raises(FormatError):
            SegmentedReducer(np.array([1, 3]), 3)
