"""CircuitBreaker state machine and BreakerBoard registry."""

import dataclasses

import pytest

from repro import telemetry
from repro.errors import BreakerOpenError, PartitionError
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)


def make(threshold=3, cooldown=5.0):
    now = [0.0]
    breaker = CircuitBreaker(
        "shard:0:g0",
        failure_threshold=threshold,
        cooldown_s=cooldown,
        clock=lambda: now[0],
    )
    return breaker, now


class TestStateMachine:
    def test_closed_allows_and_success_resets(self):
        breaker, _ = make(threshold=2)
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_success()  # reset the consecutive count
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1 < threshold after the reset

    def test_opens_at_threshold(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_cooldown_admits_single_probe(self):
        breaker, now = make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(5.0)
        now[0] = 6.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # a second concurrent caller is refused

    def test_probe_success_closes(self):
        breaker, now = make(threshold=1)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, now = make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(5.0)
        now[0] = 12.0
        assert breaker.allow()  # next probe after the fresh cooldown

    def test_guard_raises_typed(self):
        breaker, _ = make(threshold=1, cooldown=7.0)
        breaker.guard()  # closed: no-op
        breaker.record_failure()
        with pytest.raises(BreakerOpenError) as exc_info:
            breaker.guard()
        assert exc_info.value.key == "shard:0:g0"
        assert exc_info.value.retry_after_s == pytest.approx(7.0)

    def test_record_convenience(self):
        breaker, _ = make(threshold=1)
        breaker.record(False)
        assert breaker.state == OPEN
        breaker._state = HALF_OPEN
        breaker.record(True)
        assert breaker.state == CLOSED

    def test_validation(self):
        with pytest.raises(PartitionError):
            CircuitBreaker("k", failure_threshold=0)
        with pytest.raises(PartitionError):
            CircuitBreaker("k", cooldown_s=-1.0)


class TestTransitionEvents:
    def test_full_cycle_emits_open_half_open_close(self):
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            breaker, now = make(threshold=2)
            breaker.record_failure()
            breaker.record_failure()  # -> open
            now[0] = 10.0
            assert breaker.allow()  # -> half-open
            breaker.record_success()  # -> closed
            events = [
                dataclasses.asdict(ev)
                for ev in telemetry.get_collector().snapshot()
            ]
        finally:
            telemetry.set_collector(prev)
        names = [e["name"] for e in events]
        assert names == [
            "resilience.breaker.open",
            "resilience.breaker.half_open",
            "resilience.breaker.close",
        ]
        for e in events:
            assert e["attrs"]["key"] == "shard:0:g0"
            assert "failures" in e["attrs"]
        assert events[0]["attrs"]["failures"] == 2

    def test_open_emitted_once_per_trip(self):
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            breaker, _ = make(threshold=2)
            for _ in range(5):
                breaker.record_failure()
            events = telemetry.get_collector().snapshot()
        finally:
            telemetry.set_collector(prev)
        opens = [e for e in events if e.name == "resilience.breaker.open"]
        assert len(opens) == 1


class TestBreakerBoard:
    def test_get_or_create_shares_config(self):
        now = [0.0]
        board = BreakerBoard(
            failure_threshold=2, cooldown_s=9.0, clock=lambda: now[0]
        )
        a = board.get("shard:0:g0")
        assert board.get("shard:0:g0") is a
        b = board.get("shard:0:g1")  # a generation bump starts clean
        assert b is not a
        assert a.failure_threshold == 2
        assert a.cooldown_s == 9.0

    def test_states_snapshot(self):
        board = BreakerBoard(failure_threshold=1)
        board.get("a")
        b = board.get("b")
        b.record_failure()
        assert board.states() == {"a": CLOSED, "b": OPEN}
