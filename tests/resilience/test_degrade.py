"""Degradation ladder: SerialSpMV, ladder_for, ResilientExecutor."""

import numpy as np
import pytest

from tests.conftest import random_sparse_dense
from repro import telemetry
from repro.errors import (
    BreakerOpenError,
    DeadlineExceeded,
    FormatError,
    PartitionError,
)
from repro.formats.csr import CSRMatrix
from repro.resilience import chaos
from repro.resilience.degrade import ResilientExecutor, SerialSpMV, ladder_for
from repro.resilience.policy import Deadline


@pytest.fixture
def csr():
    return CSRMatrix.from_dense(random_sparse_dense(48, 48, seed=11))


@pytest.fixture
def x(csr):
    return np.random.default_rng(3).random(csr.shape[1])


@pytest.fixture(autouse=True)
def _disarm():
    yield
    chaos.disarm_all()


class TestLadderFor:
    def test_process_mmap_is_four_rungs(self):
        assert ladder_for("process", "mmap") == (
            ("process", "mmap"),
            ("process", "mem"),
            ("thread", "mem"),
            ("serial", "mem"),
        )

    def test_process_mem_skips_the_mmap_rung(self):
        assert ladder_for("process", "mem") == (
            ("process", "mem"),
            ("thread", "mem"),
            ("serial", "mem"),
        )

    def test_thread_mem(self):
        assert ladder_for("thread", "mem") == (
            ("thread", "mem"),
            ("serial", "mem"),
        )

    def test_serial_is_its_own_floor(self):
        assert ladder_for("serial", "mem") == (("serial", "mem"),)

    def test_storage_stays_degraded_below_the_failing_rung(self):
        # thread+mmap: mmap applies only to the starting backend.
        assert ladder_for("thread", "mmap") == (
            ("thread", "mmap"),
            ("thread", "mem"),
            ("serial", "mem"),
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(PartitionError):
            ladder_for("gpu", "mem")


class TestSerialSpMV:
    def test_matches_dense_reference(self, csr, x):
        with SerialSpMV(csr) as ex:
            assert np.array_equal(ex(x), csr.spmv(x))

    def test_out_parameter(self, csr, x):
        ex = SerialSpMV(csr)
        out = np.empty(csr.shape[0])
        got = ex(x, out=out)
        assert got is out
        assert np.array_equal(out, csr.spmv(x))

    def test_shape_mismatch_is_typed(self, csr):
        ex = SerialSpMV(csr)
        with pytest.raises(FormatError):
            ex(np.zeros(csr.shape[1] + 1))

    def test_executor_shape(self, csr):
        ex = SerialSpMV(csr)
        assert (ex.backend, ex.storage, ex.nthreads) == ("serial", "mem", 1)


class TestResilientExecutor:
    def test_healthy_top_rung_no_degradation(self, csr, x):
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            with ResilientExecutor(
                csr, 2, backend="thread", storage="mem"
            ) as ex:
                got = ex(x)
            events = telemetry.get_collector().snapshot()
        finally:
            telemetry.set_collector(prev)
        assert np.array_equal(got, csr.spmv(x))
        assert not [e for e in events if e.name == "resilience.degrade"]

    def test_degrades_to_serial_bit_identical(self, csr, x):
        # Every thread chunk fails -> the thread rung is undegradable.
        chaos.arm(
            "thread.chunk",
            "raise",
            match={},
            times=10**6,
            exc_factory=lambda: OSError("injected"),
        )
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            with ResilientExecutor(
                csr, 2, backend="thread", storage="mem"
            ) as ex:
                got = ex(x)
                rung = ex.active_rung
            events = telemetry.get_collector().snapshot()
        finally:
            telemetry.set_collector(prev)
        assert rung == ("serial", "mem")
        assert np.array_equal(got, csr.spmv(x))
        degrades = [e for e in events if e.name == "resilience.degrade"]
        assert len(degrades) == 1
        attrs = degrades[0].attrs
        assert (attrs["from_backend"], attrs["to_backend"]) == (
            "thread",
            "serial",
        )
        assert attrs["error"] == "ExecutionError"

    def test_deadline_exceeded_is_not_absorbed(self, csr, x):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        ex = ResilientExecutor(
            csr, 2, backend="thread", storage="mem", deadline=deadline
        )
        now[0] = 5.0
        with pytest.raises(DeadlineExceeded):
            ex(x)
        ex.close()

    def test_all_rungs_open_raises_breaker_open(self, csr, x):
        now = [0.0]
        ex = ResilientExecutor(
            csr,
            2,
            backend="thread",
            storage="mem",
            breaker_threshold=1,
            breaker_cooldown_s=60.0,
            clock=lambda: now[0],
        )
        for rung in ex.ladder:
            ex.breakers.get(ex._rung_key(rung)).record_failure()
        with pytest.raises(BreakerOpenError) as exc_info:
            ex(x)
        assert exc_info.value.retry_after_s == pytest.approx(60.0)
        ex.close()

    def test_recovers_up_the_ladder_after_cooldown(self, csr, x):
        now = [0.0]
        chaos.arm(
            "thread.chunk",
            "raise",
            match={},
            times=10**6,
            exc_factory=lambda: OSError("injected"),
        )
        ex = ResilientExecutor(
            csr,
            2,
            backend="thread",
            storage="mem",
            breaker_threshold=1,
            breaker_cooldown_s=5.0,
            clock=lambda: now[0],
        )
        assert np.array_equal(ex(x), csr.spmv(x))
        assert ex.active_rung == ("serial", "mem")
        # While the thread breaker is open, calls stay on serial without
        # re-attempting the broken rung.
        assert np.array_equal(ex(x), csr.spmv(x))
        assert ex.active_rung == ("serial", "mem")
        # Heal the fault; after the cooldown the half-open probe readopts
        # the thread rung.
        chaos.disarm_all()
        now[0] = 6.0
        assert np.array_equal(ex(x), csr.spmv(x))
        assert ex.active_rung == ("thread", "mem")
        ex.close()

    def test_caller_bugs_propagate(self, csr):
        with ResilientExecutor(csr, 2, backend="thread", storage="mem") as ex:
            with pytest.raises(FormatError):
                ex(np.zeros(csr.shape[1] + 1))
            # No degradation happened: the top rung is still active.
            assert ex.active_rung == ("thread", "mem")

    def test_closed_executor_refuses(self, csr, x):
        ex = ResilientExecutor(csr, 2, backend="thread", storage="mem")
        ex.close()
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            ex(x)
