"""RetryPolicy / RetryBudget / Deadline semantics."""

import dataclasses

import pytest

from repro import telemetry
from repro.errors import (
    DeadlineExceeded,
    EncodingError,
    FormatError,
    IntegrityError,
    PartitionError,
    StorageError,
)
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    RetryBudget,
    RetryPolicy,
    classify_error,
)


class TestClassify:
    @pytest.mark.parametrize(
        "exc, cls",
        [
            (EncodingError("x"), "decode"),
            (IntegrityError("x"), "decode"),
            (FormatError("x"), "decode"),
            (StorageError("x"), "storage"),
            (TimeoutError("x"), "timeout"),
            (BrokenPipeError("x"), "worker"),
            (ConnectionError("x"), "worker"),
            (ValueError("x"), None),
            (RuntimeError("x"), None),
        ],
    )
    def test_classes(self, exc, cls):
        assert classify_error(exc) == cls


class TestRetryBudget:
    def test_spend_to_exhaustion(self):
        budget = RetryBudget(2)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2
        assert budget.remaining == 0

    def test_unbounded(self):
        budget = RetryBudget(None)
        for _ in range(100):
            assert budget.try_spend()
        assert budget.remaining is None

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            RetryBudget(-1)


class TestDeadline:
    def test_remaining_and_expiry(self):
        now = [0.0]
        d = Deadline(2.0, clock=lambda: now[0])
        assert d.remaining() == pytest.approx(2.0)
        assert not d.expired()
        now[0] = 3.0
        assert d.remaining() == 0.0
        assert d.expired()

    def test_cap_takes_the_tighter_bound(self):
        now = [0.0]
        d = Deadline(1.0, clock=lambda: now[0])
        assert d.cap(10.0) == pytest.approx(1.0)
        assert d.cap(0.25) == pytest.approx(0.25)
        # No local bound: the remainder is the bound.
        assert d.cap(None) == pytest.approx(1.0)
        # Expired: a tiny positive wait, never zero/negative.
        now[0] = 5.0
        assert d.cap(10.0) == pytest.approx(1e-3)

    def test_check_raises_typed_and_emits(self):
        now = [0.0]
        d = Deadline(0.5, clock=lambda: now[0])
        d.check("early")  # alive: no-op
        now[0] = 1.0
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            with pytest.raises(DeadlineExceeded) as exc_info:
                d.check("late.site")
            events = [
                dataclasses.asdict(ev)
                for ev in telemetry.get_collector().snapshot()
            ]
        finally:
            telemetry.set_collector(prev)
        assert exc_info.value.label == "late.site"
        assert exc_info.value.budget_s == pytest.approx(0.5)
        expired = [e for e in events if e["name"] == "resilience.deadline.expired"]
        assert len(expired) == 1
        assert expired[0]["attrs"]["label"] == "late.site"

    def test_nonpositive_rejected(self):
        with pytest.raises(PartitionError):
            Deadline(0.0)


class TestRetryPolicy:
    def test_default_reproduces_single_decode_retry(self):
        p = DEFAULT_RETRY_POLICY
        assert p.max_attempts == 2
        assert p.retry_on == ("decode",)
        assert p.retryable(EncodingError("x"))
        assert not p.retryable(StorageError("x"))
        assert not p.retryable(ValueError("x"))

    def test_validation(self):
        with pytest.raises(PartitionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PartitionError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(PartitionError):
            RetryPolicy(retry_on=("decode", "nonsense"))

    def test_should_retry_order(self):
        p = RetryPolicy(max_attempts=3, retry_on=("decode",), budget=10)
        budget = p.new_budget()
        # Non-retryable class refuses without spending budget.
        assert not p.should_retry(ValueError("x"), 1, budget=budget)
        assert budget.spent == 0
        # Attempt ceiling refuses without spending budget.
        assert not p.should_retry(EncodingError("x"), 3, budget=budget)
        assert budget.spent == 0
        # Expired deadline refuses without spending budget.
        now = [10.0]
        d = Deadline(1.0, clock=lambda: now[0])
        now[0] = 100.0
        assert not p.should_retry(EncodingError("x"), 1, budget=budget, deadline=d)
        assert budget.spent == 0
        # A granted retry spends exactly one.
        assert p.should_retry(EncodingError("x"), 1, budget=budget)
        assert budget.spent == 1

    def test_budget_shared_across_decisions(self):
        p = RetryPolicy(max_attempts=5, budget=2)
        budget = p.new_budget()
        assert p.should_retry(EncodingError("x"), 1, budget=budget)
        assert p.should_retry(EncodingError("x"), 1, budget=budget)
        assert not p.should_retry(EncodingError("x"), 1, budget=budget)

    def test_backoff_full_jitter_deterministic(self):
        p = RetryPolicy(base_delay_s=0.1, max_delay_s=0.4, seed=7)
        a = [p.backoff_s(n, p.new_rng()) for n in (1, 2, 3, 4)]
        b = [p.backoff_s(n, p.new_rng()) for n in (1, 2, 3, 4)]
        assert a == b  # seeded rng -> reproducible
        caps = [0.1, 0.2, 0.4, 0.4]  # exponential, capped at max_delay_s
        for delay, cap in zip(a, caps):
            assert 0.0 <= delay <= cap

    def test_zero_base_delay_means_immediate(self):
        p = RetryPolicy()
        assert p.backoff_s(1) == 0.0
        assert p.backoff_s(5) == 0.0


class TestRunLoop:
    def test_success_first_try(self):
        p = RetryPolicy()
        assert p.run(lambda t: t + 1, target=41) == 42

    def test_rebuild_produces_the_new_target(self):
        p = RetryPolicy()
        calls = []

        def attempt(target):
            calls.append(target)
            if target == "stale":
                raise EncodingError("stale bytes")
            return target

        got = p.run(attempt, target="stale", rebuild=lambda: "fresh")
        assert got == "fresh"
        assert calls == ["stale", "fresh"]

    def test_final_failure_propagates_unchanged(self):
        p = RetryPolicy(max_attempts=2)
        boom = EncodingError("persistent")

        def attempt(_):
            raise boom

        with pytest.raises(EncodingError) as exc_info:
            p.run(attempt)
        assert exc_info.value is boom

    def test_non_retryable_never_retries(self):
        p = RetryPolicy(max_attempts=5)
        calls = []

        def attempt(_):
            calls.append(1)
            raise ValueError("caller bug")

        with pytest.raises(ValueError):
            p.run(attempt)
        assert len(calls) == 1

    def test_on_retry_fires_before_backoff_sleep(self):
        p = RetryPolicy(max_attempts=3, base_delay_s=0.1, seed=3)
        order = []

        def attempt(_):
            if len(order) < 2:  # fail until one retry happened
                raise EncodingError("x")
            return "done"

        p.run(
            attempt,
            on_retry=lambda exc, attempt_n: order.append(("retry", attempt_n)),
            sleep=lambda s: order.append(("sleep", s)),
            rng=p.new_rng(),
        )
        assert order[0][0] == "retry"
        assert order[1][0] == "sleep"

    def test_budget_bounds_total_retries(self):
        p = RetryPolicy(max_attempts=10, budget=3)
        budget = p.new_budget()
        attempts = []

        def attempt(_):
            attempts.append(1)
            raise EncodingError("x")

        with pytest.raises(EncodingError):
            p.run(attempt, budget=budget)
        # 1 initial + 3 budgeted retries.
        assert len(attempts) == 4
        # The shared budget is drained: a second unit of work gets none.
        attempts.clear()
        with pytest.raises(EncodingError):
            p.run(attempt, budget=budget)
        assert len(attempts) == 1

    def test_deadline_stops_the_loop(self):
        now = [0.0]
        d = Deadline(1.0, clock=lambda: now[0])
        p = RetryPolicy(max_attempts=10)
        attempts = []

        def attempt(_):
            attempts.append(1)
            now[0] = 5.0  # the first attempt blows the budget
            raise EncodingError("x")

        with pytest.raises(EncodingError):
            p.run(attempt, deadline=d)
        assert len(attempts) == 1
