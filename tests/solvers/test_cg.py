"""Tests for Conjugate Gradient on compressed formats."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, FormatError
from repro.formats import CSRMatrix, convert
from repro.matrices.generators import stencil_2d
from repro.matrices.values import set_matrix_values
from repro.solvers import conjugate_gradient


def poisson_system(nx=8, ny=8, seed=0):
    """SPD 2-D Laplacian system with a known solution."""
    from repro.formats.conversions import to_csr

    pattern = to_csr(stencil_2d(nx, ny))
    # Laplacian values: 4 (or neighbour count) on diag, -1 off diag.
    rows = pattern.row_of_entry()
    vals = np.where(rows == pattern.col_ind, 5.0, -1.0)
    A = set_matrix_values(pattern, vals)
    rng = np.random.default_rng(seed)
    x_true = rng.random(A.ncols)
    return A, A.spmv(x_true), x_true


class TestConvergence:
    def test_solves_poisson(self):
        A, b, x_true = poisson_system()
        res = conjugate_gradient(A, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)
        assert res.spmv_calls >= res.iterations

    @pytest.mark.parametrize("fmt", ["csr-du", "csr-vi", "csr-du-vi", "dcsr", "bcsr"])
    def test_compressed_formats_drop_in(self, fmt):
        """The paper's deployment story: encode once, iterate."""
        A, b, x_true = poisson_system()
        res = conjugate_gradient(convert(A, fmt), b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_identity_converges_instantly(self):
        A = CSRMatrix.from_dense(np.eye(5))
        b = np.arange(5.0)
        res = conjugate_gradient(A, b)
        assert res.converged
        assert res.iterations <= 2
        assert np.allclose(res.x, b)

    def test_zero_rhs(self):
        A, _, _ = poisson_system()
        res = conjugate_gradient(A, np.zeros(A.ncols))
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.x == 0)

    def test_warm_start(self):
        A, b, x_true = poisson_system()
        res = conjugate_gradient(A, b, x0=x_true)
        assert res.converged
        assert res.iterations == 0


class TestFailureModes:
    def test_non_spd_detected(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(ConvergenceError, match="SPD"):
            conjugate_gradient(A, np.array([1.0, 1.0]))

    def test_maxiter_exhaustion(self):
        A, b, _ = poisson_system(12, 12)
        res = conjugate_gradient(A, b, tol=1e-14, maxiter=2)
        assert not res.converged
        assert res.iterations == 2

    def test_maxiter_raises_when_asked(self):
        A, b, _ = poisson_system(12, 12)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(A, b, tol=1e-14, maxiter=2, raise_on_fail=True)

    def test_nonsquare_rejected(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(FormatError, match="square"):
            conjugate_gradient(A, np.ones(2))

    def test_bad_rhs_shape(self):
        A, _, _ = poisson_system()
        with pytest.raises(FormatError):
            conjugate_gradient(A, np.ones(3))
