"""Tests for power iteration."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, convert
from repro.solvers import power_iteration


class TestPowerIteration:
    def test_dominant_eigenvector(self):
        dense = np.diag([5.0, 2.0, 1.0])
        dense[0, 1] = 0.1
        A = CSRMatrix.from_dense(dense)
        res = power_iteration(A, tol=1e-12)
        assert res.converged
        # Dominant eigenvector ~ e0 direction.
        v = res.x / np.sign(res.x[np.argmax(np.abs(res.x))])
        assert abs(v[0]) > 0.99

    def test_matches_numpy_eig(self):
        rng = np.random.default_rng(6)
        dense = rng.random((12, 12))
        dense = dense + dense.T + 12 * np.eye(12)  # symmetric, dominant
        A = CSRMatrix.from_dense(dense)
        res = power_iteration(A, tol=1e-12, maxiter=5000)
        w, V = np.linalg.eigh(dense)
        top = V[:, -1]
        cos = abs(float(res.x @ top))
        assert cos > 1 - 1e-6

    @pytest.mark.parametrize("fmt", ["csr-du", "csr-vi"])
    def test_compressed_formats(self, fmt):
        dense = np.diag([4.0, 1.0]) + 0.25
        A = convert(CSRMatrix.from_dense(dense), fmt)
        res = power_iteration(A, tol=1e-10)
        assert res.converged

    def test_budget(self):
        rng = np.random.default_rng(7)
        dense = rng.random((10, 10))
        A = CSRMatrix.from_dense(dense)
        res = power_iteration(A, tol=1e-16, maxiter=3)
        assert res.iterations <= 3

    def test_nonsquare(self):
        with pytest.raises(FormatError):
            power_iteration(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_zero_matrix(self):
        A = CSRMatrix.from_dense(np.zeros((3, 3)))
        res = power_iteration(A)
        assert res.converged
