"""Tests for Jacobi iteration."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, FormatError
from repro.formats import CSRMatrix, convert
from repro.solvers import jacobi


def diag_dominant(n=20, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) * (rng.random((n, n)) < 0.2)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    A = CSRMatrix.from_dense(dense)
    x_true = rng.random(n)
    return A, A.spmv(x_true), x_true


class TestJacobi:
    def test_converges_diag_dominant(self):
        A, b, x_true = diag_dominant()
        res = jacobi(A, b, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    @pytest.mark.parametrize("fmt", ["csr-du", "csr-vi"])
    def test_compressed_formats(self, fmt):
        A, b, x_true = diag_dominant()
        res = jacobi(convert(A, fmt), b, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_weighted(self):
        A, b, x_true = diag_dominant()
        res = jacobi(A, b, tol=1e-12, omega=0.8)
        assert res.converged

    def test_zero_diagonal_rejected(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ConvergenceError, match="diagonal"):
            jacobi(A, np.ones(2))

    def test_nonconvergent_budget(self):
        # Not diagonally dominant: may stall; the budget must hold.
        A = CSRMatrix.from_dense(np.array([[1.0, 3.0], [3.0, 1.0]]))
        res = jacobi(A, np.ones(2), maxiter=10)
        assert not res.converged
        assert res.iterations == 10

    def test_nonsquare(self):
        with pytest.raises(FormatError):
            jacobi(CSRMatrix.from_dense(np.ones((2, 3))), np.ones(2))

    def test_spmv_calls_counted(self):
        A, b, _ = diag_dominant()
        res = jacobi(A, b, tol=1e-10)
        assert res.spmv_calls == res.iterations + 1
