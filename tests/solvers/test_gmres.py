"""Tests for restarted GMRES."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, convert
from repro.solvers import gmres


def nonsymmetric_system(n=30, seed=1):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) * (rng.random((n, n)) < 0.15)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 2.0)
    dense[0, n - 1] += 1.0  # break symmetry explicitly
    A = CSRMatrix.from_dense(dense)
    x_true = rng.random(n)
    return A, A.spmv(x_true), x_true


class TestGMRES:
    def test_solves_nonsymmetric(self):
        A, b, x_true = nonsymmetric_system()
        res = gmres(A, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_restart_smaller_than_dimension(self):
        A, b, x_true = nonsymmetric_system(40)
        res = gmres(A, b, tol=1e-10, restart=5)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-5)

    @pytest.mark.parametrize("fmt", ["csr-du", "csr-vi", "csr-du-vi"])
    def test_compressed_formats(self, fmt):
        A, b, x_true = nonsymmetric_system()
        res = gmres(convert(A, fmt), b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_warm_start_exact(self):
        A, b, x_true = nonsymmetric_system()
        res = gmres(A, b, x0=x_true)
        assert res.converged
        assert res.iterations == 0

    def test_maxiter_budget(self):
        A, b, _ = nonsymmetric_system(50, seed=3)
        res = gmres(A, b, tol=1e-15, maxiter=4, restart=2)
        assert res.iterations <= 4

    def test_identity_one_step(self):
        A = CSRMatrix.from_dense(np.eye(6))
        b = np.arange(6.0) + 1
        res = gmres(A, b)
        assert res.converged
        assert np.allclose(res.x, b)

    def test_bad_restart(self):
        A, b, _ = nonsymmetric_system()
        with pytest.raises(FormatError):
            gmres(A, b, restart=0)

    def test_nonsquare(self):
        with pytest.raises(FormatError):
            gmres(CSRMatrix.from_dense(np.ones((2, 3))), np.ones(2))

    def test_matches_dense_solve(self):
        A, b, _ = nonsymmetric_system(25, seed=5)
        res = gmres(A, b, tol=1e-12)
        expected = np.linalg.solve(A.to_dense(), b)
        assert np.allclose(res.x, expected, atol=1e-7)
