"""Tests for BiCGSTAB and Jacobi-preconditioned CG."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, FormatError
from repro.formats import CSRMatrix, convert
from repro.solvers import bicgstab, conjugate_gradient, preconditioned_cg

from tests.solvers.test_cg import poisson_system
from tests.solvers.test_gmres import nonsymmetric_system


class TestBiCGSTAB:
    def test_solves_nonsymmetric(self):
        A, b, x_true = nonsymmetric_system()
        res = bicgstab(A, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_two_spmv_per_iteration(self):
        A, b, _ = nonsymmetric_system()
        res = bicgstab(A, b, tol=1e-10)
        assert res.spmv_calls <= 2 * res.iterations + 1

    @pytest.mark.parametrize("fmt", ["csr-du", "csr-vi", "csr-du-vi"])
    def test_compressed_formats(self, fmt):
        A, b, x_true = nonsymmetric_system()
        res = bicgstab(convert(A, fmt), b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_spd_system_too(self):
        A, b, x_true = poisson_system()
        res = bicgstab(A, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_budget(self):
        A, b, _ = nonsymmetric_system(40, seed=9)
        res = bicgstab(A, b, tol=1e-15, maxiter=2)
        assert res.iterations <= 2

    def test_warm_start(self):
        A, b, x_true = nonsymmetric_system()
        res = bicgstab(A, b, x0=x_true)
        assert res.converged
        assert res.iterations == 0

    def test_nonsquare(self):
        with pytest.raises(FormatError):
            bicgstab(CSRMatrix.from_dense(np.ones((2, 3))), np.ones(2))

    def test_zero_rhs(self):
        A, _, _ = nonsymmetric_system()
        res = bicgstab(A, np.zeros(A.nrows))
        assert res.converged and res.iterations == 0


class TestPreconditionedCG:
    def test_solves_poisson(self):
        A, b, x_true = poisson_system()
        res = preconditioned_cg(A, b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_helps_on_stiff_diagonal(self):
        """Badly scaled diagonal: PCG needs far fewer iterations."""
        rng = np.random.default_rng(5)
        n = 120
        dense = np.zeros((n, n))
        scale = 10.0 ** rng.uniform(0, 4, size=n)
        for i in range(n - 1):
            dense[i, i + 1] = dense[i + 1, i] = -0.3
        np.fill_diagonal(dense, scale + 0.6)
        A = CSRMatrix.from_dense(dense)
        x_true = rng.random(n)
        b = A.spmv(x_true)
        plain = conjugate_gradient(A, b, tol=1e-10, maxiter=4000)
        pre = preconditioned_cg(A, b, tol=1e-10, maxiter=4000)
        assert pre.converged
        assert pre.iterations < plain.iterations

    @pytest.mark.parametrize("fmt", ["csr-du", "csr-vi"])
    def test_compressed_formats(self, fmt):
        A, b, x_true = poisson_system()
        res = preconditioned_cg(convert(A, fmt), b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-6)

    def test_nonpositive_diagonal_rejected(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 2.0], [2.0, -1.0]]))
        with pytest.raises(ConvergenceError, match="diagonal"):
            preconditioned_cg(A, np.ones(2))

    def test_zero_rhs(self):
        A, _, _ = poisson_system()
        res = preconditioned_cg(A, np.zeros(A.ncols))
        assert res.converged and res.iterations == 0
