"""Fault injection: deterministic, isolated, and honest about scope."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.formats import CSRMatrix, convert
from repro.robust import (
    FAULTS,
    FaultNotApplicable,
    applicable_faults,
    get_fault,
    inject,
    seal,
)

from tests.conftest import random_sparse_dense

FORMATS = ("csr", "csr-vi", "csr-du", "csr-du-vi")


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(32, 32, seed=9, quantize=6, empty_rows=True)
    )


class TestCatalogue:
    def test_every_format_covered(self):
        for fmt in FORMATS:
            faults = applicable_faults(fmt)
            assert faults, fmt
            # At least one plausible (seal-only) fault per format.
            assert any(not f.structural for f in faults), fmt

    def test_get_fault_round_trip(self):
        for fault in FAULTS:
            assert get_fault(fault.name) is fault

    def test_unknown_fault(self):
        with pytest.raises(ReproError, match="unknown fault"):
            get_fault("cosmic-ray")

    def test_must_catch_implied_by_structural(self):
        """Structural faults are by definition catchable without a seal,
        so every catalogued structural fault is also must-catch."""
        for fault in FAULTS:
            if fault.structural:
                assert fault.must_catch, fault.name


class TestInject:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_original_untouched(self, csr, fmt):
        healthy = convert(csr, fmt)
        x = np.arange(healthy.ncols, dtype=np.float64)
        y_ref = healthy.spmv(x)
        before = {
            k: (bytes(v) if isinstance(v, (bytes, bytearray)) else v.copy())
            for k, v in vars(healthy).items()
            if isinstance(v, (np.ndarray, bytes, bytearray))
        }
        for fault in applicable_faults(fmt):
            try:
                inject(healthy, fault, 0)
            except FaultNotApplicable:
                continue
        for name, value in before.items():
            now = getattr(healthy, name)
            if isinstance(value, bytes):
                assert now == value, name
            else:
                assert np.array_equal(now, value), name
        assert np.array_equal(healthy.spmv(x), y_ref)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_deterministic(self, csr, fmt):
        healthy = convert(csr, fmt)
        for fault in applicable_faults(fmt):
            a = inject(healthy, fault, 5)
            b = inject(healthy, fault, 5)
            for name, value in vars(a).items():
                if isinstance(value, bytes):
                    assert value == getattr(b, name), (fault.name, name)
                elif isinstance(value, np.ndarray):
                    equal_nan = np.issubdtype(value.dtype, np.floating)
                    assert np.array_equal(
                        value, getattr(b, name), equal_nan=equal_nan
                    ), (fault.name, name)

    def test_accepts_fault_name(self, csr):
        du = convert(csr, "csr-du")
        victim = inject(du, "ctl-truncate", 0)
        assert len(victim.ctl) < len(du.ctl)

    def test_in_place_injection(self, csr):
        du = convert(csr, "csr-du")
        victim = inject(du, "ctl-truncate", 0, copy_matrix=False)
        assert victim is du

    def test_seal_carried_onto_victim(self, csr):
        """The corruption model is post-seal: the victim keeps the
        healthy seal, so verify() can use it as evidence."""
        healthy = seal(
            CSRMatrix(
                csr.nrows,
                csr.ncols,
                csr.row_ptr.copy(),
                csr.col_ind.copy(),
                csr.values.copy(),
            )
        )
        victim = inject(healthy, "value-bit-flip", 0)
        assert getattr(victim, "_integrity_seal") == getattr(
            healthy, "_integrity_seal"
        )
        with pytest.raises(ReproError):
            victim.verify()
        healthy.verify()

    def test_not_applicable(self):
        # A matrix whose interior row_ptr entries are all equal cannot
        # be shuffled into a different permutation.
        dense = np.zeros((3, 3))
        dense[0, 0] = 1.0
        dense[2, 2] = 2.0
        csr = CSRMatrix.from_dense(dense)
        with pytest.raises(FaultNotApplicable):
            inject(csr, "col-ind-disorder", 0)

    def test_victim_caches_dropped(self, csr):
        du = convert(csr, "csr-du")
        x = np.ones(du.ncols)
        du.spmv(x)  # builds plan/unit caches on the healthy matrix
        victim = inject(du, "ctl-bit-flip", 1)
        for attr in ("units", "_kernel_plan", "_unit_table"):
            assert attr not in vars(victim), attr
