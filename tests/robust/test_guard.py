"""Guarded kernel fallback: degrade across tiers, never change the answer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import EncodingError, FormatError, IntegrityError
from repro.formats import CSRMatrix, convert
from repro.kernels.registry import FALLBACK_ORDER, fallback_chain, get_kernel
from repro.robust import GuardedKernel, guarded_spmv, inject

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(48, 40, seed=21, quantize=8, empty_rows=True)
    )


@pytest.fixture
def collector():
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        yield telemetry.get_collector()
    finally:
        telemetry.set_collector(prev)


def _events(collector, name):
    import dataclasses

    return [
        dataclasses.asdict(ev)
        for ev in collector.snapshot()
        if ev.name == name
    ]


class TestFallbackChain:
    def test_order(self):
        chain = fallback_chain("csr-du")
        tiers = [spec.tier for spec in chain]
        assert tiers == [t for t in FALLBACK_ORDER if t in tiers]
        assert tiers[-1] == "reference"

    def test_start_tier_skips_ahead(self):
        chain = fallback_chain("csr-du", "reference")
        assert [spec.tier for spec in chain] == ["reference"]

    def test_unknown_start_tier(self):
        with pytest.raises(FormatError):
            fallback_chain("csr-du", "quantum")


class TestGuardedKernel:
    @pytest.mark.parametrize("fmt", ("csr", "csr-du", "csr-vi", "csr-du-vi"))
    def test_healthy_matches_unguarded(self, csr, fmt, collector):
        m = convert(csr, fmt)
        x = np.random.default_rng(2).random(m.ncols)
        assert np.array_equal(guarded_spmv(m, x), m.spmv(x))
        # No failure, no fallback events.
        assert _events(collector, "kernel.fallback") == []

    def test_fallback_is_bit_identical(self, csr, collector):
        """A failing first tier degrades to the next; the answer is the
        same bits the healthy chain would have produced."""
        du = convert(csr, "csr-du")
        x = np.random.default_rng(3).random(du.ncols)
        expected = du.spmv(x)

        calls = []

        def failing(matrix, x_):
            calls.append(1)
            raise EncodingError("poisoned plan")

        failing.tier = "batched"
        guarded = GuardedKernel(
            "csr-du", chain=(failing, get_kernel("csr-du", "vectorized"))
        )
        got = guarded(du, x)
        assert calls == [1]
        assert np.array_equal(got, expected)
        events = _events(collector, "kernel.fallback")
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["from_tier"] == "batched"
        assert attrs["to_tier"] == "vectorized"
        assert attrs["error"] == "EncodingError"
        assert attrs["format"] == "csr-du"

    def test_corrupted_ctl_exhausts_chain(self, csr, collector):
        """Truncated ctl fails every tier (they all decode the same
        stream): the guard raises instead of returning garbage."""
        du = inject(convert(csr, "csr-du"), "ctl-truncate", 0)
        x = np.ones(du.ncols)
        guarded = GuardedKernel("csr-du")
        with pytest.raises(IntegrityError, match="kernel tiers failed"):
            guarded(du, x)
        events = _events(collector, "kernel.fallback")
        assert len(events) == len(guarded.chain)
        assert events[-1]["attrs"]["to_tier"] == "none"

    def test_non_recoverable_propagates(self, csr):
        du = convert(csr, "csr-du")

        def broken(matrix, x_):
            raise ZeroDivisionError("programming error")

        guarded = GuardedKernel("csr-du", chain=(broken,))
        with pytest.raises(ZeroDivisionError):
            guarded(du, np.ones(du.ncols))

    def test_bad_x_rejected_before_chain(self, csr):
        du = convert(csr, "csr-du")
        with pytest.raises(FormatError, match="expected"):
            GuardedKernel("csr-du")(du, np.ones(du.ncols + 1))

    def test_empty_chain_rejected(self):
        with pytest.raises(FormatError, match="empty fallback chain"):
            GuardedKernel("csr-du", chain=())


class TestRegistryTier:
    def test_guarded_tier_resolves(self, csr):
        spec = get_kernel("csr-du", "guarded")
        assert spec.tier == "guarded"
        du = convert(csr, "csr-du")
        x = np.random.default_rng(4).random(du.ncols)
        assert np.array_equal(spec(du, x), du.spmv(x))
