"""Integrity validators: ctl walker, per-format checkers, checksum seal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ
from repro.errors import IntegrityError
from repro.formats import CSRMatrix, convert
from repro.robust.validate import (
    SEAL_ATTR,
    check_seal,
    check_values,
    is_sealed,
    seal,
    verify_matrix,
    walk_ctl,
)

from tests.conftest import random_sparse_dense

ALL_FORMATS = (
    "csr",
    "csr-vi",
    "csr-du",
    "csr-du-vi",
    "coo",
    "csc",
    "dcsr",
    "ell",
    "jds",
    "bcsr",
)


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(40, 33, seed=3, quantize=8, empty_rows=True)
    )


def fresh(csr, fmt):
    """An independent conversion safe to corrupt in a test.

    ``convert(csr, "csr")`` returns the input itself, so mutating tests
    must not touch it — they would poison the shared fixture.
    """
    if fmt == "csr":
        return CSRMatrix(
            csr.nrows,
            csr.ncols,
            csr.row_ptr.copy(),
            csr.col_ind.copy(),
            csr.values.copy(),
        )
    return convert(csr, fmt)


class TestWalkCtl:
    """Hand-crafted streams hitting every walker error branch.

    Unit wire layout: ``[flags, usize, varints..., deltas...]`` with
    class bits 0-1 (0 = u8), ``FLAG_NR`` opening a row.
    """

    def test_real_stream_stats(self, csr):
        du = convert(csr, "csr-du")
        stats = walk_ctl(
            du.ctl, nnz=du.nnz, nrows=du.nrows, ncols=du.ncols
        )
        assert stats.nnz == du.nnz
        assert 0 <= stats.last_row < du.nrows
        assert 0 <= stats.max_col < du.ncols
        assert stats.nunits >= 1

    def test_empty_stream(self):
        stats = walk_ctl(b"", nnz=0)
        assert stats.nunits == 0
        assert stats.last_row == -1

    def _die(self, ctl, match, **kwargs):
        with pytest.raises(IntegrityError, match=match) as exc_info:
            walk_ctl(bytes(ctl), **kwargs)
        return exc_info.value

    def test_valid_minimal_unit(self):
        # NR unit, usize 2, ujmp 0, one u8 delta of 5: row 0, cols {0, 5}.
        stats = walk_ctl(bytes([FLAG_NR, 2, 0, 5]))
        assert (stats.nunits, stats.nnz) == (1, 2)
        assert (stats.last_row, stats.max_col) == (0, 5)

    def test_truncated_header(self):
        err = self._die([FLAG_NR], "truncated unit header")
        assert err.byte_offset == 0

    def test_unknown_flag_bits(self):
        self._die([FLAG_NR | 0x80, 1, 0], "unknown flag bits")

    def test_zero_unit_size(self):
        self._die([FLAG_NR, 0, 0], "unit size 0")

    def test_rjmp_without_nr(self):
        self._die([FLAG_RJMP, 1, 0, 0], "RJMP flag without NR")

    def test_stream_must_open_with_row(self):
        self._die([0x00, 1, 1], "does not start with a new-row unit")

    def test_in_row_unit_must_advance(self):
        self._die(
            [FLAG_NR, 1, 0, 0x00, 1, 0], "does not advance the column"
        )

    def test_zero_delta_in_body(self):
        self._die([FLAG_NR, 2, 0, 0], "zero column delta")

    def test_truncated_body(self):
        err = self._die([FLAG_NR, 3, 0, 1], "truncated unit body")
        assert err.byte_offset == 0
        assert err.row == 0

    def test_seq_nonpositive_stride(self):
        self._die([FLAG_NR | FLAG_SEQ, 3, 0, 0], "non-positive stride")

    def test_row_out_of_range(self):
        err = self._die(
            [FLAG_NR, 1, 0, FLAG_NR, 1, 0],
            "row index 1 out of range",
            nrows=1,
        )
        assert err.row == 1

    def test_col_out_of_range(self):
        self._die([FLAG_NR, 1, 7], "column index 7 out of range", ncols=5)

    def test_nnz_mismatch(self):
        err = self._die([FLAG_NR, 2, 0, 5], "covers 2 nonzeros", nnz=3)
        assert err.byte_offset == 4

    def test_truncated_varint(self):
        # 0x80 continuation bit with nothing after it.
        self._die([FLAG_NR, 1, 0x80], "varint|truncated")


class TestCheckValues:
    def test_finite_rejects_nan_and_inf(self):
        for bad in (np.nan, np.inf, -np.inf):
            arr = np.array([1.0, bad, 2.0])
            with pytest.raises(IntegrityError, match=r"values\[1\]") as ei:
                check_values(arr, "values", "finite")
            assert ei.value.field == "values"

    def test_no_nan_allows_inf(self):
        check_values(np.array([1.0, np.inf]), "values", "no-nan")
        with pytest.raises(IntegrityError, match="NaN"):
            check_values(np.array([np.nan]), "values", "no-nan")

    def test_any_disables(self):
        check_values(np.array([np.nan, np.inf]), "values", "any")

    def test_unknown_policy(self):
        with pytest.raises(IntegrityError, match="unknown value policy"):
            check_values(np.zeros(1), "values", "strict")


class TestVerifyFormats:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_healthy_matrix_verifies(self, csr, fmt):
        m = convert(csr, fmt)
        assert m.verify() is m

    @pytest.mark.parametrize("fmt", ("csr", "csr-vi", "csr-du", "coo"))
    def test_nan_policy_plumbed(self, csr, fmt):
        m = fresh(csr, fmt)
        arrays = vars(m)
        name = "vals_unique" if "vals_unique" in arrays else "values"
        corrupted = arrays[name].copy()
        corrupted[0] = np.nan
        setattr(m, name, corrupted)
        with pytest.raises(IntegrityError, match="non-finite"):
            m.verify()
        # The policy knob reaches the checker.
        m.verify(value_policy="any")

    def test_csr_row_ptr_shape(self, csr):
        m = fresh(csr, "csr")
        m.row_ptr = m.row_ptr[:-1].copy()
        with pytest.raises(IntegrityError, match="row_ptr"):
            verify_matrix(m)

    def test_csr_col_disorder(self, csr):
        m = fresh(csr, "csr")
        ci = m.col_ind.copy()
        lo = int(np.flatnonzero(np.diff(m.row_ptr) >= 2)[0])
        start = int(m.row_ptr[lo])
        ci[start], ci[start + 1] = ci[start + 1], ci[start]
        m.col_ind = ci
        with pytest.raises(IntegrityError):
            verify_matrix(m)

    def test_csr_vi_val_ind_range(self, csr):
        m = fresh(csr, "csr-vi")
        vi = m.val_ind.copy()
        vi[0] = m.vals_unique.size
        m.val_ind = vi
        with pytest.raises(IntegrityError, match="val_ind"):
            verify_matrix(m)

    def test_generic_decode_replay(self, csr):
        m = fresh(csr, "coo")
        cols = m.cols.copy()
        cols[0] = m.ncols + 3
        m.cols = cols
        with pytest.raises(IntegrityError):
            verify_matrix(m)


class TestSeal:
    @pytest.mark.parametrize("fmt", ("csr", "csr-vi", "csr-du", "csr-du-vi"))
    def test_seal_round_trip(self, csr, fmt):
        m = fresh(csr, fmt)
        assert not is_sealed(m)
        assert seal(m) is m
        assert is_sealed(m)
        check_seal(m)
        m.verify()

    def test_seal_catches_plausible_value_flip(self, csr):
        """A low-mantissa bit flip keeps every structural invariant;
        only the checksum notices."""
        m = seal(fresh(csr, "csr"))
        values = m.values.copy()
        bits = values.view(np.uint64)
        bits[3] ^= 1
        m.values = values
        with pytest.raises(IntegrityError, match="values") as ei:
            m.verify()
        assert ei.value.field == "values"

    def test_seal_catches_missing_array(self, csr):
        m = seal(fresh(csr, "csr"))
        del m.col_ind
        with pytest.raises(IntegrityError, match="col_ind"):
            check_seal(m)

    def test_reseal_after_legit_edit(self, csr):
        m = seal(fresh(csr, "csr"))
        values = m.values.copy()
        values[0] += 1.0
        m.values = values
        with pytest.raises(IntegrityError):
            check_seal(m)
        seal(m)
        check_seal(m)

    def test_seal_attr_excluded_from_digest(self, csr):
        m = seal(fresh(csr, "csr"))
        first = dict(getattr(m, SEAL_ATTR))
        seal(m)
        assert getattr(m, SEAL_ATTR) == first
