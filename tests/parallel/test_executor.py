"""Threaded SpMV must be bit-identical to serial execution."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import CSRMatrix, convert
from repro.parallel.executor import ParallelSpMV, reduce_partial_results

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(60, 45, seed=60, quantize=8, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestParallelSpMV:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"])
    def test_matches_dense(self, dense, csr, nthreads, fmt):
        x = np.random.default_rng(11).random(dense.shape[1])
        with ParallelSpMV(csr, nthreads, format_name=fmt) as p:
            assert np.allclose(p(x), dense @ x)

    def test_identical_to_serial(self, csr):
        """Row partitioning changes nothing numerically: each y element
        is computed by exactly one thread, in the same order."""
        x = np.random.default_rng(12).random(csr.ncols)
        with ParallelSpMV(csr, 1) as serial, ParallelSpMV(csr, 4) as par:
            assert np.array_equal(serial(x), par(x))

    @pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"])
    def test_batched_identical_to_serial(self, csr, fmt):
        """The plan-backed (batched) chunk kernels stay bit-identical
        across thread counts, and to the whole-matrix kernel: each row
        accumulates in element order wherever it is computed."""
        x = np.random.default_rng(14).random(csr.ncols)
        y_whole = convert(csr, fmt).spmv(x)
        with ParallelSpMV(csr, 1, format_name=fmt) as serial, ParallelSpMV(
            csr, 4, format_name=fmt
        ) as par:
            assert np.array_equal(serial(x), par(x))
            assert np.array_equal(y_whole, par(x))

    def test_chunk_plans_prebuilt(self, csr):
        """Plan construction is setup cost, not first-call cost."""
        from repro.kernels.plan import has_plan

        with ParallelSpMV(csr, 3, format_name="csr-du") as p:
            assert all(has_plan(chunk) for chunk in p.chunks)

    def test_out_parameter(self, csr, dense):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        with ParallelSpMV(csr, 2) as p:
            ret = p(x, out=out)
        assert ret is out
        assert np.allclose(out, dense @ x)

    def test_repeated_calls(self, csr):
        """The pool is persistent: many calls, consistent results."""
        x = np.random.default_rng(13).random(csr.ncols)
        with ParallelSpMV(csr, 4) as p:
            first = p(x).copy()
            for _ in range(5):
                assert np.array_equal(p(x), first)

    def test_more_threads_than_rows(self):
        dense = np.diag([1.0, 2.0])
        csr = CSRMatrix.from_dense(dense)
        with ParallelSpMV(csr, 8) as p:
            assert np.allclose(p(np.ones(2)), [1.0, 2.0])

    def test_partition_is_nnz_balanced(self, csr):
        p = ParallelSpMV(csr, 4)
        try:
            assert p.partition.imbalance() < 1.6
        finally:
            p.close()

    def test_bad_thread_count(self, csr):
        with pytest.raises(PartitionError):
            ParallelSpMV(csr, 0)

    def test_close_idempotent(self, csr):
        p = ParallelSpMV(csr, 2)
        p.close()
        p.close()

    def test_format_kwargs(self, csr):
        with ParallelSpMV(csr, 2, format_name="csr-du", policy="aligned") as p:
            assert all(chunk.policy == "aligned" for chunk in p.chunks)


class TestReduce:
    def test_sums(self):
        parts = [np.ones(3), 2 * np.ones(3)]
        assert reduce_partial_results(parts).tolist() == [3.0, 3.0, 3.0]

    def test_does_not_mutate_inputs(self):
        a = np.ones(2)
        reduce_partial_results([a, a])
        assert a.tolist() == [1.0, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            reduce_partial_results([])

    def test_out_buffer_accumulates(self):
        parts = [np.ones(3), 2 * np.ones(3)]
        out = np.full(3, np.nan)  # fully overwritten, not added into
        ret = reduce_partial_results(parts, out=out)
        assert ret is out
        assert out.tolist() == [3.0, 3.0, 3.0]

    def test_out_buffer_reusable_across_iterations(self):
        out = np.zeros(2)
        for _ in range(3):
            reduce_partial_results([np.ones(2), np.ones(2)], out=out)
        assert out.tolist() == [2.0, 2.0]  # no accumulation across calls

    def test_out_matches_fresh_allocation(self):
        rng = np.random.default_rng(8)
        parts = [rng.random(5) for _ in range(4)]
        out = np.empty(5)
        assert np.array_equal(
            reduce_partial_results(parts, out=out), reduce_partial_results(parts)
        )
