"""Threaded SpMV must be bit-identical to serial execution."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import CSRMatrix, convert
from repro.parallel.executor import ParallelSpMV, reduce_partial_results

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(60, 45, seed=60, quantize=8, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestParallelSpMV:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"])
    def test_matches_dense(self, dense, csr, nthreads, fmt):
        x = np.random.default_rng(11).random(dense.shape[1])
        with ParallelSpMV(csr, nthreads, format_name=fmt) as p:
            assert np.allclose(p(x), dense @ x)

    def test_identical_to_serial(self, csr):
        """Row partitioning changes nothing numerically: each y element
        is computed by exactly one thread, in the same order."""
        x = np.random.default_rng(12).random(csr.ncols)
        with ParallelSpMV(csr, 1) as serial, ParallelSpMV(csr, 4) as par:
            assert np.array_equal(serial(x), par(x))

    @pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"])
    def test_batched_identical_to_serial(self, csr, fmt):
        """The plan-backed (batched) chunk kernels stay bit-identical
        across thread counts, and to the whole-matrix kernel: each row
        accumulates in element order wherever it is computed."""
        x = np.random.default_rng(14).random(csr.ncols)
        y_whole = convert(csr, fmt).spmv(x)
        with ParallelSpMV(csr, 1, format_name=fmt) as serial, ParallelSpMV(
            csr, 4, format_name=fmt
        ) as par:
            assert np.array_equal(serial(x), par(x))
            assert np.array_equal(y_whole, par(x))

    def test_chunk_plans_prebuilt(self, csr):
        """Plan construction is setup cost, not first-call cost."""
        from repro.kernels.plan import has_plan

        with ParallelSpMV(csr, 3, format_name="csr-du") as p:
            assert all(has_plan(chunk) for chunk in p.chunks)

    def test_out_parameter(self, csr, dense):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        with ParallelSpMV(csr, 2) as p:
            ret = p(x, out=out)
        assert ret is out
        assert np.allclose(out, dense @ x)

    def test_repeated_calls(self, csr):
        """The pool is persistent: many calls, consistent results."""
        x = np.random.default_rng(13).random(csr.ncols)
        with ParallelSpMV(csr, 4) as p:
            first = p(x).copy()
            for _ in range(5):
                assert np.array_equal(p(x), first)

    def test_more_threads_than_rows(self):
        dense = np.diag([1.0, 2.0])
        csr = CSRMatrix.from_dense(dense)
        with ParallelSpMV(csr, 8) as p:
            assert np.allclose(p(np.ones(2)), [1.0, 2.0])

    def test_partition_is_nnz_balanced(self, csr):
        p = ParallelSpMV(csr, 4)
        try:
            assert p.partition.imbalance() < 1.6
        finally:
            p.close()

    def test_bad_thread_count(self, csr):
        with pytest.raises(PartitionError):
            ParallelSpMV(csr, 0)

    def test_close_idempotent(self, csr):
        p = ParallelSpMV(csr, 2)
        p.close()
        p.close()

    def test_format_kwargs(self, csr):
        with ParallelSpMV(csr, 2, format_name="csr-du", policy="aligned") as p:
            assert all(chunk.policy == "aligned" for chunk in p.chunks)


class TestReduce:
    def test_sums(self):
        parts = [np.ones(3), 2 * np.ones(3)]
        assert reduce_partial_results(parts).tolist() == [3.0, 3.0, 3.0]

    def test_does_not_mutate_inputs(self):
        a = np.ones(2)
        reduce_partial_results([a, a])
        assert a.tolist() == [1.0, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            reduce_partial_results([])

    def test_out_buffer_accumulates(self):
        parts = [np.ones(3), 2 * np.ones(3)]
        out = np.full(3, np.nan)  # fully overwritten, not added into
        ret = reduce_partial_results(parts, out=out)
        assert ret is out
        assert out.tolist() == [3.0, 3.0, 3.0]

    def test_out_buffer_reusable_across_iterations(self):
        out = np.zeros(2)
        for _ in range(3):
            reduce_partial_results([np.ones(2), np.ones(2)], out=out)
        assert out.tolist() == [2.0, 2.0]  # no accumulation across calls

    def test_out_matches_fresh_allocation(self):
        rng = np.random.default_rng(8)
        parts = [rng.random(5) for _ in range(4)]
        out = np.empty(5)
        assert np.array_equal(
            reduce_partial_results(parts, out=out), reduce_partial_results(parts)
        )


class TestReduceAliasing:
    """Aliasing contract of reduce_partial_results(out=)."""

    def test_out_may_be_first_partial(self):
        parts = [np.ones(3), 2 * np.ones(3)]
        ret = reduce_partial_results(parts, out=parts[0])
        assert ret is parts[0]
        assert parts[0].tolist() == [3.0, 3.0, 3.0]

    def test_out_as_later_partial_rejected(self):
        from repro.errors import IntegrityError

        parts = [np.ones(3), 2 * np.ones(3)]
        with pytest.raises(IntegrityError, match="later partial"):
            reduce_partial_results(parts, out=parts[1])

    def test_out_overlapping_later_partial_rejected(self):
        from repro.errors import IntegrityError

        buf = np.zeros(6)
        parts = [np.ones(3), buf[2:5]]
        with pytest.raises(IntegrityError):
            reduce_partial_results(parts, out=buf[:3])

    def test_disjoint_views_allowed(self):
        buf = np.zeros(6)
        parts = [np.ones(3), 2 * np.ones(3)]
        ret = reduce_partial_results(parts, out=buf[3:])
        assert ret.tolist() == [3.0, 3.0, 3.0]


class TestExecutorRobustness:
    """Per-chunk failure handling: retry, aggregation, timeout."""

    @pytest.fixture
    def collector(self):
        from repro import telemetry

        prev = telemetry.set_collector(telemetry.Collector())
        try:
            yield telemetry.get_collector()
        finally:
            telemetry.set_collector(prev)

    def _events(self, collector, name):
        return [ev for ev in collector.snapshot() if ev.name == name]

    def test_out_aliasing_x_rejected(self, csr):
        from repro.errors import IntegrityError

        x = np.zeros(max(csr.nrows, csr.ncols))
        with ParallelSpMV(csr, 2) as p:
            with pytest.raises(IntegrityError):
                p(x[: csr.ncols], out=x[: csr.nrows])

    def test_retry_recovers_bit_identically(self, csr, collector):
        """An in-place corrupted cached chunk is invalidated, re-encoded
        and retried; the answer is the clean run's exact bits."""
        from repro.compress.encode_cache import ConvertCache
        from repro.robust import inject

        x = np.random.default_rng(31).random(csr.ncols)
        with ParallelSpMV(
            csr, 3, format_name="csr-du", convert_cache=ConvertCache()
        ) as p:
            clean = p(x).copy()
            corrupted = p.chunks[1]
            inject(p.chunks[1], "ctl-truncate", 0, copy_matrix=False)
            got = p(x)
            assert p.chunks[1] is not corrupted  # rebuilt, not patched
        assert np.array_equal(got, clean)
        retries = self._events(collector, "executor.retry")
        assert len(retries) == 1
        assert retries[0].attrs["thread"] == 1

    def test_nonretryable_failure_aggregated(self, csr):
        from repro.errors import ExecutionError

        class Broken:
            def spmv(self, x, out=None):
                raise ValueError("kaboom")

        with ParallelSpMV(csr, 2) as p:
            p.chunks[0] = Broken()
            with pytest.raises(ExecutionError) as ei:
                p(np.ones(csr.ncols))
        (failure,) = ei.value.failures
        assert failure.thread == 0
        assert (failure.lo, failure.hi) == p.partition.rows_of(0)
        assert not failure.retried
        assert "kaboom" in str(ei.value)
        assert "rows [" in failure.describe()

    def test_persistent_decode_failure_fails_after_one_retry(
        self, csr, collector
    ):
        from repro.errors import EncodingError, ExecutionError

        class Poisoned:
            def spmv(self, x, out=None):
                raise EncodingError("still broken")

        with ParallelSpMV(csr, 2, format_name="csr-du") as p:
            p.chunks[1] = Poisoned()
            p._rebuild_chunk = lambda t: Poisoned()  # rebuild doesn't help
            with pytest.raises(ExecutionError) as ei:
                p(np.ones(csr.ncols))
        (failure,) = ei.value.failures
        assert failure.retried
        assert len(self._events(collector, "executor.retry")) == 1

    def test_all_chunks_failing_all_reported(self, csr):
        from repro.errors import ExecutionError

        class Broken:
            def spmv(self, x, out=None):
                raise ValueError("kaboom")

        with ParallelSpMV(csr, 3) as p:
            for t in range(3):
                p.chunks[t] = Broken()
            with pytest.raises(ExecutionError) as ei:
                p(np.ones(csr.ncols))
        assert len(ei.value.failures) == 3
        assert [f.thread for f in ei.value.failures] == [0, 1, 2]

    def test_chunk_timeout_reported(self, csr):
        import time

        from repro.errors import ExecutionError

        class Slow:
            def __init__(self, inner):
                self.inner = inner

            def spmv(self, x, out=None):
                time.sleep(0.4)
                return self.inner.spmv(x, out=out)

        with ParallelSpMV(csr, 2, chunk_timeout=0.05) as p:
            p.chunks[0] = Slow(p.chunks[0])
            with pytest.raises(ExecutionError) as ei:
                p(np.ones(csr.ncols))
        (failure,) = ei.value.failures
        assert isinstance(failure.error, TimeoutError)
        assert "exceeded" in str(failure.error)

    def test_bad_chunk_timeout_rejected(self, csr):
        with pytest.raises(PartitionError, match="chunk_timeout"):
            ParallelSpMV(csr, 2, chunk_timeout=0.0)

    def test_success_after_failure(self, csr):
        """One failing call does not poison the executor."""
        from repro.errors import ExecutionError

        class Broken:
            def spmv(self, x, out=None):
                raise ValueError("kaboom")

        x = np.random.default_rng(33).random(csr.ncols)
        with ParallelSpMV(csr, 2) as p:
            expected = p(x).copy()
            good = p.chunks[0]
            p.chunks[0] = Broken()
            with pytest.raises(ExecutionError):
                p(x)
            p.chunks[0] = good
            assert np.array_equal(p(x), expected)
