"""Threaded SpMV must be bit-identical to serial execution."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import CSRMatrix
from repro.parallel.executor import ParallelSpMV, reduce_partial_results

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(60, 45, seed=60, quantize=8, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestParallelSpMV:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"])
    def test_matches_dense(self, dense, csr, nthreads, fmt):
        x = np.random.default_rng(11).random(dense.shape[1])
        with ParallelSpMV(csr, nthreads, format_name=fmt) as p:
            assert np.allclose(p(x), dense @ x)

    def test_identical_to_serial(self, csr):
        """Row partitioning changes nothing numerically: each y element
        is computed by exactly one thread, in the same order."""
        x = np.random.default_rng(12).random(csr.ncols)
        with ParallelSpMV(csr, 1) as serial, ParallelSpMV(csr, 4) as par:
            assert np.array_equal(serial(x), par(x))

    def test_out_parameter(self, csr, dense):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        with ParallelSpMV(csr, 2) as p:
            ret = p(x, out=out)
        assert ret is out
        assert np.allclose(out, dense @ x)

    def test_repeated_calls(self, csr):
        """The pool is persistent: many calls, consistent results."""
        x = np.random.default_rng(13).random(csr.ncols)
        with ParallelSpMV(csr, 4) as p:
            first = p(x).copy()
            for _ in range(5):
                assert np.array_equal(p(x), first)

    def test_more_threads_than_rows(self):
        dense = np.diag([1.0, 2.0])
        csr = CSRMatrix.from_dense(dense)
        with ParallelSpMV(csr, 8) as p:
            assert np.allclose(p(np.ones(2)), [1.0, 2.0])

    def test_partition_is_nnz_balanced(self, csr):
        p = ParallelSpMV(csr, 4)
        try:
            assert p.partition.imbalance() < 1.6
        finally:
            p.close()

    def test_bad_thread_count(self, csr):
        with pytest.raises(PartitionError):
            ParallelSpMV(csr, 0)

    def test_close_idempotent(self, csr):
        p = ParallelSpMV(csr, 2)
        p.close()
        p.close()

    def test_format_kwargs(self, csr):
        with ParallelSpMV(csr, 2, format_name="csr-du", policy="aligned") as p:
            assert all(chunk.policy == "aligned" for chunk in p.chunks)


class TestReduce:
    def test_sums(self):
        parts = [np.ones(3), 2 * np.ones(3)]
        assert reduce_partial_results(parts).tolist() == [3.0, 3.0, 3.0]

    def test_does_not_mutate_inputs(self):
        a = np.ones(2)
        reduce_partial_results([a, a])
        assert a.tolist() == [1.0, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            reduce_partial_results([])
