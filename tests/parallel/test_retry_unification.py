"""All thread executors drive retries through one RetryPolicy.

PR 7 gave each executor its own copy-pasted retry loop; the resilience
layer replaced them with :meth:`RetryPolicy.run`.  These tests pin the
unified contract: defaults per executor, custom policies honored
everywhere, and retry decisions drawn from one shared budget.
"""

import numpy as np
import pytest

from repro.errors import EncodingError, ExecutionError
from repro.formats import CSRMatrix
from repro.parallel import BlockParallelSpMV, ColumnParallelSpMV, ParallelSpMV
from repro.parallel.column_executor import NO_RETRY_POLICY
from repro.resilience.policy import DEFAULT_RETRY_POLICY, RetryPolicy
from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(40, 40, seed=77)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class _TransientChunk:
    """Fails with a decode-class error *fail_times* times, then works."""

    def __init__(self, inner, fail_times=1):
        self.inner = inner
        # The block executor reads tile shape/nnz around the kernel call.
        self.nnz = inner.nnz
        self.nrows = getattr(inner, "nrows", None)
        self.fail_times = fail_times
        self.calls = 0

    def spmv(self, x, out=None):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise EncodingError("transient decode fault")
        return self.inner.spmv(x, out=out)


class TestDefaults:
    def test_row_executor_retries_decode_by_default(self, csr):
        with ParallelSpMV(csr, 2) as p:
            assert p.retry_policy is DEFAULT_RETRY_POLICY

    def test_column_and_block_default_to_no_retries(self, csr):
        with ColumnParallelSpMV(csr, 2) as p:
            assert p.retry_policy is NO_RETRY_POLICY
        with BlockParallelSpMV(csr, 2) as p:
            assert p.retry_policy is NO_RETRY_POLICY
        assert NO_RETRY_POLICY.max_attempts == 1


class TestCustomPolicyHonoredEverywhere:
    def test_column_executor_retry_recovers(self, csr, dense):
        x = np.random.default_rng(5).random(csr.ncols)
        policy = RetryPolicy(max_attempts=2, retry_on=("decode",))
        with ColumnParallelSpMV(csr, 2, retry_policy=policy) as p:
            p.chunks[1] = _TransientChunk(p.chunks[1])
            assert np.allclose(p(x), dense @ x)
            assert p.chunks[1].calls == 2  # one failure + one retry

    def test_block_executor_retry_recovers(self, csr, dense):
        x = np.random.default_rng(6).random(csr.ncols)
        policy = RetryPolicy(max_attempts=2, retry_on=("decode",))
        with BlockParallelSpMV(csr, 2, retry_policy=policy) as p:
            rows, cols, tile = p.tiles[0][0]
            p.tiles[0][0] = (rows, cols, _TransientChunk(tile))
            assert np.allclose(p(x), dense @ x)
            assert p.tiles[0][0][2].calls == 2

    def test_row_executor_can_opt_out_of_retries(self, csr):
        x = np.random.default_rng(7).random(csr.ncols)
        with ParallelSpMV(csr, 2, retry_policy=NO_RETRY_POLICY) as p:
            p.chunks[0] = _TransientChunk(p.chunks[0])
            with pytest.raises(ExecutionError) as err:
                p(x)
        (failure,) = err.value.failures
        assert not failure.retried

    def test_non_decode_class_still_refused(self, csr):
        # The policy's error classes gate the column executor exactly
        # as they gate the row executor.
        class Boom:
            def spmv(self, x, out=None):
                raise ValueError("caller bug")

        policy = RetryPolicy(max_attempts=3, retry_on=("decode",))
        with ColumnParallelSpMV(csr, 2, retry_policy=policy) as p:
            p.chunks[0] = Boom()
            with pytest.raises(ExecutionError) as err:
                p(np.ones(csr.ncols))
        (failure,) = err.value.failures
        assert not failure.retried


class TestSharedBudget:
    def test_budget_caps_retries_across_calls(self, csr, dense):
        x = np.random.default_rng(8).random(csr.ncols)
        policy = RetryPolicy(max_attempts=2, retry_on=("decode",), budget=1)
        with ColumnParallelSpMV(csr, 2, retry_policy=policy) as p:
            good = p.chunks[1]
            p.chunks[1] = _TransientChunk(good)
            assert np.allclose(p(x), dense @ x)  # spends the whole budget
            p.chunks[1] = _TransientChunk(good)
            with pytest.raises(ExecutionError):
                p(x)  # the executor's budget is drained
