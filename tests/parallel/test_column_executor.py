"""Tests for the column-partitioned executor."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import CSRMatrix
from repro.parallel import ColumnParallelSpMV, ParallelSpMV

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(40, 55, seed=101, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestColumnParallelSpMV:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 5])
    def test_matches_dense(self, dense, csr, nthreads):
        x = np.random.default_rng(21).random(dense.shape[1])
        with ColumnParallelSpMV(csr, nthreads) as p:
            assert np.allclose(p(x), dense @ x)

    def test_matches_row_partitioned(self, csr):
        """Both schemes compute the same product (Section II-C)."""
        x = np.random.default_rng(22).random(csr.ncols)
        with ParallelSpMV(csr, 3) as rows, ColumnParallelSpMV(csr, 3) as cols:
            assert np.allclose(rows(x), cols(x))

    def test_partition_balanced(self, csr):
        p = ColumnParallelSpMV(csr, 4)
        try:
            assert p.partition.nnz_per_thread.sum() == csr.nnz
        finally:
            p.close()

    def test_out_parameter(self, csr, dense):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        with ColumnParallelSpMV(csr, 2) as p:
            assert p(x, out=out) is out
        assert np.allclose(out, dense @ x)

    def test_repeated_calls_reuse_partials(self, csr):
        x = np.random.default_rng(23).random(csr.ncols)
        with ColumnParallelSpMV(csr, 2) as p:
            first = p(x).copy()
            assert np.allclose(p(x), first)

    def test_wrong_x_shape(self, csr):
        with ColumnParallelSpMV(csr, 2) as p:
            with pytest.raises(PartitionError):
                p(np.ones(csr.ncols + 1))

    def test_bad_threads(self, csr):
        with pytest.raises(PartitionError):
            ColumnParallelSpMV(csr, 0)

    def test_more_threads_than_columns(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        with ColumnParallelSpMV(csr, 8) as p:
            assert np.allclose(p(np.ones(3)), np.ones(3))


class _BoomChunk:
    """Stands in for a CSC chunk whose kernel always fails."""

    def __init__(self, exc):
        self.exc = exc

    def spmv(self, x, out=None):
        raise self.exc


class _SlowChunk:
    def __init__(self, inner, delay):
        self.inner = inner
        self.delay = delay

    def spmv(self, x, out=None):
        import time

        time.sleep(self.delay)
        return self.inner.spmv(x, out=out)


class TestColumnFaultContract:
    """PR-7 fault semantics, ported to the column scheme."""

    def test_failures_aggregate_with_context(self, csr):
        from repro.errors import ExecutionError

        x = np.random.default_rng(31).random(csr.ncols)
        with ColumnParallelSpMV(csr, 3) as p:
            p.chunks[1] = _BoomChunk(ValueError("poisoned chunk"))
            with pytest.raises(ExecutionError) as err:
                p(x)
        failures = err.value.failures
        assert len(failures) == 1
        assert failures[0].thread == 1
        assert isinstance(failures[0].error, ValueError)
        lo, hi = p.partition.cols_of(1)
        assert (failures[0].lo, failures[0].hi) == (lo, hi)
        assert "poisoned chunk" in str(err.value)

    def test_all_failures_reported_not_just_first(self, csr):
        from repro.errors import ExecutionError

        with ColumnParallelSpMV(csr, 3) as p:
            p.chunks[0] = _BoomChunk(ValueError("a"))
            p.chunks[2] = _BoomChunk(TypeError("b"))
            with pytest.raises(ExecutionError) as err:
                p(np.ones(csr.ncols))
        assert sorted(f.thread for f in err.value.failures) == [0, 2]

    def test_chunk_timeout_becomes_failure(self, csr):
        from repro.errors import ExecutionError

        with ColumnParallelSpMV(csr, 2, chunk_timeout=0.05) as p:
            p.chunks[1] = _SlowChunk(p.chunks[1], delay=0.5)
            with pytest.raises(ExecutionError) as err:
                p(np.ones(csr.ncols))
        assert any(
            isinstance(f.error, TimeoutError) for f in err.value.failures
        )

    def test_chunk_timeout_validated(self, csr):
        with pytest.raises(PartitionError):
            ColumnParallelSpMV(csr, 2, chunk_timeout=-1.0)

    def test_recovers_after_failed_call(self, csr, dense):
        from repro.errors import ExecutionError

        x = np.random.default_rng(33).random(csr.ncols)
        with ColumnParallelSpMV(csr, 2) as p:
            good = p.chunks[0]
            p.chunks[0] = _BoomChunk(ValueError("transient"))
            with pytest.raises(ExecutionError):
                p(x)
            p.chunks[0] = good
            assert np.allclose(p(x), dense @ x)
