"""Tests for the column-partitioned executor."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import CSRMatrix
from repro.parallel import ColumnParallelSpMV, ParallelSpMV

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(40, 55, seed=101, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestColumnParallelSpMV:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 5])
    def test_matches_dense(self, dense, csr, nthreads):
        x = np.random.default_rng(21).random(dense.shape[1])
        with ColumnParallelSpMV(csr, nthreads) as p:
            assert np.allclose(p(x), dense @ x)

    def test_matches_row_partitioned(self, csr):
        """Both schemes compute the same product (Section II-C)."""
        x = np.random.default_rng(22).random(csr.ncols)
        with ParallelSpMV(csr, 3) as rows, ColumnParallelSpMV(csr, 3) as cols:
            assert np.allclose(rows(x), cols(x))

    def test_partition_balanced(self, csr):
        p = ColumnParallelSpMV(csr, 4)
        try:
            assert p.partition.nnz_per_thread.sum() == csr.nnz
        finally:
            p.close()

    def test_out_parameter(self, csr, dense):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        with ColumnParallelSpMV(csr, 2) as p:
            assert p(x, out=out) is out
        assert np.allclose(out, dense @ x)

    def test_repeated_calls_reuse_partials(self, csr):
        x = np.random.default_rng(23).random(csr.ncols)
        with ColumnParallelSpMV(csr, 2) as p:
            first = p(x).copy()
            assert np.allclose(p(x), first)

    def test_wrong_x_shape(self, csr):
        with ColumnParallelSpMV(csr, 2) as p:
            with pytest.raises(PartitionError):
                p(np.ones(csr.ncols + 1))

    def test_bad_threads(self, csr):
        with pytest.raises(PartitionError):
            ColumnParallelSpMV(csr, 0)

    def test_more_threads_than_columns(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        with ColumnParallelSpMV(csr, 8) as p:
            assert np.allclose(p(np.ones(3)), np.ones(3))
