"""Backend equivalence: thread, process, and mmap runs are bit-identical.

The property-based test is the PR's acceptance clause: for every
format/kernel tier, the thread backend, the process backend (shards in
shared memory), and the mmap-backed thread run produce byte-identical
``y`` on arbitrary small matrices.  The reference is always the
same-format thread run at the same shard count -- csr-du's per-unit
summation order differs from CSR's row-dot order, so cross-format
comparisons are only ever ``allclose``.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, PartitionError, StorageError
from repro.formats import CSRMatrix
from repro.parallel import (
    BACKENDS,
    STORAGES,
    ParallelSpMV,
    ProcessParallelSpMV,
    make_executor,
)
from repro.telemetry import core as telemetry

from tests.conftest import random_sparse_dense

FORMATS = ("csr", "csr-du", "csr-vi", "csr-du-vi")


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(36, 29, seed=77, quantize=8, empty_rows=True)
    )


class TestMakeExecutor:
    def test_dispatch(self, csr):
        with make_executor(csr, 2, backend="thread") as ex:
            assert isinstance(ex, ParallelSpMV) and ex.backend == "thread"
        with make_executor(csr, 2, backend="process") as ex:
            assert isinstance(ex, ProcessParallelSpMV)
            assert ex.backend == "process"

    def test_validation(self, csr):
        with pytest.raises(PartitionError):
            make_executor(csr, 2, backend="gpu")
        with pytest.raises(PartitionError):
            make_executor(csr, 2, storage="tape")
        with pytest.raises(StorageError):
            make_executor(csr, 2, storage="mmap")  # needs a directory

    def test_tables(self):
        assert BACKENDS == ("thread", "process")
        assert STORAGES == ("mem", "mmap")


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    nrows=st.integers(min_value=4, max_value=28),
    ncols=st.integers(min_value=3, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
    nworkers=st.integers(min_value=2, max_value=3),
)
def test_backends_bit_identical(nrows, ncols, seed, nworkers):
    dense = random_sparse_dense(
        nrows, ncols, density=0.3, seed=seed, quantize=6, empty_rows=True
    )
    csr = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed + 1).random(ncols)
    for fmt in FORMATS:
        with make_executor(csr, nworkers, format_name=fmt) as threads:
            y_ref = threads(x)
        assert np.allclose(y_ref, dense @ x)
        with tempfile.TemporaryDirectory(prefix="shards-") as tmp:
            with make_executor(
                csr, nworkers, format_name=fmt, storage="mmap", directory=tmp
            ) as mapped:
                assert np.array_equal(mapped(x), y_ref), f"{fmt} mmap"
        with make_executor(
            csr, nworkers, backend="process", format_name=fmt
        ) as procs:
            assert np.array_equal(procs(x), y_ref), f"{fmt} process"


class TestProcessBackend:
    @pytest.mark.parametrize("storage", STORAGES)
    def test_repeated_calls_and_out(self, csr, storage, tmp_path):
        x = np.random.default_rng(3).random(csr.ncols)
        kwargs = {"directory": str(tmp_path)} if storage == "mmap" else {}
        with ParallelSpMV(csr, 2, format_name="csr-du") as threads:
            y_ref = threads(x)
        with ProcessParallelSpMV(
            csr, 2, format_name="csr-du", storage=storage, **kwargs
        ) as procs:
            assert np.array_equal(procs(x), y_ref)
            out = np.empty(csr.nrows)
            assert procs(x, out=out) is out
            assert np.array_equal(out, y_ref)

    def test_poisoned_shard_retried_transparently(self, csr, tmp_path):
        """A shard poisoned on disk fails the worker-side CRC validator
        (IntegrityError -> retryable), the parent rebuilds it, and the
        call still returns the correct product."""
        x = np.random.default_rng(4).random(csr.ncols)
        with ParallelSpMV(csr, 2) as threads:
            y_ref = threads(x)
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            with ProcessParallelSpMV(
                csr, 2, storage="mmap", directory=str(tmp_path)
            ) as procs:
                handle = procs.store.shards[0]["handle"]
                with open(handle["path"], "r+b") as fh:
                    fh.seek(handle["layout"][0]["offset"])
                    fh.write(b"\xde\xad\xbe\xef")
                assert np.array_equal(procs(x), y_ref)
            events = telemetry.get_collector().snapshot()
        finally:
            telemetry.set_collector(prev)
        retries = [e for e in events if e.name == "executor.retry"]
        assert len(retries) == 1
        assert retries[0].attrs["error"] == "IntegrityError"

    def test_poisoned_shard_without_source_aggregates(self, csr, tmp_path):
        """When the rebuild has no source matrix the retry cannot heal
        the shard: the failure aggregates into an ExecutionError that
        names the chunk, instead of hanging or returning garbage."""
        x = np.random.default_rng(5).random(csr.ncols)
        with ProcessParallelSpMV(
            csr, 2, storage="mmap", directory=str(tmp_path)
        ) as procs:
            handle = procs.store.shards[1]["handle"]
            with open(handle["path"], "r+b") as fh:
                fh.seek(handle["layout"][0]["offset"])
                fh.write(b"\xba\xad")
            procs.store._source_csr = None  # opened-from-manifest state
            with pytest.raises(ExecutionError) as err:
                procs(x)
            failures = err.value.failures
            assert len(failures) == 1
            assert failures[0].thread == 1
            assert failures[0].retried
            assert isinstance(failures[0].error, StorageError)

    def test_closed_executor_refuses(self, csr):
        procs = ProcessParallelSpMV(csr, 2)
        procs.close()
        with pytest.raises(StorageError):
            procs(np.ones(csr.ncols))

    def test_validation(self, csr):
        with pytest.raises(PartitionError):
            ProcessParallelSpMV(csr, 0)
        with pytest.raises(PartitionError):
            ProcessParallelSpMV(csr, 2, chunk_timeout=0)
        with pytest.raises(StorageError):
            ProcessParallelSpMV(csr, 2, storage="tape")
