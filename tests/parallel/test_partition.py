"""Tests for work partitioning (the paper's static nnz balancing)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.formats import CSRMatrix
from repro.parallel.partition import (
    balance_by_nnz,
    block_partition,
    column_partition,
    row_partition,
)

from tests.conftest import random_sparse_dense


def ptr_strategy():
    return st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=60
    ).map(lambda lens: np.concatenate(([0], np.cumsum(lens))).astype(np.int64))


class TestBalanceByNnz:
    def test_uniform_rows(self):
        ptr = np.arange(0, 101, 10)  # 10 rows x 10 nnz
        bounds = balance_by_nnz(ptr, 5)
        assert bounds.tolist() == [0, 2, 4, 6, 8, 10]

    def test_single_part(self):
        ptr = np.array([0, 3, 9])
        assert balance_by_nnz(ptr, 1).tolist() == [0, 2]

    def test_skewed_rows(self):
        # One huge row dominates; it must land alone-ish in one part.
        ptr = np.array([0, 1, 2, 102, 103, 104])
        bounds = balance_by_nnz(ptr, 2)
        counts = np.diff(ptr[bounds])
        assert counts.sum() == 104
        assert counts.max() <= 102  # the huge row is unsplittable

    def test_more_parts_than_segments(self):
        ptr = np.array([0, 5, 10])
        bounds = balance_by_nnz(ptr, 6)
        assert bounds.size == 7
        assert bounds[0] == 0 and bounds[-1] == 2
        assert np.all(np.diff(bounds) >= 0)

    def test_empty_matrix(self):
        bounds = balance_by_nnz(np.array([0]), 3)
        assert bounds.tolist() == [0, 0, 0, 0]

    def test_bad_nparts(self):
        with pytest.raises(PartitionError):
            balance_by_nnz(np.array([0, 1]), 0)

    @given(ptr_strategy(), st.integers(min_value=1, max_value=9))
    def test_invariants(self, ptr, nparts):
        bounds = balance_by_nnz(ptr, nparts)
        # Cover, ordered, within range.
        assert bounds.size == nparts + 1
        assert bounds[0] == 0 and bounds[-1] == ptr.size - 1
        assert np.all(np.diff(bounds) >= 0)
        # Element-count balance bound: no part exceeds the ideal share
        # plus one maximal segment.
        counts = ptr[bounds[1:]] - ptr[bounds[:-1]]
        total = int(ptr[-1])
        max_seg = int(np.diff(ptr).max()) if ptr.size > 1 else 0
        assert counts.sum() == total
        assert counts.max() <= total / nparts + max_seg + 1e-9


class TestRowPartition:
    def test_balanced_nnz(self):
        dense = random_sparse_dense(50, 30, seed=50)
        csr = CSRMatrix.from_dense(dense)
        part = row_partition(csr.row_ptr, 4)
        assert part.nthreads == 4
        assert part.nnz_per_thread.sum() == csr.nnz
        assert part.imbalance() < 1.5

    def test_rows_of(self):
        part = row_partition(np.arange(0, 41, 10), 2)
        lo, hi = part.rows_of(0)
        assert (lo, hi) == (0, 2)

    def test_slices_reassemble(self, paper_matrix, paper_dense):
        part = row_partition(paper_matrix.row_ptr, 3)
        pieces = [
            paper_matrix.row_slice(*part.rows_of(t)).to_dense()
            for t in range(3)
        ]
        assert np.allclose(np.vstack(pieces), paper_dense)

    def test_imbalance_of_empty(self):
        part = row_partition(np.array([0, 0, 0]), 2)
        assert part.imbalance() == 1.0


class TestColumnPartition:
    def test_balanced(self):
        ptr = np.arange(0, 61, 3)
        part = column_partition(ptr, 4)
        assert part.nnz_per_thread.sum() == 60
        assert part.cols_of(3)[1] == 20


class TestBlockPartition:
    def test_tiles_cover_grid(self):
        part = block_partition(np.arange(0, 41, 10), ncols=16, nthreads=3)
        all_tiles = [t for thread in range(3) for t in part.tiles_of(thread)]
        # Default grid is nthreads x nthreads tiles.
        assert len(all_tiles) == 9
        # Tiles are disjoint and cover [0, nrows) x [0, ncols).
        rows_seen = sorted({rb for (rb, _) in all_tiles})
        assert rows_seen[0][0] == 0

    def test_custom_grid(self):
        part = block_partition(np.arange(0, 21, 5), ncols=8, nthreads=2, grid=(2, 2))
        assert part.row_bounds.size == 3
        assert part.col_bounds.tolist() == [0, 4, 8]

    def test_bad_grid(self):
        with pytest.raises(PartitionError):
            block_partition(np.array([0, 5]), ncols=4, nthreads=2, grid=(0, 2))

    def test_bad_threads(self):
        with pytest.raises(PartitionError):
            block_partition(np.array([0, 5]), ncols=4, nthreads=0)
