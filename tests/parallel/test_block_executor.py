"""Tests for the block-partitioned executor."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.formats import CSRMatrix
from repro.parallel import BlockParallelSpMV, ParallelSpMV

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(34, 47, seed=201, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestBlockParallelSpMV:
    @pytest.mark.parametrize("nthreads", [1, 2, 3, 4])
    def test_matches_dense(self, dense, csr, nthreads):
        x = np.random.default_rng(31).random(dense.shape[1])
        with BlockParallelSpMV(csr, nthreads) as p:
            assert np.allclose(p(x), dense @ x)

    def test_custom_grid(self, dense, csr):
        x = np.random.default_rng(32).random(csr.ncols)
        with BlockParallelSpMV(csr, 2, grid=(3, 5)) as p:
            assert np.allclose(p(x), dense @ x)

    def test_matches_row_partitioned(self, csr):
        x = np.random.default_rng(33).random(csr.ncols)
        with ParallelSpMV(csr, 3) as rows, BlockParallelSpMV(csr, 3) as blocks:
            assert np.allclose(rows(x), blocks(x))

    def test_tiles_cover_all_nonzeros(self, csr):
        p = BlockParallelSpMV(csr, 3)
        try:
            total = sum(
                tile.nnz for mine in p.tiles for (_, _, tile) in mine
            )
            assert total == csr.nnz
        finally:
            p.close()

    def test_repeated_calls(self, csr):
        x = np.random.default_rng(34).random(csr.ncols)
        with BlockParallelSpMV(csr, 2) as p:
            first = p(x).copy()
            assert np.array_equal(p(x), first)

    def test_out_parameter(self, csr, dense):
        x = np.ones(csr.ncols)
        out = np.empty(csr.nrows)
        with BlockParallelSpMV(csr, 2) as p:
            assert p(x, out=out) is out
        assert np.allclose(out, dense @ x)

    def test_wrong_x_shape(self, csr):
        with BlockParallelSpMV(csr, 2) as p:
            with pytest.raises(PartitionError):
                p(np.ones(csr.ncols + 1))

    def test_bad_threads(self, csr):
        with pytest.raises(PartitionError):
            BlockParallelSpMV(csr, 0)

    def test_all_three_schemes_agree(self, csr):
        """Section II-C's three parallelization schemes, one answer."""
        from repro.parallel import ColumnParallelSpMV

        x = np.random.default_rng(35).random(csr.ncols)
        with ParallelSpMV(csr, 4) as a, ColumnParallelSpMV(csr, 4) as b, \
                BlockParallelSpMV(csr, 4) as c:
            ya, yb, yc = a(x), b(x), c(x)
        assert np.allclose(ya, yb)
        assert np.allclose(ya, yc)


class _BoomTile:
    """Stands in for a materialized tile whose kernel always fails."""

    nrows = 1
    nnz = 1

    def __init__(self, exc):
        self.exc = exc

    def spmv(self, x, out=None):
        raise self.exc


class TestBlockFaultContract:
    """PR-7 fault semantics, ported to the block scheme."""

    def test_failures_aggregate_with_context(self, csr):
        from repro.errors import ExecutionError

        x = np.random.default_rng(41).random(csr.ncols)
        with BlockParallelSpMV(csr, 3) as p:
            victim = next(t for t in range(3) if p.tiles[t])
            rows, cols, _tile = p.tiles[victim][0]
            p.tiles[victim][0] = (rows, cols, _BoomTile(ValueError("bad tile")))
            with pytest.raises(ExecutionError) as err:
                p(x)
        failures = err.value.failures
        assert len(failures) == 1
        assert failures[0].thread == victim
        assert isinstance(failures[0].error, ValueError)
        assert "bad tile" in str(err.value)

    def test_chunk_timeout_becomes_failure(self, csr):
        import time

        from repro.errors import ExecutionError

        class _SlowTile:
            def __init__(self, inner):
                self.inner = inner
                self.nrows = inner.nrows
                self.nnz = inner.nnz

            def spmv(self, x, out=None):
                time.sleep(0.5)
                return self.inner.spmv(x, out=out)

        with BlockParallelSpMV(csr, 2, chunk_timeout=0.05) as p:
            victim = next(t for t in range(2) if p.tiles[t])
            rows, cols, tile = p.tiles[victim][0]
            p.tiles[victim][0] = (rows, cols, _SlowTile(tile))
            with pytest.raises(ExecutionError) as err:
                p(np.ones(csr.ncols))
        assert any(
            isinstance(f.error, TimeoutError) for f in err.value.failures
        )

    def test_chunk_timeout_validated(self, csr):
        with pytest.raises(PartitionError):
            BlockParallelSpMV(csr, 2, chunk_timeout=0)

    def test_recovers_after_failed_call(self, csr, dense):
        from repro.errors import ExecutionError

        x = np.random.default_rng(43).random(csr.ncols)
        with BlockParallelSpMV(csr, 2) as p:
            victim = next(t for t in range(2) if p.tiles[t])
            saved = p.tiles[victim][0]
            rows, cols, _tile = saved
            p.tiles[victim][0] = (rows, cols, _BoomTile(ValueError("x")))
            with pytest.raises(ExecutionError):
                p(x)
            p.tiles[victim][0] = saved
            assert np.allclose(p(x), dense @ x)
