"""End-to-end machine-model tests: the paper's qualitative claims must
hold for representative matrices."""

import pytest

from repro.formats import convert
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import clovertown_8core
from repro.matrices.collection import realize

SCALE = 1 / 32


@pytest.fixture(scope="module")
def machine():
    return clovertown_8core().scaled(SCALE)


@pytest.fixture(scope="module")
def ml_matrix():
    return realize(69, scale=SCALE)  # an ML (memory bound) matrix


@pytest.fixture(scope="module")
def ms_matrix():
    return realize(44, scale=SCALE)  # an MS (cacheable, vi) matrix


class TestScalingRegimes:
    def test_threads_help_overall(self, ml_matrix, machine):
        """8 threads beat serial; intermediate steps may wobble a few
        percent (per-die x duplication -- the paper's own Table II has
        sub-1.0 minima), but never collapse."""
        csr = convert(ml_matrix, "csr")
        times = [
            simulate_spmv(csr, t, machine).time_s for t in (1, 2, 4, 8)
        ]
        assert times[-1] < times[0]
        assert all(times[i + 1] <= times[i] * 1.10 for i in range(3))

    def test_ml_scales_poorly_ms_scales_well(self, ml_matrix, ms_matrix, machine):
        """The paper's core observation (Table II)."""
        def speedup8(m):
            csr = convert(m, "csr")
            return (
                simulate_spmv(csr, 1, machine).time_s
                / simulate_spmv(csr, 8, machine).time_s
            )

        assert speedup8(ml_matrix) < 3.5
        assert speedup8(ms_matrix) > 3.5

    def test_serial_mflops_band(self, ml_matrix, machine):
        """Serial CSR in the paper's few-hundred-MFLOPS band."""
        res = simulate_spmv(convert(ml_matrix, "csr"), 1, machine)
        assert 150 < res.mflops < 1200

    def test_spread_beats_close_at_2_threads(self, machine):
        """Table II: 2 (2xL2) >= 2 (1xL2) -- cache sharing is
        destructive for SpMV.  Checked on a banded ML matrix (small x
        footprint; for x-dominated scattered matrices the per-die x
        duplication can invert this, as the paper's min columns hint)."""
        csr = convert(realize(55, scale=SCALE), "csr")
        close = simulate_spmv(csr, 2, machine, placement="close").time_s
        spread = simulate_spmv(csr, 2, machine, placement="spread").time_s
        assert spread <= close + 1e-12


class TestCompressionClaims:
    def test_du_beats_csr_at_8_threads_ml(self, ml_matrix, machine):
        """Table III: memory-bound matrices gain from index compression
        at high thread counts."""
        csr = convert(ml_matrix, "csr")
        du = convert(ml_matrix, "csr-du")
        t_csr = simulate_spmv(csr, 8, machine).time_s
        t_du = simulate_spmv(du, 8, machine).time_s
        assert t_du < t_csr

    def test_du_gain_grows_with_threads(self, ml_matrix, machine):
        csr = convert(ml_matrix, "csr")
        du = convert(ml_matrix, "csr-du")

        def ratio(t):
            return (
                simulate_spmv(csr, t, machine).time_s
                / simulate_spmv(du, t, machine).time_s
            )

        assert ratio(8) > ratio(1)

    def test_vi_beats_du_when_applicable(self, machine):
        """Table IV vs III: value compression is the bigger lever
        (values are 2/3 of the working set)."""
        m = realize(69, scale=SCALE)  # ML_vi member: high ttu
        t_csr = simulate_spmv(convert(m, "csr"), 8, machine).time_s
        t_du = simulate_spmv(convert(m, "csr-du"), 8, machine).time_s
        t_vi = simulate_spmv(convert(m, "csr-vi"), 8, machine).time_s
        assert t_vi < t_csr
        assert t_vi < t_du

    def test_traffic_reduction_is_the_mechanism(self, ml_matrix, machine):
        """The DU speedup must come from bytes, not cycles."""
        csr = convert(ml_matrix, "csr")
        du = convert(ml_matrix, "csr-du")
        res_csr = simulate_spmv(csr, 8, machine)
        res_du = simulate_spmv(du, 8, machine)
        assert res_du.total_traffic < res_csr.total_traffic
        assert sum(res_du.compute_s) >= sum(res_csr.compute_s)

    def test_dcsr_slower_than_du_but_compressed(self, ml_matrix, machine):
        """Section III-B: DCSR compresses comparably but dispatches
        per command -> CSR-DU wins on time."""
        du = convert(ml_matrix, "csr-du")
        dcsr = convert(ml_matrix, "dcsr")
        t_du = simulate_spmv(du, 1, machine).time_s
        t_dcsr = simulate_spmv(dcsr, 1, machine).time_s
        assert t_dcsr >= t_du


class TestDeterminism:
    def test_repeatable(self, ml_matrix, machine):
        csr = convert(ml_matrix, "csr")
        a = simulate_spmv(csr, 4, machine)
        b = simulate_spmv(csr, 4, machine)
        assert a.time_s == b.time_s
        assert a.traffic_bytes == b.traffic_bytes
