"""Tests for per-thread work/traffic accounting (exact byte counts)."""

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.formats import (
    BCSRMatrix,
    CSRDUMatrix,
    CSRDUVIMatrix,
    CSRMatrix,
    CSRVIMatrix,
    DCSRMatrix,
)
from repro.machine.traffic import LINE_SIZE, analyze_threads

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(40, 50, seed=80, quantize=8, empty_rows=True)
    )


class TestCSRAccounting:
    def test_totals_match_storage(self, csr):
        """Summed per-thread stream bytes equal the matrix's arrays."""
        for threads in (1, 2, 4):
            _, works = analyze_threads(csr, threads)
            assert sum(w.nnz for w in works) == csr.nnz
            col_bytes = sum(w.private_bytes["col_ind"] for w in works)
            assert col_bytes == csr.col_ind.nbytes
            val_bytes = sum(w.private_bytes["values"] for w in works)
            assert val_bytes == csr.values.nbytes
            y_bytes = sum(w.private_bytes["y"] for w in works)
            assert y_bytes == csr.nrows * 8

    def test_serial_is_whole_matrix(self, csr):
        _, works = analyze_threads(csr, 1)
        w = works[0]
        assert w.nnz == csr.nnz
        assert w.rows_assigned == csr.nrows
        assert w.flops == 2 * csr.nnz

    def test_x_footprint_line_granular(self, csr):
        _, works = analyze_threads(csr, 1)
        x = works[0].shared_bytes["x"]
        assert x % LINE_SIZE == 0
        lines = np.unique(csr.col_ind.astype(np.int64) // 8).size
        assert x == lines * LINE_SIZE

    def test_nonempty_rows(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[5, 3] = 1.0
        csr = CSRMatrix.from_dense(dense)
        _, works = analyze_threads(csr, 1)
        assert works[0].rows_nonempty == 2
        assert works[0].rows_assigned == 6


class TestCSRDUAccounting:
    def test_ctl_bytes_partition_exactly(self, csr):
        du = CSRDUMatrix.from_csr(csr)
        for threads in (1, 2, 3, 4):
            _, works = analyze_threads(du, threads)
            assert sum(w.private_bytes["ctl"] for w in works) == len(du.ctl)
            assert sum(w.units for w in works) == du.units.nunits

    def test_format_name(self, csr):
        du = CSRDUMatrix.from_csr(csr)
        _, works = analyze_threads(du, 2)
        assert all(w.format_name == "csr-du" for w in works)


class TestCSRVIAccounting:
    def test_val_ind_width(self, csr):
        vi = CSRVIMatrix.from_csr(csr)
        _, works = analyze_threads(vi, 2)
        total = sum(w.private_bytes["val_ind"] for w in works)
        assert total == vi.val_ind.nbytes
        for w in works:
            assert w.shared_bytes["vals_unique"] == vi.vals_unique.nbytes

    def test_du_vi(self, csr):
        duvi = CSRDUVIMatrix.from_csr(csr)
        _, works = analyze_threads(duvi, 2)
        assert sum(w.private_bytes["ctl"] for w in works) == len(duvi.ctl)
        assert sum(w.private_bytes["val_ind"] for w in works) == duvi.val_ind.nbytes


class TestDCSRAccounting:
    def test_commands_close_to_whole(self, csr):
        dcsr = DCSRMatrix.from_csr(csr)
        _, works = analyze_threads(dcsr, 2)
        total_cmds = sum(w.commands for w in works)
        # Per-thread re-encoding may alter a couple of row commands at
        # the seams, nothing more.
        assert abs(total_cmds - dcsr.command_count) <= 4
        stream_total = sum(w.private_bytes["stream"] for w in works)
        assert abs(stream_total - len(dcsr.stream)) <= 8


class TestBCSRAccounting:
    def test_blocks_partition(self, csr):
        bcsr = BCSRMatrix.from_csr(csr, r=2, c=2)
        _, works = analyze_threads(bcsr, 2)
        assert sum(w.blocks for w in works) == bcsr.block_values.shape[0]
        assert sum(w.stored_elements for w in works) == bcsr.nnz


class TestValidation:
    def test_bad_threads(self, csr):
        with pytest.raises(MachineModelError):
            analyze_threads(csr, 0)

    def test_unsupported_format(self):
        from repro.formats import COOMatrix

        coo = COOMatrix.from_dense(np.eye(3))
        with pytest.raises(MachineModelError):
            analyze_threads(coo, 1)
