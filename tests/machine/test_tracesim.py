"""Trace-driven simulation tests: the analytic model's ground truth."""

import pytest

from repro.errors import MachineModelError
from repro.formats import CSRMatrix, convert
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import clovertown_8core
from repro.machine.tracesim import (
    csr_du_trace,
    csr_trace,
    csr_vi_trace,
    format_trace,
    run_trace,
)

from tests.conftest import random_sparse_dense


@pytest.fixture(scope="module")
def csr():
    return CSRMatrix.from_dense(
        random_sparse_dense(48, 48, density=0.2, seed=170, quantize=8)
    )


class TestTraceGeneration:
    def test_csr_trace_length(self, csr):
        trace = csr_trace(csr)
        # row_ptr + y per row; col_ind + values + x per nonzero.
        assert trace.size == 2 * csr.nrows + 3 * csr.nnz

    def test_csr_vi_trace_length(self, csr):
        vi = convert(csr, "csr-vi")
        trace = csr_vi_trace(vi)
        # Extra val_ind and vals_unique access per nonzero.
        assert trace.size == 2 * csr.nrows + 4 * csr.nnz

    def test_csr_du_trace_covers_ctl(self, csr):
        du = convert(csr, "csr-du")
        trace = csr_du_trace(du)
        # One access per ctl byte + 2 per nnz + 1 y per unit.
        assert trace.size == len(du.ctl) + 2 * csr.nnz + du.units.nunits

    def test_dispatch(self, csr):
        assert format_trace(csr).size
        assert format_trace(convert(csr, "csr-du")).size
        assert format_trace(convert(csr, "csr-vi")).size

    def test_dispatch_unknown(self, csr):
        with pytest.raises(MachineModelError):
            format_trace(convert(csr, "coo"))

    def test_addresses_disjoint_regions(self, csr):
        """Different arrays never alias (64-byte aligned regions)."""
        vi = convert(csr, "csr-vi")
        trace = csr_vi_trace(vi)
        assert trace.min() >= 0
        total = (
            vi.row_ptr.nbytes
            + vi.col_ind.nbytes
            + vi.val_ind.nbytes
            + vi.vals_unique.nbytes
            + vi.ncols * 8
            + vi.nrows * 8
        )
        assert trace.max() < total + 6 * 64


class TestRunTrace:
    def test_fitting_regime_no_dram(self, csr):
        """Everything fits in L2 -> zero steady-state DRAM traffic."""
        res = run_trace(csr_trace(csr), l2_bytes=1024 * 1024, repeats=2)
        assert res.dram_bytes == 0

    def test_streaming_regime_traffic(self, csr):
        """Tiny L2 -> the matrix streams from DRAM every iteration."""
        res = run_trace(
            csr_trace(csr), l1_bytes=512, l1_assoc=2, l2_bytes=2048, l2_assoc=2
        )
        streamed = csr.nnz * 12  # col_ind + values
        assert res.dram_bytes > 0.5 * streamed

    def test_compressed_formats_move_fewer_bytes(self, csr):
        """The paper's core mechanism, measured on real address traces:
        CSR-DU and CSR-VI cut steady-state DRAM traffic."""
        kwargs = dict(l1_bytes=512, l1_assoc=2, l2_bytes=2048, l2_assoc=2)
        base = run_trace(csr_trace(csr), **kwargs).dram_bytes
        du = run_trace(csr_du_trace(convert(csr, "csr-du")), **kwargs).dram_bytes
        vi = run_trace(csr_vi_trace(convert(csr, "csr-vi")), **kwargs).dram_bytes
        assert du < base
        assert vi < base

    def test_repeats_required(self, csr):
        with pytest.raises(MachineModelError):
            run_trace(csr_trace(csr), repeats=0)


class TestModelAgreement:
    """Pin the analytic residency/traffic model to trace measurements."""

    @pytest.mark.parametrize("fmt", ["csr", "csr-du", "csr-vi"])
    def test_both_regimes(self, csr, fmt):
        m = convert(csr, fmt)
        trace = format_trace(m)

        # Fitting regime.
        fit = run_trace(trace, l2_bytes=1024 * 1024)
        machine_fit = clovertown_8core().scaled(0.25)  # 1 MB L2
        model_fit = simulate_spmv(m, 1, machine_fit)
        assert fit.dram_bytes == 0
        assert model_fit.resident_fraction > 0.95

        # Streaming regime: model traffic within 3x of trace-measured
        # (the analytic model works at array granularity and inflates x
        # by the reload factor; agreement here is about magnitude).
        stream = run_trace(trace, l1_bytes=256, l1_assoc=2, l2_bytes=1024, l2_assoc=2)
        machine_stream = clovertown_8core().scaled(0.00025)  # ~1 KB L2
        model_stream = simulate_spmv(m, 1, machine_stream)
        measured = stream.dram_bytes
        modeled = model_stream.total_traffic
        assert measured > 0 and modeled > 0
        assert 1 / 3 < modeled / measured < 3
