"""Tests for the roofline analysis."""

import pytest

from repro.formats import convert
from repro.machine.roofline import (
    format_roofline,
    machine_peak_flops,
    roofline_point,
    roofline_table,
)
from repro.machine.costmodel import default_cost_model
from repro.machine.topology import clovertown_8core
from repro.matrices.collection import realize

SCALE = 1 / 64


@pytest.fixture(scope="module")
def machine():
    return clovertown_8core().scaled(SCALE)


@pytest.fixture(scope="module")
def matrix():
    return realize(69, scale=SCALE)  # ML_vi: memory bound


class TestRoofline:
    def test_peak_scales_with_threads(self, machine):
        cost = default_cost_model()
        assert machine_peak_flops(machine, 8, cost) == pytest.approx(
            8 * machine_peak_flops(machine, 1, cost)
        )

    def test_spmv_is_memory_bound(self, matrix, machine):
        """The paper's premise as a roofline statement."""
        p = roofline_point(convert(matrix, "csr"), 8, machine)
        assert p.memory_bound
        assert p.intensity < 1.0  # SpMV: well under 1 flop/byte

    def test_compression_raises_intensity(self, matrix, machine):
        """Compression moves the kernel rightward on the roofline."""
        pts = {
            p.format_name: p
            for p in roofline_table(matrix, threads=8, machine=machine)
        }
        assert pts["csr-du"].intensity > pts["csr"].intensity
        assert pts["csr-vi"].intensity > pts["csr"].intensity
        assert pts["csr-du-vi"].intensity > pts["csr-du"].intensity

    def test_attainable_bounds_achieved(self, matrix, machine):
        """The engine's prediction respects the roofline ceiling within
        modeling slack (per-row overheads, partial overlap)."""
        for p in roofline_table(matrix, threads=8, machine=machine):
            assert p.achieved_mflops <= p.attainable_mflops * 1.05

    def test_attainable_tracks_intensity_when_bound(self, matrix, machine):
        p = roofline_point(convert(matrix, "csr"), 8, machine)
        if p.memory_bound:
            assert p.attainable_mflops < p.peak_mflops

    def test_formatting(self, matrix, machine):
        text = format_roofline(roofline_table(matrix, threads=8, machine=machine))
        assert "memory-bound" in text or "compute-bound" in text
        assert "csr-du" in text

    def test_resident_matrix_infinite_intensity(self, machine):
        """A fully cache-resident matrix has no DRAM traffic."""
        m = realize(44, scale=SCALE)  # MS: small working set
        big = clovertown_8core()  # unscaled caches: everything fits
        p = roofline_point(convert(m, "csr"), 1, big)
        assert p.intensity == float("inf")
        assert not p.memory_bound
