"""Tests for the trace-driven LRU cache simulator."""

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.formats import CSRMatrix
from repro.machine.cache import LRUCache, simulate_trace, spmv_address_trace

from tests.conftest import random_sparse_dense


class TestConstruction:
    def test_geometry(self):
        c = LRUCache(8192, assoc=4, line_bytes=64)
        assert c.nsets == 32
        assert c.capacity_bytes == 8192

    def test_bad_line_size(self):
        with pytest.raises(MachineModelError):
            LRUCache(8192, line_bytes=48)

    def test_bad_assoc(self):
        with pytest.raises(MachineModelError):
            LRUCache(8192, assoc=0)

    def test_too_small(self):
        with pytest.raises(MachineModelError):
            LRUCache(32, assoc=4, line_bytes=64)

    def test_non_power_of_two_sets(self):
        with pytest.raises(MachineModelError):
            LRUCache(3 * 64 * 4, assoc=4, line_bytes=64)


class TestLRUBehaviour:
    def test_hit_after_access(self):
        c = LRUCache(4096)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_lru_eviction_order(self):
        """Direct-mapped-ish: a 2-way set evicts its least recent way."""
        c = LRUCache(2 * 64, assoc=2, line_bytes=64)  # 1 set, 2 ways
        c.access(0)
        c.access(64)
        c.access(0)  # 0 is now most recent
        c.access(128)  # evicts 64
        assert c.contains(0)
        assert not c.contains(64)

    def test_associativity_conflicts(self):
        """Addresses mapping to one set thrash regardless of capacity."""
        c = LRUCache(4 * 64 * 8, assoc=4, line_bytes=64)  # 8 sets
        stride = c.nsets * 64  # same set every time
        for i in range(5):
            c.access(i * stride)
        assert not c.contains(0)  # evicted by the 5th way demand

    def test_resident_lines(self):
        c = LRUCache(4096)
        for i in range(10):
            c.access(i * 64)
        assert c.resident_lines() == 10

    def test_flush(self):
        c = LRUCache(4096)
        c.access(0)
        c.flush()
        assert c.resident_lines() == 0
        assert c.stats.accesses == 0

    def test_cyclic_thrash_property(self):
        """Cyclic streaming over ws > capacity yields ~zero hits --
        the physical behaviour the residency exponent approximates."""
        c = LRUCache(64 * 16, assoc=16, line_bytes=64)  # 16 lines, 1 set
        addrs = np.arange(0, 64 * 32, 64)  # 32 lines, cyclic
        stats = simulate_trace(c, addrs, repeats=3)
        assert stats.hit_rate == 0.0

    def test_fitting_workload_all_hits_steady_state(self):
        c = LRUCache(64 * 64, assoc=8, line_bytes=64)
        addrs = np.arange(0, 64 * 16, 64)
        stats = simulate_trace(c, addrs, repeats=2)
        assert stats.hit_rate == 1.0


class TestTraceSim:
    def test_repeats_required(self):
        with pytest.raises(MachineModelError):
            simulate_trace(LRUCache(4096), np.array([0]), repeats=0)

    def test_stats_isolated_per_repeat(self):
        c = LRUCache(64 * 64, assoc=8)
        stats = simulate_trace(c, np.array([0, 64, 128]), repeats=2)
        assert stats.accesses == 3

    def test_spmv_trace_shape(self, paper_matrix):
        trace = spmv_address_trace(paper_matrix.row_ptr, paper_matrix.col_ind)
        # Per row: 1 row_ptr + 1 y; per nnz: col_ind + values + x.
        assert trace.size == 6 * 2 + 16 * 3

    def test_spmv_trace_steady_state_hits_when_fitting(self, paper_matrix):
        """Validation hook for the residency model: a matrix whose whole
        working set fits gets ~100% hits in the steady state."""
        trace = spmv_address_trace(paper_matrix.row_ptr, paper_matrix.col_ind)
        cache = LRUCache(64 * 1024, assoc=16)
        stats = simulate_trace(cache, trace, repeats=2)
        assert stats.hit_rate > 0.99

    def test_residency_model_agrees_with_trace_sim(self):
        """Cross-check: analytic residency vs true LRU on both regimes."""
        from repro.machine.simulate import simulate_spmv
        from repro.machine.topology import clovertown_8core

        dense = random_sparse_dense(64, 64, density=0.2, seed=70)
        csr = CSRMatrix.from_dense(dense)
        trace = spmv_address_trace(csr.row_ptr, csr.col_ind)

        # Fitting regime: big cache -> trace hits ~1, model resident ~1.
        big = clovertown_8core().scaled(0.016)  # 64 KB L2
        res_fit = simulate_spmv(csr, 1, big)
        cache = LRUCache(64 * 1024, assoc=16)
        trace_fit = simulate_trace(cache, trace, repeats=2)
        assert res_fit.resident_fraction > 0.9
        assert trace_fit.hit_rate > 0.9

        # Thrashing regime: tiny cache.  Note the trace's hit *rate*
        # stays high from intra-line spatial hits (16 col_ind entries
        # per 64 B line); the model's quantity is line traffic, so we
        # check that (a) the model reports low residency and (b) the
        # true LRU stops short of the fitting regime's steady state.
        tiny = clovertown_8core().scaled(0.0001)  # ~400 B L2
        res_thrash = simulate_spmv(csr, 1, tiny)
        cache2 = LRUCache(1024, assoc=2)
        trace_thrash = simulate_trace(cache2, trace, repeats=2)
        assert res_thrash.resident_fraction < 0.3
        assert trace_thrash.hit_rate < trace_fit.hit_rate - 0.05
        miss_bytes = trace_thrash.misses * 64
        streamed = csr.nnz * 12  # col_ind + values per iteration
        assert miss_bytes > streamed  # genuinely re-streaming each pass
