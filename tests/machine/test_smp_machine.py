"""Tests for the configurable SMP machine builder."""

import pytest

from repro.errors import MachineModelError
from repro.machine.topology import place_threads, smp_machine


class TestSmpMachine:
    def test_default_topology(self):
        m = smp_machine(8)
        assert m.ncores == 8
        assert len(m.dies()) == 4
        assert len(m.packages()) == 2

    def test_cores_per_die(self):
        m = smp_machine(32, cores_per_die=8)
        assert len(m.dies()) == 4
        assert all(len(c) == 8 for c in m.dies().values())

    def test_ragged_last_die(self):
        m = smp_machine(5, cores_per_die=2)
        assert m.ncores == 5
        assert len(m.dies()) == 3

    def test_matches_clovertown_shape(self):
        from repro.machine.topology import clovertown_8core

        clover = clovertown_8core()
        smp = smp_machine(8)
        assert smp.dies().keys() == clover.dies().keys()
        assert smp.packages().keys() == clover.packages().keys()
        assert smp.core_bw == clover.core_bw
        assert smp.mem_bw == clover.mem_bw

    def test_placement_works(self):
        m = smp_machine(16, cores_per_die=4)
        assert len(place_threads(m, 16, "close")) == 16
        spread = place_threads(m, 4, "spread")
        info = {c.core_id: c for c in m.cores}
        assert len({info[c].die_id for c in spread}) == 4

    def test_bad_args(self):
        with pytest.raises(MachineModelError):
            smp_machine(0)
        with pytest.raises(MachineModelError):
            smp_machine(4, cores_per_die=0)

    def test_simulation_runs_at_32_cores(self):
        from repro.formats import convert
        from repro.machine.simulate import simulate_spmv
        from repro.matrices.collection import realize

        m = smp_machine(32, cores_per_die=8).scaled(1 / 64)
        matrix = convert(realize(69, scale=1 / 64), "csr")
        res = simulate_spmv(matrix, 32, m)
        assert res.time_s > 0
        assert len(res.compute_s) == 32
