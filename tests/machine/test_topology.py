"""Tests for machine topology and thread placement."""

import pytest

from repro.errors import MachineModelError
from repro.machine.topology import (
    Core,
    MachineSpec,
    clovertown_8core,
    place_threads,
    woodcrest_4core,
)


class TestClovertown:
    def test_structure_matches_fig6(self):
        """Fig. 6: 2 packages x 2 dies x 2 cores, 4 MB L2 per die, 2 GHz."""
        m = clovertown_8core()
        assert m.ncores == 8
        assert m.clock_hz == 2.0e9
        assert m.l2_bytes == 4 * 1024 * 1024
        dies = m.dies()
        assert len(dies) == 4
        assert all(len(cores) == 2 for cores in dies.values())
        packages = m.packages()
        assert len(packages) == 2
        assert sorted(packages[0]) == [0, 1, 2, 3]

    def test_total_l2(self):
        assert clovertown_8core().total_l2_bytes() == 16 * 1024 * 1024

    def test_woodcrest(self):
        m = woodcrest_4core()
        assert m.ncores == 4
        assert len(m.dies()) == 2


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            name="t",
            clock_hz=1e9,
            cores=(Core(0, 0, 0),),
            l1_bytes=1024,
            l2_bytes=4096,
            l2_assoc=4,
            line_bytes=64,
            core_bw=1e9,
            die_bw=1e9,
            fsb_bw=1e9,
            mem_bw=1e9,
        )
        kwargs.update(overrides)
        return MachineSpec(**kwargs)

    def test_valid(self):
        assert self._base().ncores == 1

    def test_bad_clock(self):
        with pytest.raises(MachineModelError):
            self._base(clock_hz=0)

    def test_no_cores(self):
        with pytest.raises(MachineModelError):
            self._base(cores=())

    def test_sparse_core_ids(self):
        with pytest.raises(MachineModelError):
            self._base(cores=(Core(1, 0, 0),))

    def test_bad_bandwidth(self):
        with pytest.raises(MachineModelError):
            self._base(mem_bw=-1)

    def test_bad_effectiveness(self):
        with pytest.raises(MachineModelError):
            self._base(cache_effectiveness=0.0)

    def test_bad_overlap(self):
        with pytest.raises(MachineModelError):
            self._base(overlap=1.5)

    def test_bad_x_reload(self):
        with pytest.raises(MachineModelError):
            self._base(x_reload=0.5)


class TestScaled:
    def test_shrinks_caches_only(self):
        m = clovertown_8core()
        s = m.scaled(0.25)
        assert s.l2_bytes == m.l2_bytes // 4
        assert s.core_bw == m.core_bw
        assert s.clock_hz == m.clock_hz
        assert s.ncores == m.ncores

    def test_bad_factor(self):
        with pytest.raises(MachineModelError):
            clovertown_8core().scaled(0)


class TestPlacement:
    def test_close_packs_shared_l2(self):
        m = clovertown_8core()
        assert place_threads(m, 2, "close") == (0, 1)  # same die = shared L2
        assert place_threads(m, 4, "close") == (0, 1, 2, 3)  # one package

    def test_spread_2_same_package_separate_l2(self):
        """The paper's 2 (2xL2) config: different dies, same package."""
        m = clovertown_8core()
        cores = place_threads(m, 2, "spread")
        info = {c.core_id: c for c in m.cores}
        a, b = (info[c] for c in cores)
        assert a.die_id != b.die_id
        assert a.package_id == b.package_id

    def test_spread_4_uses_all_dies(self):
        m = clovertown_8core()
        cores = place_threads(m, 4, "spread")
        info = {c.core_id: c for c in m.cores}
        assert len({info[c].die_id for c in cores}) == 4

    def test_full_machine(self):
        m = clovertown_8core()
        assert sorted(place_threads(m, 8, "close")) == list(range(8))
        assert sorted(place_threads(m, 8, "spread")) == list(range(8))

    def test_too_many_threads(self):
        with pytest.raises(MachineModelError):
            place_threads(clovertown_8core(), 9)

    def test_zero_threads(self):
        with pytest.raises(MachineModelError):
            place_threads(clovertown_8core(), 0)

    def test_unknown_policy(self):
        with pytest.raises(MachineModelError):
            place_threads(clovertown_8core(), 2, "diagonal")
