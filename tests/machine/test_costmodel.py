"""Tests for the kernel cost model."""

import pytest

from repro.errors import MachineModelError
from repro.machine.costmodel import CostModel, KernelCost, default_cost_model


@pytest.fixture
def cost():
    return default_cost_model()


class TestKernelCost:
    def test_total(self):
        k = KernelCost(element_cycles=10, row_cycles=5, dispatch_cycles=2)
        assert k.total == 17


class TestRelationships:
    """The qualitative relationships the paper's Section III-B needs."""

    def test_du_costs_more_compute_than_csr(self, cost):
        assert cost.csr_du(1000, 10, 20).total > cost.csr(1000, 10).total

    def test_vi_costs_more_compute_than_csr(self, cost):
        assert cost.csr_vi(1000, 10).total > cost.csr(1000, 10).total

    def test_du_vi_costs_most(self, cost):
        assert (
            cost.csr_du_vi(1000, 10, 20).total
            > cost.csr_du(1000, 10, 20).total
        )

    def test_dcsr_dispatch_dominates_du(self, cost):
        """Same matrix: DCSR has ~1 command/element vs ~1 unit/50
        elements for CSR-DU, and a worse mispredict rate -> the
        fine-grained dispatch penalty of [19]."""
        nnz, rows = 10_000, 100
        du = cost.csr_du(nnz, rows, units=rows)  # large units
        dcsr = cost.dcsr(nnz, rows, commands=rows + nnz // 3)
        assert dcsr.dispatch_cycles > du.dispatch_cycles

    def test_unit_cost_amortizes(self, cost):
        """More elements per unit -> lower cost per element (the
        paper's coarse-grain argument)."""
        fine = cost.csr_du(1000, 10, units=500).total / 1000
        coarse = cost.csr_du(1000, 10, units=20).total / 1000
        assert coarse < fine

    def test_scaling_linear_in_elements(self, cost):
        assert cost.csr(2000, 10).element_cycles == 2 * cost.csr(1000, 10).element_cycles

    def test_bcsr_fill_not_free(self, cost):
        assert cost.bcsr(4000, 1000, 100).total > cost.bcsr(2000, 500, 100).total

    def test_zero_work_zero_cost(self, cost):
        assert cost.csr(0, 0).total == 0.0


class TestValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(MachineModelError):
            CostModel(per_element=-1)

    def test_mildly_negative_decode_allowed(self):
        m = CostModel(du_decode_per_element=-0.5)
        assert m.csr_du(100, 1, 1).total > 0

    def test_decode_cannot_make_free(self):
        with pytest.raises(MachineModelError):
            CostModel(per_element=2.0, du_decode_per_element=-3.0)

    def test_bad_rate(self):
        with pytest.raises(MachineModelError):
            CostModel(dcsr_mispredict_rate=1.5)


class TestSequentialUnits:
    def test_seq_elements_cheaper(self, cost):
        """Sequential units skip the per-element delta load."""
        plain = cost.csr_du(1000, 10, 20, seq_elements=0).total
        seq = cost.csr_du(1000, 10, 20, seq_elements=1000).total
        assert seq < plain

    def test_seq_still_dearer_than_csr(self, cost):
        """Even all-sequential decode isn't free."""
        assert (
            cost.csr_du(1000, 10, 20, seq_elements=1000).total
            > cost.csr(1000, 10).total
        )

    def test_du_vi_inherits_seq_discount(self, cost):
        a = cost.csr_du_vi(1000, 10, 20, seq_elements=0).total
        b = cost.csr_du_vi(1000, 10, 20, seq_elements=1000).total
        assert b < a
