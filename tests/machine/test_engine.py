"""Tests for the residency + makespan engine, including monotonicity
properties (more bandwidth never hurts; more traffic never helps)."""

import dataclasses

import pytest

from repro.errors import MachineModelError
from repro.machine.costmodel import default_cost_model
from repro.machine.engine import solve_makespan
from repro.machine.topology import clovertown_8core, place_threads
from repro.machine.traffic import ThreadWork


def make_work(thread=0, nnz=100_000, rows=1000, stream=1_200_000, x=80_000):
    return ThreadWork(
        thread=thread,
        format_name="csr",
        nnz=nnz,
        rows_assigned=rows,
        rows_nonempty=rows,
        private_bytes={"col_ind": stream // 3, "values": 2 * stream // 3, "y": rows * 8},
        shared_bytes={"x": x},
    )


@pytest.fixture
def machine():
    return clovertown_8core()


@pytest.fixture
def cost():
    return default_cost_model()


class TestBasics:
    def test_serial(self, machine, cost):
        res = solve_makespan([make_work()], (0,), machine, cost)
        assert res.time_s > 0
        assert res.mflops > 0
        assert len(res.compute_s) == 1
        assert res.bound in ("compute", "core-bw", "die-bw", "l2-bw", "fsb", "mem")

    def test_zero_work(self, machine, cost):
        w = ThreadWork(
            thread=0, format_name="csr", nnz=0, rows_assigned=0, rows_nonempty=0
        )
        res = solve_makespan([w], (0,), machine, cost)
        assert res.time_s == 0.0

    def test_resident_when_tiny(self, machine, cost):
        w = make_work(stream=1000, x=64, rows=10, nnz=100)
        res = solve_makespan([w], (0,), machine, cost)
        assert res.resident_fraction == pytest.approx(1.0)
        assert res.total_traffic == 0.0

    def test_streaming_when_huge(self, machine, cost):
        w = make_work(stream=400 * 1024 * 1024, nnz=30_000_000)
        res = solve_makespan([w], (0,), machine, cost)
        assert res.resident_fraction < 0.05
        assert res.total_traffic > 0.9 * 400 * 1024 * 1024


class TestMonotonicity:
    def test_more_bandwidth_never_slower(self, machine, cost):
        works = [make_work(thread=t, stream=40_000_000) for t in range(4)]
        cores = place_threads(machine, 4)
        base = solve_makespan(works, cores, machine, cost).time_s
        faster = dataclasses.replace(
            machine,
            core_bw=machine.core_bw * 2,
            die_bw=machine.die_bw * 2,
            fsb_bw=machine.fsb_bw * 2,
            mem_bw=machine.mem_bw * 2,
            l2_core_bw=machine.l2_core_bw * 2,
            l2_die_bw=machine.l2_die_bw * 2,
        )
        assert solve_makespan(works, cores, faster, cost).time_s <= base

    def test_more_traffic_never_faster(self, machine, cost):
        small = [make_work(stream=10_000_000)]
        large = [make_work(stream=20_000_000)]
        t_small = solve_makespan(small, (0,), machine, cost).time_s
        t_large = solve_makespan(large, (0,), machine, cost).time_s
        assert t_large >= t_small

    def test_bigger_cache_never_slower(self, machine, cost):
        works = [make_work(thread=t, stream=6_000_000) for t in range(2)]
        cores = place_threads(machine, 2)
        base = solve_makespan(works, cores, machine, cost).time_s
        bigger = dataclasses.replace(machine, l2_bytes=machine.l2_bytes * 4)
        assert solve_makespan(works, cores, bigger, cost).time_s <= base + 1e-12

    def test_splitting_work_never_slower_total(self, machine, cost):
        """Two threads doing half each finish no later than one doing all
        (bandwidth domains cap the gain but never invert it)."""
        whole = [make_work(stream=40_000_000, nnz=3_000_000)]
        halves = [
            make_work(thread=t, stream=20_000_000, nnz=1_500_000) for t in range(2)
        ]
        t1 = solve_makespan(whole, (0,), machine, cost).time_s
        t2 = solve_makespan(halves, (0, 1), machine, cost).time_s
        assert t2 <= t1 + 1e-12


class TestDomains:
    def test_mem_binds_at_8_threads(self, machine, cost):
        """Eight streaming threads saturate the MCH, not a package FSB."""
        works = [make_work(thread=t, stream=60_000_000, nnz=4_000_000) for t in range(8)]
        res = solve_makespan(works, place_threads(machine, 8), machine, cost)
        assert res.bound == "mem"

    def test_shared_array_counted_once_per_die(self, machine, cost):
        """Two threads on one die share x; on two dies they each pull it."""
        works = [
            dataclasses.replace(
                make_work(thread=t, stream=30_000_000), shared_bytes={"x": 3_000_000}
            )
            for t in range(2)
        ]
        shared_cap = {"x": 3_000_000}
        same_die = solve_makespan(
            works, (0, 1), machine, cost, total_shared=shared_cap
        )
        diff_die = solve_makespan(
            works, (0, 2), machine, cost, total_shared=shared_cap
        )
        # Same die: x union capped at 3 MB; different dies: 3 MB per die.
        assert sum(same_die.traffic_bytes) <= sum(diff_die.traffic_bytes) + 1e-9


class TestValidation:
    def test_core_count_mismatch(self, machine, cost):
        with pytest.raises(MachineModelError):
            solve_makespan([make_work()], (0, 1), machine, cost)

    def test_duplicate_cores(self, machine, cost):
        with pytest.raises(MachineModelError):
            solve_makespan(
                [make_work(0), make_work(1)], (0, 0), machine, cost
            )

    def test_unknown_core(self, machine, cost):
        with pytest.raises(MachineModelError):
            solve_makespan([make_work()], (42,), machine, cost)

    def test_unknown_format(self, machine, cost):
        w = dataclasses.replace(make_work(), format_name="mystery")
        with pytest.raises(MachineModelError):
            solve_makespan([w], (0,), machine, cost)
