"""SLO rule parsing and evaluation on hand-built snapshots."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.obs.rules import (
    RuleEngine,
    counter_rate,
    counter_total,
    default_rules,
    gauge_value,
    histogram_percentile,
    parse_rule,
)


def snap(*, counters=(), gauges=(), histograms=()):
    return {
        "counters": list(counters),
        "gauges": list(gauges),
        "histograms": list(histograms),
    }


def counter(name, total, rates=None, labels=None):
    return {
        "name": name,
        "labels": labels or {},
        "total": total,
        "rates": rates or {},
    }


def histogram(name, values, labels=None):
    from repro.obs.histogram import StreamingHistogram

    h = StreamingHistogram()
    for v in values:
        h.observe(v)
    return {"name": name, "labels": labels or {}, **h.snapshot()}


class TestParse:
    def test_rate(self):
        r = parse_rule("rate(kernel.fallback[10s]) > 0")
        assert (r.kind, r.metric, r.op) == ("rate", "kernel.fallback", ">")
        assert r.window_s == 10.0
        assert r.value == 0.0
        assert r.name == "rate:kernel.fallback"

    def test_ratio(self):
        r = parse_rule("p99(spmv.chunk.seconds) > 5 * p50(spmv.chunk.seconds)")
        assert r.kind == "ratio"
        assert (r.q, r.rhs_q) == (99.0, 50.0)
        assert r.value == 5.0
        assert r.rhs_metric == "spmv.chunk.seconds"

    def test_percentile(self):
        r = parse_rule("p95(bench.cell.seconds) >= 0.25")
        assert (r.kind, r.q, r.op, r.value) == ("percentile", 95.0, ">=", 0.25)

    def test_threshold(self):
        r = parse_rule("obs.resource.rss_bytes > 1e9")
        assert (r.kind, r.value) == ("threshold", 1e9)

    def test_explicit_name_and_cooldown(self):
        r = parse_rule("x > 1", name="mem", cooldown_s=3.0)
        assert r.name == "mem"
        assert r.cooldown_s == 3.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "rate(x) > 0",  # missing window
            "p99(x) > * p50(x)",
            "x ~ 5",
            "rate(x[10s]) = 0",
            "p99() > 1",
        ],
    )
    def test_bad_syntax(self, bad):
        with pytest.raises(TelemetryError):
            parse_rule(bad)


class TestAccessors:
    def test_counter_total_sums_label_sets(self):
        s = snap(
            counters=[
                counter("f", 2, labels={"format": "csr-du"}),
                counter("f", 3, labels={"format": "csr-vi"}),
            ]
        )
        assert counter_total(s, "f") == 5.0
        assert counter_total(s, "absent") == 0.0

    def test_counter_rate_absent_is_zero(self):
        assert counter_rate(snap(), "nope", 10.0) == 0.0

    def test_counter_rate_present_without_window_is_none(self):
        s = snap(counters=[counter("f", 1, rates={"60s": 0.1})])
        assert counter_rate(s, "f", 10.0) is None

    def test_counter_rate_sums_label_sets(self):
        s = snap(
            counters=[
                counter("f", 1, rates={"10s": 0.5}, labels={"a": "1"}),
                counter("f", 1, rates={"10s": 0.25}, labels={"a": "2"}),
            ]
        )
        assert counter_rate(s, "f", 10.0) == 0.75

    def test_gauge_value(self):
        s = snap(gauges=[{"name": "g", "labels": {}, "value": 7.0}])
        assert gauge_value(s, "g") == 7.0
        assert gauge_value(s, "absent") is None

    def test_histogram_percentile_merges_label_sets(self):
        from repro.obs.histogram import StreamingHistogram

        a = [0.01] * 50
        b = [1.0] * 50
        s = snap(
            histograms=[
                histogram("h", a, labels={"format": "csr-du"}),
                histogram("h", b, labels={"format": "csr-vi"}),
            ]
        )
        whole = StreamingHistogram()
        for v in a + b:
            whole.observe(v)
        assert histogram_percentile(s, "h", 99.0) == whole.percentile(99.0)
        assert histogram_percentile(s, "absent", 99.0) is None


class TestEvaluate:
    def test_rate_rule_fires(self):
        rule = parse_rule("rate(kernel.fallback[10s]) > 0")
        quiet = snap(counters=[counter("kernel.fallback", 0, rates={"10s": 0.0})])
        loud = snap(counters=[counter("kernel.fallback", 3, rates={"10s": 0.3})])
        assert rule.evaluate(quiet) is None
        alert = rule.evaluate(loud, now=123.0)
        assert alert is not None
        assert alert.value == pytest.approx(0.3)
        assert alert.threshold == 0.0
        assert alert.fired_at == 123.0
        assert "kernel.fallback" in alert.describe()

    def test_rate_rule_skips_without_window(self):
        rule = parse_rule("rate(f[10s]) > 0")
        s = snap(counters=[counter("f", 5, rates={"60s": 1.0})])
        assert rule.evaluate(s) is None

    def test_ratio_rule(self):
        rule = parse_rule("p99(h) > 5 * p50(h)")
        tight = snap(histograms=[histogram("h", [1.0] * 100)])
        heavy = snap(histograms=[histogram("h", [0.01] * 99 + [10.0] * 5)])
        assert rule.evaluate(tight) is None
        alert = rule.evaluate(heavy)
        assert alert is not None
        assert alert.value > alert.threshold

    def test_ratio_rule_skips_empty_histogram(self):
        rule = parse_rule("p99(h) > 5 * p50(h)")
        assert rule.evaluate(snap()) is None

    def test_percentile_rule(self):
        rule = parse_rule("p99(h) > 0.5")
        assert rule.evaluate(snap(histograms=[histogram("h", [1.0])])) is not None
        assert rule.evaluate(snap(histograms=[histogram("h", [0.1])])) is None

    def test_threshold_prefers_gauge_over_counter(self):
        rule = parse_rule("m > 10")
        s = snap(
            counters=[counter("m", 100.0)],
            gauges=[{"name": "m", "labels": {}, "value": 1.0}],
        )
        assert rule.evaluate(s) is None  # the gauge (1.0) wins
        assert rule.evaluate(snap(counters=[counter("m", 100.0)])) is not None

    def test_alert_as_dict_round_trip(self):
        rule = parse_rule("m > 10")
        alert = rule.evaluate(snap(counters=[counter("m", 11)]), now=5.0)
        d = alert.as_dict()
        assert d == {
            "rule": "threshold:m",
            "expr": "m > 10",
            "metric": "m",
            "value": 11.0,
            "threshold": 10.0,
            "fired_at": 5.0,
        }


class TestEngine:
    def test_cooldown_suppresses_refiring(self):
        engine = RuleEngine([parse_rule("m > 0", cooldown_s=10.0)])
        bad = snap(counters=[counter("m", 1)])
        assert len(engine.evaluate(bad, now=100.0)) == 1
        assert engine.evaluate(bad, now=105.0) == []  # inside cooldown
        assert len(engine.evaluate(bad, now=111.0)) == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(TelemetryError, match="duplicate"):
            RuleEngine([parse_rule("m > 0"), parse_rule("m > 1")])
        engine = RuleEngine([parse_rule("m > 0")])
        with pytest.raises(TelemetryError, match="duplicate"):
            engine.add("m > 2")

    def test_accepts_strings(self):
        engine = RuleEngine(["m > 0"])
        assert engine.rules[0].metric == "m"

    def test_default_rules(self):
        rules = default_rules()
        names = {r.name for r in rules}
        assert names == {
            "kernel-fallback",
            "executor-retry",
            "chunk-tail-latency",
            "breaker-open",
            "backend-degraded",
        }
        # A healthy empty snapshot fires nothing.
        engine = RuleEngine(default_rules())
        assert engine.evaluate(snap()) == []
