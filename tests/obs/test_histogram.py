"""StreamingHistogram: bounded percentile error, merge associativity."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.histogram import (
    DEFAULT_GROWTH,
    StreamingHistogram,
    percentile_from_buckets,
)

#: Documented geometric-midpoint bound: sqrt(growth) - 1 (~9.1%).
ERROR_BOUND = math.sqrt(DEFAULT_GROWTH) - 1.0

QS = (50.0, 90.0, 95.0, 99.0)


def _distributions():
    rng = np.random.default_rng(42)
    uniform = rng.uniform(0.001, 1.0, size=5000)
    lognormal = rng.lognormal(mean=-4.0, sigma=1.5, size=5000)
    # Unequal mode weights keep every tested percentile inside a mode,
    # not on the inter-mode cliff where any estimator is ill-defined.
    bimodal = np.concatenate(
        [
            rng.normal(1e-3, 1e-4, size=3000).clip(min=1e-5),
            rng.normal(1.0, 0.05, size=2000).clip(min=1e-5),
        ]
    )
    return {"uniform": uniform, "lognormal": lognormal, "bimodal": bimodal}


class TestPercentileAccuracy:
    @pytest.mark.parametrize("name", ["uniform", "lognormal", "bimodal"])
    def test_matches_numpy_within_bucket_error(self, name):
        data = _distributions()[name]
        hist = StreamingHistogram()
        for v in data:
            hist.observe(v)
        for q in QS:
            # inverted_cdf is numpy's nearest-rank method -- the same
            # rank definition the histogram uses, so the only error
            # left is the bucket-midpoint estimate.
            exact = float(np.percentile(data, q, method="inverted_cdf"))
            est = hist.percentile(q)
            rel = abs(est - exact) / exact
            assert rel <= ERROR_BOUND + 1e-12, (
                f"{name} p{q}: estimate {est} vs exact {exact} "
                f"({rel:.4f} > bound {ERROR_BOUND:.4f})"
            )

    def test_min_max_exact_at_extremes(self):
        data = [0.123, 0.5, 7.0, 31.5]
        hist = StreamingHistogram()
        for v in data:
            hist.observe(v)
        assert hist.percentile(0) == 0.123
        assert hist.percentile(100) == 31.5
        assert hist.min == 0.123
        assert hist.max == 31.5

    def test_zero_and_underflow_bucket(self):
        hist = StreamingHistogram(min_value=1e-6)
        for v in (0.0, 1e-9, 1e-7, 5.0):
            hist.observe(v)
        buckets = hist.buckets()
        assert buckets[0][:2] == (0.0, 1e-6)
        assert buckets[0][2] == 3
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 5.0

    def test_rejects_non_finite(self):
        hist = StreamingHistogram()
        with pytest.raises(ValueError):
            hist.observe(float("nan"))
        with pytest.raises(ValueError):
            hist.observe(float("inf"))
        assert hist.count == 0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            StreamingHistogram().percentile(50)

    def test_percentile_out_of_range(self):
        hist = StreamingHistogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestMerge:
    def test_merge_of_shards_equals_concatenation(self):
        rng = np.random.default_rng(7)
        streams = [rng.lognormal(-3, 1, size=n) for n in (100, 1000, 37)]
        shards = []
        for stream in streams:
            shard = StreamingHistogram()
            for v in stream:
                shard.observe(v)
            shards.append(shard)
        whole = StreamingHistogram()
        for v in np.concatenate(streams):
            whole.observe(v)
        merged = StreamingHistogram.merged(shards)
        assert merged.snapshot()["buckets"] == whole.snapshot()["buckets"]
        assert merged.count == whole.count
        assert merged.min == whole.min
        assert merged.max == whole.max
        assert merged.sum == pytest.approx(whole.sum)
        for q in QS:
            assert merged.percentile(q) == whole.percentile(q)

    def test_merge_order_independent(self):
        rng = np.random.default_rng(11)
        shards = []
        for _ in range(4):
            shard = StreamingHistogram()
            for v in rng.uniform(1e-4, 10.0, size=200):
                shard.observe(v)
            shards.append(shard)
        forward = StreamingHistogram.merged(shards)
        backward = StreamingHistogram.merged(shards[::-1])
        assert forward.snapshot()["buckets"] == backward.snapshot()["buckets"]
        assert forward.percentile(99) == backward.percentile(99)

    def test_merge_rejects_incompatible_bucketing(self):
        a = StreamingHistogram(growth=2.0)
        b = StreamingHistogram(growth=1.5)
        with pytest.raises(ValueError, match="different bucketing"):
            a.merge(b)

    def test_merged_needs_a_shard(self):
        with pytest.raises(ValueError):
            StreamingHistogram.merged([])


class TestSnapshot:
    def test_snapshot_fields(self):
        hist = StreamingHistogram()
        for v in (0.01, 0.02, 0.04):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.07)
        assert snap["min"] == 0.01
        assert snap["max"] == 0.04
        assert snap["growth"] == DEFAULT_GROWTH
        assert all(len(b) == 3 for b in snap["buckets"])
        assert sum(b[2] for b in snap["buckets"]) == 3
        for q in (50, 90, 95, 99):
            assert f"p{q}" in snap

    def test_empty_snapshot_has_no_quantiles(self):
        snap = StreamingHistogram().snapshot()
        assert snap["count"] == 0
        assert "p50" not in snap

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(min_value=0.0)


class TestPercentileFromBuckets:
    def test_rank_walk(self):
        buckets = [(0.0, 1.0, 2), (1.0, 2.0, 2), (2.0, 4.0, 6)]
        # rank(50) = ceil(0.5 * 10) = 5 -> third bucket's midpoint.
        est = percentile_from_buckets(buckets, 10, 50)
        assert est == pytest.approx(math.sqrt(2.0 * 4.0))

    def test_clamps(self):
        buckets = [(1.0, 2.0, 1)]
        assert percentile_from_buckets(
            buckets, 1, 99, lo_clamp=1.2, hi_clamp=1.3
        ) == 1.3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_from_buckets([], 0, 50)
