"""OpenMetrics exposition format: grammar, escaping, cumulative buckets."""

from __future__ import annotations

from repro.obs.histogram import StreamingHistogram
from repro.obs.openmetrics import (
    escape_label_value,
    metric_name,
    render_openmetrics,
)


def test_metric_name_sanitization():
    assert metric_name("spmv.chunk.seconds") == "spmv_chunk_seconds"
    assert metric_name("kernel.fallback") == "kernel_fallback"
    assert metric_name("already_ok") == "already_ok"
    assert metric_name("9starts.bad") == "_9starts_bad"


def test_escape_label_value():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    assert escape_label_value(42) == "42"


def test_render_counters_and_rates():
    text = render_openmetrics(
        {
            "counters": [
                {
                    "name": "kernel.fallback",
                    "labels": {"format": "csr-du"},
                    "total": 3,
                    "rates": {"10s": 0.3, "60s": 0.05},
                }
            ]
        }
    )
    assert "# TYPE kernel_fallback counter" in text
    assert 'kernel_fallback_total{format="csr-du"} 3' in text
    assert "# TYPE kernel_fallback_rate gauge" in text
    assert 'kernel_fallback_rate{format="csr-du",window="10s"} 0.3' in text
    assert text.endswith("# EOF\n")


def test_render_gauges():
    text = render_openmetrics(
        {
            "gauges": [
                {"name": "obs.resource.threads", "labels": {}, "value": 4.0}
            ]
        }
    )
    assert "# TYPE obs_resource_threads gauge" in text
    assert "obs_resource_threads 4" in text


def test_render_histogram_cumulative_buckets_and_quantiles():
    h = StreamingHistogram()
    for v in (0.01, 0.02, 0.02, 0.04):
        h.observe(v)
    text = render_openmetrics(
        {
            "histograms": [
                {"name": "spmv.chunk.seconds", "labels": {}, **h.snapshot()}
            ]
        }
    )
    lines = text.splitlines()
    bucket_counts = [
        float(ln.rsplit(" ", 1)[1])
        for ln in lines
        if ln.startswith("spmv_chunk_seconds_bucket")
    ]
    # Cumulative: non-decreasing, ending at the +Inf bucket == count.
    assert bucket_counts == sorted(bucket_counts)
    assert bucket_counts[-1] == 4
    assert 'le="+Inf"' in text
    assert "spmv_chunk_seconds_count 4" in text
    assert any(ln.startswith("spmv_chunk_seconds_sum") for ln in lines)
    for q in (50, 90, 95, 99):
        assert f"# TYPE spmv_chunk_seconds_p{q} gauge" in text


def test_render_alerts_grouped_by_rule():
    text = render_openmetrics(
        {
            "alerts": [
                {"rule": "kernel-fallback"},
                {"rule": "kernel-fallback"},
                {"rule": "executor-retry"},
            ]
        }
    )
    assert 'obs_alerts_fired_total{rule="kernel-fallback"} 2' in text
    assert 'obs_alerts_fired_total{rule="executor-retry"} 1' in text


def test_timestamp_and_uptime():
    text = render_openmetrics({"ts": 1700000000.0, "uptime_s": 12.5})
    assert "obs_snapshot_timestamp_seconds 1700000000" in text
    assert "obs_uptime_seconds 12.5" in text


def test_empty_snapshot_is_just_eof():
    assert render_openmetrics({}) == "# EOF\n"


def test_every_line_parses_as_sample_or_comment():
    h = StreamingHistogram()
    h.observe(0.5)
    text = render_openmetrics(
        {
            "ts": 1.0,
            "uptime_s": 1.0,
            "counters": [
                {"name": "c", "labels": {"fmt": 'x"y'}, "total": 1, "rates": {}}
            ],
            "gauges": [{"name": "g", "labels": {}, "value": 1}],
            "histograms": [{"name": "h", "labels": {}, **h.snapshot()}],
            "alerts": [{"rule": "r"}],
        }
    )
    for line in text.splitlines():
        assert line, "no blank lines in exposition"
        if line.startswith("#"):
            assert line == "# EOF" or line.startswith("# TYPE ")
        else:
            # name{labels} value -- value must parse as float.
            float(line.rsplit(" ", 1)[1])
