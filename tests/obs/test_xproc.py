"""Cross-process observability: shard codecs, context, fork-boundary merge."""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs, telemetry
from repro.formats.csr import CSRMatrix
from repro.obs.core import ObsRuntime
from repro.obs.histogram import DEFAULT_GROWTH, StreamingHistogram
from repro.obs.window import WindowedCounter
from repro.obs.xproc import (
    TraceContext,
    WorkerTelemetry,
    current_context,
    ingest_payload,
)
from repro.parallel.process_executor import ProcessParallelSpMV
from repro.telemetry import Collector
from tests.conftest import random_sparse_dense

#: Documented geometric-midpoint percentile bound: sqrt(growth) - 1.
ERROR_BOUND = math.sqrt(DEFAULT_GROWTH) - 1.0

QS = (50.0, 90.0, 99.0)


def _hist_of(values) -> StreamingHistogram:
    hist = StreamingHistogram()
    for v in values:
        hist.observe(v)
    return hist


class TestHistogramShardCodec:
    def test_round_trip_equality(self):
        hist = _hist_of([0.0, 1e-12, 0.003, 0.003, 0.4, 7.5])
        back = StreamingHistogram.from_shard(hist.to_shard())
        assert back.count == hist.count
        assert back.zero_count == hist.zero_count
        assert back.sum == hist.sum
        assert back.min == hist.min
        assert back.max == hist.max
        assert back.buckets() == hist.buckets()
        for q in QS:
            assert back.percentile(q) == hist.percentile(q)

    def test_shard_is_json_safe(self):
        hist = _hist_of([0.001, 2.5])
        shard = json.loads(json.dumps(hist.to_shard()))
        back = StreamingHistogram.from_shard(shard)
        assert back.buckets() == hist.buckets()

    def test_empty_round_trip(self):
        hist = StreamingHistogram()
        shard = hist.to_shard()
        assert shard["min"] is None and shard["max"] is None
        back = StreamingHistogram.from_shard(json.loads(json.dumps(shard)))
        assert back.count == 0
        assert back.min == math.inf and back.max == -math.inf
        # An empty rebuilt shard must still merge cleanly.
        back.merge(_hist_of([0.5]))
        assert back.count == 1 and back.min == 0.5

    @given(
        a=st.lists(
            st.floats(min_value=1e-8, max_value=1e3, allow_nan=False),
            max_size=60,
        ),
        b=st.lists(
            st.floats(min_value=1e-8, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_of_shards_is_histogram_of_concatenation(self, a, b):
        merged = StreamingHistogram.from_shard(_hist_of(a).to_shard())
        merged.merge(StreamingHistogram.from_shard(_hist_of(b).to_shard()))
        whole = _hist_of(a + b)
        assert merged.count == whole.count
        assert merged.buckets() == whole.buckets()
        assert merged.min == whole.min and merged.max == whole.max
        assert merged.sum == pytest.approx(whole.sum)
        for q in QS:
            assert merged.percentile(q) == whole.percentile(q)


class TestCounterShardCodec:
    def test_total_crosses_exactly(self):
        src = WindowedCounter()
        src.add(3.0)
        src.add(4.5)
        shard = json.loads(json.dumps(src.to_shard()))
        dst = WindowedCounter()
        dst.add(2.0)
        dst.merge_shard(shard)
        assert dst.total == 9.5

    def test_zero_total_is_a_no_op(self):
        dst = WindowedCounter()
        dst.merge_shard(WindowedCounter().to_shard())
        assert dst.total == 0.0


class TestRuntimeShards:
    def test_merge_preserves_labels_and_kinds(self):
        src = ObsRuntime(rules=())
        dst = ObsRuntime(rules=())
        try:
            src.observe("spmv.chunk.seconds", 0.25, backend="process")
            src.observe("spmv.chunk.seconds", 0.75, backend="process")
            src.mark("kernel.fallback", 2, format="csr-du")
            src.set_gauge("probe", 7.0)
            dst.set_gauge("probe", 1.0)
            dst.merge_shards(json.loads(json.dumps(src.to_shards())))
            snap = dst.snapshot()
        finally:
            src.close()
            dst.close()
        (hist,) = snap["histograms"]
        assert hist["name"] == "spmv.chunk.seconds"
        assert hist["labels"] == {"backend": "process"}
        assert hist["count"] == 2
        (counter,) = snap["counters"]
        assert counter["name"] == "kernel.fallback"
        assert counter["total"] == 2.0
        (gauge,) = snap["gauges"]
        assert gauge["value"] == 7.0  # last write (the merge) wins


class TestTraceContext:
    def test_none_when_both_sinks_off(self):
        assert telemetry.get_collector() is None
        assert obs.get_runtime() is None
        assert TraceContext.capture(run_id="r") is None
        assert current_context(run_id="r") is None

    def test_captures_enablement_and_wire_round_trip(self):
        rt = ObsRuntime(rules=(), histogram_growth=2.0)
        prev_rt = obs.set_runtime(rt)
        prev = telemetry.set_collector(Collector())
        try:
            wire = current_context(
                run_id="abc", parent="parallel.spmv", worker=3, nnz=17
            )
        finally:
            telemetry.set_collector(prev)
            obs.set_runtime(prev_rt)
            rt.close()
        ctx = TraceContext.from_wire(json.loads(json.dumps(wire)))
        assert ctx.run_id == "abc"
        assert ctx.worker == 3
        assert ctx.telemetry and ctx.obs
        assert ctx.histogram_growth == 2.0
        assert ctx.attrs == {"nnz": 17}

    def test_telemetry_only_capture(self):
        prev = telemetry.set_collector(Collector())
        try:
            ctx = TraceContext.capture(run_id="r")
        finally:
            telemetry.set_collector(prev)
        assert ctx.telemetry and not ctx.obs


class TestWorkerTelemetry:
    def test_scoped_sinks_and_payload(self):
        ctx = TraceContext(
            run_id="rid", worker=2, telemetry_on=True, obs_on=True
        )
        assert telemetry.get_collector() is None
        with WorkerTelemetry(ctx) as wt:
            assert telemetry.get_collector() is wt.collector
            assert obs.get_runtime() is wt.runtime
            telemetry.count("storage.shard.cache.miss", 1, storage="shm")
            obs.observe("spmv.chunk.seconds", 0.5, backend="process")
            payload = wt.payload()
        assert telemetry.get_collector() is None
        assert obs.get_runtime() is None
        assert payload["run_id"] == "rid"
        assert payload["worker"] == 2
        assert payload["pid"] == os.getpid()
        assert len(payload["events"]) == 1
        assert payload["counters"] == {
            "storage.shard.cache.miss{storage=shm}": 1.0
        }
        (item,) = payload["shards"]["histograms"]
        assert item["name"] == "spmv.chunk.seconds"
        assert item["shard"]["count"] == 1

    def test_honors_custom_histogram_growth(self):
        ctx = TraceContext(
            run_id="r", telemetry_on=False, obs_on=True, histogram_growth=2.0
        )
        with WorkerTelemetry(ctx) as wt:
            assert wt.collector is None
            assert wt.runtime.histogram_growth == 2.0
            payload = wt.payload()
        assert "events" not in payload
        assert payload["shards"] == {
            "histograms": [],
            "counters": [],
            "gauges": [],
        }


class TestIngestPayload:
    def _payload(self):
        ctx = TraceContext(
            run_id="r", worker=1, telemetry_on=True, obs_on=True
        )
        with WorkerTelemetry(ctx) as wt:
            with telemetry.span("parallel.chunk", thread=1, pid=1234):
                obs.observe("spmv.chunk.seconds", 0.1, backend="process")
            telemetry.count("storage.shard.cache.hit", 2, storage="shm")
            return wt.payload(), wt.collector.epoch_ns

    def test_rebases_and_stamps_events(self):
        payload, worker_epoch = self._payload()
        parent = Collector()
        runtime = ObsRuntime(rules=())
        try:
            n = ingest_payload(payload, collector=parent, runtime=runtime)
            events = parent.snapshot()
            snap = runtime.snapshot()
        finally:
            runtime.close()
        assert n == 2
        offset_us = (worker_epoch - parent.epoch_ns) / 1e3
        for raw, ev in zip(payload["events"], events):
            assert ev.ts_us == pytest.approx(raw["ts_us"] + offset_us)
            assert ev.attrs["worker"] == 1
        # Explicit attrs (the span's own pid) are not overwritten.
        assert events[0].attrs["pid"] == 1234
        assert events[1].attrs["pid"] == os.getpid()
        assert parent.counters == {
            "storage.shard.cache.hit{storage=shm}": 2.0
        }
        (hist,) = snap["histograms"]
        assert hist["count"] == 1

    def test_defaults_to_ambient_sinks_and_tolerates_none(self):
        payload, _ = self._payload()
        # No ambient sinks installed: the merge is a silent no-op.
        assert ingest_payload(payload) == 0
        parent = Collector()
        prev = telemetry.set_collector(parent)
        try:
            assert ingest_payload(payload) == 2
        finally:
            telemetry.set_collector(prev)
        assert len(parent.snapshot()) == 2


class TestForkBoundaryMerge:
    """Real ProcessParallelSpMV runs: the end-to-end merge contract."""

    NWORKERS = 3
    CALLS = 2

    @pytest.fixture
    def merged(self):
        dense = random_sparse_dense(96, 96, seed=11)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(5).random(96)
        runtime = ObsRuntime(rules=())
        prev_rt = obs.set_runtime(runtime)
        collector = Collector()
        prev = telemetry.set_collector(collector)
        try:
            with ProcessParallelSpMV(
                csr, self.NWORKERS, format_name="csr"
            ) as par:
                for _ in range(self.CALLS):
                    y = par(x)
            events = collector.snapshot()
            snap = runtime.snapshot()
        finally:
            telemetry.set_collector(prev)
            obs.set_runtime(prev_rt)
            runtime.close()
        assert np.allclose(y, csr.spmv(x), rtol=1e-13, atol=1e-13)
        return events, snap

    def test_worker_spans_carry_distinct_pids(self, merged):
        events, _ = merged
        spans = [
            e
            for e in events
            if e.kind == "span"
            and e.name == "parallel.chunk"
            and "pid" in e.attrs
        ]
        assert len(spans) == self.NWORKERS * self.CALLS
        pids = {e.attrs["pid"] for e in spans}
        assert len(pids) == self.NWORKERS
        assert os.getpid() not in pids
        assert {e.attrs["worker"] for e in spans} == set(range(self.NWORKERS))
        for sub in ("worker.attach", "worker.multiply"):
            assert sum(1 for e in events if e.name == sub) == (
                self.NWORKERS * self.CALLS
            )

    def test_merged_histogram_counts_every_chunk(self, merged):
        _, snap = merged
        (hist,) = [
            h
            for h in snap["histograms"]
            if h["name"] == "spmv.chunk.seconds"
        ]
        assert hist["labels"]["backend"] == "process"
        assert hist["count"] == self.NWORKERS * self.CALLS

    def test_merged_percentiles_within_documented_bound(self, merged):
        events, snap = merged
        # The parent's parallel.chunk counter events echo the exact
        # worker-measured seconds each worker also observed into its
        # own histogram shard, so the merged percentiles must agree
        # with numpy's nearest-rank over those raw samples within the
        # bucket bound.
        raw = np.array(
            [
                e.attrs["seconds"]
                for e in events
                if e.kind == "counter" and e.name == "parallel.chunk"
            ]
        )
        assert len(raw) == self.NWORKERS * self.CALLS
        (hist,) = [
            h
            for h in snap["histograms"]
            if h["name"] == "spmv.chunk.seconds"
        ]
        for q in QS:
            exact = float(np.percentile(raw, q, method="inverted_cdf"))
            est = hist[f"p{int(q)}"]
            assert abs(est - exact) / exact <= ERROR_BOUND + 1e-12

    def test_worker_cache_counters_merge(self, merged):
        events, _ = merged
        hits = [e for e in events if e.name == "storage.shard.cache.hit"]
        misses = [e for e in events if e.name == "storage.shard.cache.miss"]
        # Every chunk is exactly one lookup.  The pool does not pin
        # shard indices to workers, so the exact hit/miss split varies
        # run to run; the invariants don't: each of the NWORKERS shard
        # indices must miss at least once (first time any worker sees
        # it), and nothing else can miss more than once per worker.
        assert len(hits) + len(misses) == self.NWORKERS * self.CALLS
        assert self.NWORKERS <= len(misses) <= self.NWORKERS * self.CALLS
        assert {e.attrs["index"] for e in misses} == set(range(self.NWORKERS))
        for e in hits + misses:
            assert e.attrs["storage"] == "shm"
            assert e.attrs["pid"] != os.getpid()
