"""WindowedCounter under an injected clock: rates, eviction, clamping."""

from __future__ import annotations

import pytest

from repro.obs.window import WindowedCounter


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock(1000.0)


def test_total_accumulates_forever(clock):
    c = WindowedCounter(clock=clock)
    for _ in range(5):
        clock.t += 100.0  # each add lands far past the previous horizon
        c.add(2.0)
    assert c.total == 10.0
    assert c.sum_over(10.0) == 2.0  # only the newest survives the ring


def test_rate_over_window(clock):
    c = WindowedCounter(clock=clock)
    for _ in range(10):
        c.add(1.0)
        clock.t += 1.0
    # 10 events over the last 10 seconds -> 1 event/s.
    assert c.rate(10.0) == pytest.approx(1.0)
    clock.t += 10.0
    assert c.rate(10.0) == pytest.approx(0.0)


def test_window_sees_only_recent_increments(clock):
    c = WindowedCounter(clock=clock)
    c.add(100.0)
    clock.t += 30.0
    c.add(1.0)
    assert c.sum_over(10.0) == 1.0
    assert c.sum_over(60.0) == 101.0


def test_window_clamped_to_horizon(clock):
    c = WindowedCounter(horizon_s=20.0, clock=clock)
    c.add(5.0)
    clock.t += 25.0
    c.add(1.0)
    # A 1000 s window still cannot see past the 20 s horizon.
    assert c.sum_over(1000.0) == 1.0
    assert c.rate(1000.0) == pytest.approx(1.0 / 20.0)


def test_same_bucket_coalesces(clock):
    c = WindowedCounter(resolution_s=1.0, clock=clock)
    c.add(1.0)
    clock.t += 0.25
    c.add(1.0)
    assert len(c._ring) == 1
    assert c.sum_over(10.0) == 2.0


def test_snapshot_shape(clock):
    c = WindowedCounter(clock=clock)
    c.add(3.0)
    snap = c.snapshot(windows=(10.0, 60.0))
    assert snap["total"] == 3.0
    assert set(snap["rates"]) == {"10s", "60s"}
    assert snap["rates"]["10s"] == pytest.approx(0.3)


def test_validation():
    with pytest.raises(ValueError):
        WindowedCounter(horizon_s=0)
    with pytest.raises(ValueError):
        WindowedCounter(resolution_s=0)
    with pytest.raises(ValueError):
        WindowedCounter(horizon_s=1.0, resolution_s=2.0)
    c = WindowedCounter()
    with pytest.raises(ValueError):
        c.sum_over(0.0)
