"""ObsRuntime: recording, snapshots, rule wiring, scoping, threads."""

from __future__ import annotations

import threading

import pytest

from repro import obs, telemetry
from repro.obs.core import ObsRuntime
from repro.obs.profiler import SamplingProfiler
from repro.obs.resource import ResourceMonitor, gc_collections, rss_bytes


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def runtime():
    rt = ObsRuntime(clock=FakeClock(1000.0))
    try:
        yield rt
    finally:
        rt.close()


class TestRecording:
    def test_observe_creates_labelled_histograms(self, runtime):
        runtime.observe("spmv.chunk.seconds", 0.01, format="csr-du")
        runtime.observe("spmv.chunk.seconds", 0.02, format="csr-du")
        runtime.observe("spmv.chunk.seconds", 0.5, format="csr-vi")
        snap = runtime.snapshot()
        hists = [
            h for h in snap["histograms"] if h["name"] == "spmv.chunk.seconds"
        ]
        assert len(hists) == 2
        by_fmt = {h["labels"]["format"]: h for h in hists}
        assert by_fmt["csr-du"]["count"] == 2
        assert by_fmt["csr-vi"]["count"] == 1

    def test_mark_accumulates_windowed_counters(self, runtime):
        runtime.mark("kernel.fallback", 1, format="csr-du")
        runtime.mark("kernel.fallback", 2, format="csr-du")
        snap = runtime.snapshot()
        (entry,) = [
            c for c in snap["counters"] if c["name"] == "kernel.fallback"
        ]
        assert entry["total"] == 3.0
        assert "10s" in entry["rates"]
        assert "60s" in entry["rates"]

    def test_set_gauge_last_write_wins(self, runtime):
        runtime.set_gauge("g", 1.0)
        runtime.set_gauge("g", 2.0)
        (entry,) = [g for g in runtime.snapshot()["gauges"] if g["name"] == "g"]
        assert entry["value"] == 2.0

    def test_mixed_label_value_types_sort(self, runtime):
        # int and str label values on one metric must not break the
        # snapshot's deterministic ordering.
        runtime.observe("h", 0.1, threads=4)
        runtime.observe("h", 0.1, format="csr-du")
        snap = runtime.snapshot()
        assert len([h for h in snap["histograms"] if h["name"] == "h"]) == 2

    def test_snapshot_is_json_safe(self, runtime):
        import json

        runtime.observe("h", 0.25, format="csr-du")
        runtime.mark("c", 1)
        runtime.set_gauge("g", 1.0)
        json.dumps(runtime.snapshot())


class TestRules:
    def test_rule_windows_union_defaults(self):
        rt = ObsRuntime(rules=["rate(f[30s]) > 0"])
        rt.mark("f", 1)
        (entry,) = rt.snapshot()["counters"]
        assert set(entry["rates"]) == {"10s", "30s", "60s"}

    def test_evaluate_rules_emits_telemetry_and_logs(self):
        rt = ObsRuntime(rules=["rate(kernel.fallback[10s]) > 0"])
        rt.mark("kernel.fallback", 1, format="csr-du")
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            fired = rt.evaluate_rules()
            events = telemetry.get_collector().snapshot()
        finally:
            telemetry.set_collector(prev)
        assert len(fired) == 1
        assert len(rt.alerts) == 1
        (ev,) = [e for e in events if e.name == "obs.alert"]
        assert ev.attrs["rule"] == "rate:kernel.fallback"
        assert {"expr", "metric", "value", "threshold"} <= set(ev.attrs)

    def test_flush_snapshot_writes_openmetrics(self, runtime, tmp_path):
        runtime.observe("h", 0.1)
        path = tmp_path / "metrics.prom"
        prev = telemetry.set_collector(telemetry.Collector())
        try:
            snap = runtime.flush_snapshot(str(path))
            events = telemetry.get_collector().snapshot()
        finally:
            telemetry.set_collector(prev)
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert "h_count 1" in text
        assert snap["histograms"][0]["count"] == 1
        (ev,) = [e for e in events if e.name == "obs.snapshot"]
        assert ev.attrs["histograms"] == 1

    def test_default_rules_installed(self, runtime):
        names = {r.name for r in runtime.engine.rules}
        assert "kernel-fallback" in names
        assert "chunk-tail-latency" in names


class TestModuleSurface:
    def test_disabled_by_default_noop(self):
        assert obs.get_runtime() is None
        assert not obs.enabled()
        # Must not raise, must not create any state.
        obs.observe("h", 1.0)
        obs.mark("c")
        obs.set_gauge("g", 1.0)

    def test_set_runtime_scoping(self):
        rt = ObsRuntime()
        prev = obs.set_runtime(rt)
        try:
            assert obs.enabled()
            obs.observe("h", 0.5)
            obs.mark("c", 2)
            obs.set_gauge("g", 3.0)
            snap = rt.snapshot()
            assert snap["histograms"][0]["count"] == 1
            assert snap["counters"][0]["total"] == 2.0
            assert snap["gauges"][0]["value"] == 3.0
        finally:
            obs.set_runtime(prev)
            rt.close()
        assert obs.get_runtime() is prev

    def test_configure_swaps_and_disables(self):
        prev = obs.get_runtime()
        try:
            rt = obs.configure()
            assert obs.get_runtime() is rt
            assert obs.configure(enabled=False) is None
            assert obs.get_runtime() is None
        finally:
            obs.set_runtime(prev)


class TestResourceMonitor:
    def test_sample_once_sets_gauges(self):
        rt = ObsRuntime()
        mon = ResourceMonitor(rt)
        values = mon.sample_once()
        assert values["obs.resource.rss_bytes"] > 0
        assert values["obs.resource.threads"] >= 1
        names = {g["name"] for g in rt.snapshot()["gauges"]}
        assert {
            "obs.resource.rss_bytes",
            "obs.resource.gc_collections",
            "obs.resource.threads",
        } <= names
        rt.close()

    def test_rss_bytes_helper(self):
        nbytes, is_peak = rss_bytes()
        assert nbytes > 0
        assert isinstance(is_peak, bool)
        assert gc_collections() >= 0

    def test_thread_lifecycle(self):
        rt = ObsRuntime()
        mon = rt.start_resource_monitor(interval_s=0.01)
        assert rt.start_resource_monitor() is mon  # idempotent
        rt.close()
        assert mon._thread is None

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ResourceMonitor(ObsRuntime(), interval_s=0)


class TestProfiler:
    def test_sample_once_captures_other_threads(self):
        ready = threading.Event()
        done = threading.Event()

        def busy():
            ready.set()
            done.wait(timeout=10.0)

        t = threading.Thread(target=busy, name="obs-test-busy", daemon=True)
        t.start()
        ready.wait(timeout=10.0)
        prof = SamplingProfiler()
        try:
            assert prof.sample_once() >= 1
        finally:
            done.set()
            t.join(timeout=10.0)
        text = prof.collapsed()
        assert "obs-test-busy" in text
        # Collapsed grammar: "frame;frame;... count" per line.
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack

    def test_write_collapsed_and_snapshot(self, tmp_path):
        prof = SamplingProfiler()
        prof.sample_once()
        path = tmp_path / "stacks.txt"
        n = prof.write_collapsed(str(path))
        assert n == len(path.read_text().splitlines())
        snap = prof.snapshot()
        assert snap["sample_passes"] == 1
        assert snap["total_samples"] >= snap["distinct_stacks"]

    def test_runtime_profiler_snapshot_section(self):
        rt = ObsRuntime()
        rt.start_profiler(hz=200.0)
        rt.profiler.sample_once()
        try:
            assert rt.snapshot()["profiler"]["sample_passes"] >= 1
        finally:
            rt.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)


class TestExecutorWiring:
    def test_chunk_latency_histograms_recorded(self):
        import numpy as np

        from repro.formats.csr import CSRMatrix
        from repro.parallel.executor import ParallelSpMV

        rng = np.random.default_rng(3)
        dense = (rng.random((64, 64)) < 0.1) * rng.random((64, 64))
        csr = CSRMatrix.from_dense(dense)
        x = rng.random(64)
        rt = ObsRuntime()
        prev = obs.set_runtime(rt)
        try:
            with ParallelSpMV(csr, 2, format_name="csr-du") as par:
                par(x)
                par(x)
        finally:
            obs.set_runtime(prev)
            rt.close()
        snap = rt.snapshot()
        chunk = [
            h for h in snap["histograms"] if h["name"] == "spmv.chunk.seconds"
        ]
        call = [
            h for h in snap["histograms"] if h["name"] == "spmv.call.seconds"
        ]
        assert sum(h["count"] for h in chunk) == 4  # 2 threads x 2 calls
        assert sum(h["count"] for h in call) == 2
        assert all("p99" in h for h in chunk)

    def test_results_identical_with_obs_enabled(self):
        import numpy as np

        from repro.formats.csr import CSRMatrix
        from repro.parallel.executor import ParallelSpMV

        rng = np.random.default_rng(9)
        dense = (rng.random((72, 72)) < 0.1) * rng.random((72, 72))
        csr = CSRMatrix.from_dense(dense)
        x = rng.random(72)

        def run():
            with ParallelSpMV(csr, 3, format_name="csr-du-vi") as par:
                return par(x)

        baseline = run()
        rt = ObsRuntime()
        prev = obs.set_runtime(rt)
        try:
            with_obs = run()
        finally:
            obs.set_runtime(prev)
            rt.close()
        assert np.array_equal(baseline, with_obs)
