"""Tests for the 100-matrix catalog: the paper's id sets, exactly."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.matrices.collection import (
    ALL_IDS,
    M0_IDS,
    M0_VI_IDS,
    ML_IDS,
    ML_VI_IDS,
    MS_IDS,
    MS_VI_IDS,
    catalog,
    entry,
    realize,
)
from repro.matrices.stats import compute_stats

_MB = 1024 * 1024
SCALE = 1 / 32


class TestIdSets:
    """Set sizes and relationships exactly as Section VI-B / VI-E state."""

    def test_counts(self):
        assert len(ALL_IDS) == 100
        assert len(M0_IDS) == 77
        assert len(ML_IDS) == 52
        assert len(MS_IDS) == 25
        assert len(M0_VI_IDS) == 30
        assert len(ML_VI_IDS) == 22
        assert len(MS_VI_IDS) == 8

    def test_partitions(self):
        assert set(ML_IDS) | set(MS_IDS) == set(M0_IDS)
        assert set(ML_IDS) & set(MS_IDS) == set()
        assert set(ML_VI_IDS) | set(MS_VI_IDS) == set(M0_VI_IDS)
        assert set(ML_VI_IDS) <= set(ML_IDS)
        assert set(MS_VI_IDS) <= set(MS_IDS)

    def test_specific_members_from_paper(self):
        # Spot values straight from the paper's text.
        for mid in (2, 5, 8, 9, 10, 15, 40, 100):
            assert mid in ML_IDS
        for mid in (26, 41, 42, 44, 47, 67, 68, 79):
            assert mid in MS_VI_IDS
        assert 1 not in M0_IDS  # the rejected dense matrix
        assert 14 not in M0_IDS

    def test_vi_fraction_about_39_percent(self):
        """Section VI-E: M0_vi is ~39% of M0."""
        assert len(M0_VI_IDS) / len(M0_IDS) == pytest.approx(0.39, abs=0.01)


class TestEntries:
    def test_all_ids_have_entries(self):
        entries = catalog()
        assert len(entries) == 100
        assert {e.matrix_id for e in entries} == set(ALL_IDS)

    def test_entry_fields(self):
        e = entry(55)
        assert e.matrix_id == 55
        assert e.name.startswith("syn055-")
        assert e.in_ml and e.in_m0 and not e.in_ms

    def test_ws_targets_respect_class(self):
        for e in catalog():
            if e.in_ml:
                assert e.ws_target_bytes >= 17 * _MB
            elif e.in_ms:
                assert 3 * _MB <= e.ws_target_bytes < 17 * _MB
            elif e.matrix_id != 1:
                assert e.ws_target_bytes < 3 * _MB

    def test_ttu_targets_respect_vi_sets(self):
        for e in catalog():
            if e.in_m0_vi:
                assert e.ttu_target is not None and e.ttu_target > 5
            elif e.ttu_target is not None:
                assert e.ttu_target <= 5

    def test_unknown_id(self):
        with pytest.raises(CatalogError):
            entry(0)
        with pytest.raises(CatalogError):
            entry(101)

    def test_deterministic(self):
        assert entry(42) == entry(42)


class TestRealize:
    @pytest.mark.parametrize("mid", [2, 9, 26, 44, 55, 69, 84, 100])
    def test_class_membership_at_scale(self, mid):
        """Realized matrices land in their paper set at any scale."""
        e = entry(mid)
        m = realize(mid, scale=SCALE)
        s = compute_stats(m)
        if e.in_ml:
            assert s.ws_bytes >= 17 * _MB * SCALE
        if e.in_ms:
            assert 3 * _MB * SCALE * 0.95 <= s.ws_bytes < 17 * _MB * SCALE
        if e.in_m0_vi:
            assert s.ttu > 5
        elif e.in_m0:
            assert s.ttu <= 5

    def test_deterministic(self):
        a = realize(47, scale=SCALE)
        b = realize(47, scale=SCALE)
        assert np.array_equal(a.col_ind, b.col_ind)
        assert np.array_equal(a.values, b.values)

    def test_scale_shrinks(self):
        small = realize(44, scale=1 / 64)
        big = realize(44, scale=1 / 16)
        assert big.nnz > 2 * small.nnz

    def test_bad_scale(self):
        with pytest.raises(CatalogError):
            realize(5, scale=0)

    def test_structural_diversity(self):
        """The catalog is not one family in disguise."""
        families = {entry(mid).family for mid in M0_IDS}
        assert len(families) >= 6
