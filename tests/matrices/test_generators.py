"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.formats.conversions import to_csr
from repro.matrices.generators import (
    banded_random,
    block_structured,
    diagonal_bands,
    powerlaw_graph,
    random_uniform,
    stencil_2d,
    stencil_3d,
    tridiagonal,
)


class TestStencil2D:
    def test_interior_row_has_5_points(self):
        m = to_csr(stencil_2d(5, 5, points=5))
        lens = m.row_lengths()
        center = 2 * 5 + 2
        assert lens[center] == 5
        assert lens[0] == 3  # corner

    def test_9_point_interior(self):
        m = to_csr(stencil_2d(5, 5, points=9))
        assert m.row_lengths()[2 * 5 + 2] == 9

    def test_symmetric_pattern(self):
        d = to_csr(stencil_2d(4, 6)).to_dense()
        assert np.array_equal(d != 0, (d != 0).T)

    def test_shape(self):
        m = stencil_2d(3, 7)
        assert m.shape == (21, 21)

    def test_bad_points(self):
        with pytest.raises(CatalogError):
            stencil_2d(3, 3, points=6)

    def test_bad_dims(self):
        with pytest.raises(CatalogError):
            stencil_2d(0, 3)


class TestStencil3D:
    def test_interior_7pt(self):
        m = to_csr(stencil_3d(3, 3, 3, points=7))
        assert m.row_lengths()[13] == 7  # center of the 3x3x3 cube

    def test_interior_27pt(self):
        m = to_csr(stencil_3d(3, 3, 3, points=27))
        assert m.row_lengths()[13] == 27

    def test_corner_7pt(self):
        m = to_csr(stencil_3d(3, 3, 3, points=7))
        assert m.row_lengths()[0] == 4

    def test_bad_points(self):
        with pytest.raises(CatalogError):
            stencil_3d(3, 3, 3, points=9)


class TestBanded:
    def test_within_band(self):
        m = to_csr(banded_random(100, bandwidth=5, nnz_per_row=4, seed=1))
        rows = m.row_of_entry()
        assert np.all(np.abs(m.col_ind.astype(np.int64) - rows) <= 5)

    def test_diagonal_always_present(self):
        m = to_csr(banded_random(50, bandwidth=3, nnz_per_row=3, seed=2))
        d = m.to_dense()
        assert np.all(np.diag(d) != 0)

    def test_deterministic(self):
        a = to_csr(banded_random(40, 4, 5, seed=9))
        b = to_csr(banded_random(40, 4, 5, seed=9))
        assert np.array_equal(a.col_ind, b.col_ind)

    def test_different_seeds_differ(self):
        a = to_csr(banded_random(40, 8, 5, seed=1))
        b = to_csr(banded_random(40, 8, 5, seed=2))
        assert not np.array_equal(a.col_ind, b.col_ind)

    def test_bad_params(self):
        with pytest.raises(CatalogError):
            banded_random(0, 1, 1, seed=0)


class TestRandomUniform:
    def test_nnz_close_to_target(self):
        m = to_csr(random_uniform(200, 400, nnz_per_row=8, seed=3))
        # Duplicate collisions only lose a few percent here.
        assert 0.9 * 200 * 8 <= m.nnz <= 200 * 8

    def test_rectangular(self):
        m = random_uniform(10, 30, 3, seed=4)
        assert m.shape == (10, 30)


class TestPowerlaw:
    def test_degree_skew(self):
        m = to_csr(powerlaw_graph(500, avg_degree=6, seed=5))
        col_counts = np.bincount(m.col_ind, minlength=500)
        # Heavy head: the top column collects far more than average.
        assert col_counts.max() > 8 * col_counts.mean()

    def test_bad_params(self):
        with pytest.raises(CatalogError):
            powerlaw_graph(1, 3, seed=0)


class TestBlockStructured:
    def test_blocks_are_dense(self):
        m = to_csr(block_structured(10, block=3, blocks_per_row=2, seed=6))
        from repro.formats import BCSRMatrix

        bcsr = BCSRMatrix.from_csr(m, r=3, c=3)
        assert bcsr.fill_ratio == 1.0

    def test_shape(self):
        assert block_structured(4, 2, 1, seed=7).shape == (8, 8)


class TestDiagonals:
    def test_tridiagonal(self):
        d = to_csr(tridiagonal(5)).to_dense()
        expected = np.eye(5) + np.eye(5, k=1) + np.eye(5, k=-1)
        assert np.array_equal(d != 0, expected != 0)

    def test_custom_offsets(self):
        m = to_csr(diagonal_bands(10, (0, 3)))
        assert m.nnz == 10 + 7

    def test_offset_out_of_range(self):
        with pytest.raises(CatalogError):
            diagonal_bands(5, (7,))

    def test_no_offsets(self):
        with pytest.raises(CatalogError):
            diagonal_bands(5, ())


class TestDenseBand:
    def test_structure(self):
        from repro.matrices.generators import dense_band

        m = to_csr(dense_band(10, 2))
        d = m.to_dense()
        for i in range(10):
            for j in range(10):
                assert (d[i, j] != 0) == (abs(i - j) <= 2)

    def test_zero_bandwidth_is_diagonal(self):
        from repro.matrices.generators import dense_band

        m = to_csr(dense_band(5, 0))
        assert m.nnz == 5

    def test_bad_params(self):
        from repro.matrices.generators import dense_band

        with pytest.raises(CatalogError):
            dense_band(0, 1)
        with pytest.raises(CatalogError):
            dense_band(5, -1)
