"""Tests for matrix statistics and the paper's classification rules."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.formats.base import working_set_bytes
from repro.matrices.stats import MatrixStats, compute_stats

from tests.conftest import random_sparse_dense

_MB = 1024 * 1024


class TestComputeStats:
    def test_paper_example(self, paper_matrix):
        s = compute_stats(paper_matrix)
        assert (s.nrows, s.ncols, s.nnz) == (6, 6, 16)
        assert s.ws_bytes == working_set_bytes(paper_matrix)
        assert s.unique_values == 9
        assert s.ttu == pytest.approx(16 / 9)
        assert s.row_len_mean == pytest.approx(16 / 6)
        assert s.row_len_max == 4
        assert s.empty_rows == 0
        assert s.delta_u8_frac == 1.0  # Table I: all u8
        assert s.bandwidth == 5  # entry (5, 0)

    def test_empty_rows_counted(self):
        dense = random_sparse_dense(16, 16, seed=90, empty_rows=True)
        s = compute_stats(CSRMatrix.from_dense(dense))
        assert s.empty_rows >= 4

    def test_delta_fracs_sum_below_one(self):
        dense = random_sparse_dense(20, 20, seed=91)
        s = compute_stats(CSRMatrix.from_dense(dense))
        assert 0.0 <= s.delta_u16_frac <= 1.0
        assert s.delta_u8_frac + s.delta_u16_frac <= 1.0 + 1e-12

    def test_wide_matrix_u16_deltas(self):
        cols = np.array([0, 300, 600], dtype=np.int32)
        csr = CSRMatrix(1, 700, np.array([0, 3]), cols, np.ones(3))
        s = compute_stats(csr)
        assert s.delta_u16_frac == pytest.approx(2 / 3)

    def test_empty_matrix(self):
        csr = CSRMatrix(2, 2, np.array([0, 0, 0]), np.array([], dtype=np.int32), [])
        s = compute_stats(csr)
        assert s.nnz == 0
        assert s.ttu == 0.0
        assert s.row_len_max == 0


class TestClassification:
    def _stats(self, ws_bytes, ttu=1.0):
        return MatrixStats(
            nrows=1, ncols=1, nnz=1, ws_bytes=ws_bytes, ttu=ttu,
            unique_values=1, row_len_mean=1, row_len_max=1, row_len_std=0,
            empty_rows=0, delta_u8_frac=1, delta_u16_frac=0, bandwidth=0,
        )

    def test_m0_rule(self):
        """M0: ws >= 3/4 L2 = 3 MB for the 4 MB Clovertown L2."""
        assert self._stats(3 * _MB).in_m0()
        assert not self._stats(3 * _MB - 1).in_m0()

    def test_ml_rule(self):
        """ML: ws >= 4 x L2 + 1 MB = 17 MB."""
        assert self._stats(17 * _MB).in_ml()
        assert not self._stats(17 * _MB - 1).in_ml()

    def test_vi_rule(self):
        """CSR-VI applicability: ttu > 5 (strict)."""
        assert self._stats(0, ttu=5.01).vi_applicable()
        assert not self._stats(0, ttu=5.0).vi_applicable()

    def test_custom_l2(self):
        assert self._stats(6 * _MB).in_ml(l2_bytes=1 * _MB + 256 * 1024)
