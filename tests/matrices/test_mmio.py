"""Tests for Matrix Market I/O."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix
from repro.matrices.mmio import read_matrix_market, write_matrix_market

from tests.conftest import random_sparse_dense


class TestRoundTrip:
    def test_memory_round_trip(self, paper_matrix, paper_dense):
        buf = io.StringIO()
        write_matrix_market(paper_matrix, buf)
        buf.seek(0)
        coo = read_matrix_market(buf)
        assert np.allclose(coo.to_dense(), paper_dense)

    def test_file_round_trip(self, tmp_path):
        dense = random_sparse_dense(12, 9, seed=95)
        path = tmp_path / "m.mtx"
        write_matrix_market(CSRMatrix.from_dense(dense), path)
        coo = read_matrix_market(path)
        assert np.allclose(coo.to_dense(), dense)

    def test_values_exact(self, tmp_path):
        """repr-based writing preserves doubles bit-for-bit."""
        dense = np.zeros((2, 2))
        dense[0, 0] = 1.0 / 3.0
        dense[1, 1] = np.nextafter(2.0, 3.0)
        path = tmp_path / "exact.mtx"
        write_matrix_market(CSRMatrix.from_dense(dense), path)
        coo = read_matrix_market(path)
        assert np.array_equal(coo.to_dense(), dense)


class TestReader:
    def _read(self, text):
        return read_matrix_market(io.StringIO(text))

    def test_general_real(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 3 2\n"
            "1 1 1.5\n"
            "2 3 -2.0\n"
        )
        assert coo.shape == (2, 3)
        assert coo.to_dense()[1, 2] == -2.0

    def test_symmetric_expansion(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "2 1 5.0\n"
            "3 3 2.0\n"
        )
        d = coo.to_dense()
        assert d[0, 1] == 5.0 and d[1, 0] == 5.0
        assert coo.nnz == 4  # diagonal not duplicated

    def test_skew_symmetric(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        d = coo.to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        assert np.all(coo.values == 1.0)

    def test_integer(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate integer general\n"
            "1 1 1\n"
            "1 1 7\n"
        )
        assert coo.values[0] == 7.0

    def test_bad_header(self):
        with pytest.raises(FormatError, match="header"):
            self._read("%%NotMatrixMarket\n1 1 0\n")

    def test_array_layout_rejected(self):
        with pytest.raises(FormatError, match="coordinate"):
            self._read("%%MatrixMarket matrix array real general\n")

    def test_complex_rejected(self):
        with pytest.raises(FormatError, match="field"):
            self._read("%%MatrixMarket matrix coordinate complex general\n")

    def test_hermitian_rejected(self):
        with pytest.raises(FormatError, match="symmetry"):
            self._read("%%MatrixMarket matrix coordinate real hermitian\n")

    def test_bad_size_line(self):
        with pytest.raises(FormatError, match="size"):
            self._read("%%MatrixMarket matrix coordinate real general\nfoo bar\n")

    def test_truncated_entries(self):
        with pytest.raises(FormatError, match="truncated"):
            self._read(
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
            )
