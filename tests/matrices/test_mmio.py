"""Tests for Matrix Market I/O."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix
from repro.matrices.mmio import read_matrix_market, write_matrix_market

from tests.conftest import random_sparse_dense


class TestRoundTrip:
    def test_memory_round_trip(self, paper_matrix, paper_dense):
        buf = io.StringIO()
        write_matrix_market(paper_matrix, buf)
        buf.seek(0)
        coo = read_matrix_market(buf)
        assert np.allclose(coo.to_dense(), paper_dense)

    def test_file_round_trip(self, tmp_path):
        dense = random_sparse_dense(12, 9, seed=95)
        path = tmp_path / "m.mtx"
        write_matrix_market(CSRMatrix.from_dense(dense), path)
        coo = read_matrix_market(path)
        assert np.allclose(coo.to_dense(), dense)

    def test_values_exact(self, tmp_path):
        """repr-based writing preserves doubles bit-for-bit."""
        dense = np.zeros((2, 2))
        dense[0, 0] = 1.0 / 3.0
        dense[1, 1] = np.nextafter(2.0, 3.0)
        path = tmp_path / "exact.mtx"
        write_matrix_market(CSRMatrix.from_dense(dense), path)
        coo = read_matrix_market(path)
        assert np.array_equal(coo.to_dense(), dense)


class TestReader:
    def _read(self, text):
        return read_matrix_market(io.StringIO(text))

    def test_general_real(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "2 3 2\n"
            "1 1 1.5\n"
            "2 3 -2.0\n"
        )
        assert coo.shape == (2, 3)
        assert coo.to_dense()[1, 2] == -2.0

    def test_symmetric_expansion(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "2 1 5.0\n"
            "3 3 2.0\n"
        )
        d = coo.to_dense()
        assert d[0, 1] == 5.0 and d[1, 0] == 5.0
        assert coo.nnz == 4  # diagonal not duplicated

    def test_skew_symmetric(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        d = coo.to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        assert np.all(coo.values == 1.0)

    def test_integer(self):
        coo = self._read(
            "%%MatrixMarket matrix coordinate integer general\n"
            "1 1 1\n"
            "1 1 7\n"
        )
        assert coo.values[0] == 7.0

    def test_bad_header(self):
        with pytest.raises(FormatError, match="header"):
            self._read("%%NotMatrixMarket\n1 1 0\n")

    def test_array_layout_rejected(self):
        with pytest.raises(FormatError, match="coordinate"):
            self._read("%%MatrixMarket matrix array real general\n")

    def test_complex_rejected(self):
        with pytest.raises(FormatError, match="field"):
            self._read("%%MatrixMarket matrix coordinate complex general\n")

    def test_hermitian_rejected(self):
        with pytest.raises(FormatError, match="symmetry"):
            self._read("%%MatrixMarket matrix coordinate real hermitian\n")

    def test_bad_size_line(self):
        with pytest.raises(FormatError, match="size"):
            self._read("%%MatrixMarket matrix coordinate real general\nfoo bar\n")

    def test_truncated_entries(self):
        with pytest.raises(FormatError, match="truncated"):
            self._read(
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
            )


class TestMalformedLineNumbers:
    """Every malformed-input path names the offending 1-based line."""

    HEADER = "%%MatrixMarket matrix coordinate real general\n"

    def _read(self, text):
        return read_matrix_market(io.StringIO(text))

    def _fails_at(self, text, lineno, match):
        with pytest.raises(FormatError, match=match) as ei:
            self._read(text)
        assert f"line {lineno}:" in str(ei.value)

    def test_empty_file(self):
        self._fails_at("", 1, "missing MatrixMarket header")

    def test_bad_header_line(self):
        self._fails_at("%%MatrixMarket tensor whatever\n", 1, "header")

    def test_missing_size_line(self):
        self._fails_at(self.HEADER, 2, "missing size line")

    def test_bad_size_line_counts_comments(self):
        """Comment lines still advance the reported line number."""
        self._fails_at(
            self.HEADER + "% a comment\n% another\nnot numbers\n",
            4,
            "bad size line",
        )

    def test_negative_dimensions(self):
        self._fails_at(self.HEADER + "-2 3 1\n", 2, "negative dimensions")

    def test_truncated_entry(self):
        self._fails_at(
            self.HEADER + "2 2 2\n1 1 1.0\n", 4, "truncated entry 2 of 2"
        )

    def test_short_entry_line(self):
        self._fails_at(self.HEADER + "2 2 1\n1 1\n", 3, "truncated")

    def test_non_numeric_entry(self):
        self._fails_at(self.HEADER + "2 2 1\n1 x 1.0\n", 3, "non-numeric")

    def test_out_of_range_entry(self):
        self._fails_at(
            self.HEADER + "2 2 1\n3 1 1.0\n", 3, r"outside the declared"
        )
        self._fails_at(
            self.HEADER + "2 2 1\n0 1 1.0\n", 3, "1-based"
        )

    def test_file_path_round_trip_still_works(self, tmp_path):
        dense = random_sparse_dense(7, 5, seed=4)
        path = tmp_path / "ok.mtx"
        write_matrix_market(CSRMatrix.from_dense(dense), path)
        assert np.allclose(read_matrix_market(path).to_dense(), dense)
