"""Tests for RCM reordering."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, convert
from repro.formats.conversions import to_csr
from repro.matrices.generators import random_uniform, stencil_2d
from repro.matrices.reorder import (
    apply_symmetric_permutation,
    rcm_permutation,
    rcm_reorder,
)
from repro.matrices.stats import compute_stats


def shuffled_stencil(n=12, seed=3):
    """A banded matrix scrambled by a random symmetric permutation."""
    csr = to_csr(stencil_2d(n, n))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(csr.nrows).astype(np.int64)
    return apply_symmetric_permutation(csr, perm), csr


class TestPermutation:
    def test_is_permutation(self):
        m, _ = shuffled_stencil()
        perm = rcm_permutation(m)
        assert sorted(perm.tolist()) == list(range(m.nrows))

    def test_deterministic(self):
        m, _ = shuffled_stencil()
        assert np.array_equal(rcm_permutation(m), rcm_permutation(m))

    def test_reduces_bandwidth(self):
        """The point of RCM: the scrambled stencil's bandwidth collapses
        back to O(grid side)."""
        scrambled, original = shuffled_stencil()
        before = compute_stats(scrambled).bandwidth
        reordered, _ = rcm_reorder(scrambled)
        after = compute_stats(reordered).bandwidth
        assert after < before / 3
        assert after <= 2 * compute_stats(original).bandwidth

    def test_handles_disconnected_components(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[3, 4] = dense[4, 3] = 1.0
        np.fill_diagonal(dense, 2.0)
        perm = rcm_permutation(CSRMatrix.from_dense(dense))
        assert sorted(perm.tolist()) == list(range(6))

    def test_empty_matrix(self):
        csr = CSRMatrix(0, 0, np.array([0]), np.array([], dtype=np.int32), [])
        assert rcm_permutation(csr).size == 0

    def test_nonsquare_rejected(self):
        with pytest.raises(FormatError):
            rcm_permutation(CSRMatrix.from_dense(np.ones((2, 3))))


class TestApplyPermutation:
    def test_spmv_commutes(self):
        """B (P x) == P (A x): the algebra survives reordering."""
        m, _ = shuffled_stencil()
        rng = np.random.default_rng(5)
        vals = rng.random(m.nnz) + 0.5
        from repro.matrices.values import set_matrix_values

        A = set_matrix_values(m, vals)
        B, perm = rcm_reorder(A)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        x = rng.random(A.ncols)
        lhs = B.spmv(x[perm])
        rhs = A.spmv(x)[perm]
        assert np.allclose(lhs, rhs)

    def test_identity_permutation_is_noop(self, paper_matrix):
        out = apply_symmetric_permutation(paper_matrix, np.arange(6))
        assert np.allclose(out.to_dense(), paper_matrix.to_dense())

    def test_bad_permutation(self, paper_matrix):
        with pytest.raises(FormatError, match="permutation"):
            apply_symmetric_permutation(paper_matrix, np.zeros(6, dtype=np.int64))


class TestCompressionInteraction:
    def test_rcm_improves_csr_du(self):
        """ABL-8's claim: reordering shrinks column deltas, so the same
        matrix compresses better under CSR-DU after RCM.  The grid must
        be big enough that scrambled deltas cross the u8/u16 boundary
        (a 48x48 grid has 2304 columns)."""
        scrambled, _ = shuffled_stencil(n=48, seed=9)
        reordered, _ = rcm_reorder(scrambled)
        before = convert(scrambled, "csr-du").storage().index_bytes
        after = convert(reordered, "csr-du").storage().index_bytes
        assert after < before

    def test_rcm_improves_u8_fraction(self):
        scrambled, _ = shuffled_stencil(n=48, seed=11)
        reordered, _ = rcm_reorder(scrambled)
        assert (
            compute_stats(reordered).delta_u8_frac
            >= compute_stats(scrambled).delta_u8_frac
        )

    def test_random_matrix_gains_little(self):
        """No locality to recover: RCM cannot conjure structure."""
        m = to_csr(random_uniform(150, 150, 6, seed=13))
        reordered, _ = rcm_reorder(m)
        before = convert(m, "csr-du").storage().index_bytes
        after = convert(reordered, "csr-du").storage().index_bytes
        assert after > before * 0.7  # no order-of-magnitude miracle
