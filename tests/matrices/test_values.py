"""Tests for the value models (ttu control)."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.matrices.values import (
    continuous_values,
    pattern_values,
    quantized_values,
    set_matrix_values,
)


class TestContinuous:
    def test_essentially_unique(self):
        v = continuous_values(10_000, seed=1)
        assert np.unique(v).size > 9_990

    def test_away_from_zero(self):
        v = continuous_values(1000, seed=2)
        assert v.min() > 0.4

    def test_deterministic(self):
        assert np.array_equal(continuous_values(50, 7), continuous_values(50, 7))

    def test_negative_rejected(self):
        with pytest.raises(CatalogError):
            continuous_values(-1, 0)


class TestQuantized:
    def test_exact_ttu(self):
        v = quantized_values(1000, unique_count=25, seed=3)
        assert np.unique(v).size == 25
        # ttu exactly nnz / unique.
        assert 1000 / np.unique(v).size == pytest.approx(40.0)

    def test_full_coverage_guaranteed(self):
        v = quantized_values(10, unique_count=10, seed=4)
        assert np.unique(v).size == 10

    def test_too_few_nnz(self):
        with pytest.raises(CatalogError):
            quantized_values(5, unique_count=10, seed=0)

    def test_bad_unique(self):
        with pytest.raises(CatalogError):
            quantized_values(5, unique_count=0, seed=0)


class TestSetValues:
    def test_replaces_values_keeps_pattern(self, paper_matrix):
        new_vals = np.arange(16.0) + 1
        m = set_matrix_values(paper_matrix, new_vals)
        assert np.array_equal(m.values, new_vals)
        assert np.array_equal(m.col_ind, paper_matrix.col_ind)

    def test_wrong_count(self, paper_matrix):
        with pytest.raises(CatalogError):
            set_matrix_values(paper_matrix, np.ones(7))

    def test_pattern_values(self, paper_matrix):
        m = pattern_values(paper_matrix)
        assert np.all(m.values == 1.0)
        assert m.nnz == paper_matrix.nnz
