"""Tests for the catalog inspection CLI."""

from repro.matrices.__main__ import main


class TestCatalogCLI:
    def test_summary(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "M0=77" in out
        assert "syn069-" in out

    def test_single_matrix(self, capsys):
        assert main(["69", "--scale", "0.015625"]) == 0
        out = capsys.readouterr().out
        assert "id 69" in out
        assert "csr-du index" in out
        assert "ttu" in out

    def test_multiple(self, capsys):
        assert main(["44", "55", "--scale", "0.015625"]) == 0
        out = capsys.readouterr().out
        assert "id 44" in out and "id 55" in out
