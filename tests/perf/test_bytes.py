"""Hand-computed byte accounting for the exact per-iteration stream.

Every expected number below is derived on paper from the format's wire
layout (DESIGN.md / compress.ctl docstrings), not from running the
code -- these tests pin the accounting, they don't mirror it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.formats.conversions import convert
from repro.formats.csr import CSRMatrix
from repro.perf.bytes import bytes_per_iteration


class TestCSRPaperMatrix:
    """The paper's 6x6 Fig. 1 matrix: 16 nnz, int32 indices.

    Hand accounting (one thread):

    * row_ptr: 7 entries x 4 B  = 28
    * col_ind: 16 x 4 B         = 64
    * values:  16 x 8 B         = 128
    * y:       6 x 8 B          = 48
    * x: all columns 0..5 land in cache line 0 -> one 64 B line
    """

    def test_serial_breakdown(self, paper_matrix):
        bd = bytes_per_iteration(paper_matrix, 1)
        assert bd.arrays == {
            "row_ptr": 28,
            "col_ind": 64,
            "values": 128,
            "y": 48,
            "x": 64,
        }
        assert bd.index_bytes == 28 + 64
        assert bd.value_bytes == 128
        assert bd.vector_bytes == 48 + 64
        assert bd.total_bytes == 332
        assert bd.nnz == 16
        assert bd.flops == 32
        assert bd.flops_per_byte == pytest.approx(32 / 332)

    def test_two_threads_share_x_line(self, paper_matrix):
        """Each thread gathers from the same single x line; the shared
        footprint is capped at the whole vector (64 B), not doubled.
        Private row_ptr grows by one overlapping boundary entry."""
        bd = bytes_per_iteration(paper_matrix, 2)
        assert bd.arrays["x"] == 64
        assert bd.arrays["row_ptr"] == 32  # (r0+1)*4 + (r1+1)*4, r0+r1=6
        assert bd.arrays["col_ind"] == 64
        assert bd.arrays["values"] == 128
        assert bd.arrays["y"] == 48
        # 16 nnz over 2 threads, best static split is 9/7: max/mean 9/8.
        assert bd.nnz_imbalance == pytest.approx(9 / 8)


class TestCSRVIPaperMatrix:
    """CSR-VI: values indirect through 9 unique doubles (Table I).

    val_ind needs one uint8 per nnz (9 < 256); vals_unique is 9 x 8 B
    and counted once however many threads read it.
    """

    def test_serial_breakdown(self, paper_matrix):
        vi = convert(paper_matrix, "csr-vi")
        bd = bytes_per_iteration(vi, 1)
        assert bd.arrays == {
            "row_ptr": 28,
            "col_ind": 64,
            "val_ind": 16,  # 16 nnz x 1 B
            "y": 48,
            "x": 64,
            "vals_unique": 72,  # 9 unique x 8 B
        }
        assert bd.index_bytes == 92
        assert bd.value_bytes == 16 + 72
        assert bd.vector_bytes == 112

    def test_vals_unique_counted_once_across_threads(self, paper_matrix):
        vi = convert(paper_matrix, "csr-vi")
        assert bytes_per_iteration(vi, 2).arrays["vals_unique"] == 72
        assert bytes_per_iteration(vi, 1).arrays["vals_unique"] == 72


class TestCSRDUMixedWidths:
    """CSR-DU with one u8 unit and one u16 unit, ctl hand-assembled.

    Matrix: 2 x 1008, row 0 holds columns [0, 1, 2], row 1 holds
    [0, 1000].  Wire format per unit:
    ``uflags(1) + usize(1) + ujmp varint + (usize-1) deltas``:

    * unit 0 (row 0, u8):  1 + 1 + 1 (ujmp=0) + 2 x 1 B deltas = 5 B
    * unit 1 (row 1, u16): 1 + 1 + 1 (ujmp=0) + 1 x 2 B delta  = 5 B

    The x gather touches lines 0 (cols 0..2) and 125 (col 1000):
    2 x 64 B, far below the 1008-column full-vector cap.
    """

    @pytest.fixture
    def mixed(self):
        dense = np.zeros((2, 1008))
        dense[0, [0, 1, 2]] = [1.5, 2.5, 3.5]
        dense[1, [0, 1000]] = [4.5, 5.5]
        return CSRMatrix.from_dense(dense)

    def test_ctl_bytes_hand_assembled(self, mixed):
        du = convert(mixed, "csr-du")
        bd = bytes_per_iteration(du, 1)
        assert bd.arrays == {
            "ctl": 10,
            "values": 40,  # 5 nnz x 8 B
            "y": 16,  # 2 rows x 8 B
            "x": 128,  # lines 0 and 125
        }
        assert bd.index_bytes == 10
        assert bd.value_bytes == 40
        assert bd.vector_bytes == 144
        # Both width classes really are present (u8 + u16).
        assert sorted(du.units.classes.tolist()) == [0, 1]

    def test_du_vi_swaps_values_for_indirection(self, mixed):
        """CSR-DU-VI replaces the 40 B value stream with a 1 B/nnz
        val_ind plus the unique pool (4 distinct values... all 5 are
        distinct here: 5 x 8 B pool, 5 x 1 B indices)."""
        duvi = convert(mixed, "csr-du-vi")
        bd = bytes_per_iteration(duvi, 1)
        assert bd.arrays["ctl"] == 10
        assert bd.arrays["val_ind"] == 5
        assert bd.arrays["vals_unique"] == 40  # 5 unique x 8 B
        assert "values" not in bd.arrays


class TestPaperMatrixCSRDU:
    def test_ctl_replaces_row_ptr_and_col_ind(self, paper_matrix):
        """On the Fig. 1 matrix the whole structure compresses to a
        28 B ctl stream (6 units, all u8) vs CSR's 92 B of indices."""
        du = convert(paper_matrix, "csr-du")
        bd = bytes_per_iteration(du, 1)
        assert bd.arrays == {"ctl": 28, "values": 128, "y": 48, "x": 64}
        assert bd.index_bytes == 28
        csr_bd = bytes_per_iteration(paper_matrix, 1)
        assert csr_bd.index_bytes == 92


class TestErrors:
    def test_unsupported_format_raises(self, paper_matrix):
        ell = convert(paper_matrix, "ell")
        with pytest.raises(MachineModelError):
            bytes_per_iteration(ell, 1)

    def test_bad_thread_count(self, paper_matrix):
        with pytest.raises(MachineModelError):
            bytes_per_iteration(paper_matrix, 0)
