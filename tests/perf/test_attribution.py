"""Attribution records: roofline math, speedup filling, telemetry."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentConfig, run_format_matrix, run_set
from repro.formats.conversions import convert
from repro.machine.costmodel import default_cost_model
from repro.machine.roofline import machine_peak_flops
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import clovertown_8core
from repro.perf.attribution import (
    attribute_cell,
    compression_speedup_correlation,
    record,
)
from repro.perf.bytes import bytes_per_iteration


@pytest.fixture(scope="module")
def machine():
    return clovertown_8core()


@pytest.fixture(scope="module")
def cost():
    return default_cost_model()


class TestAttributeCell:
    def test_model_clock_fields(self, paper_matrix, machine, cost):
        sim = simulate_spmv(paper_matrix, 2, machine, cost_model=cost)
        att = attribute_cell(
            paper_matrix,
            threads=2,
            placement="close",
            time_s=sim.time_s,
            machine=machine,
            cost_model=cost,
            matrix_id=7,
            sim=sim,
        )
        bd = bytes_per_iteration(paper_matrix, 2)
        assert att.format_name == "csr"
        assert att.matrix_id == 7
        assert att.flops == 2 * paper_matrix.nnz
        assert att.bytes_per_iter == bd.total_bytes
        assert att.index_bytes == bd.index_bytes
        assert att.mflops == pytest.approx(att.flops / sim.time_s / 1e6)
        assert att.effective_gbps == pytest.approx(
            bd.total_bytes / sim.time_s / 1e9
        )
        assert att.dram_bytes == sim.total_traffic
        assert att.bound == sim.bound
        # The model never beats its own roofline ceiling.
        assert 0.0 < att.roofline_pct <= 100.0 + 1e-9
        assert att.attainable_mflops <= machine_peak_flops(machine, 2, cost) / 1e6

    def test_wallclock_fields(self, paper_matrix, machine, cost):
        att = attribute_cell(
            paper_matrix,
            threads=1,
            placement="close",
            time_s=1e-6,
            machine=machine,
            cost_model=cost,
            clock="real",
        )
        assert att.bound == "wallclock"
        assert att.dram_bytes == 0.0
        assert att.time_imbalance == 1.0
        assert att.clock == "real"
        # With no sim, intensity comes from the streamed bytes.
        assert att.flops_per_byte == pytest.approx(
            att.flops / att.bytes_per_iter
        )

    def test_compression_ratio_vs_csr(self, paper_matrix, machine, cost):
        csr_storage = paper_matrix.storage()
        vi = convert(paper_matrix, "csr-vi")
        att = attribute_cell(
            vi,
            threads=1,
            placement="close",
            time_s=1e-6,
            machine=machine,
            cost_model=cost,
            csr_storage=csr_storage,
        )
        assert att.compression_ratio == pytest.approx(
            vi.storage().total_bytes / csr_storage.total_bytes
        )
        assert att.compression_ratio < 1.0

    def test_with_speedup(self, paper_matrix, machine, cost):
        att = attribute_cell(
            paper_matrix,
            threads=1,
            placement="close",
            time_s=2e-6,
            machine=machine,
            cost_model=cost,
        )
        assert att.speedup_vs_csr == 0.0
        filled = att.with_speedup(3e-6)
        assert filled.speedup_vs_csr == pytest.approx(1.5)
        assert att.speedup_vs_csr == 0.0  # frozen original untouched
        assert att.with_speedup(0.0) is att

    def test_plan_hit_rate(self, paper_matrix, machine, cost):
        att = attribute_cell(
            paper_matrix,
            threads=1,
            placement="close",
            time_s=1e-6,
            machine=machine,
            cost_model=cost,
        )
        assert att.plan_hit_rate == 0.0  # no collector -> no lookups seen


class TestTelemetry:
    def test_record_emits_full_payload(
        self, paper_matrix, machine, cost, collector
    ):
        att = attribute_cell(
            paper_matrix,
            threads=4,
            placement="spread",
            time_s=1e-6,
            machine=machine,
            cost_model=cost,
        )
        record(att)
        events = [
            ev for ev in collector.snapshot() if ev.name == "perf.attribution"
        ]
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["format"] == "csr"
        assert attrs["threads"] == 4
        assert attrs["placement"] == "spread"
        assert attrs["bytes_per_iter"] == att.bytes_per_iter
        assert attrs["roofline_pct"] == pytest.approx(att.roofline_pct)
        assert attrs["bound"] == att.bound
        key = "perf.attribution{format=csr,placement=spread,threads=4}"
        assert collector.counters[key] == 1

    def test_plan_counters_flow_into_record(
        self, paper_matrix, machine, cost, collector
    ):
        from repro.kernels.plan import get_plan

        du = convert(paper_matrix, "csr-du")
        get_plan(du)  # miss + build
        get_plan(du)  # hit
        att = attribute_cell(
            du,
            threads=1,
            placement="close",
            time_s=1e-6,
            machine=machine,
            cost_model=cost,
        )
        assert att.plan_misses == 1
        assert att.plan_hits == 1
        assert att.plan_hit_rate == pytest.approx(0.5)


class TestHarnessIntegration:
    """Acceptance: every bench cell gets an Attribution for all four
    paper formats."""

    @pytest.mark.parametrize(
        "fmt", ["csr", "csr-du", "csr-vi", "csr-du-vi"]
    )
    def test_every_cell_attributed(self, paper_matrix, fmt):
        config = ExperimentConfig()
        res = run_format_matrix(paper_matrix, fmt, config, matrix_id=3)
        assert set(res.attributions) == set(res.times)
        for key, att in res.attributions.items():
            threads, placement = key
            assert att.threads == threads
            assert att.placement == placement
            assert att.format_name == fmt
            assert att.time_s == res.times[key]
            assert att.bytes_per_iter > 0
            assert att.effective_gbps > 0
            assert 0 < att.roofline_pct <= 100.0 + 1e-9

    def test_run_set_fills_speedups(self):
        out = run_set((1,), ("csr", "csr-du"), ExperimentConfig(scale=0.02))
        du = out[1]["csr-du"]
        csr = out[1]["csr"]
        for key, att in du.attributions.items():
            assert att.speedup_vs_csr == pytest.approx(
                csr.times[key] / du.times[key]
            )
        for att in csr.attributions.values():
            assert att.speedup_vs_csr == 0.0

    def test_real_clock_attribution(self, paper_matrix):
        config = ExperimentConfig(clock="real", real_calls=2)
        res = run_format_matrix(
            paper_matrix,
            "csr-vi",
            config,
            matrix_id=3,
            configs=((1, "close"),),
        )
        att = res.attributions[(1, "close")]
        assert att.bound == "wallclock"
        assert att.clock == "real"

    def test_unattributable_format_still_times(self, paper_matrix):
        config = ExperimentConfig(clock="real", real_calls=2)
        res = run_format_matrix(
            paper_matrix,
            "ell",
            config,
            matrix_id=3,
            configs=((1, "close"),),
        )
        assert res.attributions == {}
        assert len(res.times) == 1


class TestCorrelation:
    def test_perfect_positive(self):
        pts = [(0.1, 1.1), (0.2, 1.2), (0.3, 1.3)]
        assert compression_speedup_correlation(pts) == pytest.approx(1.0)

    def test_perfect_negative(self):
        pts = [(0.1, 1.3), (0.2, 1.2), (0.3, 1.1)]
        assert compression_speedup_correlation(pts) == pytest.approx(-1.0)

    def test_degenerate_cases(self):
        assert compression_speedup_correlation([]) == 0.0
        assert compression_speedup_correlation([(0.5, 2.0)]) == 0.0
        assert compression_speedup_correlation([(0.5, 1.0), (0.5, 2.0)]) == 0.0
