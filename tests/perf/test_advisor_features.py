"""Feature extraction correctness: hand-computed cases and invariants.

The hand-computed fixtures are the paper's Fig. 1 matrix (every number
derivable from Table I) and a tridiagonal band; both are small enough
to check each :class:`~repro.perf.advisor.features.MatrixFeatures`
field against arithmetic done on paper.  The property tests pin the
two contracts the advisor leans on: index-side features depend only on
the sparsity pattern (perturbing values must not move them), and
``ttu`` is monotone under value coarsening (merging distinct values
can only raise the total-to-unique ratio, never lower it).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.unique import TTU_THRESHOLD
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.matrices.generators import dense_band, stencil_2d
from repro.matrices.values import quantized_values, set_matrix_values
from repro.perf.advisor import MatrixFeatures, extract_features
from tests.conftest import PAPER_DENSE, random_sparse_dense


class TestPaperMatrix:
    """Every field of the Fig. 1 matrix, computed by hand."""

    @pytest.fixture(scope="class")
    def feats(self) -> MatrixFeatures:
        return extract_features(CSRMatrix.from_dense(PAPER_DENSE))

    def test_shape_and_density(self, feats):
        assert (feats.nrows, feats.ncols, feats.nnz) == (6, 6, 16)
        assert feats.density == pytest.approx(16 / 36)

    def test_row_statistics(self, feats):
        # Row lengths are (2, 3, 1, 3, 3, 4).
        assert feats.nnz_row_mean == pytest.approx(16 / 6)
        assert feats.nnz_row_max == 4
        assert feats.empty_rows == 0
        lengths = np.array([2, 3, 1, 3, 3, 4])
        assert feats.nnz_row_std == pytest.approx(lengths.std())

    def test_delta_histogram_all_narrow(self, feats):
        # Columns never jump more than 5, so every delta is u8.
        assert feats.delta_hist == (16, 0, 0, 0)
        assert feats.narrow_delta_fraction == 1.0

    def test_units_estimate_exact_here(self, feats):
        # One u8 run per row, none longer than 255, no singleton with a
        # same-row successor: exactly one unit per row.
        assert feats.units_est == 6
        # And the estimate matches the real greedy encoder on this case.
        du = CSRDUMatrix.from_csr(CSRMatrix.from_dense(PAPER_DENSE))
        assert feats.units_est == du.units.nunits
        assert feats.avg_unit_size == pytest.approx(16 / 6)

    def test_value_features(self, feats):
        # Distinct nonzeros: 5.4 1.1 6.3 7.7 8.8 2.9 3.7 9.0 4.5 -> 9.
        assert feats.unique_values == 9
        assert feats.ttu == pytest.approx(16 / 9)
        assert feats.vi_applicable == (16 / 9 > TTU_THRESHOLD)

    def test_locality_features(self, feats):
        # Diagonal entries: rows 0, 1, 2, 4, 5 -> 5 of 16.
        assert feats.diag_fraction == pytest.approx(5 / 16)
        # Sum of |col - row| over all entries is 26.
        assert feats.bandwidth_mean == pytest.approx(26 / 16 / 5)


class TestDenseBand:
    """Tridiagonal 6x6: the stencil-like hand case."""

    @pytest.fixture(scope="class")
    def feats(self) -> MatrixFeatures:
        return extract_features(CSRMatrix.from_coo(dense_band(6, 1)))

    def test_structure(self, feats):
        assert feats.nnz == 16
        assert feats.delta_hist == (16, 0, 0, 0)
        assert feats.units_est == 6
        assert feats.nnz_row_max == 3
        assert feats.nnz_row_mean == pytest.approx(16 / 6)

    def test_locality(self, feats):
        # 6 diagonal entries; 10 off-diagonal entries at distance 1.
        assert feats.diag_fraction == pytest.approx(6 / 16)
        assert feats.bandwidth_mean == pytest.approx(10 / 16 / 5)


def test_units_estimate_tracks_encoder_on_stencil():
    csr = CSRMatrix.from_coo(stencil_2d(24, 24, points=5))
    feats = extract_features(csr)
    actual = CSRDUMatrix.from_csr(csr).units.nunits
    assert feats.units_est == pytest.approx(actual, rel=0.05)


def test_features_hashable_and_memoizable():
    a = extract_features(CSRMatrix.from_dense(PAPER_DENSE))
    b = extract_features(CSRMatrix.from_dense(PAPER_DENSE))
    assert a == b
    assert hash(a) == hash(b)
    assert {a: "choice"}[b] == "choice"


def test_empty_rows_counted():
    dense = random_sparse_dense(32, 32, density=0.2, seed=3, empty_rows=True)
    feats = extract_features(CSRMatrix.from_dense(dense))
    assert feats.empty_rows >= 32 // 4


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 1_000), vseed=st.integers(0, 1_000))
def test_index_features_invariant_under_value_perturbation(seed, vseed):
    """Replacing the values moves only ttu / unique_values."""
    dense = random_sparse_dense(24, 24, density=0.2, seed=seed)
    csr = CSRMatrix.from_dense(dense)
    if csr.nnz == 0:
        return
    before = extract_features(csr)
    new_values = np.random.default_rng(vseed).random(csr.nnz) + 0.5
    after = extract_features(set_matrix_values(csr, new_values))
    index_fields = (
        "nrows", "ncols", "nnz", "density", "nnz_row_mean", "nnz_row_std",
        "nnz_row_max", "empty_rows", "delta_hist", "units_est",
        "diag_fraction", "bandwidth_mean",
    )
    for field in index_fields:
        assert getattr(before, field) == getattr(after, field), field


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(0, 1_000),
    unique=st.integers(2, 64),
)
def test_ttu_monotone_under_dedup(seed, unique):
    """Coarsening values never lowers ttu (dedup is the VI best case)."""
    dense = random_sparse_dense(24, 24, density=0.25, seed=seed)
    csr = CSRMatrix.from_dense(dense)
    if csr.nnz == 0:
        return
    baseline = extract_features(csr)
    quantized = set_matrix_values(
        csr, quantized_values(csr.nnz, unique, seed=seed)
    )
    coarse = extract_features(quantized)
    assert coarse.unique_values <= min(unique, csr.nnz)
    # Rounding the quantized values further can only merge classes.
    rounded = set_matrix_values(
        quantized, np.round(np.asarray(quantized.values), 1)
    )
    rounder = extract_features(rounded)
    assert rounder.unique_values <= coarse.unique_values
    assert rounder.ttu >= coarse.ttu
    # ttu is nnz/unique by definition, on every variant.
    for f in (baseline, coarse, rounder):
        assert f.ttu == pytest.approx(f.nnz / f.unique_values)
