"""Perf test fixtures: a scoped collector that never leaks."""

from __future__ import annotations

import pytest

from repro.telemetry import Collector, set_collector


@pytest.fixture
def collector():
    """Install a fresh collector for the test, restore on teardown."""
    c = Collector()
    prev = set_collector(c)
    yield c
    set_collector(prev)
