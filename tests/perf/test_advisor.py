"""Advisor behavior: ranking, safety, ``auto`` wiring, telemetry.

The regret safety contract is exercised two ways: structurally (plain
CSR is always in the candidate set, so the pick can never be
*predicted* worse than it) and live (the picked configuration, actually
measured, stays within :data:`~repro.perf.advisor.REGRET_BOUND` of the
measured plain-CSR baseline on a real matrix).  ``format_name="auto"``
must be a pure selector: bit-identical output to the explicit pick,
whether it resolves through :func:`~repro.parallel.backends
.make_executor` or a :class:`~repro.storage.shard.ShardStore` build.
"""

from __future__ import annotations

import dataclasses
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ReproError
from repro.formats.csr import CSRMatrix
from repro.matrices.generators import banded_random, stencil_2d
from repro.matrices.values import quantized_values, set_matrix_values
from repro.parallel.backends import default_workers, make_executor
from repro.perf.advisor import (
    REGRET_BOUND,
    Calibration,
    RankedChoice,
    advise,
    advise_format,
    advise_kernel,
    advise_threads,
    history_from_attributions,
    load_calibration,
    record_realized,
)
from repro.perf.advisor.model import ADVISOR_FORMATS, save_calibration
from repro.storage import ShardStore
from repro.util.timing import measure
from tests.conftest import PAPER_DENSE


@pytest.fixture(autouse=True)
def _no_ambient_calibration(monkeypatch, tmp_path):
    """Tests must not pick up a calibration file from the repo root."""
    monkeypatch.setenv(
        "REPRO_ADVISOR_CALIBRATION", str(tmp_path / "absent.json")
    )


@pytest.fixture
def band() -> CSRMatrix:
    csr = CSRMatrix.from_coo(banded_random(4_000, 16, 8, seed=5))
    return set_matrix_values(csr, quantized_values(csr.nnz, 256, seed=5))


def test_advise_returns_sorted_full_ranking(band):
    choice = advise(band, emit=False)
    assert isinstance(choice, RankedChoice)
    seconds = [p.seconds for p in choice.ranking]
    assert seconds == sorted(seconds)
    # Every candidate format at both tiers is scored.
    scored = {(p.config.format_name, p.config.kernel) for p in choice.ranking}
    assert {f for f, _ in scored} == set(ADVISOR_FORMATS)
    assert choice.best is choice.ranking[0]
    assert choice.top(3) == choice.ranking[:3]


def test_analytic_fallback_without_calibration(band):
    choice = advise(band, calibration=None, emit=False)
    assert all(p.source == "analytic" for p in choice.ranking)
    assert choice.calibration_id is None


def test_advise_rejects_non_calibration(band):
    with pytest.raises(ReproError):
        advise(band, calibration={"ns_per_nnz": {}}, emit=False)


def test_pick_never_predicted_worse_than_csr(band):
    """Structural half of the safety contract: CSR is a candidate."""
    choice = advise(band, emit=False)
    csr_candidates = [
        p for p in choice.ranking if p.config.format_name == "csr"
    ]
    assert csr_candidates, "plain CSR missing from the candidate set"
    assert choice.best.seconds <= min(p.seconds for p in csr_candidates)


def test_measured_regret_within_bound(band):
    """Live half: the pick, measured, stays within the regret bound."""
    x = np.random.default_rng(0).standard_normal(band.ncols)
    choice = advise(band, emit=False)
    best = choice.config

    from repro.formats.conversions import convert
    from repro.kernels.registry import get_kernel

    conv = convert(band, best.format_name)
    kernel = get_kernel(best.format_name, best.kernel)
    kernel(conv, x)  # warm
    picked_s = measure(lambda: kernel(conv, x), calls=3, repeats=3).per_call
    band.spmv(x)  # warm
    csr_s = measure(lambda: band.spmv(x), calls=3, repeats=3).per_call
    assert picked_s <= REGRET_BOUND * csr_s


def test_format_auto_bit_identical_via_executor(band):
    x = np.random.default_rng(1).standard_normal(band.ncols)
    picked = advise_format(band, threads=1, backend="thread")
    with make_executor(band, 1, format_name="auto") as auto_exec:
        y_auto = auto_exec(x)
    with make_executor(band, 1, format_name=picked) as explicit_exec:
        y_explicit = explicit_exec(x)
    assert np.array_equal(y_auto, y_explicit)


def test_format_auto_bit_identical_via_shard_store(band):
    x = np.random.default_rng(2).standard_normal(band.ncols)
    picked = advise_format(band, threads=2, backend="thread")
    with ShardStore.build(band, "auto", 2) as auto_store:
        assert auto_store.format_name == picked
        y_auto = np.concatenate(
            [auto_store.attach(i).spmv(x) for i in range(auto_store.nshards)]
        )
    with ShardStore.build(band, picked, 2) as explicit_store:
        y_explicit = np.concatenate(
            [
                explicit_store.attach(i).spmv(x)
                for i in range(explicit_store.nshards)
            ]
        )
    assert np.array_equal(y_auto, y_explicit)


def test_default_workers_cap():
    cpus = max(1, os.cpu_count() or 1)
    assert default_workers(None) == cpus
    assert default_workers("auto") == cpus
    assert default_workers(4) == 4  # explicit oversubscription honored
    assert default_workers("3") == 3


def test_make_executor_defaults_workers(band):
    x = np.random.default_rng(3).standard_normal(band.ncols)
    with make_executor(band) as executor:
        assert np.allclose(executor(x), band.spmv(x))


def test_advisor_pick_telemetry_schema(band):
    prev = telemetry.set_collector(telemetry.Collector())
    try:
        choice = advise(band, matrix_id=7)
        record_realized(choice, 3.5e-4)
        events = [
            dataclasses.asdict(ev)
            for ev in telemetry.get_collector().snapshot()
            if ev.name == "advisor.pick"
        ]
    finally:
        telemetry.set_collector(prev)
    assert [e["attrs"]["phase"] for e in events] == ["advise", "realized"]
    required = {
        "matrix_id", "format", "kernel", "threads", "backend", "partition",
        "predicted_s", "realized_s", "source", "phase",
    }
    for e in events:
        assert required <= set(e["attrs"])
        assert e["attrs"]["matrix_id"] == 7
    assert events[1]["attrs"]["realized_s"] == pytest.approx(3.5e-4)


def test_calibration_round_trip(tmp_path):
    cal = Calibration(
        ns_per_nnz={"csr|cached": 6.5, "csr-du|cached": 12.0},
        per_call_s=5e-6,
        thread_call_overhead_s=6e-5,
        host={"cpus": 1},
    )
    path = save_calibration(cal, str(tmp_path / "cal.json"))
    loaded = load_calibration(path)
    assert loaded == cal
    assert loaded.calibration_id == cal.calibration_id
    assert loaded.lookup("csr", "cached") == 6.5
    assert loaded.lookup("csr", "nope") is None


def test_load_calibration_graceful(tmp_path):
    assert load_calibration(str(tmp_path / "missing.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert load_calibration(str(bad)) is None


def test_calibrated_predictions_rank_by_throughput(band):
    cal = Calibration(
        ns_per_nnz={
            "csr|cached": 10.0,
            "csr|vectorized": 50.0,
            "csr-du|cached": 2.0,  # implausible, but must win
            "csr-du|vectorized": 80.0,
            "csr-vi|cached": 30.0,
            "csr-vi|vectorized": 30.0,
            "csr-du-vi|cached": 30.0,
            "csr-du-vi|vectorized": 30.0,
        },
        per_call_s=1e-6,
    )
    choice = advise(band, calibration=cal, emit=False)
    assert choice.config.format_name == "csr-du"
    assert choice.config.kernel == "cached"
    assert choice.best.source == "calibrated"
    assert choice.calibration_id == cal.calibration_id


def test_history_overrides_prediction(band):
    records = [
        SimpleNamespace(
            format_name="csr-du-vi",
            threads=1,
            time_s=1e-9,
            matrix_id=5,
            clock="real",
        ),
        SimpleNamespace(  # other matrix: must be ignored
            format_name="csr-vi",
            threads=1,
            time_s=1e-12,
            matrix_id=6,
            clock="real",
        ),
    ]
    history = history_from_attributions(records, matrix_id=5, clock="real")
    assert history == {("csr-du-vi", 1): 1e-9}
    choice = advise(
        band, matrix_id=5, calibration=None, history=records, emit=False
    )
    assert choice.config.format_name == "csr-du-vi"
    assert choice.best.source == "history"


def test_resolvers_return_plain_values(band):
    fmt = advise_format(band)
    assert fmt in ADVISOR_FORMATS
    tier = advise_kernel(band, fmt)
    assert tier in ("cached", "vectorized")
    threads = advise_threads(band)
    assert threads in (1, 2, 4, 8)


def test_harness_resolvers():
    from repro.bench.harness import (
        ExperimentConfig,
        resolve_formats,
        resolve_kernel,
        resolve_thread_configs,
    )

    matrix = CSRMatrix.from_coo(stencil_2d(16, 16, points=5))
    plain = ExperimentConfig(scale=0.03125)
    assert resolve_formats(matrix, ("csr", "csr-du"), plain) == (
        "csr",
        "csr-du",
    )
    assert resolve_kernel(matrix, "csr", plain) == "cached"

    pinned = ExperimentConfig(
        scale=0.03125, format_override="csr-vi", threads_choice="2"
    )
    assert resolve_formats(matrix, ("csr", "csr-du", "csr-du-vi"), pinned) == (
        "csr",
        "csr-vi",
    )
    # Serial always runs too: it is the denominator of every speedup.
    assert resolve_thread_configs(matrix, pinned) == ((1, "close"), (2, "close"))

    auto = ExperimentConfig(
        scale=0.03125,
        clock="model",
        format_override="auto",
        threads_choice="auto",
        kernel="auto",
    )
    formats = resolve_formats(matrix, ("csr", "csr-du"), auto)
    assert formats[0] == "csr"
    assert all(f in ADVISOR_FORMATS for f in formats)
    assert len(formats) == len(set(formats))
    thread_configs = resolve_thread_configs(matrix, auto)
    assert thread_configs[0] == (1, "close")
    threads, placement = thread_configs[-1]
    assert threads in (1, 2, 4, 8) and placement == "close"
    assert resolve_kernel(matrix, "csr", auto) in ("cached", "vectorized")


def test_run_set_with_auto_override_runs_end_to_end():
    """The bench harness accepts --format auto on the model clock."""
    from repro.bench.harness import ExperimentConfig, run_set
    from repro.matrices.collection import MS_IDS

    config = ExperimentConfig(
        scale=0.03125, clock="model", format_override="auto"
    )
    results = run_set(
        (MS_IDS[0],), ("csr", "csr-du"), config, configs=((1, "close"),)
    )
    assert set(results) == {MS_IDS[0]}
    formats_run = set(results[MS_IDS[0]])
    assert "csr" in formats_run
    assert formats_run <= {"csr", *ADVISOR_FORMATS}


def test_paper_matrix_advice_is_deterministic():
    csr = CSRMatrix.from_dense(PAPER_DENSE)
    first = advise(csr, calibration=None, emit=False)
    second = advise(csr, calibration=None, emit=False)
    assert first.config == second.config
    assert [p.seconds for p in first.ranking] == [
        p.seconds for p in second.ranking
    ]
