"""Per-thread balance recovery from parallel.spmv/parallel.chunk spans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.parallel.executor import ParallelSpMV
from repro.perf.imbalance import (
    call_balances,
    format_report,
    summarize_parallel,
    thread_timelines,
)
from tests.conftest import random_sparse_dense


def _span(name, ts, dur, tid=1, **attrs):
    return {
        "kind": "span",
        "name": name,
        "ts_us": float(ts),
        "dur_us": float(dur),
        "value": 0.0,
        "thread": "w",
        "tid": tid,
        "depth": 0,
        "attrs": attrs,
    }


class TestSyntheticTrace:
    """Hand-built spans with exact expected busy/wait/imbalance."""

    @pytest.fixture
    def events(self):
        # One call [0, 100]; thread 0 busy [2, 42] (40us, 600 nnz),
        # thread 1 busy [2, 82] (80us, 400 nnz).  Chunks precede the
        # call in the stream, as the collector records spans at exit.
        return [
            _span("parallel.chunk", 2, 40, tid=11, thread=0, nnz=600),
            _span("parallel.chunk", 2, 80, tid=12, thread=1, nnz=400),
            _span("parallel.spmv", 0, 100, tid=10, threads=2),
        ]

    def test_busy_and_barrier_wait(self, events):
        (call,) = call_balances(events)
        assert call.busy_us == {0: 40.0, 1: 80.0}
        # Call ends at 100; thread 0's chunk ends at 42, thread 1's at 82.
        assert call.barrier_wait_us == {0: 58.0, 1: 18.0}
        assert call.total_barrier_wait_us == 76.0

    def test_imbalance_ratios(self, events):
        (call,) = call_balances(events)
        assert call.time_imbalance == pytest.approx(80 / 60)
        assert call.nnz_imbalance == pytest.approx(600 / 500)
        assert call.nnz_vs_time == pytest.approx((80 / 60) / (600 / 500))

    def test_two_calls_claim_their_own_chunks(self):
        events = [
            _span("parallel.chunk", 1, 8, thread=0, nnz=10),
            _span("parallel.spmv", 0, 10, threads=1),
            _span("parallel.chunk", 21, 5, thread=0, nnz=10),
            _span("parallel.spmv", 20, 10, threads=1),
        ]
        calls = call_balances(events)
        assert len(calls) == 2
        assert calls[0].busy_us == {0: 8.0}
        assert calls[1].busy_us == {0: 5.0}

    def test_report_aggregates(self, events):
        report = summarize_parallel(events)
        assert report.ncalls == 1
        assert report.mean_time_imbalance == pytest.approx(80 / 60)
        text = format_report(report)
        assert "parallel calls: 1" in text
        assert "imbalance" in text

    def test_empty_trace(self):
        report = summarize_parallel([])
        assert report.ncalls == 0
        assert report.mean_time_imbalance == 1.0
        assert report.mean_nnz_vs_time == 1.0


class TestThreadTimelines:
    def test_lanes_keyed_by_tid(self):
        events = [
            _span("parallel.chunk", 5, 10, tid=3),
            _span("parallel.chunk", 1, 2, tid=3),
            _span("parallel.spmv", 0, 20, tid=2),
            {
                "kind": "counter",
                "name": "c",
                "ts_us": 0.0,
                "dur_us": 0.0,
                "value": 1.0,
                "thread": "m",
                "tid": 3,
                "depth": 0,
                "attrs": {},
            },
        ]
        lanes = thread_timelines(events)
        assert set(lanes) == {(0, 2), (0, 3)}
        assert lanes[(0, 3)] == [
            (1.0, 2.0, "parallel.chunk"),
            (5.0, 10.0, "parallel.chunk"),
        ]

    def test_worker_pid_gets_own_lane(self):
        events = [
            _span("parallel.chunk", 1, 4, tid=3, pid=4242, worker=1),
            _span("parallel.chunk", 1, 4, tid=3),
            _span("parallel.spmv", 0, 10, tid=3),
        ]
        lanes = thread_timelines(events)
        # The fork-pool worker shares the parent's tid; the pid attr
        # keeps it in a separate lane.
        assert set(lanes) == {(0, 3), (4242, 3)}
        assert lanes[(4242, 3)] == [(1.0, 4.0, "parallel.chunk")]


class TestRealExecutorTrace:
    def test_live_collector_round_trip(self, collector):
        dense = random_sparse_dense(100, 100, seed=9)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(2).random(100)
        with ParallelSpMV(csr, 4) as par:
            for _ in range(2):
                par(x)
        report = summarize_parallel(collector.snapshot())
        assert report.ncalls == 2
        for call in report.calls:
            assert len(call.busy_us) == 4
            assert sum(call.nnz.values()) == csr.nnz
            assert call.time_imbalance >= 1.0
            assert all(w >= 0 for w in call.barrier_wait_us.values())


def _abandon_mark(ts, thread, lo, hi):
    return {
        "kind": "counter",
        "name": "executor.chunk.abandoned",
        "ts_us": float(ts),
        "dur_us": 0.0,
        "value": 1.0,
        "thread": "w",
        "tid": 10,
        "depth": 0,
        "attrs": {"thread": thread, "lo": lo, "hi": hi, "timeout_s": 0.25},
    }


class TestAbandonedChunkExclusion:
    """Chunks whose wait was abandoned must not pollute the balances."""

    def test_abandoned_chunk_is_dropped(self):
        # Thread 1's chunk overran the call: span [2, 402] vs call
        # [0, 100].  The executor marked the abandonment at t=90,
        # inside the chunk's interval.
        events = [
            _span("parallel.chunk", 2, 40, tid=11, thread=0, lo=0, hi=50, nnz=600),
            _span("parallel.chunk", 2, 400, tid=12, thread=1, lo=50, hi=100, nnz=400),
            _abandon_mark(90, thread=1, lo=50, hi=100),
            _span("parallel.spmv", 0, 100, tid=10, threads=2),
        ]
        (call,) = call_balances(events)
        assert call.busy_us == {0: 40.0}
        assert call.nnz == {0: 600.0}
        assert 1 not in call.barrier_wait_us

    def test_orphan_span_not_claimed_by_a_later_call(self):
        # The orphaned chunk keeps running and its span [110, 60] lands
        # wholly inside call 2's interval [100, 200] — without the
        # abandon mark it would be claimed by the wrong call.
        events = [
            _span("parallel.chunk", 2, 40, tid=11, thread=0, lo=0, hi=50, nnz=600),
            _span("parallel.spmv", 0, 100, tid=10, threads=2),
            _span("parallel.chunk", 110, 60, tid=12, thread=1, lo=50, hi=100, nnz=400),
            _abandon_mark(120, thread=1, lo=50, hi=100),
            _span("parallel.chunk", 105, 50, tid=11, thread=0, lo=0, hi=50, nnz=600),
            _span("parallel.spmv", 100, 100, tid=10, threads=2),
        ]
        first, second = call_balances(events)
        assert first.busy_us == {0: 40.0}
        assert second.busy_us == {0: 50.0}

    def test_matching_is_exact_on_thread_and_bounds(self):
        # A mark for *different* bounds must not erase a healthy chunk.
        events = [
            _span("parallel.chunk", 2, 40, tid=11, thread=0, lo=0, hi=50, nnz=600),
            _span("parallel.chunk", 2, 80, tid=12, thread=1, lo=50, hi=100, nnz=400),
            _abandon_mark(50, thread=1, lo=0, hi=50),
            _span("parallel.spmv", 0, 100, tid=10, threads=2),
        ]
        (call,) = call_balances(events)
        assert call.busy_us == {0: 40.0, 1: 80.0}
