"""All-pairs conversion tests through the registry bridge."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, available_formats, convert, to_csr

from tests.conftest import random_sparse_dense

ALL_FORMATS = (
    "coo",
    "csr",
    "csc",
    "csr-du",
    "csr-vi",
    "csr-du-vi",
    "dcsr",
    "bcsr",
    "ell",
    "jds",
)


@pytest.fixture(scope="module")
def dense():
    return random_sparse_dense(18, 21, seed=26, quantize=8, empty_rows=True)


@pytest.fixture(scope="module")
def csr(dense):
    return CSRMatrix.from_dense(dense)


class TestConvert:
    @pytest.mark.parametrize("name", ALL_FORMATS)
    def test_from_csr(self, csr, dense, name):
        m = convert(csr, name)
        assert m.shape == csr.shape
        assert np.allclose(m.to_dense(), dense)

    @pytest.mark.parametrize("src", ALL_FORMATS)
    @pytest.mark.parametrize("dst", ALL_FORMATS)
    def test_all_pairs(self, csr, dense, src, dst):
        a = convert(csr, src)
        b = convert(a, dst)
        assert np.allclose(b.to_dense(), dense)

    def test_registered_formats_all_convertible(self, csr):
        for name in available_formats():
            assert convert(csr, name) is not None

    def test_identity_is_noop(self, csr):
        assert convert(csr, "csr") is csr
        du = convert(csr, "csr-du")
        assert convert(du, "csr-du") is du

    def test_kwargs_forwarded(self, csr):
        du = convert(csr, "csr-du", policy="aligned")
        assert du.policy == "aligned"
        bcsr = convert(csr, "bcsr", r=3, c=3)
        assert (bcsr.r, bcsr.c) == (3, 3)

    def test_kwargs_force_reconversion(self, csr):
        du = convert(csr, "csr-du")
        du2 = convert(du, "csr-du", policy="aligned")
        assert du2 is not du

    def test_unknown_target(self, csr):
        with pytest.raises(FormatError):
            convert(csr, "elvish")


class TestToCSR:
    @pytest.mark.parametrize("name", ALL_FORMATS)
    def test_round(self, csr, dense, name):
        back = to_csr(convert(csr, name))
        assert np.allclose(back.to_dense(), dense)

    def test_csr_identity(self, csr):
        assert to_csr(csr) is csr

    def test_rejects_non_matrix(self):
        with pytest.raises(FormatError):
            to_csr(object())


class TestSpMVAgreement:
    @pytest.mark.parametrize("name", ALL_FORMATS)
    def test_all_formats_agree(self, csr, dense, name):
        x = np.random.default_rng(9).random(dense.shape[1])
        m = convert(csr, name)
        assert np.allclose(m.spmv(x), dense @ x, atol=1e-12)
