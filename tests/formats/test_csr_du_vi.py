"""Tests for the combined CSR-DU-VI format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRDUMatrix, CSRDUVIMatrix, CSRMatrix, CSRVIMatrix

from tests.conftest import random_sparse_dense


class TestCombined:
    def test_round_trip(self):
        dense = random_sparse_dense(22, 26, seed=25, quantize=8, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        duvi = CSRDUVIMatrix.from_csr(csr)
        assert np.allclose(duvi.to_csr().to_dense(), dense)

    def test_spmv(self, paper_matrix, paper_dense):
        duvi = CSRDUVIMatrix.from_csr(paper_matrix)
        x = np.arange(6.0)
        assert np.allclose(duvi.spmv(x), paper_dense @ x)

    def test_combines_both_compressions(self, paper_matrix):
        """Index bytes equal CSR-DU's; value bytes equal CSR-VI's."""
        duvi = CSRDUVIMatrix.from_csr(paper_matrix)
        du = CSRDUMatrix.from_csr(paper_matrix)
        vi = CSRVIMatrix.from_csr(paper_matrix)
        assert duvi.storage().index_bytes == du.storage().index_bytes
        assert duvi.storage().value_bytes == vi.storage().value_bytes
        assert duvi.storage().total_bytes < paper_matrix.storage().total_bytes

    def test_ttu(self, paper_matrix):
        duvi = CSRDUVIMatrix.from_csr(paper_matrix)
        assert duvi.ttu == pytest.approx(16 / 9)

    def test_iter_entries(self, paper_matrix):
        duvi = CSRDUVIMatrix.from_csr(paper_matrix)
        assert list(duvi.iter_entries()) == list(paper_matrix.iter_entries())

    def test_validation(self, paper_matrix):
        duvi = CSRDUVIMatrix.from_csr(paper_matrix)
        with pytest.raises(FormatError, match="bytes"):
            CSRDUVIMatrix(6, 6, [0], duvi.vals_unique, duvi.val_ind)
        bad = duvi.val_ind.copy()
        bad[0] = 99
        with pytest.raises(FormatError):
            CSRDUVIMatrix(6, 6, duvi.ctl, duvi.vals_unique, bad)

    def test_empty(self):
        csr = CSRMatrix(2, 2, np.array([0, 0, 0]), np.array([], dtype=np.int32), [])
        duvi = CSRDUVIMatrix.from_csr(csr)
        assert duvi.nnz == 0
        assert duvi.ttu == 0.0
