"""Tests for BCSR (register blocking with fill)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import BCSRMatrix, CSRMatrix

from tests.conftest import random_sparse_dense


class TestFromCSR:
    def test_round_trip(self):
        dense = random_sparse_dense(12, 14, seed=20)
        csr = CSRMatrix.from_dense(dense)
        for r, c in [(1, 1), (2, 2), (3, 2), (4, 4)]:
            bcsr = BCSRMatrix.from_csr(csr, r=r, c=c)
            assert np.allclose(bcsr.to_csr().to_dense(), dense), (r, c)

    def test_ragged_edges(self):
        """Matrix dims not divisible by the block size."""
        dense = random_sparse_dense(7, 9, seed=21)
        bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), r=3, c=4)
        assert np.allclose(bcsr.to_csr().to_dense(), dense)

    def test_1x1_blocks_equal_csr(self):
        dense = random_sparse_dense(10, 10, seed=22)
        csr = CSRMatrix.from_dense(dense)
        bcsr = BCSRMatrix.from_csr(csr, r=1, c=1)
        assert bcsr.true_nnz == csr.nnz
        assert bcsr.fill_ratio == 1.0

    def test_fill_ratio_dense_blocks(self):
        """A perfectly block-dense matrix has fill ratio 1."""
        dense = np.zeros((4, 4))
        dense[0:2, 2:4] = 1.0
        dense[2:4, 0:2] = 2.0
        bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), r=2, c=2)
        assert bcsr.fill_ratio == 1.0
        assert bcsr.block_values.shape[0] == 2

    def test_fill_ratio_scattered(self):
        """One nonzero per block: fill ratio r*c."""
        dense = np.zeros((4, 4))
        dense[0, 0] = dense[2, 2] = 1.0
        bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), r=2, c=2)
        assert bcsr.fill_ratio == 4.0

    def test_bad_block_shape(self):
        csr = CSRMatrix.from_dense(np.eye(4))
        with pytest.raises(FormatError):
            BCSRMatrix.from_csr(csr, r=0, c=2)


class TestOperations:
    def test_spmv(self, paper_matrix, paper_dense):
        for r, c in [(2, 2), (2, 3), (3, 3)]:
            bcsr = BCSRMatrix.from_csr(paper_matrix, r=r, c=c)
            x = np.arange(6.0) + 0.5
            assert np.allclose(bcsr.spmv(x), paper_dense @ x), (r, c)

    def test_spmv_nonsquare_ragged(self):
        dense = random_sparse_dense(11, 7, seed=23)
        bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), r=4, c=3)
        x = np.random.default_rng(5).random(7)
        assert np.allclose(bcsr.spmv(x), dense @ x)

    def test_storage_tradeoff(self):
        """Blocking shrinks index bytes but can inflate value bytes."""
        dense = random_sparse_dense(20, 20, seed=24, density=0.3)
        csr = CSRMatrix.from_dense(dense)
        bcsr = BCSRMatrix.from_csr(csr, r=2, c=2)
        assert bcsr.storage().index_bytes < csr.storage().index_bytes
        assert bcsr.storage().value_bytes >= csr.storage().value_bytes

    def test_iter_entries_skips_fill(self):
        dense = np.zeros((4, 4))
        dense[0, 0] = 5.0
        bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), r=2, c=2)
        assert list(bcsr.iter_entries()) == [(0, 0, 5.0)]

    def test_empty_matrix(self):
        csr = CSRMatrix(4, 4, np.array([0, 0, 0, 0, 0]), np.array([], dtype=np.int32), [])
        bcsr = BCSRMatrix.from_csr(csr, r=2, c=2)
        assert bcsr.nnz == 0
        assert bcsr.spmv(np.ones(4)).tolist() == [0.0] * 4
