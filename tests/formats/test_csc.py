"""Tests for CSC (column-major mirror, column-partitioning substrate)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, CSCMatrix, CSRMatrix

from tests.conftest import random_sparse_dense


class TestConstruction:
    def test_from_csr_matches_dense(self, paper_matrix, paper_dense):
        csc = CSCMatrix.from_csr(paper_matrix)
        assert np.allclose(csc.to_dense(), paper_dense)

    def test_col_ptr_validated(self):
        with pytest.raises(FormatError, match="col_ptr"):
            CSCMatrix(2, 2, np.array([0, 1]), np.array([0], dtype=np.int32), [1.0])

    def test_row_out_of_range(self):
        with pytest.raises(FormatError):
            CSCMatrix(
                1, 1, np.array([0, 1]), np.array([1], dtype=np.int32), [1.0]
            )


class TestOperations:
    def test_spmv_matches_dense(self):
        dense = random_sparse_dense(14, 22, seed=17)
        csc = CSCMatrix.from_coo(COOMatrix.from_dense(dense))
        x = np.random.default_rng(3).random(22)
        assert np.allclose(csc.spmv(x), dense @ x)

    def test_col_slice(self, paper_matrix, paper_dense):
        csc = CSCMatrix.from_csr(paper_matrix)
        sub = csc.col_slice(2, 5)
        assert sub.shape == (6, 3)
        assert np.allclose(sub.to_dense(), paper_dense[:, 2:5])

    def test_col_slices_sum_to_whole(self, paper_matrix, paper_dense):
        """Column partitioning: y = sum of per-block partial products."""
        csc = CSCMatrix.from_csr(paper_matrix)
        x = np.arange(6.0)
        partials = [
            csc.col_slice(lo, hi).spmv(x[lo:hi])
            for lo, hi in [(0, 2), (2, 4), (4, 6)]
        ]
        assert np.allclose(sum(partials), paper_dense @ x)

    def test_col_slice_out_of_range(self, paper_matrix):
        csc = CSCMatrix.from_csr(paper_matrix)
        with pytest.raises(FormatError):
            csc.col_slice(3, 8)

    def test_round_trip_through_coo(self):
        dense = random_sparse_dense(10, 13, seed=18, empty_rows=True)
        csc = CSCMatrix.from_coo(COOMatrix.from_dense(dense))
        back = CSRMatrix.from_coo(csc.to_coo())
        assert np.allclose(back.to_dense(), dense)

    def test_iter_entries_row_major(self, paper_matrix):
        csc = CSCMatrix.from_csr(paper_matrix)
        assert list(csc.iter_entries()) == list(paper_matrix.iter_entries())

    def test_storage(self, paper_matrix):
        csc = CSCMatrix.from_csr(paper_matrix)
        st = csc.storage()
        assert st.index_bytes == (6 + 1) * 4 + 16 * 4
        assert st.value_bytes == 16 * 8
