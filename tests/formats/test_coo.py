"""Tests for the COO interchange format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix

from tests.conftest import random_sparse_dense


class TestConstruction:
    def test_canonical_order(self):
        coo = COOMatrix(
            3,
            3,
            np.array([2, 0, 1], dtype=np.int32),
            np.array([1, 2, 0], dtype=np.int32),
            np.array([3.0, 1.0, 2.0]),
        )
        assert coo.rows.tolist() == [0, 1, 2]
        assert coo.cols.tolist() == [2, 0, 1]
        assert coo.values.tolist() == [1.0, 2.0, 3.0]

    def test_duplicates_summed(self):
        coo = COOMatrix(
            2,
            2,
            np.array([0, 0, 1], dtype=np.int32),
            np.array([1, 1, 0], dtype=np.int32),
            np.array([1.0, 2.5, 4.0]),
        )
        assert coo.nnz == 2
        assert coo.to_dense()[0, 1] == pytest.approx(3.5)

    def test_duplicates_rejected_when_asked(self):
        with pytest.raises(FormatError, match="duplicate"):
            COOMatrix(
                2,
                2,
                np.array([0, 0], dtype=np.int32),
                np.array([1, 1], dtype=np.int32),
                np.array([1.0, 2.0]),
                sum_duplicates=False,
            )

    def test_length_mismatch(self):
        with pytest.raises(FormatError, match="length mismatch"):
            COOMatrix(
                2, 2, np.array([0], dtype=np.int32), np.array([0, 1], dtype=np.int32),
                np.array([1.0]),
            )

    def test_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix(
                2, 2, np.array([2], dtype=np.int32), np.array([0], dtype=np.int32),
                np.array([1.0]),
            )

    def test_empty(self):
        coo = COOMatrix(
            3, 4, np.array([], dtype=np.int32), np.array([], dtype=np.int32),
            np.array([]),
        )
        assert coo.nnz == 0
        assert coo.to_dense().shape == (3, 4)


class TestOperations:
    def test_spmv_matches_dense(self):
        dense = random_sparse_dense(20, 17, seed=4)
        coo = COOMatrix.from_dense(dense)
        x = np.random.default_rng(1).random(17)
        assert np.allclose(coo.spmv(x), dense @ x)

    def test_spmv_out_parameter(self):
        dense = random_sparse_dense(10, 10, seed=5)
        coo = COOMatrix.from_dense(dense)
        x = np.ones(10)
        out = np.full(10, 99.0)
        result = coo.spmv(x, out=out)
        assert result is out
        assert np.allclose(out, dense @ x)

    def test_spmv_shape_check(self):
        coo = COOMatrix.from_dense(np.eye(3))
        with pytest.raises(FormatError):
            coo.spmv(np.ones(4))

    def test_storage(self):
        coo = COOMatrix.from_dense(np.eye(5))
        st = coo.storage()
        assert st.index_bytes == 5 * 4 * 2
        assert st.value_bytes == 5 * 8

    def test_iter_entries_row_major(self):
        dense = random_sparse_dense(8, 8, seed=6)
        coo = COOMatrix.from_dense(dense)
        entries = list(coo.iter_entries())
        assert entries == sorted(entries)

    def test_row_ptr(self):
        dense = np.array([[1.0, 0.0], [0.0, 0.0], [2.0, 3.0]])
        coo = COOMatrix.from_dense(dense)
        assert coo.row_ptr().tolist() == [0, 1, 1, 3]

    def test_from_dense_rejects_1d(self):
        with pytest.raises(FormatError):
            COOMatrix.from_dense(np.ones(4))
