"""Tests for CSR-VI -- including the paper's Fig. 4 example."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, CSRVIMatrix

from tests.conftest import random_sparse_dense


class TestPaperExample:
    """Fig. 4: the Fig. 1 matrix's 16 values collapse to 9 uniques."""

    def test_unique_values(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        assert vi.vals_unique.tolist() == [1.1, 2.9, 3.7, 4.5, 5.4, 6.3, 7.7, 8.8, 9.0]
        assert vi.unique_count == 9
        assert vi.val_ind.dtype == np.uint8

    def test_val_ind_reconstructs(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        assert np.array_equal(
            vi.vals_unique[vi.val_ind], paper_matrix.values
        )

    def test_structure_unchanged(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        assert vi.row_ptr.tolist() == paper_matrix.row_ptr.tolist()
        assert vi.col_ind.tolist() == paper_matrix.col_ind.tolist()

    def test_spmv_fig5(self, paper_matrix, paper_dense):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert np.allclose(vi.spmv(x), paper_dense @ x)

    def test_ttu(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        assert vi.ttu == pytest.approx(16 / 9)
        assert not vi.is_profitable()  # 16/9 < 5


class TestCompression:
    def test_value_bytes_shrink_with_redundancy(self):
        dense = random_sparse_dense(40, 40, seed=12, quantize=8)
        csr = CSRMatrix.from_dense(dense)
        vi = CSRVIMatrix.from_csr(csr)
        assert vi.storage().value_bytes < csr.storage().value_bytes
        assert vi.storage().index_bytes == csr.storage().index_bytes

    def test_profitability_threshold(self):
        dense = random_sparse_dense(40, 40, seed=13, quantize=4)
        vi = CSRVIMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert vi.ttu > 5
        assert vi.is_profitable()

    def test_unprofitable_all_unique(self):
        dense = random_sparse_dense(30, 30, seed=14)
        vi = CSRVIMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert vi.ttu == pytest.approx(1.0)
        # All-unique: value storage is *larger* than plain values
        # (vals_unique same size + val_ind on top).
        csr = CSRMatrix.from_dense(dense)
        assert vi.storage().value_bytes > csr.storage().value_bytes

    def test_wider_val_ind(self):
        rng = np.random.default_rng(15)
        values = rng.random(400)  # ~400 unique -> uint16
        csr = CSRMatrix(
            1, 400, np.array([0, 400]), np.arange(400, dtype=np.int32), values
        )
        vi = CSRVIMatrix.from_csr(csr)
        assert vi.val_ind.dtype == np.uint16


class TestRoundTripAndValidation:
    def test_round_trip(self):
        dense = random_sparse_dense(25, 19, seed=16, quantize=16, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        back = CSRVIMatrix.from_csr(csr).to_csr()
        assert np.allclose(back.to_dense(), dense)
        assert np.array_equal(back.values, csr.values)

    def test_empty_matrix(self):
        csr = CSRMatrix(2, 2, np.array([0, 0, 0]), np.array([], dtype=np.int32), [])
        vi = CSRVIMatrix.from_csr(csr)
        assert vi.nnz == 0
        assert vi.ttu == 0.0
        assert vi.spmv(np.ones(2)).tolist() == [0.0, 0.0]

    def test_val_ind_must_be_unsigned(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        with pytest.raises(FormatError, match="unsigned"):
            CSRVIMatrix(
                6, 6, vi.row_ptr, vi.col_ind, vi.vals_unique,
                vi.val_ind.astype(np.int32),
            )

    def test_val_ind_range_checked(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        bad = vi.val_ind.copy()
        bad[0] = 200
        with pytest.raises(FormatError, match="unique"):
            CSRVIMatrix(6, 6, vi.row_ptr, vi.col_ind, vi.vals_unique, bad)

    def test_iter_entries(self, paper_matrix):
        vi = CSRVIMatrix.from_csr(paper_matrix)
        assert list(vi.iter_entries()) == list(paper_matrix.iter_entries())
