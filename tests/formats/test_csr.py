"""Tests for CSR -- including the paper's Fig. 1 example, exactly."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, CSRMatrix

from tests.conftest import random_sparse_dense


class TestPaperExample:
    """Fig. 1 of the paper gives the exact CSR arrays for the 6x6 matrix."""

    def test_row_ptr(self, paper_matrix):
        assert paper_matrix.row_ptr.tolist() == [0, 2, 5, 6, 9, 12, 16]

    def test_col_ind(self, paper_matrix):
        assert paper_matrix.col_ind.tolist() == [
            0, 1, 1, 3, 5, 2, 2, 4, 5, 0, 3, 4, 0, 2, 3, 5,
        ]

    def test_values(self, paper_matrix):
        assert paper_matrix.values.tolist() == [
            5.4, 1.1, 6.3, 7.7, 8.8, 1.1, 2.9, 3.7, 2.9, 9.0, 1.1, 4.5, 1.1, 2.9, 3.7, 1.1,
        ]

    def test_spmv(self, paper_matrix, paper_dense):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert np.allclose(paper_matrix.spmv(x), paper_dense @ x)


class TestInvariants:
    def test_row_ptr_length(self):
        with pytest.raises(FormatError, match="row_ptr"):
            CSRMatrix(3, 3, np.array([0, 1]), np.array([0], dtype=np.int32), [1.0])

    def test_row_ptr_range(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                1, 3, np.array([0, 2]), np.array([0], dtype=np.int32), [1.0]
            )

    def test_row_ptr_monotone(self):
        with pytest.raises(FormatError, match="non-decreasing"):
            CSRMatrix(
                3,
                3,
                np.array([0, 2, 1, 2]),
                np.array([0, 1], dtype=np.int32),
                [1.0, 2.0],
            )

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix(1, 2, np.array([0, 1]), np.array([2], dtype=np.int32), [1.0])

    def test_columns_strictly_increasing_within_row(self):
        with pytest.raises(FormatError, match="strictly increasing"):
            CSRMatrix(
                1,
                5,
                np.array([0, 2]),
                np.array([3, 1], dtype=np.int32),
                [1.0, 2.0],
            )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(FormatError, match="strictly increasing"):
            CSRMatrix(
                1,
                5,
                np.array([0, 2]),
                np.array([3, 3], dtype=np.int32),
                [1.0, 2.0],
            )

    def test_decreasing_between_rows_allowed(self):
        m = CSRMatrix(
            2,
            5,
            np.array([0, 1, 2]),
            np.array([4, 0], dtype=np.int32),
            [1.0, 2.0],
        )
        assert m.nnz == 2

    def test_value_length_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix(1, 2, np.array([0, 1]), np.array([0], dtype=np.int32), [1.0, 2.0])


class TestHelpers:
    def test_row_lengths(self, paper_matrix):
        assert paper_matrix.row_lengths().tolist() == [2, 3, 1, 3, 3, 4]

    def test_row_of_entry(self, paper_matrix):
        rows = paper_matrix.row_of_entry()
        assert rows.tolist() == [0, 0, 1, 1, 1, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5, 5]

    def test_row_slice(self, paper_matrix, paper_dense):
        sub = paper_matrix.row_slice(1, 4)
        assert sub.shape == (3, 6)
        assert np.allclose(sub.to_dense(), paper_dense[1:4])

    def test_row_slice_empty(self, paper_matrix):
        sub = paper_matrix.row_slice(2, 2)
        assert sub.nnz == 0
        assert sub.nrows == 0

    def test_row_slice_out_of_range(self, paper_matrix):
        with pytest.raises(FormatError):
            paper_matrix.row_slice(4, 9)

    def test_row_slices_cover(self, paper_matrix):
        parts = [paper_matrix.row_slice(0, 3), paper_matrix.row_slice(3, 6)]
        stacked = np.vstack([p.to_dense() for p in parts])
        assert np.allclose(stacked, paper_matrix.to_dense())


class TestConversions:
    def test_coo_round_trip(self):
        dense = random_sparse_dense(15, 12, seed=7, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        back = CSRMatrix.from_coo(csr.to_coo())
        assert np.allclose(back.to_dense(), dense)

    def test_from_coo_empty_rows(self):
        coo = COOMatrix(
            4, 4, np.array([0, 3], dtype=np.int32), np.array([1, 2], dtype=np.int32),
            np.array([1.0, 2.0]),
        )
        csr = CSRMatrix.from_coo(coo)
        assert csr.row_ptr.tolist() == [0, 1, 1, 1, 2]

    def test_with_index_dtype(self, paper_matrix):
        narrow = paper_matrix.with_index_dtype(np.int16)
        assert narrow.col_ind.dtype == np.int16
        assert narrow.storage().index_bytes == (6 + 1 + 16) * 2
        assert np.allclose(narrow.to_dense(), paper_matrix.to_dense())

    def test_spmv_out(self, paper_matrix, paper_dense):
        x = np.ones(6)
        out = np.empty(6)
        paper_matrix.spmv(x, out=out)
        assert np.allclose(out, paper_dense @ x)

    def test_empty_matrix(self):
        csr = CSRMatrix(
            0, 0, np.array([0]), np.array([], dtype=np.int32), np.array([])
        )
        assert csr.nnz == 0
        assert csr.spmv(np.array([])).size == 0

    def test_empty_rows_spmv(self):
        dense = random_sparse_dense(16, 9, seed=8, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(2).random(9)
        assert np.allclose(csr.spmv(x), dense @ x)
