"""Property-based whole-format tests: any sparse matrix, any format,
SpMV must equal the dense product and round-trips must be exact."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats import CSRMatrix, convert, to_csr

FORMATS = (
    "coo",
    "csr",
    "csc",
    "csr-du",
    "csr-vi",
    "csr-du-vi",
    "dcsr",
    "bcsr",
    "ell",
    "jds",
)


@st.composite
def sparse_dense(draw):
    """Small random dense matrices with controllable sparsity/values."""
    nrows = draw(st.integers(min_value=1, max_value=12))
    ncols = draw(st.integers(min_value=1, max_value=12))
    # Values from a small pool (exercises CSR-VI) or continuous.
    pool = draw(st.booleans())
    if pool:
        elements = st.sampled_from([0.0, 0.0, 0.0, 1.5, -2.25, 3.0])
    else:
        elements = st.one_of(
            st.just(0.0),
            st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
        )
    return draw(
        arrays(np.float64, (nrows, ncols), elements=elements)
    )


class TestSpMVProperty:
    @settings(max_examples=30, deadline=None)
    @given(sparse_dense(), st.sampled_from(FORMATS), st.integers(0, 1 << 30))
    def test_spmv_equals_dense(self, dense, fmt, seed):
        csr = CSRMatrix.from_dense(dense)
        m = convert(csr, fmt)
        x = np.random.default_rng(seed).random(dense.shape[1]) - 0.5
        assert np.allclose(m.spmv(x), dense @ x, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(sparse_dense(), st.sampled_from(FORMATS))
    def test_round_trip_exact(self, dense, fmt):
        csr = CSRMatrix.from_dense(dense)
        back = to_csr(convert(csr, fmt))
        assert np.array_equal(back.to_dense(), csr.to_dense())

    @settings(max_examples=30, deadline=None)
    @given(sparse_dense(), st.sampled_from(FORMATS))
    def test_nnz_preserved(self, dense, fmt):
        """Every format stores exactly the pattern's nonzeros (except
        BCSR, which may add explicit fill zeros)."""
        csr = CSRMatrix.from_dense(dense)
        m = convert(csr, fmt)
        if fmt == "bcsr":
            assert m.true_nnz == csr.nnz
            assert m.nnz >= csr.nnz
        else:
            assert m.nnz == csr.nnz

    @settings(max_examples=20, deadline=None)
    @given(sparse_dense())
    def test_compressed_index_never_larger_much(self, dense):
        """CSR-DU's ctl is bounded: worst case ~(2 + 8) bytes + varint
        per element, best ~1 byte; never pathologically bigger."""
        csr = CSRMatrix.from_dense(dense)
        du = convert(csr, "csr-du")
        if csr.nnz:
            assert du.storage().index_bytes <= 16 * csr.nnz + 4
