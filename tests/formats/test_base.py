"""Tests for the format base class, Storage accounting and the registry."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    CSRMatrix,
    available_formats,
    get_format,
)
from repro.formats.base import (
    Storage,
    csr_working_set_bytes,
    format_converter,
    register_format,
    working_set_bytes,
)


class TestStorage:
    def test_total(self):
        st = Storage(index_bytes=100, value_bytes=200)
        assert st.total_bytes == 300

    def test_ratio(self):
        a = Storage(50, 50)
        b = Storage(100, 100)
        assert a.ratio_to(b) == 0.5

    def test_ratio_to_empty_rejected(self):
        with pytest.raises(FormatError):
            Storage(1, 1).ratio_to(Storage(0, 0))


class TestWorkingSet:
    def test_matches_paper_formula(self, paper_matrix):
        """ws = nnz*(idx+val) + (nrows+1)*idx + (nrows+ncols)*val."""
        nnz, nrows, ncols = paper_matrix.nnz, *paper_matrix.shape
        expected = nnz * 12 + (nrows + 1) * 4 + (nrows + ncols) * 8
        assert working_set_bytes(paper_matrix) == expected
        assert csr_working_set_bytes(nrows, ncols, nnz) == expected

    def test_closed_form_parameters(self):
        assert csr_working_set_bytes(10, 10, 100, index_size=2) == (
            100 * 10 + 11 * 2 + 20 * 8
        )


class TestRegistry:
    def test_known_formats(self):
        names = available_formats()
        for expected in (
            "coo",
            "csr",
            "csc",
            "csr-du",
            "csr-vi",
            "csr-du-vi",
            "dcsr",
            "bcsr",
        ):
            assert expected in names

    def test_get_format(self):
        assert get_format("csr") is CSRMatrix

    def test_unknown_format(self):
        with pytest.raises(FormatError, match="unknown format"):
            get_format("csr-magic")

    def test_duplicate_registration_rejected(self):
        class Fake:
            name = "csr"

        with pytest.raises(FormatError, match="already registered"):
            register_format(Fake)

    def test_unnamed_registration_rejected(self):
        class Nameless:
            name = ""

        with pytest.raises(FormatError):
            register_format(Nameless)

    def test_format_converter(self):
        conv = format_converter("csr-du")
        assert callable(conv)


class TestSparseMatrixBasics:
    def test_shape_properties(self, paper_matrix):
        assert paper_matrix.shape == (6, 6)
        assert paper_matrix.nrows == 6
        assert paper_matrix.ncols == 6

    def test_matmul_operator(self, paper_matrix, paper_dense):
        x = np.arange(6.0)
        assert np.allclose(paper_matrix @ x, paper_dense @ x)

    def test_to_dense(self, paper_matrix, paper_dense):
        assert np.allclose(paper_matrix.to_dense(), paper_dense)

    def test_negative_shape_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix(-1, 3, np.array([0]), np.array([], dtype=np.int32), np.array([]))
