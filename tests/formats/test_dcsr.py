"""Tests for the DCSR baseline (Willcock & Lumsdaine)."""

import numpy as np
import pytest

from repro.errors import EncodingError, FormatError
from repro.formats import CSRMatrix, DCSRMatrix
from repro.formats.dcsr import (
    CMD_DELTA8,
    CMD_DELTA16,
    CMD_NEWROW,
    CMD_RUN8,
    MIN_RUN,
    decode_dcsr,
    encode_dcsr,
)

from tests.conftest import random_sparse_dense


class TestEncoding:
    def test_single_small_row_uses_run(self):
        stream = encode_dcsr(np.array([0, 4]), np.array([0, 1, 2, 3]))
        assert stream[0] == CMD_NEWROW
        assert stream[1] == CMD_RUN8
        assert stream[2] == 4  # run length

    def test_short_rows_use_individual_deltas(self):
        stream = encode_dcsr(np.array([0, 2]), np.array([0, 1]))
        # 2 < MIN_RUN: two DELTA8 commands.
        assert stream[1] == CMD_DELTA8
        assert MIN_RUN > 2

    def test_wide_delta_commands(self):
        stream = encode_dcsr(np.array([0, 2]), np.array([0, 70000]))
        assert CMD_DELTA16 not in (stream[0],)
        dec = decode_dcsr(stream, 1, 2)
        assert dec.columns.tolist() == [0, 70000]

    def test_huge_delta_rejected(self):
        with pytest.raises(EncodingError):
            encode_dcsr(np.array([0, 2]), np.array([0, 1 << 33]))

    def test_nonincreasing_rejected(self):
        with pytest.raises(EncodingError):
            encode_dcsr(np.array([0, 2]), np.array([5, 5]))

    def test_long_run_split_at_255(self):
        n = 600
        stream = encode_dcsr(np.array([0, n]), np.arange(n))
        dec = decode_dcsr(stream, 1, n)
        assert dec.columns.tolist() == list(range(n))
        assert dec.run_count >= 3


class TestDecoding:
    def test_empty_rows_rowjmp(self):
        row_ptr = np.array([0, 1, 1, 1, 2])
        cols = np.array([3, 4])
        stream = encode_dcsr(row_ptr, cols)
        dec = decode_dcsr(stream, 4, 2)
        assert dec.row_ptr.tolist() == row_ptr.tolist()

    def test_command_count(self):
        stream = encode_dcsr(np.array([0, 4]), np.array([0, 1, 2, 3]))
        dec = decode_dcsr(stream, 1, 4)
        assert dec.command_count == 2  # NEWROW + RUN8

    def test_unknown_command(self):
        with pytest.raises(EncodingError, match="unknown"):
            decode_dcsr(bytes([99]), 1, 0)

    def test_truncated(self):
        stream = encode_dcsr(np.array([0, 2]), np.array([0, 70000]))
        with pytest.raises(EncodingError):
            decode_dcsr(stream[:-1], 1, 2)

    def test_nnz_mismatch(self):
        stream = encode_dcsr(np.array([0, 1]), np.array([5]))
        with pytest.raises(EncodingError, match="expected"):
            decode_dcsr(stream, 1, 3)

    def test_row_overflow(self):
        stream = encode_dcsr(np.array([0, 0, 1]), np.array([5]))
        with pytest.raises(EncodingError, match="row"):
            decode_dcsr(stream, 1, 1)


class TestFormat:
    def test_round_trip(self):
        dense = random_sparse_dense(30, 40, seed=19, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        dcsr = DCSRMatrix.from_csr(csr)
        assert np.allclose(dcsr.to_csr().to_dense(), dense)

    def test_spmv(self, paper_matrix, paper_dense):
        dcsr = DCSRMatrix.from_csr(paper_matrix)
        x = np.arange(6.0) + 1
        assert np.allclose(dcsr.spmv(x), paper_dense @ x)

    def test_compresses_index_data(self):
        n = 3000
        csr = CSRMatrix(
            1, n, np.array([0, n]), np.arange(n, dtype=np.int32), np.ones(n)
        )
        dcsr = DCSRMatrix.from_csr(csr)
        assert dcsr.storage().index_bytes < csr.storage().index_bytes / 3

    def test_command_count_property(self, paper_matrix):
        dcsr = DCSRMatrix.from_csr(paper_matrix)
        assert dcsr.command_count == dcsr.decoded.command_count
        assert dcsr.command_count >= 6  # at least one command per row

    def test_stream_type_checked(self):
        with pytest.raises(FormatError, match="bytes"):
            DCSRMatrix(1, 1, [0], np.array([1.0]))

    def test_column_overflow_detected(self, paper_matrix):
        dcsr = DCSRMatrix.from_csr(paper_matrix)
        bad = DCSRMatrix(6, 3, dcsr.stream, dcsr.values)
        with pytest.raises(FormatError, match="column"):
            bad.decoded

    def test_comparable_to_csr_du(self, paper_matrix):
        """Sanity for the Section III-B comparison: similar byte counts."""
        from repro.formats import CSRDUMatrix

        dcsr = DCSRMatrix.from_csr(paper_matrix)
        du = CSRDUMatrix.from_csr(paper_matrix)
        assert dcsr.storage().index_bytes < paper_matrix.storage().index_bytes
        ratio = dcsr.storage().index_bytes / du.storage().index_bytes
        assert 0.5 < ratio < 2.0


class TestDecoderHardening:
    def test_zero_length_run_rejected(self):
        """Regression: a corrupted RUN8 with length 0 used to crash the
        decoder with an IndexError (found by the corruption fuzzer)."""
        import pytest as _pytest

        from repro.formats.dcsr import CMD_NEWROW, CMD_RUN8, decode_dcsr

        stream = bytes([CMD_NEWROW, CMD_RUN8, 0])
        with _pytest.raises(EncodingError, match="zero length"):
            decode_dcsr(stream, 1, 0)
