"""Tests for CSR-DU -- including the paper's Table I, exactly."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRDUMatrix, CSRMatrix
from repro.compress.ctl import CtlReader

from tests.conftest import random_sparse_dense


class TestPaperExample:
    """Table I: the Fig. 1 matrix encodes into exactly six u8/NR units."""

    def test_unit_table(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        units = list(CtlReader(du.ctl))
        expected = [  # (usize, ujmp, ucis)
            (2, 0, [1]),
            (3, 1, [2, 2]),
            (1, 2, []),
            (3, 2, [2, 1]),
            (3, 0, [3, 1]),
            (4, 0, [2, 1, 2]),
        ]
        assert len(units) == 6
        for u, (usize, ujmp, ucis) in zip(units, expected):
            assert u.usize == usize
            assert u.ujmp == ujmp
            assert u.deltas.tolist() == ucis
            assert u.cls == 0  # u8
            assert u.new_row  # NR

    def test_index_compression_vs_csr(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        assert du.storage().index_bytes < paper_matrix.storage().index_bytes
        assert du.storage().value_bytes == paper_matrix.storage().value_bytes

    def test_spmv(self, paper_matrix, paper_dense):
        du = CSRDUMatrix.from_csr(paper_matrix)
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert np.allclose(du.spmv(x), paper_dense @ x)

    def test_unit_histogram(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        assert du.unit_class_histogram() == {0: 6}
        assert du.mean_unit_size() == pytest.approx(16 / 6)


class TestRoundTrip:
    @pytest.mark.parametrize("policy", ["greedy", "aligned"])
    def test_dense_round_trip(self, policy):
        dense = random_sparse_dense(25, 30, seed=9)
        csr = CSRMatrix.from_dense(dense)
        du = CSRDUMatrix.from_csr(csr, policy=policy)
        back = du.to_csr()
        assert np.allclose(back.to_dense(), dense)
        assert back.row_ptr.tolist() == csr.row_ptr.tolist()
        assert back.col_ind.tolist() == csr.col_ind.tolist()

    def test_empty_rows(self):
        dense = random_sparse_dense(24, 20, seed=10, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        du = CSRDUMatrix.from_csr(csr)
        assert np.allclose(du.to_dense(), dense)
        x = np.random.default_rng(0).random(20)
        assert np.allclose(du.spmv(x), dense @ x)

    def test_trailing_empty_rows(self):
        dense = np.zeros((5, 5))
        dense[0, 1] = 2.0
        du = CSRDUMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert np.allclose(du.to_dense(), dense)

    def test_empty_matrix(self):
        csr = CSRMatrix(3, 3, np.array([0, 0, 0, 0]), np.array([], dtype=np.int32), [])
        du = CSRDUMatrix.from_csr(csr)
        assert du.nnz == 0
        assert du.ctl == b""
        assert du.spmv(np.ones(3)).tolist() == [0.0, 0.0, 0.0]

    def test_wide_deltas(self):
        """A row spanning u8/u16/u32 delta classes survives the trip."""
        cols = np.array([0, 10, 1000, 200_000, 200_001], dtype=np.int32)
        csr = CSRMatrix(
            1, 300_000, np.array([0, 5]), cols, np.ones(5)
        )
        du = CSRDUMatrix.from_csr(csr)
        assert du.to_csr().col_ind.tolist() == cols.tolist()
        hist = du.unit_class_histogram()
        assert sum(hist.values()) == du.units.nunits

    def test_long_row_multiple_units(self):
        n = 700
        csr = CSRMatrix(
            1, n, np.array([0, n]), np.arange(n, dtype=np.int32), np.ones(n)
        )
        du = CSRDUMatrix.from_csr(csr)
        assert du.units.nunits >= 3  # 255-element cap
        assert du.to_csr().col_ind.tolist() == list(range(n))


class TestValidation:
    def test_ctl_type_checked(self):
        with pytest.raises(FormatError, match="bytes"):
            CSRDUMatrix(2, 2, [1, 2], np.array([1.0]))

    def test_row_overflow_detected(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        bad = CSRDUMatrix(3, 6, du.ctl, du.values)  # fewer rows than stream
        with pytest.raises(FormatError, match="row"):
            bad.units

    def test_column_overflow_detected(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        bad = CSRDUMatrix(6, 4, du.ctl, du.values)
        with pytest.raises(FormatError, match="column"):
            bad.units

    def test_storage_is_exact_ctl_length(self, paper_matrix):
        du = CSRDUMatrix.from_csr(paper_matrix)
        assert du.storage().index_bytes == len(du.ctl)


class TestCompressionQuality:
    def test_sequential_columns_compress_about_4x(self):
        """Dense-ish rows with tiny deltas: ~1 byte/nnz vs 4 bytes/nnz."""
        n = 2000
        csr = CSRMatrix(
            1, n, np.array([0, n]), np.arange(n, dtype=np.int32), np.ones(n)
        )
        du = CSRDUMatrix.from_csr(csr)
        csr_index = csr.storage().index_bytes
        assert du.storage().index_bytes < csr_index / 3

    def test_scattered_columns_compress_less(self):
        rng = np.random.default_rng(11)
        cols = np.sort(rng.choice(1 << 22, size=300, replace=False)).astype(np.int32)
        csr = CSRMatrix(1, 1 << 22, np.array([0, 300]), cols, np.ones(300))
        du = CSRDUMatrix.from_csr(csr)
        # Deltas ~ 2^22/300 ~ 14000 -> u16: about 2 bytes per element.
        ratio = du.storage().index_bytes / csr.storage().index_bytes
        assert 0.3 < ratio < 1.0
