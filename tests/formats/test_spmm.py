"""Multi-vector SpMV (``spmm``): plannable overrides and the generic
column-loop default must both match dense ``A @ X``."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, convert
from tests.conftest import random_sparse_dense

PLANNED = ("csr", "csr-vi", "csr-du", "csr-du-vi")
GENERIC = ("coo", "csc", "dcsr", "ell", "jds")


def _case(fmt, *, quantize=None, empty_rows=False, seed=0):
    dense = random_sparse_dense(
        18, 25, 0.2, seed=seed, quantize=quantize, empty_rows=empty_rows
    )
    csr = CSRMatrix.from_dense(dense)
    m = convert(csr, fmt)
    X = np.random.default_rng(seed + 1).random((25, 4)) - 0.5
    return dense, m, X


class TestSpmmPlanned:
    @pytest.mark.parametrize("fmt", PLANNED)
    def test_matches_dense(self, fmt):
        dense, m, X = _case(fmt, quantize=8)
        assert np.allclose(m.spmm(X), dense @ X, atol=1e-9)

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_matches_stacked_spmv(self, fmt):
        """Each right-hand side accumulates in the same order as spmv,
        so the columns agree bit for bit."""
        _, m, X = _case(fmt, empty_rows=True, seed=5)
        Y = m.spmm(X)
        for j in range(X.shape[1]):
            assert np.array_equal(Y[:, j], m.spmv(X[:, j])), f"column {j}"

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_out_buffer(self, fmt):
        _, m, X = _case(fmt, seed=9)
        out = np.full((m.nrows, X.shape[1]), np.nan)
        Y = m.spmm(X, out=out)
        assert Y is out
        assert np.allclose(out, m.spmm(X))

    def test_plan_shared_with_spmv(self):
        from repro.kernels.plan import has_plan

        _, m, X = _case("csr-du")
        m.spmm(X)
        assert has_plan(m)

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_shape_checked(self, fmt):
        _, m, _ = _case(fmt)
        with pytest.raises(FormatError, match="expected"):
            m.spmm(np.zeros((m.ncols + 1, 3)))
        with pytest.raises(FormatError, match="expected"):
            m.spmm(np.zeros(m.ncols))  # 1-D is spmv's job

    def test_single_column(self):
        dense, m, _ = _case("csr-du", seed=2)
        X = np.random.default_rng(0).random((25, 1))
        assert np.allclose(m.spmm(X)[:, 0], dense @ X[:, 0], atol=1e-9)


class TestSpmmGenericDefault:
    @pytest.mark.parametrize("fmt", GENERIC)
    def test_matches_dense(self, fmt):
        dense, m, X = _case(fmt, seed=3)
        assert np.allclose(m.spmm(X), dense @ X, atol=1e-9)

    def test_empty_rows(self):
        dense, m, X = _case("csc", empty_rows=True, seed=4)
        assert np.allclose(m.spmm(X), dense @ X, atol=1e-9)


class TestSpmmAliasing:
    """out= aliasing X: plannable kernels copy, the generic path rejects."""

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_planned_out_overlapping_x_is_safe(self, fmt):
        """The multi-vector kernels materialize every product before
        writing out, so Y = A X is correct even when out shares memory
        with X (copy semantics)."""
        dense, m, _ = _case(fmt, quantize=8, seed=13)
        k = 3
        buf = np.zeros((max(m.nrows, m.ncols), k))
        X = buf[: m.ncols]
        X[:] = np.random.default_rng(14).random((m.ncols, k)) - 0.5
        expected = dense @ X.copy()
        Y = m.spmm(X, out=buf[: m.nrows])
        assert Y.base is buf
        assert np.allclose(Y, expected, atol=1e-9)

    @pytest.mark.parametrize("fmt", GENERIC)
    def test_generic_out_overlapping_x_rejected(self, fmt):
        """The column-loop default writes out while still reading X, so
        an overlap would corrupt later columns; it raises instead."""
        from repro.errors import IntegrityError

        _, m, _ = _case(fmt, seed=13)
        k = 2
        buf = np.zeros((max(m.nrows, m.ncols), k))
        X = buf[: m.ncols]
        with pytest.raises(IntegrityError):
            m.spmm(X, out=buf[: m.nrows])

    @pytest.mark.parametrize("fmt", GENERIC)
    def test_generic_disjoint_out_still_works(self, fmt):
        dense, m, X = _case(fmt, seed=13)
        out = np.empty((m.nrows, X.shape[1]))
        assert np.allclose(m.spmm(X, out=out), dense @ X, atol=1e-9)
