"""Multi-vector SpMV (``spmm``): plannable overrides and the generic
column-loop default must both match dense ``A @ X``."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix, convert
from tests.conftest import random_sparse_dense

PLANNED = ("csr", "csr-vi", "csr-du", "csr-du-vi")
GENERIC = ("coo", "csc", "dcsr", "ell", "jds")


def _case(fmt, *, quantize=None, empty_rows=False, seed=0):
    dense = random_sparse_dense(
        18, 25, 0.2, seed=seed, quantize=quantize, empty_rows=empty_rows
    )
    csr = CSRMatrix.from_dense(dense)
    m = convert(csr, fmt)
    X = np.random.default_rng(seed + 1).random((25, 4)) - 0.5
    return dense, m, X


class TestSpmmPlanned:
    @pytest.mark.parametrize("fmt", PLANNED)
    def test_matches_dense(self, fmt):
        dense, m, X = _case(fmt, quantize=8)
        assert np.allclose(m.spmm(X), dense @ X, atol=1e-9)

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_matches_stacked_spmv(self, fmt):
        """Each right-hand side accumulates in the same order as spmv,
        so the columns agree bit for bit."""
        _, m, X = _case(fmt, empty_rows=True, seed=5)
        Y = m.spmm(X)
        for j in range(X.shape[1]):
            assert np.array_equal(Y[:, j], m.spmv(X[:, j])), f"column {j}"

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_out_buffer(self, fmt):
        _, m, X = _case(fmt, seed=9)
        out = np.full((m.nrows, X.shape[1]), np.nan)
        Y = m.spmm(X, out=out)
        assert Y is out
        assert np.allclose(out, m.spmm(X))

    def test_plan_shared_with_spmv(self):
        from repro.kernels.plan import has_plan

        _, m, X = _case("csr-du")
        m.spmm(X)
        assert has_plan(m)

    @pytest.mark.parametrize("fmt", PLANNED)
    def test_shape_checked(self, fmt):
        _, m, _ = _case(fmt)
        with pytest.raises(FormatError, match="expected"):
            m.spmm(np.zeros((m.ncols + 1, 3)))
        with pytest.raises(FormatError, match="expected"):
            m.spmm(np.zeros(m.ncols))  # 1-D is spmv's job

    def test_single_column(self):
        dense, m, _ = _case("csr-du", seed=2)
        X = np.random.default_rng(0).random((25, 1))
        assert np.allclose(m.spmm(X)[:, 0], dense @ X[:, 0], atol=1e-9)


class TestSpmmGenericDefault:
    @pytest.mark.parametrize("fmt", GENERIC)
    def test_matches_dense(self, fmt):
        dense, m, X = _case(fmt, seed=3)
        assert np.allclose(m.spmm(X), dense @ X, atol=1e-9)

    def test_empty_rows(self):
        dense, m, X = _case("csc", empty_rows=True, seed=4)
        assert np.allclose(m.spmm(X), dense @ X, atol=1e-9)
