"""Tests for Jagged Diagonal Storage."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix
from repro.formats.jagged import JDSMatrix

from tests.conftest import random_sparse_dense


class TestFromCSR:
    def test_round_trip(self):
        dense = random_sparse_dense(20, 17, seed=160, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        jds = JDSMatrix.from_csr(csr)
        assert np.allclose(jds.to_csr().to_dense(), dense)
        assert jds.nnz == csr.nnz

    def test_no_padding_unlike_ell(self):
        """JDS stores exactly nnz entries even with one long row."""
        dense = np.zeros((50, 50))
        dense[0, :] = 1.0
        dense[1:, 0] = 1.0
        jds = JDSMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert jds.nnz == 99
        assert jds.values.size == 99

    def test_diagonal_widths_non_increasing(self, paper_matrix):
        jds = JDSMatrix.from_csr(paper_matrix)
        widths = np.diff(jds.jd_ptr)
        assert np.all(np.diff(widths) <= 0)
        assert jds.ndiagonals == 4  # longest row of Fig. 1 has 4 nonzeros

    def test_perm_sorts_by_length(self, paper_matrix):
        jds = JDSMatrix.from_csr(paper_matrix)
        lens = paper_matrix.row_lengths()
        sorted_lens = lens[jds.perm]
        assert np.all(np.diff(sorted_lens) <= 0)

    def test_empty_matrix(self):
        csr = CSRMatrix(3, 3, np.array([0, 0, 0, 0]), np.array([], dtype=np.int32), [])
        jds = JDSMatrix.from_csr(csr)
        assert jds.nnz == 0
        assert jds.spmv(np.ones(3)).tolist() == [0.0] * 3


class TestOperations:
    def test_spmv(self, paper_matrix, paper_dense):
        jds = JDSMatrix.from_csr(paper_matrix)
        x = np.arange(6.0) + 1
        assert np.allclose(jds.spmv(x), paper_dense @ x)

    def test_spmv_permutation_correct(self):
        """The inverse permutation must land each row's result home."""
        dense = np.diag([1.0, 2.0, 3.0])
        dense[2, 0] = 5.0  # row 2 now longest -> sorted first
        jds = JDSMatrix.from_csr(CSRMatrix.from_dense(dense))
        y = jds.spmv(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(y, dense @ np.ones(3))

    def test_iter_entries(self, paper_matrix):
        jds = JDSMatrix.from_csr(paper_matrix)
        assert list(jds.iter_entries()) == list(paper_matrix.iter_entries())

    def test_storage(self, paper_matrix):
        jds = JDSMatrix.from_csr(paper_matrix)
        st = jds.storage()
        assert st.value_bytes == 16 * 8
        assert st.index_bytes == 6 * 4 + 5 * 8 + 16 * 4  # perm + jd_ptr + col_ind


class TestValidation:
    def test_bad_perm(self, paper_matrix):
        jds = JDSMatrix.from_csr(paper_matrix)
        bad = jds.perm.copy()
        bad[0] = bad[1]
        with pytest.raises(FormatError, match="permutation"):
            JDSMatrix(6, 6, bad, jds.jd_ptr, jds.col_ind, jds.values)

    def test_increasing_widths_rejected(self):
        with pytest.raises(FormatError, match="non-increasing"):
            JDSMatrix(
                2,
                2,
                np.array([0, 1], dtype=np.int32),
                np.array([0, 1, 3]),  # widths 1 then 2
                np.array([0, 0, 1], dtype=np.int32),
                np.array([1.0, 1.0, 1.0]),
            )

    def test_jd_ptr_range(self, paper_matrix):
        jds = JDSMatrix.from_csr(paper_matrix)
        with pytest.raises(FormatError):
            JDSMatrix(6, 6, jds.perm, jds.jd_ptr[:-1], jds.col_ind, jds.values)
