"""Tests for the ELLPACK format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import CSRMatrix
from repro.formats.ellpack import ELLMatrix

from tests.conftest import random_sparse_dense


class TestFromCSR:
    def test_round_trip(self):
        dense = random_sparse_dense(18, 22, seed=150, empty_rows=True)
        csr = CSRMatrix.from_dense(dense)
        ell = ELLMatrix.from_csr(csr)
        assert np.allclose(ell.to_csr().to_dense(), dense)
        assert ell.nnz == csr.nnz

    def test_K_is_max_row_length(self, paper_matrix):
        ell = ELLMatrix.from_csr(paper_matrix)
        assert ell.K == 4  # the Fig. 1 matrix's longest row

    def test_padding_ratio(self, paper_matrix):
        ell = ELLMatrix.from_csr(paper_matrix)
        assert ell.padding_ratio == pytest.approx(6 * 4 / 16)

    def test_uniform_rows_no_padding(self):
        dense = np.tril(np.ones((4, 4)))[:, ::-1]  # 4 rows? lengths vary
        dense = np.ones((4, 3))
        ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert ell.padding_ratio == 1.0

    def test_skewed_rows_explode(self):
        """One long row inflates everything -- ELL's known failure mode."""
        dense = np.zeros((50, 50))
        dense[0, :] = 1.0  # one dense row
        dense[1:, 0] = 1.0
        ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
        assert ell.padding_ratio > 10

    def test_empty_matrix(self):
        csr = CSRMatrix(3, 3, np.array([0, 0, 0, 0]), np.array([], dtype=np.int32), [])
        ell = ELLMatrix.from_csr(csr)
        assert ell.nnz == 0
        assert ell.spmv(np.ones(3)).tolist() == [0.0] * 3


class TestOperations:
    def test_spmv(self, paper_matrix, paper_dense):
        ell = ELLMatrix.from_csr(paper_matrix)
        x = np.arange(6.0) + 1
        assert np.allclose(ell.spmv(x), paper_dense @ x)

    def test_spmv_with_empty_rows(self):
        dense = random_sparse_dense(16, 11, seed=151, empty_rows=True)
        ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
        x = np.random.default_rng(2).random(11)
        assert np.allclose(ell.spmv(x), dense @ x)

    def test_iter_entries(self, paper_matrix):
        ell = ELLMatrix.from_csr(paper_matrix)
        assert list(ell.iter_entries()) == list(paper_matrix.iter_entries())

    def test_storage_counts_padding(self, paper_matrix):
        ell = ELLMatrix.from_csr(paper_matrix)
        assert ell.storage().index_bytes == 6 * 4 * 4
        assert ell.storage().value_bytes == 6 * 4 * 8


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(FormatError, match="differ"):
            ELLMatrix(2, 2, np.zeros((2, 2), dtype=np.int32), np.zeros((2, 3)))

    def test_wrong_rows(self):
        with pytest.raises(FormatError):
            ELLMatrix(3, 2, np.zeros((2, 2), dtype=np.int32), np.zeros((2, 2)))

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            ELLMatrix(1, 2, np.array([[5]], dtype=np.int32), np.array([[1.0]]))

    def test_nonzero_padding_rejected(self):
        with pytest.raises(FormatError, match="padding"):
            ELLMatrix(1, 2, np.array([[-1]], dtype=np.int32), np.array([[1.0]]))
