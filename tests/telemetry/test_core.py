"""Core collector semantics: disabled fast path, nesting, thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.formats.conversions import convert
from repro.formats.csr import CSRMatrix
from repro.parallel.executor import ParallelSpMV
from repro.telemetry import Collector, set_collector
from repro.telemetry.core import NULL_SPAN
from tests.conftest import random_sparse_dense


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert telemetry.get_collector() is None
        assert not telemetry.enabled()

    def test_span_returns_null_singleton(self):
        assert telemetry.span("anything", a=1) is NULL_SPAN
        with telemetry.span("anything") as sp:
            assert sp is NULL_SPAN
            assert sp.add(k="v") is NULL_SPAN

    def test_count_gauge_are_noops(self):
        telemetry.count("x", 3, label="a")
        telemetry.gauge("y", 1.5)
        assert telemetry.get_collector() is None

    def test_no_events_recorded_from_instrumented_code(self):
        dense = random_sparse_dense(40, 40, seed=3)
        csr = CSRMatrix.from_dense(dense)
        convert(csr, "csr-du")
        convert(csr, "csr-vi")
        assert telemetry.get_collector() is None

    def test_spmv_bit_identical_with_and_without(self):
        dense = random_sparse_dense(60, 60, seed=7, quantize=16)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(1).random(60)
        for fmt in ("csr", "csr-du", "csr-vi"):
            m_off = convert(csr, fmt)
            y_off = m_off.spmv(x)
            prev = set_collector(Collector())
            try:
                m_on = convert(csr, fmt)
                y_on = m_on.spmv(x)
            finally:
                set_collector(prev)
            assert np.array_equal(y_off, y_on), fmt


class TestConfigure:
    def test_configure_installs_and_disables(self):
        try:
            c = telemetry.configure()
            assert telemetry.get_collector() is c
            assert telemetry.enabled()
        finally:
            assert telemetry.configure(enabled=False) is None
        assert telemetry.get_collector() is None

    def test_set_collector_returns_previous(self):
        c1 = Collector()
        prev = set_collector(c1)
        try:
            assert telemetry.get_collector() is c1
            c2 = Collector()
            assert set_collector(c2) is c1
        finally:
            set_collector(prev)


class TestSpans:
    def test_records_duration_and_attrs(self, collector):
        with telemetry.span("outer", matrix_id=9) as sp:
            sp.add(result="ok")
        (ev,) = collector.snapshot()
        assert ev.kind == "span"
        assert ev.name == "outer"
        assert ev.dur_us >= 0.0
        assert ev.attrs == {"matrix_id": 9, "result": "ok"}
        assert ev.depth == 0

    def test_nesting_depth(self, collector):
        with telemetry.span("a"):
            with telemetry.span("b"):
                with telemetry.span("c"):
                    pass
        events = {ev.name: ev for ev in collector.snapshot()}
        assert events["a"].depth == 0
        assert events["b"].depth == 1
        assert events["c"].depth == 2
        # Inner spans close first and nest inside the outer interval.
        assert events["c"].dur_us <= events["a"].dur_us
        assert events["a"].ts_us <= events["b"].ts_us <= events["c"].ts_us

    def test_depth_recovers_after_exit(self, collector):
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        events = collector.snapshot()
        assert [ev.depth for ev in events] == [0, 0]

    def test_decorator(self, collector):
        @telemetry.traced("my.func")
        def f(v):
            return v * 2

        assert f(21) == 42
        (ev,) = collector.snapshot()
        assert ev.name == "my.func"

    def test_decorator_noop_when_disabled(self):
        @telemetry.traced()
        def f():
            return 1

        assert f() == 1  # no collector installed, must not blow up


class TestCountersAndGauges:
    def test_counter_accumulates_by_label(self, collector):
        telemetry.count("units", 3, width="u8")
        telemetry.count("units", 2, width="u8")
        telemetry.count("units", 5, width="u16")
        assert collector.counters["units{width=u8}"] == 5
        assert collector.counters["units{width=u16}"] == 5
        assert len(collector.snapshot()) == 3

    def test_counter_extra_attrs_do_not_split_key(self, collector):
        telemetry.count("nnz", 10, extra={"lo": 0, "hi": 5}, thread=0)
        telemetry.count("nnz", 20, extra={"lo": 5, "hi": 9}, thread=0)
        assert collector.counters == {"nnz{thread=0}": 30}
        lows = [ev.attrs["lo"] for ev in collector.snapshot()]
        assert lows == [0, 5]

    def test_gauge_last_wins(self, collector):
        telemetry.gauge("ttu", 3.0)
        telemetry.gauge("ttu", 8.5)
        assert collector.gauges["ttu"] == 8.5

    def test_clear(self, collector):
        telemetry.count("c")
        telemetry.gauge("g", 1)
        collector.clear()
        assert len(collector) == 0
        assert collector.counters == {}
        assert collector.gauges == {}


class TestThreadSafety:
    def test_concurrent_spans_and_counts(self, collector):
        n_threads, per_thread = 8, 200

        def hammer(t):
            for i in range(per_thread):
                with telemetry.span("work", thread=t):
                    telemetry.count("iters", 1, thread=t)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        events = collector.snapshot()
        assert len(events) == n_threads * per_thread * 2
        for t in range(n_threads):
            assert collector.counters[f"iters{{thread={t}}}"] == per_thread
        # Depth is tracked per thread: a counter inside a span sits at 1.
        assert all(
            ev.depth == 1 for ev in events if ev.kind == "counter"
        )

    def test_parallel_spmv_traced_matches_serial(self, collector):
        dense = random_sparse_dense(120, 120, seed=11)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(5).random(120)
        expected = csr.spmv(x)
        with ParallelSpMV(csr, 4, format_name="csr-du") as par:
            for _ in range(3):
                got = par(x)
        assert np.allclose(got, expected, rtol=1e-13, atol=1e-13)
        events = collector.snapshot()
        workers = [ev for ev in events if ev.name == "parallel.chunk"]
        calls = [ev for ev in events if ev.name == "parallel.spmv"]
        assert len(calls) == 3
        assert len(workers) == 12
        assert {ev.attrs["thread"] for ev in workers} == {0, 1, 2, 3}
        # Every chunk span carries the partitioner's census for the
        # imbalance analyzer: row bounds plus assigned nonzeros.
        for ev in workers:
            assert {"lo", "hi", "nnz", "kind"} <= set(ev.attrs)
        assert sum(ev.attrs["nnz"] for ev in workers) == 3 * csr.nnz
        # Chunk spans came from distinct OS threads.
        assert len({ev.tid for ev in workers}) > 1
        # Partition census was recorded at construction.
        assert any(ev.name == "partition.nnz" for ev in events)
