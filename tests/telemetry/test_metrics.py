"""Domain metrics: the instrumented encode/partition/simulate paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.formats.conversions import convert
from repro.formats.csr import CSRMatrix
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import clovertown_8core
from repro.parallel.partition import row_partition
from repro.telemetry.metrics import KNOWN_EVENTS, WIDTH_LABELS
from tests.conftest import random_sparse_dense


@pytest.fixture
def csr() -> CSRMatrix:
    return CSRMatrix.from_dense(random_sparse_dense(80, 80, seed=2, quantize=8))


class TestCsrDuEncodeMetrics:
    def test_unit_width_histogram(self, collector, csr):
        du = convert(csr, "csr-du")
        width_counts = {
            key: v
            for key, v in collector.counters.items()
            if key.startswith("encode.csr_du.units")
        }
        assert width_counts, "no unit-width counters recorded"
        # The telemetry histogram is the format's own census.
        hist = du.unit_class_histogram()
        for cls, n in hist.items():
            key = f"encode.csr_du.units{{width={WIDTH_LABELS[cls]}}}"
            assert width_counts[key] == n
        assert sum(width_counts.values()) == sum(hist.values())

    def test_ctl_bytes_and_new_rows(self, collector, csr):
        du = convert(csr, "csr-du")
        assert collector.counters["encode.csr_du.ctl_bytes"] == len(du.ctl)
        nonempty = int(np.count_nonzero(np.diff(csr.row_ptr)))
        assert collector.counters["encode.csr_du.new_rows"] == nonempty

    def test_encode_span_emitted(self, collector, csr):
        convert(csr, "csr-du")
        spans = [
            ev for ev in collector.snapshot() if ev.name == "encode.batched"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["policy"] == "greedy"
        assert spans[0].attrs["nnz"] == csr.nnz
        assert spans[0].attrs["kind"] == "csr-du"

    def test_unitize_span_emitted_by_reference_encoder(self, collector, csr):
        convert(csr, "csr-du", encoder="reference")
        spans = [
            ev for ev in collector.snapshot() if ev.name == "encode.csr_du.unitize"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["policy"] == "greedy"
        assert spans[0].attrs["nnz"] == csr.nnz

    def test_census_reported_once_per_writer(self, collector, csr):
        du = convert(csr, "csr-du")
        du.storage()  # re-reads nothing; getvalue already consumed
        total = sum(
            v
            for key, v in collector.counters.items()
            if key.startswith("encode.csr_du.units")
        )
        assert total == du.units.nunits


class TestCsrViEncodeMetrics:
    def test_unique_table_gauges(self, collector, csr):
        vi = convert(csr, "csr-vi")
        assert collector.gauges[
            f"encode.csr_vi.unique_vals{{nnz={csr.nnz}}}"
        ] == vi.unique_count
        assert (
            collector.gauges["encode.csr_vi.val_ind_bits"]
            == vi.val_ind.dtype.itemsize * 8
        )
        assert collector.gauges["encode.csr_vi.ttu"] == pytest.approx(vi.ttu)

    def test_unique_span(self, collector, csr):
        convert(csr, "csr-vi")
        assert any(
            ev.name == "encode.csr_vi.unique" for ev in collector.snapshot()
        )


class TestPartitionMetrics:
    def test_per_thread_nnz_counters(self, collector, csr):
        part = row_partition(csr.row_ptr, 4)
        events = [ev for ev in collector.snapshot() if ev.name == "partition.nnz"]
        assert len(events) == 4
        for t, ev in enumerate(events):
            assert ev.attrs["thread"] == t
            assert ev.value == float(part.nnz_per_thread[t])
            lo, hi = part.rows_of(t)
            assert (ev.attrs["lo"], ev.attrs["hi"]) == (lo, hi)
        assert collector.gauges["partition.imbalance{kind=row}"] == pytest.approx(
            part.imbalance()
        )

    def test_nnz_totals_cover_matrix(self, collector, csr):
        row_partition(csr.row_ptr, 8)
        total = sum(
            v
            for key, v in collector.counters.items()
            if key.startswith("partition.nnz")
        )
        assert total == csr.nnz


class TestSimMetrics:
    def test_sim_span_and_bound(self, collector, csr):
        machine = clovertown_8core().scaled(1 / 64)
        res = simulate_spmv(csr, threads=4, machine=machine)
        events = collector.snapshot()
        spans = [ev for ev in events if ev.name == "sim.spmv"]
        assert len(spans) == 1
        assert spans[0].attrs == {
            "format": "csr",
            "threads": 4,
            "placement": "close",
        }
        assert collector.counters[f"sim.bound{{bound={res.bound}}}"] == 1
        key = "sim.dram_bytes{format=csr,placement=close,threads=4}"
        assert collector.counters[key] == pytest.approx(res.total_traffic)
        assert collector.gauges["sim.resident_fraction{format=csr}"] == pytest.approx(
            res.resident_fraction
        )

    def test_all_emitted_names_are_documented(self, collector, csr):
        convert(csr, "csr-du")
        convert(csr, "csr-vi")
        machine = clovertown_8core().scaled(1 / 64)
        simulate_spmv(csr, threads=2, machine=machine)
        names = {ev.name for ev in collector.snapshot()}
        assert names <= KNOWN_EVENTS
