"""Disabled telemetry/obs is free: zero runtime calls, bit-identical math.

The disabled fast path is a module-level ``None`` check (one for the
telemetry collector, one for the obs runtime), so no :class:`Collector`
or :class:`~repro.obs.core.ObsRuntime` method may execute while either
is off -- these tests spy on the classes themselves to prove
instrumented code paths (encode, kernels, the parallel executor, the
bench harness) never reach them, and that enabling either changes no
numeric output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs, telemetry
from repro.bench.harness import ExperimentConfig, run_format_matrix
from repro.formats.conversions import convert
from repro.formats.csr import CSRMatrix
from repro.obs.core import ObsRuntime
from repro.parallel.executor import ParallelSpMV
from repro.telemetry import Collector, set_collector
from repro.telemetry.core import _Span
from tests.conftest import random_sparse_dense


@pytest.fixture
def spy(monkeypatch):
    """Count every Collector/_Span/ObsRuntime method invocation."""
    calls = {"n": 0}

    def wrap(cls, name):
        original = getattr(cls, name)

        def counted(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(cls, name, counted)

    for name in ("span", "count", "gauge"):
        wrap(Collector, name)
    for name in ("__enter__", "__exit__", "add"):
        wrap(_Span, name)
    for name in ("observe", "mark", "set_gauge"):
        wrap(ObsRuntime, name)
    return calls


class TestZeroCollectorCalls:
    def test_encode_and_spmv(self, spy):
        assert telemetry.get_collector() is None
        dense = random_sparse_dense(50, 50, seed=4)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(0).random(50)
        for fmt in ("csr", "csr-du", "csr-vi", "csr-du-vi"):
            convert(csr, fmt).spmv(x)
        assert spy["n"] == 0

    def test_parallel_executor(self, spy):
        dense = random_sparse_dense(60, 60, seed=5)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(1).random(60)
        with ParallelSpMV(csr, 3) as par:
            par(x)
        assert spy["n"] == 0

    def test_bench_cell(self, spy, paper_matrix):
        run_format_matrix(paper_matrix, "csr-du", ExperimentConfig())
        assert spy["n"] == 0

    def test_process_worker_entry(self, spy):
        """With both sinks off, the worker entry point is zero-call.

        ``_submit`` attaches no trace context when telemetry and obs
        are both disabled, so ``_worker_spmv`` must run its chunk
        without touching a Collector or ObsRuntime.  Calling it
        directly (in-process, like a fork worker would inherit this
        interpreter state) puts the spy inside the worker path.
        """
        from repro.obs import xproc
        from repro.parallel import process_executor as pe
        from repro.storage import provider

        assert telemetry.get_collector() is None
        assert obs.get_runtime() is None
        assert xproc.current_context(run_id="r", parent="p", worker=0) is None
        dense = random_sparse_dense(64, 64, seed=7)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(2).random(64)
        try:
            with pe.ProcessParallelSpMV(csr, 2, format_name="csr") as par:
                np.copyto(par._x.array, x)
                for t in range(par.nworkers):
                    lo, hi = par.partition.rows_of(t)
                    spec = dict(par.store.attach_spec(t))
                    assert "ctx" not in spec
                    status = pe._worker_spmv(
                        spec,
                        par._x.name,
                        par.ncols,
                        par._y.name,
                        par.nrows,
                        lo,
                        hi,
                    )
                    assert status["ok"]
                    assert "xproc" not in status
                assert np.allclose(par._y.array, csr.spmv(x))
        finally:
            # Running the worker entry in-process left attachments in
            # the per-worker caches; a real worker holds them for its
            # whole life, but here they would GC noisily at exit.
            pe._VEC_CACHE.clear()
            pe._SHARD_CACHE.clear()
            for seg in provider._SHM_ATTACHED.values():
                provider._disarm_segment(seg)
            provider._SHM_ATTACHED.clear()
        assert spy["n"] == 0

    def test_zero_obs_calls_when_disabled(self, spy):
        assert obs.get_runtime() is None
        obs.observe("probe", 1.0)
        obs.mark("probe")
        obs.set_gauge("probe", 1.0)
        assert spy["n"] == 0

    def test_spy_does_fire_when_enabled(self, spy):
        prev = set_collector(Collector())
        try:
            with telemetry.span("probe"):
                telemetry.count("c")
        finally:
            set_collector(prev)
        assert spy["n"] > 0  # the spy itself works

    def test_obs_spy_does_fire_when_enabled(self, spy):
        rt = ObsRuntime()
        prev = obs.set_runtime(rt)
        try:
            obs.observe("probe", 1.0)
        finally:
            obs.set_runtime(prev)
            rt.close()
        assert spy["n"] > 0


class TestBitIdentical:
    def _trace(self, fn):
        prev = set_collector(Collector())
        try:
            return fn()
        finally:
            set_collector(prev)

    def _with_obs(self, fn):
        rt = ObsRuntime()
        prev = obs.set_runtime(rt)
        try:
            return fn()
        finally:
            obs.set_runtime(prev)
            rt.close()

    def test_parallel_spmv(self):
        dense = random_sparse_dense(80, 80, seed=6, quantize=16)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(3).random(80)

        def run():
            with ParallelSpMV(csr, 4, format_name="csr-du-vi") as par:
                return par(x)

        baseline = run()
        assert np.array_equal(baseline, self._trace(run))
        assert np.array_equal(baseline, self._with_obs(run))

    def test_bench_results(self, paper_matrix):
        def run():
            res = run_format_matrix(
                paper_matrix, "csr-vi", ExperimentConfig(), matrix_id=1
            )
            return res.times, res.mflops, res.attributions

        times_off, mflops_off, att_off = run()
        times_on, mflops_on, att_on = self._trace(run)
        assert times_off == times_on
        assert mflops_off == mflops_on
        # Attributions identical except the plan-counter fields, which
        # by design only populate while tracing.
        for key, off in att_off.items():
            on = att_on[key]
            assert off.bytes_per_iter == on.bytes_per_iter
            assert off.roofline_pct == on.roofline_pct
            assert off.time_s == on.time_s
