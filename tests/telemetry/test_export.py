"""Export round-trips: JSONL, Chrome trace, summaries, validation."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.telemetry.export import (
    collector_metrics_snapshot,
    events_as_dicts,
    export_all,
    read_jsonl,
    reliability_summary,
    span_stats,
    summary,
    validate_event,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
)


@pytest.fixture
def populated(collector):
    with telemetry.span("phase.outer", matrix_id=3):
        with telemetry.span("phase.inner"):
            telemetry.count("widgets", 4, width="u8")
        telemetry.gauge("ratio", 2.5)
    return collector


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        n = write_jsonl(populated, path)
        assert n == 4
        back = read_jsonl(path)
        assert back == json.loads(json.dumps(events_as_dicts(populated)))

    def test_every_line_validates(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(populated, path)
        for event in read_jsonl(path):
            validate_event(event)

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(TelemetryError, match="not JSON"):
            read_jsonl(str(path))

    def test_read_skips_blank_lines(self, populated, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(populated, str(path))
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(str(path))) == 4


class TestValidateEvent:
    def _good(self):
        return {
            "kind": "counter",
            "name": "x",
            "ts_us": 1.0,
            "dur_us": 0.0,
            "value": 2.0,
            "thread": "MainThread",
            "tid": 1,
            "depth": 0,
            "attrs": {},
        }

    def test_accepts_good(self):
        validate_event(self._good())

    @pytest.mark.parametrize("drop", ["kind", "name", "ts_us", "attrs", "tid"])
    def test_missing_field(self, drop):
        ev = self._good()
        del ev[drop]
        with pytest.raises(TelemetryError, match="missing field"):
            validate_event(ev)

    def test_wrong_type(self):
        ev = self._good()
        ev["value"] = "lots"
        with pytest.raises(TelemetryError, match="value"):
            validate_event(ev)

    def test_unknown_kind(self):
        ev = self._good()
        ev["kind"] = "meter"
        with pytest.raises(TelemetryError, match="unknown event kind"):
            validate_event(ev)

    def test_unknown_extra_field(self):
        ev = self._good()
        ev["surprise"] = 1
        with pytest.raises(TelemetryError, match="unknown fields"):
            validate_event(ev)

    def test_negative_duration(self):
        ev = self._good()
        ev["dur_us"] = -1.0
        with pytest.raises(TelemetryError, match="negative span duration"):
            validate_event(ev)

    def test_not_an_object(self):
        with pytest.raises(TelemetryError, match="must be an object"):
            validate_event(["not", "a", "dict"])


class TestChromeTrace:
    def test_structure(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(populated, str(path))
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == n == 4
        phases = [ev["ph"] for ev in doc["traceEvents"]]
        assert phases.count("X") == 2  # two spans
        assert phases.count("C") == 2  # counter + gauge
        for ev in doc["traceEvents"]:
            assert {"ph", "name", "ts", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_span_nesting_preserved_in_time(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(populated, str(path))
        doc = json.loads(path.read_text())
        spans = {ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"}
        outer, inner = spans["phase.outer"], spans["phase.inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6


class TestSummary:
    def test_contains_spans_counters_gauges(self, populated):
        text = summary(populated)
        assert "phase.outer" in text
        assert "phase.inner" in text
        assert "widgets{width=u8}" in text
        assert "ratio" in text

    def test_span_stats(self, populated):
        stats = span_stats(populated)
        assert stats["phase.outer"]["calls"] == 1
        assert stats["phase.inner"]["total_us"] <= stats["phase.outer"]["total_us"]
        assert stats["phase.outer"]["mean_us"] == pytest.approx(
            stats["phase.outer"]["total_us"]
        )

    def test_top_limits_rows(self, collector):
        for i in range(30):
            with telemetry.span(f"s{i:02d}"):
                pass
        text = summary(collector, top=5)
        import re

        assert len([l for l in text.splitlines() if re.match(r"^  s\d", l)]) == 5


class TestReliability:
    def test_summary_totals_across_labels(self, collector):
        telemetry.count("convert.cache.hit", 3, format="csr-du")
        telemetry.count("convert.cache.hit", 1, format="csr-vi")
        telemetry.count("convert.cache.miss", 4, format="csr-du")
        telemetry.count("kernel.fallback", 1, format="csr-du")
        telemetry.count("executor.retry", 2, format="csr-du")
        telemetry.count("obs.alert", 1, rule="kernel-fallback")
        rel = reliability_summary(collector)
        assert rel["cache_hits"] == 4
        assert rel["cache_misses"] == 4
        assert rel["cache_hit_ratio"] == pytest.approx(0.5)
        assert rel["kernel_fallbacks"] == 1
        assert rel["executor_retries"] == 2
        assert rel["alerts"] == 1

    def test_empty_run_all_zero(self, collector):
        rel = reliability_summary(collector)
        assert all(v == 0 for v in rel.values())

    def test_summary_text_has_reliability_section(self, collector):
        telemetry.count("convert.cache.hit", 1, format="csr-du")
        telemetry.count(
            "obs.alert",
            1,
            extra={"expr": "m > 0", "value": 1.0, "threshold": 0.0},
            rule="r1",
        )
        text = summary(collector)
        assert "reliability" in text
        assert "convert.cache hit ratio: 100.0%" in text
        assert "SLO alerts fired: 1" in text
        assert "[r1] m > 0" in text

    def test_summary_text_omits_section_when_clean(self, collector):
        telemetry.count("plan.hit", 5, format="csr")
        assert "reliability" not in summary(collector)


class TestOpenMetricsExport:
    def test_collector_fallback_renders_counters(self, collector, tmp_path):
        telemetry.count("convert.cache.miss", 2, format="csr-du")
        telemetry.gauge("partition.imbalance", 1.25, kind="row")
        path = tmp_path / "m.prom"
        n = write_openmetrics(collector, str(path))
        text = path.read_text()
        assert n == 2
        assert 'convert_cache_miss_total{format="csr-du"} 2' in text
        assert 'partition_imbalance{kind="row"} 1.25' in text
        assert text.endswith("# EOF\n")

    def test_live_runtime_takes_precedence(self, collector, tmp_path):
        from repro.obs.core import ObsRuntime

        rt = ObsRuntime()
        rt.observe("spmv.chunk.seconds", 0.01, format="csr-du")
        path = tmp_path / "m.prom"
        write_openmetrics(collector, str(path), obs_runtime=rt)
        text = path.read_text()
        assert "spmv_chunk_seconds_p99" in text
        rt.close()

    def test_collector_metrics_snapshot_parses_labels(self, collector):
        telemetry.count("c", 1, format="csr-du", thread=3)
        snap = collector_metrics_snapshot(collector)
        (entry,) = snap["counters"]
        assert entry["name"] == "c"
        assert entry["labels"] == {"format": "csr-du", "thread": "3"}
        assert snap["histograms"] == []

    def test_export_all_includes_openmetrics(self, collector, tmp_path):
        telemetry.count("c", 1)
        written = export_all(
            collector,
            jsonl_path=str(tmp_path / "t.jsonl"),
            openmetrics_path=str(tmp_path / "m.prom"),
        )
        assert set(written) == {"jsonl", "openmetrics"}
        assert written["openmetrics"] >= 1
