"""Compare two recorded experiment runs (JSON diff with tolerances).

Model changes (recalibration, new traffic terms) shift every predicted
number; this tool answers "by how much, and where" mechanically:

    python -m repro.bench.compare old.json new.json --tolerance 0.02

walks both bundles, pairs numeric leaves by path, and reports relative
deviations -- exit status 1 when any leaf moved more than the
tolerance, so it slots into CI as a golden-results check.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.bench.record import load_run


@dataclass(frozen=True)
class Deviation:
    """One numeric leaf that differs between the runs."""

    path: str
    old: float
    new: float

    @property
    def relative(self) -> float:
        denom = max(abs(self.old), abs(self.new), 1e-300)
        return abs(self.new - self.old) / denom


def _walk(value, path, out):
    if isinstance(value, dict):
        for k, v in value.items():
            _walk(v, f"{path}.{k}" if path else str(k), out)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            _walk(v, f"{path}[{i}]", out)
    elif isinstance(value, bool):
        out[path] = float(value)
    elif isinstance(value, (int, float)):
        out[path] = float(value)


def compare_runs(old: dict, new: dict) -> tuple[list[Deviation], list[str]]:
    """Pair numeric leaves of two bundles.

    Returns ``(deviations, structure_mismatches)`` -- paths present in
    only one run go into the second list (either direction; use
    :func:`structure_diff` to tell which side).
    """
    old_leaves: dict[str, float] = {}
    new_leaves: dict[str, float] = {}
    _walk(old.get("experiments", {}), "", old_leaves)
    _walk(new.get("experiments", {}), "", new_leaves)
    mismatches = sorted(
        set(old_leaves) ^ set(new_leaves)
    )
    deviations = [
        Deviation(path=p, old=old_leaves[p], new=new_leaves[p])
        for p in sorted(set(old_leaves) & set(new_leaves))
    ]
    return deviations, mismatches


def structure_diff(old: dict, new: dict) -> tuple[list[str], list[str]]:
    """``(added, removed)`` leaf paths between two bundles.

    *added* leaves exist only in *new* (a result grew), *removed* only
    in *old* (a result vanished) -- the direction matters: a renamed
    experiment shows up on both lists at once.
    """
    old_leaves: dict[str, float] = {}
    new_leaves: dict[str, float] = {}
    _walk(old.get("experiments", {}), "", old_leaves)
    _walk(new.get("experiments", {}), "", new_leaves)
    added = sorted(set(new_leaves) - set(old_leaves))
    removed = sorted(set(old_leaves) - set(new_leaves))
    return added, removed


def format_comparison(
    deviations: list[Deviation],
    mismatches: list[str],
    *,
    tolerance: float = 0.0,
    top: int = 15,
    added: list[str] | None = None,
    removed: list[str] | None = None,
) -> str:
    """Human-readable summary, worst deviations first.

    With *added*/*removed* (from :func:`structure_diff`), structural
    drift is reported per direction instead of as a bare mismatch.
    """
    lines = []
    moved = [d for d in deviations if d.relative > tolerance]
    lines.append(
        f"{len(deviations)} shared numeric results; "
        f"{len(moved)} moved beyond {tolerance:.1%}; "
        f"{len(mismatches)} structural mismatches"
    )
    for d in sorted(moved, key=lambda d: -d.relative)[:top]:
        lines.append(
            f"  {d.relative:8.2%}  {d.path}: {d.old:.6g} -> {d.new:.6g}"
        )
    if added is None and removed is None:
        for p in mismatches[:top]:
            lines.append(f"  only in one run: {p}")
    else:
        for p in (added or [])[:top]:
            lines.append(f"  added (only in new run): {p}")
        for p in (removed or [])[:top]:
            lines.append(f"  removed (only in old run): {p}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two recorded experiment runs.",
    )
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="maximum accepted relative deviation per result (default 1%%)",
    )
    args = parser.parse_args(argv)
    old_run, new_run = load_run(args.old), load_run(args.new)
    deviations, mismatches = compare_runs(old_run, new_run)
    added, removed = structure_diff(old_run, new_run)
    print(
        format_comparison(
            deviations,
            mismatches,
            tolerance=args.tolerance,
            added=added,
            removed=removed,
        )
    )
    worst = max((d.relative for d in deviations), default=0.0)
    return 1 if (worst > args.tolerance or mismatches) else 0


if __name__ == "__main__":
    sys.exit(main())
