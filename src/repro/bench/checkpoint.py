"""Checkpoint/resume for long benchmark sweeps.

A full-scale ``run_set`` walks 77 matrices; a crash at matrix 60 used
to lose everything.  :class:`CheckpointLog` is an append-only JSONL
file with one line per finished ``(matrix_id, format)`` cell — each
line a fully serialized :class:`~repro.bench.harness.MatrixResult` —
written the moment the cell completes.  On resume, completed cells are
restored and skipped; a matrix whose every requested format is
checkpointed is not even realized.

Byte-equivalence contract: a resumed run's recorded bundle
(:func:`repro.bench.record.record_run`) is byte-identical to an
uninterrupted run's.  Two properties make that hold:

* :class:`MatrixResult` and :class:`~repro.perf.attribution.
  Attribution` are flat dataclasses of Python scalars, and Python
  floats round-trip exactly through JSON (``repr``-based), so
  serialize → restore is lossless;
* cells are appended *before* ``run_set`` fills the speedup-vs-CSR
  column (which needs the whole matrix done), and the fill is
  re-applied identically on restore.

Each line carries a configuration fingerprint (scale, clock, kernel,
encoder, machine, thread configs).  Lines whose fingerprint does not
match the resuming run — or that fail to parse, e.g. a torn final
write from the crash itself — are skipped, not fatal: a checkpoint is
a cache, never an authority.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.bench.harness import ExperimentConfig, MatrixResult
from repro.formats.base import Storage
from repro.perf.attribution import Attribution

#: Bumped if the line layout ever changes; mismatched lines are skipped.
FORMAT_VERSION = 1


def fingerprint(
    config: ExperimentConfig, configs: tuple[tuple[int, str], ...]
) -> str:
    """Stable identity of a run's knobs; resume only within a match."""
    return json.dumps(
        {
            "scale": config.scale,
            "clock": config.clock,
            "kernel": config.kernel,
            "encoder": config.encoder,
            "machine": config.scaled_machine().name,
            "configs": ["{0}|{1}".format(*key) for key in configs],
        },
        sort_keys=True,
    )


def _key_str(key: tuple[int, str]) -> str:
    return f"{key[0]}|{key[1]}"


def _key_tuple(s: str) -> tuple[int, str]:
    threads, placement = s.split("|", 1)
    return (int(threads), placement)


def result_to_json(res: MatrixResult) -> dict:
    """A :class:`MatrixResult` as plain JSON types (lossless)."""
    return {
        "matrix_id": res.matrix_id,
        "format_name": res.format_name,
        "storage": dataclasses.asdict(res.storage),
        "csr_storage": dataclasses.asdict(res.csr_storage),
        "times": {_key_str(k): v for k, v in res.times.items()},
        "mflops": {_key_str(k): v for k, v in res.mflops.items()},
        "bounds": {_key_str(k): v for k, v in res.bounds.items()},
        "attributions": {
            _key_str(k): dataclasses.asdict(a)
            for k, a in res.attributions.items()
        },
    }


def result_from_json(data: dict) -> MatrixResult:
    """Inverse of :func:`result_to_json`."""
    return MatrixResult(
        matrix_id=data["matrix_id"],
        format_name=data["format_name"],
        storage=Storage(**data["storage"]),
        csr_storage=Storage(**data["csr_storage"]),
        times={_key_tuple(k): v for k, v in data["times"].items()},
        mflops={_key_tuple(k): v for k, v in data["mflops"].items()},
        bounds={_key_tuple(k): v for k, v in data["bounds"].items()},
        attributions={
            _key_tuple(k): Attribution(**a)
            for k, a in data["attributions"].items()
        },
    )


class CheckpointLog:
    """Append-only JSONL checkpoint of finished bench cells."""

    def __init__(self, path, fingerprint_str: str):
        self.path = os.fspath(path)
        self.fingerprint = fingerprint_str
        #: Lines present but not usable by this run (diagnostics).
        self.skipped = 0
        self._checked_tail = False

    def load(self) -> dict[tuple[int, str], MatrixResult]:
        """Restore every usable cell: ``{(matrix_id, format): result}``.

        Unreadable or foreign lines (torn final write, different
        fingerprint/version) are counted in :attr:`skipped` and
        ignored.  A later line for the same cell wins, so a cell
        re-run after a partial resume supersedes its older record.
        """
        done: dict[tuple[int, str], MatrixResult] = {}
        if not os.path.exists(self.path):
            return done
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if (
                        record.get("v") != FORMAT_VERSION
                        or record.get("fp") != self.fingerprint
                    ):
                        self.skipped += 1
                        continue
                    result = result_from_json(record["result"])
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self.skipped += 1
                    continue
                done[(result.matrix_id, result.format_name)] = result
        return done

    def append(self, result: MatrixResult) -> None:
        """Persist one finished cell (flushed before returning).

        Called *before* the speedup-vs-CSR fill, so the stored record
        is deterministic regardless of where in the matrix loop the
        run later dies.
        """
        record = {
            "v": FORMAT_VERSION,
            "fp": self.fingerprint,
            "result": result_to_json(result),
        }
        if not self._checked_tail:
            # A torn final write from the crashed run may lack its
            # newline; appending straight after it would weld this
            # record onto the garbage and lose it.  Terminate the torn
            # line once before the first append of this run.
            self._checked_tail = True
            try:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    torn = fh.read(1) != b"\n"
            except (OSError, ValueError):
                torn = False
            if torn:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write("\n")
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
