"""Plain-text rendering of experiment results, in the paper's layout.

The formatters take the result dataclasses of
:mod:`repro.bench.experiments` and emit aligned ASCII tables whose rows
and columns match the paper's Tables II-IV and the per-matrix series of
Figs. 7-8, optionally with the paper's published values interleaved for
comparison (EXPERIMENTS.md is generated this way).
"""

from __future__ import annotations

from repro.bench.experiments import FigResult, SpeedupTableResult, Table2Result

#: The paper's Table II, for side-by-side reporting:
#: {config: {set: (avg, max, min)}}; serial row in MFLOPS, others x.
PAPER_TABLE2 = {
    "serial": {
        "MS": (619.4, 886.6, 465.2),
        "ML": (477.8, 594.4, 202.4),
        "M0": (523.6, None, None),
    },
    (2, "close"): {"MS": (1.17, 1.62, 0.90), "ML": (1.15, 1.40, 1.07), "M0": (1.16, None, None)},
    (2, "spread"): {"MS": (1.93, 2.59, 1.24), "ML": (1.24, 1.47, 1.09), "M0": (1.46, None, None)},
    (4, "close"): {"MS": (2.63, 4.32, 1.54), "ML": (1.28, 1.73, 1.12), "M0": (1.72, None, None)},
    (8, "close"): {"MS": (6.19, 8.71, 2.12), "ML": (2.12, 6.30, 1.58), "M0": (3.44, None, None)},
}

#: Paper Table III (CSR-DU vs CSR): {threads: {set: (avg, max, min, n<0.98)}}.
PAPER_TABLE3 = {
    1: {"MS": (1.02, 1.12, 0.80, 5), "ML": (1.01, 1.14, 0.69, 17), "M0": (1.01,)},
    2: {"MS": (1.24, 1.49, 1.06, 0), "ML": (1.10, 1.19, 0.90, 2), "M0": (1.15,)},
    4: {"MS": (1.24, 1.89, 0.81, 4), "ML": (1.15, 1.36, 0.99, 0), "M0": (1.18,)},
    8: {"MS": (1.05, 1.40, 0.86, 8), "ML": (1.20, 1.82, 0.99, 0), "M0": (1.15,)},
}

#: Paper Table IV (CSR-VI vs CSR) over the vi sets.
PAPER_TABLE4 = {
    1: {"MS_vi": (1.03, 1.17, 0.94, 2), "ML_vi": (1.12, 1.54, 0.65, 7), "M0_vi": (1.10,)},
    2: {"MS_vi": (1.30, 1.56, 0.99, 0), "ML_vi": (1.36, 2.07, 0.80, 3), "M0_vi": (1.35,)},
    4: {"MS_vi": (1.25, 2.04, 0.96, 1), "ML_vi": (1.55, 2.16, 1.00, 0), "M0_vi": (1.47,)},
    8: {"MS_vi": (1.02, 1.15, 0.92, 3), "ML_vi": (1.59, 2.50, 0.99, 0), "M0_vi": (1.44,)},
}

_CONFIG_LABELS = {
    (1, "close"): "1",
    (2, "close"): "2 (1xL2)",
    (2, "spread"): "2 (2xL2)",
    (4, "close"): "4",
    (8, "close"): "8",
}


def _fmt3(triple, mflops: bool = False) -> str:
    fmt = "{:7.1f}" if mflops else "{:5.2f}"
    return " ".join(fmt.format(v) for v in triple)


def format_table2(result: Table2Result, *, with_paper: bool = True) -> str:
    """Render Table II: serial MFLOPS, then speedups per configuration."""
    lines = []
    lines.append("Table II: CSR SpMxV performance (model clock)")
    lines.append(f"{'core(s)':<10} | {'MS avg/max/min':>23} | {'ML avg/max/min':>23} | {'M0 avg':>7}")
    lines.append("-" * 74)
    row = (
        f"{'1':<10} | {_fmt3(result.serial_mflops['MS'], True):>23} | "
        f"{_fmt3(result.serial_mflops['ML'], True):>23} | "
        f"{result.serial_mflops['M0'][0]:7.1f}"
    )
    lines.append(row + "   [MFLOPS]")
    if with_paper:
        p = PAPER_TABLE2["serial"]
        lines.append(
            f"{'  paper':<10} | {_fmt3(p['MS'], True):>23} | {_fmt3(p['ML'], True):>23} | {p['M0'][0]:7.1f}"
        )
    for key, per_set in result.speedups.items():
        lines.append(
            f"{_CONFIG_LABELS[key]:<10} | {_fmt3(per_set['MS']):>23} | "
            f"{_fmt3(per_set['ML']):>23} | {per_set['M0'][0]:7.2f}"
        )
        if with_paper and key in PAPER_TABLE2:
            p = PAPER_TABLE2[key]
            lines.append(
                f"{'  paper':<10} | {_fmt3(p['MS']):>23} | {_fmt3(p['ML']):>23} | {p['M0'][0]:7.2f}"
            )
    return "\n".join(lines)


def format_speedup_table(
    result: SpeedupTableResult, *, with_paper: bool = True
) -> str:
    """Render Table III / IV: per-thread-count speedups vs CSR."""
    paper = PAPER_TABLE3 if result.format_name == "csr-du" else PAPER_TABLE4
    set_names = list(next(iter(result.rows.values())).keys())
    title = "Table III" if result.format_name == "csr-du" else "Table IV"
    lines = [
        f"{title}: {result.format_name} vs CSR at equal thread count (model clock)"
    ]
    header = f"{'core(s)':<10}"
    for name in set_names:
        header += f" | {name + ' avg/max/min/<0.98':>28}"
    lines.append(header)
    lines.append("-" * len(header))
    for threads, per_set in result.rows.items():
        row = f"{threads:<10}"
        for name in set_names:
            avg, mx, mn, slow = per_set[name]
            row += f" | {avg:5.2f} {mx:5.2f} {mn:5.2f}  {slow:4d}"
        lines.append(row)
        if with_paper and threads in paper:
            prow = f"{'  paper':<10}"
            for name in set_names:
                vals = paper[threads].get(name)
                if vals is None or len(vals) < 4:
                    prow += f" | {'(avg ' + format(vals[0], '.2f') + ')':>28}" if vals else " " * 31
                else:
                    prow += f" | {vals[0]:5.2f} {vals[1]:5.2f} {vals[2]:5.2f}  {vals[3]:4d}"
            lines.append(prow)
    return "\n".join(lines)


def format_fig_series(result: FigResult, *, max_rows: int | None = None) -> str:
    """Render Fig. 7/8 as a table: one row per matrix, sorted by speedup."""
    fig = "Figure 7" if result.format_name == "csr-du" else "Figure 8"
    lines = [
        f"{fig}: per-matrix {result.format_name} speedup vs serial CSR "
        f"(bars) and CSR multithreaded speedup (squares)"
    ]
    # A --threads override trims the sweep; render the counts that ran.
    threads_ran = (
        tuple(sorted(result.series[0].compressed_speedups))
        if result.series
        else (1, 2, 4, 8)
    )
    multi = tuple(t for t in threads_ran if t != 1)
    lines.append(
        f"{'matrix':<24} {'redu%':>6} | "
        + " ".join(f"{'t=' + str(t):>7}" for t in threads_ran)
        + " | "
        + " ".join(f"{'csr' + str(t):>7}" for t in multi)
    )
    lines.append("-" * 92)
    series = result.series[:max_rows] if max_rows else result.series
    for s in series:
        lines.append(
            f"{s.name:<24} {100 * s.size_reduction:6.1f} | "
            + " ".join(f"{s.compressed_speedups[t]:7.2f}" for t in threads_ran)
            + " | "
            + " ".join(f"{s.csr_speedups[t]:7.2f}" for t in multi)
        )
    return "\n".join(lines)
