"""Noise-aware performance regression tracking (the ``perf-gate``).

A *history file* accumulates snapshots of recorded runs (the JSON
bundles :func:`repro.bench.record.record_run` writes): every numeric
leaf under ``experiments`` becomes a *cell* keyed by its path, holding
the last ``max_runs`` observed values.  Checking a new run against the
history flags any cell whose value moved beyond

    max(tolerance * |mean|, k * stdev)

from the historical mean -- the fixed tolerance absorbs deterministic
model drift people opted into, the ``k * stdev`` term widens the band
for cells that are naturally noisy (real-clock timings), and the check
is two-sided because an unexplained improvement is as suspicious as a
slowdown in a deterministic model.

CLI (also reachable as ``python -m repro.bench perf-gate ...`` and via
the ``tools/perf_gate.py`` wrapper)::

    perf-gate run.json --history perf_history.json            # check
    perf-gate run.json --history perf_history.json --snapshot # record
    perf-gate --check-schema [--history perf_history.json]    # self-test

Exit status 1 when any cell regresses (or the schema/self-test fails),
0 otherwise -- the CI contract.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from dataclasses import dataclass

from repro.bench.compare import _walk
from repro.bench.record import load_run

#: Bump when the history layout changes incompatibly.
SCHEMA_VERSION = 1

#: Snapshots kept per cell (oldest dropped first).
DEFAULT_MAX_RUNS = 20


def flatten_run(run: dict) -> dict[str, float]:
    """Numeric leaves of a recorded run, keyed by dotted path."""
    leaves: dict[str, float] = {}
    _walk(run.get("experiments", {}), "", leaves)
    return leaves


def new_history() -> dict:
    return {"schema": SCHEMA_VERSION, "runs": 0, "cells": {}}


def validate_history(history: dict) -> list[str]:
    """Schema problems in *history* (empty list means valid)."""
    errors: list[str] = []
    if not isinstance(history, dict):
        return [f"history root must be an object, got {type(history).__name__}"]
    if history.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema must be {SCHEMA_VERSION}, got {history.get('schema')!r}"
        )
    cells = history.get("cells")
    if not isinstance(cells, dict):
        errors.append("'cells' must be an object of path -> list of numbers")
        return errors
    for path, values in cells.items():
        if not isinstance(values, list) or not values:
            errors.append(f"cell {path!r} must hold a non-empty list")
            continue
        bad = [v for v in values if not isinstance(v, (int, float))]
        if bad:
            errors.append(f"cell {path!r} holds non-numeric values {bad[:3]}")
    return errors


def load_history(path) -> dict:
    """Read a history file; a missing file is an empty history."""
    if not os.path.exists(path):
        return new_history()
    with open(path, "r", encoding="utf-8") as fh:
        history = json.load(fh)
    errors = validate_history(history)
    if errors:
        raise ValueError(f"invalid history {path}: " + "; ".join(errors))
    return history


def save_history(history: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)


def snapshot(history: dict, run: dict, *, max_runs: int = DEFAULT_MAX_RUNS) -> dict:
    """Append *run*'s cells to *history* (in place); returns *history*."""
    cells = history["cells"]
    for path, value in flatten_run(run).items():
        values = cells.setdefault(path, [])
        values.append(value)
        del values[:-max_runs]
    history["runs"] = int(history.get("runs", 0)) + 1
    return history


@dataclass(frozen=True)
class Regression:
    """One cell that moved outside its noise band."""

    path: str
    value: float
    mean: float
    stdev: float
    threshold: float
    samples: int

    @property
    def delta(self) -> float:
        return self.value - self.mean

    def describe(self) -> str:
        rel = abs(self.delta) / abs(self.mean) if self.mean else float("inf")
        return (
            f"{self.path}: {self.value:.6g} vs mean {self.mean:.6g} "
            f"over {self.samples} runs (moved {rel:.2%}, "
            f"band +-{self.threshold:.3g})"
        )


def check_run(
    history: dict,
    run: dict,
    *,
    tolerance: float = 0.02,
    k: float = 3.0,
) -> list[Regression]:
    """Cells of *run* outside ``max(tolerance*|mean|, k*stdev)``.

    Cells with no history yet are skipped (they become tracked once
    snapshotted); cells that vanished from the run are ignored here --
    structural drift is :mod:`repro.bench.compare`'s job.
    """
    regressions: list[Regression] = []
    cells = history["cells"]
    for path, value in sorted(flatten_run(run).items()):
        values = cells.get(path)
        if not values:
            continue
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        stdev = math.sqrt(var)
        threshold = max(tolerance * abs(mean), k * stdev)
        if abs(value - mean) > threshold:
            regressions.append(
                Regression(
                    path=path,
                    value=value,
                    mean=mean,
                    stdev=stdev,
                    threshold=threshold,
                    samples=n,
                )
            )
    return regressions


def _self_test() -> list[str]:
    """End-to-end check of the gate's own logic on synthetic data.

    Builds a three-run history of one noisy and one exact cell (plus an
    encode-throughput cell in the ``BENCH_encode.json`` shape), then
    asserts (a) a clean fourth run passes, (b) a run with an injected
    regression on the exact cell fails, (c) a collapsed encode speedup
    is flagged, (d) a regressed advisor regret cell is flagged, (e)
    snapshotting keeps the window bounded.  Returns failure
    descriptions (empty = pass).
    """
    failures: list[str] = []

    def run_with(
        time_value: float,
        mflops: float = 100.0,
        encode_speedup: float = 25.0,
        stream_s: float = 0.05,
        advisor_regret: float = 1.05,
    ) -> dict:
        return {
            "experiments": {
                "table2": {"cells": {"1|csr|1|close": {"time": time_value}}},
                "fig7": {"mflops": mflops},
                # Same shape benchmarks/microbench_encode.py emits, so
                # the gate demonstrably covers encode-throughput cells.
                "encode": {
                    "cells": {
                        "banded-100k-bw16": {
                            "batched_mnnz_per_s": 12.0 * encode_speedup,
                            "speedup": encode_speedup,
                        }
                    }
                },
                # And the shape benchmarks/microbench_parallel.py emits:
                # backend/worker scaling cells plus the out-of-core
                # stream cell.
                "parallel": {
                    "cells": {
                        "csr-du|process|4w": {
                            "seconds": 2.0 * time_value,
                            "mnnz_per_s": 50.0 / time_value,
                            "speedup_vs_serial": 0.9,
                        },
                        "out-of-core|stream": {
                            "stored_bytes": 19885076,
                            "budget_bytes": 8388608,
                            "nshards": 16,
                            "stream_s": stream_s,
                        },
                    }
                },
                # And the shape benchmarks/microbench_advisor.py emits:
                # per-matrix regret cells plus the corpus summary.
                "advisor": {
                    "cells": {
                        "cat03|regret": {
                            "regret": advisor_regret,
                            "advisor_s": 0.001 * advisor_regret,
                            "oracle_s": 0.001,
                        },
                        "summary|regret": {
                            "geomean_regret": advisor_regret,
                            "top1_rate": 0.8,
                            "top3_rate": 1.0,
                        },
                    }
                },
            }
        }

    history = new_history()
    for t in (1.00, 1.01, 0.99):
        snapshot(history, run_with(t))
    errors = validate_history(history)
    if errors:
        failures.append(f"snapshotted history invalid: {errors}")

    clean = check_run(history, run_with(1.005), tolerance=0.02, k=3.0)
    if clean:
        failures.append(
            "clean rerun flagged: " + "; ".join(r.describe() for r in clean)
        )

    regressed = check_run(history, run_with(1.5), tolerance=0.02, k=3.0)
    if not any("time" in r.path for r in regressed):
        failures.append("injected 50% time regression not flagged")

    exact = check_run(history, run_with(1.0, mflops=90.0))
    if not any("mflops" in r.path for r in exact):
        failures.append("deviation on an exact (zero-stdev) cell not flagged")

    collapsed = check_run(history, run_with(1.0, encode_speedup=1.0))
    if not any("encode" in r.path and "speedup" in r.path for r in collapsed):
        failures.append("collapsed encode speedup not flagged")

    slow_stream = check_run(history, run_with(1.0, stream_s=5.0))
    if not any(
        "parallel" in r.path and "stream_s" in r.path for r in slow_stream
    ):
        failures.append("regressed out-of-core stream time not flagged")

    bad_advice = check_run(history, run_with(1.0, advisor_regret=1.6))
    if not any(
        "advisor" in r.path and "regret" in r.path for r in bad_advice
    ):
        failures.append("regressed advisor regret not flagged")

    for _ in range(3 * DEFAULT_MAX_RUNS):
        snapshot(history, run_with(1.0))
    if any(len(v) > DEFAULT_MAX_RUNS for v in history["cells"].values()):
        failures.append("history window not bounded by max_runs")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf-gate",
        description="Noise-aware perf regression gate over recorded runs.",
    )
    parser.add_argument(
        "run",
        nargs="?",
        default=None,
        help="recorded run JSON (from --json) to check/snapshot",
    )
    parser.add_argument(
        "--history",
        default="perf_history.json",
        help="history file accumulating snapshots (default perf_history.json)",
    )
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="append the run to the history after checking",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="relative drift always tolerated (default 2%%)",
    )
    parser.add_argument(
        "--k",
        type=float,
        default=3.0,
        help="stdev multiplier widening the band for noisy cells (default 3)",
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=DEFAULT_MAX_RUNS,
        help=f"snapshots kept per cell (default {DEFAULT_MAX_RUNS})",
    )
    parser.add_argument(
        "--check-schema",
        action="store_true",
        help="validate the history file and run the gate's self-test",
    )
    args = parser.parse_args(argv)

    if args.check_schema:
        status = 0
        if os.path.exists(args.history):
            try:
                load_history(args.history)
                print(f"history {args.history}: schema OK")
            except ValueError as exc:
                print(exc)
                status = 1
        else:
            print(f"history {args.history}: absent (treated as empty), OK")
        failures = _self_test()
        for f in failures:
            print(f"self-test FAILED: {f}")
        if not failures:
            print("self-test OK")
        return 1 if (status or failures) else 0

    if args.run is None:
        parser.error("a run file is required unless --check-schema is given")
    run = load_run(args.run)
    history = load_history(args.history)
    tracked = sum(1 for v in history["cells"].values() if v)
    regressions = check_run(
        history, run, tolerance=args.tolerance, k=args.k
    )
    if tracked == 0:
        print(f"{args.history}: no history yet; nothing to check")
    else:
        print(
            f"checked {len(flatten_run(run))} cells against {tracked} tracked "
            f"({int(history.get('runs', 0))} snapshots): "
            f"{len(regressions)} regression(s)"
        )
    for r in regressions:
        print(f"  REGRESSION {r.describe()}")
    if args.snapshot and not regressions:
        snapshot(history, run, max_runs=args.max_runs)
        save_history(history, args.history)
        print(f"snapshotted into {args.history}")
    elif args.snapshot:
        print("not snapshotting a regressed run")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
