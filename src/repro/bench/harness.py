"""Experiment runner: (matrix id, format, threads, placement) -> results.

Two clocks exist:

* ``"model"`` (default) -- the machine model of :mod:`repro.machine`,
  used for every paper table/figure (this container cannot exhibit
  multicore bandwidth contention; see DESIGN.md section 3);
* ``"real"`` -- wall-clock timing of the vectorized kernels via
  :func:`repro.util.timing.measure` (the paper's 128-iteration
  protocol), available for serial sanity checks.

The runner realizes each catalog matrix once per configuration, converts
it to each requested format once, and fans out over thread counts.

Real-clock cells honor the ``backend`` axis: ``"process"`` runs its
chunks in fork-pool workers whose spans and metric shards are merged
back into the parent's telemetry/obs sinks (:mod:`repro.obs.xproc`),
so reports, traces and the dashboard's workers table cover them like
any single-process run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compress.encode_cache import ConvertCache, cached_convert
from repro.errors import MachineModelError, ReproError
from repro.formats.base import SparseMatrix, Storage
from repro.formats.conversions import convert
from repro.machine.costmodel import CostModel, default_cost_model
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import MachineSpec, clovertown_8core
from repro.matrices.collection import realize
from repro.obs import core as obs
from repro.perf import attribution as perf_attribution
from repro.perf.attribution import Attribution
from repro.perf.bytes import ByteBreakdown, bytes_per_iteration
from repro.telemetry import core as telemetry
from repro.util.timing import measure

#: The paper's thread configurations for Table II: thread count plus
#: placement.  ``2 (1xL2)`` is close (shared L2), ``2 (2xL2)`` spread.
TABLE2_CONFIGS: tuple[tuple[int, str], ...] = (
    (1, "close"),
    (2, "close"),
    (2, "spread"),
    (4, "close"),
    (8, "close"),
)

#: Tables III/IV use close placement throughout.
SPEEDUP_THREADS: tuple[int, ...] = (1, 2, 4, 8)


def _advise(matrix, config, *, matrix_id, formats, kernels, threads):
    """One advisor call with this run's machine/cost-model context."""
    from repro.perf.advisor import advise

    return advise(
        matrix,
        matrix_id=matrix_id,
        clock=config.clock,
        formats=formats,
        kernels=kernels,
        threads=threads,
        backends=(config.backend,),
        machine=config.scaled_machine(),
        cost_model=config.cost_model,
    )


def resolve_kernel(matrix, format_name: str, config, matrix_id: int = -1) -> str:
    """The tier ``kernel="auto"`` runs for (*matrix*, *format_name*)."""
    if config.kernel != "auto":
        return config.kernel
    from repro.perf.advisor.model import ADVISOR_KERNELS

    choice = _advise(
        matrix,
        config,
        matrix_id=matrix_id,
        formats=(format_name,),
        kernels=ADVISOR_KERNELS,
        threads=(1,),
    )
    return choice.config.kernel


def resolve_thread_configs(
    matrix, config, matrix_id: int = -1
) -> tuple[tuple[int, str], ...]:
    """The configurations ``threads_choice`` collapses a run to.

    The serial ``(1, "close")`` cell is always kept: it is the
    denominator of every scaling and speedup figure, so a pinned or
    advisor-picked thread count yields (serial, picked) rather than an
    unanchored single cell.
    """
    if config.threads_choice != "auto":
        picked = int(config.threads_choice)
    else:
        choice = _advise(
            matrix,
            config,
            matrix_id=matrix_id,
            formats=("csr",),
            kernels=("cached",),
            threads=SPEEDUP_THREADS,
        )
        picked = choice.config.threads
    if picked == 1:
        return ((1, "close"),)
    return ((1, "close"), (picked, "close"))


def resolve_formats(
    matrix, formats: tuple[str, ...], config, matrix_id: int = -1
) -> tuple[str, ...]:
    """Apply ``config.format_override`` to one experiment's format list.

    The CSR baseline entry is kept (it is every speedup's denominator);
    each compressed entry is replaced by the override, or by the
    advisor's pick when the override is ``"auto"``.  Duplicates after
    replacement collapse (an advisor that picks plain CSR leaves a
    CSR-only cell list, which downstream code already handles).
    """
    if not config.format_override:
        return formats
    if config.format_override == "auto":
        from repro.perf.advisor.model import ADVISOR_FORMATS

        replacement = _advise(
            matrix,
            config,
            matrix_id=matrix_id,
            formats=ADVISOR_FORMATS,
            kernels=("cached",),
            threads=(1,),
        ).config.format_name
    else:
        replacement = config.format_override
    out: list[str] = []
    for fmt in formats:
        resolved = fmt if fmt == "csr" else replacement
        if resolved not in out:
            out.append(resolved)
    return tuple(out)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for an experiment run.

    ``scale`` shrinks both the matrices and the machine's caches (see
    ``MachineSpec.scaled``), keeping every matrix in its paper set; 1.0
    is the paper-size run, benchmarks default to a fraction.
    """

    scale: float = 1.0
    machine: MachineSpec = field(default_factory=clovertown_8core)
    cost_model: CostModel = field(default_factory=default_cost_model)
    clock: str = "model"
    real_calls: int = 16
    #: Kernel tier timed by the real clock (``"cached"``, ``"batched"``,
    #: ``"vectorized"``, ``"reference"``, or ``"auto"`` -- the
    #: configuration advisor picks per (matrix, format)); the model
    #: clock predicts from memory traffic and ignores it.
    kernel: str = "cached"
    #: Encode pipeline for the CSR-DU conversions (``"batched"`` -- the
    #: vectorized one-pass encoder -- or ``"reference"``, the per-unit
    #: CtlWriter walk).  Mirrors the ``kernel`` axis on the setup side;
    #: both produce byte-identical streams.
    encoder: str = "batched"
    #: Execution backend for real-clock multi-worker cells:
    #: ``"thread"`` (:class:`~repro.parallel.executor.ParallelSpMV`) or
    #: ``"process"`` (:class:`~repro.parallel.process_executor.
    #: ProcessParallelSpMV`, which escapes the GIL).  The model clock
    #: ignores it.
    backend: str = "thread"
    #: Shard storage for those cells: ``"mem"`` or ``"mmap"``
    #: (out-of-core shard files in a temporary directory).
    storage: str = "mem"
    #: CLI ``--format`` override: replaces every *compressed* format an
    #: experiment requests (the CSR baseline always stays).  ``"auto"``
    #: asks the configuration advisor per matrix; an explicit name
    #: applies uniformly.  ``None`` (default) leaves each experiment's
    #: own formats untouched.
    format_override: str | None = None
    #: CLI ``--threads`` override: replaces an experiment's thread
    #: configurations with a single ``(N, "close")`` entry.  ``"auto"``
    #: asks the advisor per matrix (GIL/CPU-aware under the real
    #: clock); a numeric string pins the count.  ``None`` disables.
    threads_choice: str | None = None
    #: Checkpoint JSONL path for :func:`run_set` (``None`` disables).
    #: Finished (matrix, format) cells are appended as they complete;
    #: a rerun pointing at the same path restores them and skips the
    #: work, producing a bundle byte-identical to an uninterrupted run
    #: (see :mod:`repro.bench.checkpoint`).  The CLI's ``--resume``
    #: flag sets this.
    checkpoint_path: str | None = None
    #: Wall-clock budget in seconds for each real-clock executor cell
    #: (CLI ``--deadline``).  Materialized as one
    #: :class:`~repro.resilience.policy.Deadline` per cell that flows
    #: through ``make_executor`` into shard builds and per-chunk waits;
    #: expiry surfaces as a typed ``DeadlineExceeded`` rather than a
    #: hung sweep.  ``None`` (default) disables.
    deadline_s: float | None = None
    #: Wrap real-clock executors in the resilience degradation ladder
    #: (CLI ``--degrade``): backend falls process -> thread -> serial
    #: and storage mmap -> mem on repeated typed failures, with every
    #: transition emitted as ``resilience.degrade`` telemetry.
    degrade: bool = False

    def scaled_machine(self) -> MachineSpec:
        return self.machine if self.scale == 1.0 else self.machine.scaled(self.scale)


@dataclass(frozen=True)
class MatrixResult:
    """All measurements for one (matrix, format) pair.

    ``attributions`` carries one :class:`~repro.perf.attribution.Attribution`
    per configuration -- bytes/iteration, effective GB/s, %-of-roofline,
    imbalance ratios -- for every format the traffic model supports
    (empty for the exotic formats the real clock can time but the
    byte-layout census cannot split).
    """

    matrix_id: int
    format_name: str
    storage: Storage
    csr_storage: Storage
    times: dict[tuple[int, str], float]  # (threads, placement) -> seconds
    mflops: dict[tuple[int, str], float]
    bounds: dict[tuple[int, str], str]
    attributions: dict[tuple[int, str], Attribution] = field(default_factory=dict)

    @property
    def size_reduction(self) -> float:
        """Fractional size reduction vs CSR (paper's Figs 7/8 label)."""
        csr_total = self.csr_storage.total_bytes
        return 1.0 - self.storage.total_bytes / csr_total if csr_total else 0.0

    def speedup_vs(self, other: "MatrixResult", key: tuple[int, str]) -> float:
        """This result's speedup over *other* at the same configuration."""
        return other.times[key] / self.times[key]

    def scaling(self, key: tuple[int, str]) -> float:
        """Speedup over this format's own serial time."""
        return self.times[(1, "close")] / self.times[key]


def run_format_matrix(
    matrix: SparseMatrix,
    format_name: str,
    config: ExperimentConfig,
    *,
    matrix_id: int = -1,
    configs: tuple[tuple[int, str], ...] = TABLE2_CONFIGS,
    csr_storage: Storage | None = None,
    convert_cache: ConvertCache | None = None,
    **format_kwargs,
) -> MatrixResult:
    """Measure one matrix in one format across thread configurations.

    ``csr_storage`` is the matrix's CSR baseline footprint (the
    denominator of every size-reduction figure).  Callers looping over
    several formats of the same matrix should compute it once and pass
    it down -- :func:`run_set` does -- since re-deriving it per format
    re-encodes the whole matrix; when omitted it is computed here.
    ``convert_cache`` keys the conversion on (matrix, format, kwargs)
    so repeated cells over one matrix encode once; the setup wall time
    actually paid lands in each attribution's ``setup_s``.
    """
    if config.threads_choice:
        configs = resolve_thread_configs(matrix, config, matrix_id)
    # Live observability: one histogram sample per finished cell, so a
    # scraper watching a long sweep sees throughput and tail cells.
    runtime = obs.get_runtime()
    cell_t0 = time.perf_counter() if runtime is not None else 0.0
    with telemetry.span(
        "bench.cell", matrix_id=matrix_id, format=format_name
    ) as cell:
        if format_name in ("csr-du", "csr-du-vi"):
            format_kwargs.setdefault("encoder", config.encoder)
        setup_t0 = time.perf_counter()
        converted = cached_convert(
            matrix, format_name, cache=convert_cache, **format_kwargs
        )
        from repro.kernels.plan import PLANNABLE_FORMATS, get_plan

        # Build the kernel plan once per cell -- the amortized setup
        # every iterative caller pays exactly once.  Under the model
        # clock this runs only when tracing, so the plan.build/hit/miss
        # counters appear in --trace output either way.
        plannable = converted.name in PLANNABLE_FORMATS
        if plannable and (config.clock == "real" or telemetry.enabled()):
            get_plan(converted)
        setup_s = time.perf_counter() - setup_t0
        kernel_tier = config.kernel
        if config.kernel == "auto" and config.clock == "real":
            kernel_tier = resolve_kernel(matrix, format_name, config, matrix_id)
        machine = config.scaled_machine()
        if csr_storage is None:
            csr_storage = convert(matrix, "csr").storage()
        times: dict[tuple[int, str], float] = {}
        mflops: dict[tuple[int, str], float] = {}
        bounds: dict[tuple[int, str], str] = {}
        attributions: dict[tuple[int, str], Attribution] = {}
        breakdowns: dict[int, ByteBreakdown] = {}  # per thread count
        for threads, placement in configs:
            key = (threads, placement)
            sim_res = None
            if plannable and telemetry.enabled():
                get_plan(converted)  # cache hit, one per configuration
            if config.clock == "model":
                res = simulate_spmv(
                    converted,
                    threads,
                    machine,
                    placement=placement,
                    cost_model=config.cost_model,
                )
                times[key] = res.time_s
                mflops[key] = res.mflops
                bounds[key] = res.bound
                sim_res = res
            elif config.clock == "real":
                import numpy as np

                rng = np.random.default_rng(0)
                x = rng.random(converted.ncols)
                if threads == 1 and config.backend == "thread":
                    from repro.kernels.registry import get_kernel

                    kernel = get_kernel(format_name, kernel_tier)
                    kernel(converted, x)  # warm caches / decode caches
                    with telemetry.span(
                        "bench.measure", matrix_id=matrix_id, format=format_name
                    ):
                        m = measure(
                            lambda: kernel(converted, x),
                            calls=config.real_calls,
                            repeats=3,
                        )
                else:
                    # Multi-worker (or process-backend) wall clock: time
                    # the real executor end to end.  Until PR 7 this
                    # raised -- the thread backend's GIL-bound numbers
                    # answered nothing -- but the backend axis makes the
                    # measurement honest: the process backend does the
                    # work in parallel on multi-core hosts.
                    import tempfile

                    from repro.parallel.backends import make_executor

                    tmp = (
                        tempfile.TemporaryDirectory(prefix="bench-shards-")
                        if config.storage == "mmap"
                        else None
                    )
                    deadline = None
                    if config.deadline_s is not None:
                        from repro.resilience.policy import Deadline

                        deadline = Deadline.after(config.deadline_s)
                    executor = make_executor(
                        matrix,
                        threads,
                        backend=config.backend,
                        storage=config.storage,
                        format_name=format_name,
                        directory=tmp.name if tmp is not None else None,
                        convert_cache=convert_cache,
                        deadline=deadline,
                        degrade=config.degrade,
                        **format_kwargs,
                    )
                    try:
                        executor(x)  # warm pools / decode caches
                        with telemetry.span(
                            "bench.measure",
                            matrix_id=matrix_id,
                            format=format_name,
                        ):
                            m = measure(
                                lambda: executor(x),
                                calls=config.real_calls,
                                repeats=3,
                            )
                    finally:
                        executor.close()
                        if tmp is not None:
                            tmp.cleanup()
                times[key] = m.per_call
                mflops[key] = 2 * converted.nnz / m.per_call / 1e6
                bounds[key] = "wallclock"
            else:
                raise ReproError(f"unknown clock {config.clock!r}")
            try:
                if threads not in breakdowns:
                    breakdowns[threads] = bytes_per_iteration(converted, threads)
                att = perf_attribution.attribute_cell(
                    converted,
                    threads=threads,
                    placement=placement,
                    time_s=times[key],
                    machine=machine,
                    cost_model=config.cost_model,
                    matrix_id=matrix_id,
                    clock=config.clock,
                    sim=sim_res,
                    csr_storage=csr_storage,
                    breakdown=breakdowns[threads],
                    setup_s=setup_s,
                )
            except MachineModelError:
                # Formats the byte-layout census cannot split (ellpack,
                # coo, ...) still get timed; they just go unattributed.
                pass
            else:
                attributions[key] = att
                if telemetry.enabled():
                    perf_attribution.record(att)
        cell.add(nnz=converted.nnz)
    if runtime is not None:
        runtime.observe(
            "bench.cell.seconds",
            time.perf_counter() - cell_t0,
            format=format_name,
        )
        runtime.mark("bench.cells", 1, format=format_name)
    return MatrixResult(
        matrix_id=matrix_id,
        format_name=format_name,
        storage=converted.storage(),
        csr_storage=csr_storage,
        times=times,
        mflops=mflops,
        bounds=bounds,
        attributions=attributions,
    )


def run_set(
    ids: tuple[int, ...],
    formats: tuple[str, ...],
    config: ExperimentConfig,
    *,
    configs: tuple[tuple[int, str], ...] = TABLE2_CONFIGS,
) -> dict[int, dict[str, MatrixResult]]:
    """Run every matrix in *ids* through every format.

    Returns ``{matrix_id: {format_name: MatrixResult}}``.  Matrices are
    realized (and freed) one at a time: the full-scale catalog would
    not fit in memory all at once.

    With ``config.checkpoint_path`` set, every finished cell is
    appended to the checkpoint JSONL as it completes, and cells already
    present there (same configuration fingerprint) are restored instead
    of recomputed — a matrix whose every format is checkpointed is not
    even realized.  The resumed result is identical to an uninterrupted
    run's (the speedup-vs-CSR fill below runs on restored cells too).
    """
    log = None
    done: dict[tuple[int, str], MatrixResult] = {}
    if config.checkpoint_path:
        from repro.bench.checkpoint import CheckpointLog, fingerprint

        log = CheckpointLog(config.checkpoint_path, fingerprint(config, configs))
        done = log.load()
    out: dict[int, dict[str, MatrixResult]] = {}
    for mid in ids:
        with telemetry.span("bench.matrix", matrix_id=mid):
            per_fmt: dict[str, MatrixResult] = {}
            matrix = None
            formats_m = formats
            if config.format_override:
                # The override (and in particular "auto") can resolve
                # differently per matrix, so the matrix is realized
                # before the checkpoint-skip decision; checkpointed
                # cells still skip their measurement work.
                matrix = realize(mid, scale=config.scale)
                formats_m = resolve_formats(matrix, formats, config, mid)
            missing = [f for f in formats_m if (mid, f) not in done]
            if missing:
                if matrix is None:
                    matrix = realize(mid, scale=config.scale)
                # One conversion cache per matrix: cells that re-present
                # the same (format, kwargs) reuse the encode, and the
                # cache dies with the matrix (full-scale matrices must
                # not accumulate).
                cache = ConvertCache()
                # One CSR baseline per matrix: every format's
                # size-reduction figure shares the denominator, so
                # encode it exactly once.
                csr_storage = cached_convert(matrix, "csr", cache=cache).storage()
                if telemetry.enabled() and not any(
                    f.startswith("csr-du") for f in formats_m
                ):
                    # Tracing asks "what structure does this matrix
                    # have?" even for CSR-only experiments, so record
                    # the CSR-DU unit census (the encode emits the
                    # width histogram).
                    convert(matrix, "csr-du", encoder=config.encoder)
            for fmt in formats_m:
                restored = done.get((mid, fmt))
                if restored is not None:
                    per_fmt[fmt] = restored
                    continue
                res = run_format_matrix(
                    matrix,
                    fmt,
                    config,
                    matrix_id=mid,
                    configs=configs,
                    csr_storage=csr_storage,
                    convert_cache=cache,
                )
                per_fmt[fmt] = res
                if log is not None:
                    # Appended pre-speedup-fill: the fill needs the
                    # whole matrix and is re-applied deterministically
                    # on restore.
                    log.append(res)
            # With a CSR baseline in the set, fill in each compressed
            # format's speedup so the attribution records can answer the
            # paper's compression-ratio-vs-speedup question directly.
            baseline = per_fmt.get("csr")
            if baseline is not None:
                for fmt, res in per_fmt.items():
                    if fmt == "csr":
                        continue
                    for key, att in list(res.attributions.items()):
                        csr_time = baseline.times.get(key)
                        if csr_time:
                            res.attributions[key] = att.with_speedup(csr_time)
            out[mid] = per_fmt
    return out


def aggregate(values: list[float]) -> tuple[float, float, float]:
    """(avg, max, min) with the paper's presentation conventions."""
    if not values:
        raise ReproError("nothing to aggregate")
    return (
        sum(values) / len(values),
        max(values),
        min(values),
    )


def count_slowdowns(values: list[float], threshold: float = 0.98) -> int:
    """The paper's '< 0.98' column: non-negligible slowdowns."""
    return sum(1 for v in values if v < threshold)
