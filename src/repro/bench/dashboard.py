"""Self-contained HTML performance report (the ``report-html`` output).

One file, zero external assets (inline CSS, inline SVG -- it must open
from a mail attachment or CI artifact with no network), rendering:

* the **attribution table** -- every ``perf.attribution`` record the
  run emitted (one per measured bench cell), with the byte split,
  FLOP:byte ratio, effective bandwidth, %-of-roofline, binding
  constraint, imbalance ratios and compression-vs-speedup columns;
* the **compression correlation** -- Pearson r between size reduction
  and speedup across attributed cells, the paper's headline claim;
* **per-thread timelines** -- an SVG lane per OS thread built from the
  recorded spans, so barrier waits are visible as gaps;
* the **parallel balance table** from
  :func:`repro.perf.imbalance.summarize_parallel`;
* the **workers table** -- per-worker chunk count, busy time, exact
  p50/p99 chunk latency and retries for process-backend runs (built
  from the worker spans ``repro.obs.xproc`` merges back);
* **baseline deltas** -- worst relative movements of the current
  recorded run against a baseline bundle, when both are given;
* the **advisor summary** -- per-matrix predicted config vs exhaustive
  oracle config, regret and prediction error, rendered from a
  ``BENCH_advisor.json`` bundle (``--advisor-json``) and/or the
  ``advisor.pick`` telemetry events the run emitted.

Everything renders from data already collected elsewhere (telemetry
events, recorded-run JSON); this module only formats.
"""

from __future__ import annotations

import html
from typing import Any, Iterable

from repro.bench.compare import compare_runs
from repro.perf.attribution import compression_speedup_correlation
from repro.perf.imbalance import (
    _as_dicts,
    summarize_parallel,
    thread_timelines,
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 75em; color: #1c2733; }
h1 { font-size: 1.5em; border-bottom: 2px solid #2b6cb0; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 2em; color: #2b6cb0; }
table { border-collapse: collapse; font-size: .85em; width: 100%; }
th, td { border: 1px solid #cbd5e0; padding: .25em .5em; text-align: right; }
th { background: #edf2f7; }
td.l, th.l { text-align: left; }
tr:nth-child(even) td { background: #f7fafc; }
.note { color: #4a5568; font-size: .9em; }
.bad { color: #c53030; font-weight: bold; }
.ok { color: #2f855a; }
svg { border: 1px solid #cbd5e0; background: #fff; }
"""

#: Fill colors cycled over span names in the timeline SVG.
_PALETTE = ("#2b6cb0", "#2f855a", "#b7791f", "#9b2c2c", "#553c9a", "#2c7a7b")

#: Spans drawn in the timeline (others are setup noise at this zoom).
_TIMELINE_SPANS = ("parallel.spmv", "parallel.chunk", "bench.measure")


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def attribution_records(events: Iterable[Any]) -> list[dict]:
    """Rebuild attribution rows from ``perf.attribution`` events.

    Each event's attrs carry the labels (``format``, ``threads``,
    ``placement``) plus the full numeric payload, so the record
    round-trips through a JSONL trace unchanged.
    """
    rows = []
    for ev in _as_dicts(events):
        if ev.get("name") != "perf.attribution":
            continue
        rows.append(dict(ev["attrs"]))
    rows.sort(
        key=lambda r: (
            r.get("matrix_id", -1),
            str(r.get("format", "")),
            r.get("threads", 0),
            str(r.get("placement", "")),
        )
    )
    return rows


def _attribution_table(rows: list[dict]) -> str:
    if not rows:
        return "<p class=note>No attribution records in this run.</p>"
    head = (
        "<tr><th>matrix</th><th class=l>format</th><th>thr</th>"
        "<th class=l>place</th><th>time (s)</th><th>MFLOPS</th>"
        "<th>bytes/iter</th><th>index</th><th>value</th><th>vector</th>"
        "<th>F:B</th><th>GB/s</th><th>roofline</th><th class=l>bound</th>"
        "<th>nnz imb</th><th>t imb</th><th>size vs CSR</th>"
        "<th>speedup</th><th>plan h/m</th><th>setup (s)</th></tr>"
    )
    body = []
    for r in rows:
        pct = float(r.get("roofline_pct", 0.0))
        cls = "ok" if pct >= 50.0 else ""
        speedup = float(r.get("speedup_vs_csr", 0.0))
        body.append(
            "<tr>"
            f"<td>{_esc(r.get('matrix_id', '?'))}</td>"
            f"<td class=l>{_esc(r.get('format', '?'))}</td>"
            f"<td>{_esc(r.get('threads', '?'))}</td>"
            f"<td class=l>{_esc(r.get('placement', '?'))}</td>"
            f"<td>{float(r.get('time_s', 0.0)):.3e}</td>"
            f"<td>{float(r.get('mflops', 0.0)):.1f}</td>"
            f"<td>{int(r.get('bytes_per_iter', 0))}</td>"
            f"<td>{int(r.get('index_bytes', 0))}</td>"
            f"<td>{int(r.get('value_bytes', 0))}</td>"
            f"<td>{int(r.get('vector_bytes', 0))}</td>"
            f"<td>{float(r.get('flops_per_byte', 0.0)):.3f}</td>"
            f"<td>{float(r.get('effective_gbps', 0.0)):.2f}</td>"
            f"<td class='{cls}'>{pct:.1f}%</td>"
            f"<td class=l>{_esc(r.get('bound', '?'))}</td>"
            f"<td>{float(r.get('nnz_imbalance', 1.0)):.3f}</td>"
            f"<td>{float(r.get('time_imbalance', 1.0)):.3f}</td>"
            f"<td>{float(r.get('compression_ratio', 1.0)):.3f}</td>"
            f"<td>{speedup:.3f}</td>"
            f"<td>{int(r.get('plan_hits', 0))}/{int(r.get('plan_misses', 0))}</td>"
            f"<td>{float(r.get('setup_s', 0.0)):.3e}</td>"
            "</tr>"
        )
    return f"<table>{head}{''.join(body)}</table>"


def _correlation_section(rows: list[dict]) -> str:
    points = [
        (1.0 - float(r["compression_ratio"]), float(r["speedup_vs_csr"]))
        for r in rows
        if float(r.get("speedup_vs_csr", 0.0)) > 0.0
        and "compression_ratio" in r
    ]
    if len(points) < 2:
        return (
            "<p class=note>Not enough attributed compressed cells for a "
            "compression-vs-speedup correlation.</p>"
        )
    r = compression_speedup_correlation(points)
    return (
        f"<p>Pearson correlation between size reduction and speedup over "
        f"{len(points)} compressed cells: <b>{r:+.3f}</b> "
        "(the paper's claim is that smaller streams run faster once "
        "bandwidth binds, i.e. positive).</p>"
    )


def _timeline_svg(events: Iterable[Any], *, max_spans: int = 600) -> str:
    lanes = thread_timelines(events)
    drawable = {
        lane: [s for s in spans if s[2] in _TIMELINE_SPANS]
        for lane, spans in lanes.items()
    }
    drawable = {lane: spans for lane, spans in drawable.items() if spans}
    if not drawable:
        return "<p class=note>No parallel spans recorded in this run.</p>"
    t0 = min(s[0] for spans in drawable.values() for s in spans)
    t1 = max(s[0] + s[1] for spans in drawable.values() for s in spans)
    width_us = max(t1 - t0, 1.0)
    width_px, lane_h, label_w = 960, 22, 90
    height = lane_h * len(drawable) + 24
    colors = {
        name: _PALETTE[i % len(_PALETTE)]
        for i, name in enumerate(_TIMELINE_SPANS)
    }
    parts = [
        f'<svg width="{width_px + label_w}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    drawn = 0
    for row, ((pid, tid), spans) in enumerate(sorted(drawable.items())):
        y = row * lane_h + 16
        label = f"tid {tid}" if pid == 0 else f"pid {pid}"
        parts.append(
            f'<text x="2" y="{y + 12}" font-size="11">{_esc(label)}</text>'
        )
        for ts, dur, name in spans:
            if drawn >= max_spans:
                break
            x = label_w + (ts - t0) / width_us * width_px
            w = max(dur / width_us * width_px, 0.5)
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{lane_h - 6}" fill="{colors[name]}" '
                f'fill-opacity="0.75"><title>{_esc(name)} '
                f"{dur:.1f}us</title></rect>"
            )
            drawn += 1
    legend_x = label_w
    for i, name in enumerate(_TIMELINE_SPANS):
        parts.append(
            f'<rect x="{legend_x}" y="2" width="10" height="10" '
            f'fill="{colors[name]}"/>'
            f'<text x="{legend_x + 14}" y="11" font-size="10">{_esc(name)}</text>'
        )
        legend_x += 14 + 8 * len(name)
    parts.append("</svg>")
    cap = (
        f"<p class=note>Timeline truncated at {max_spans} spans.</p>"
        if drawn >= max_spans
        else ""
    )
    return (
        f"<p class=note>{width_us / 1e3:.3f} ms window, one lane per "
        f"execution stream (OS thread, or worker process for the process "
        f"backend); hover a bar for span name and duration.</p>"
        + "".join(parts)
        + cap
    )


def _balance_table(events: Iterable[Any], *, max_calls: int = 30) -> str:
    report = summarize_parallel(events)
    if not report.ncalls:
        return "<p class=note>No multithreaded SpMV calls in this run.</p>"
    head = (
        "<tr><th>call</th><th>duration (ms)</th><th>threads</th>"
        "<th>time imbalance</th><th>nnz imbalance</th>"
        "<th>nnz-vs-time</th><th>barrier wait (ms)</th></tr>"
    )
    body = []
    for i, call in enumerate(report.calls[:max_calls]):
        body.append(
            "<tr>"
            f"<td>{i}</td><td>{call.dur_us / 1e3:.3f}</td>"
            f"<td>{len(call.busy_us)}</td>"
            f"<td>{call.time_imbalance:.3f}</td>"
            f"<td>{call.nnz_imbalance:.3f}</td>"
            f"<td>{call.nnz_vs_time:.3f}</td>"
            f"<td>{call.total_barrier_wait_us / 1e3:.3f}</td></tr>"
        )
    note = (
        f"<p class=note>Showing {max_calls} of {report.ncalls} calls.</p>"
        if report.ncalls > max_calls
        else ""
    )
    return (
        f"<p>{report.ncalls} multithreaded calls, mean time imbalance "
        f"<b>{report.mean_time_imbalance:.3f}</b>, mean nnz-vs-time "
        f"<b>{report.mean_nnz_vs_time:.3f}</b>, total barrier wait "
        f"{report.total_barrier_wait_us / 1e3:.3f} ms.</p>"
        f"<table>{head}{''.join(body)}</table>{note}"
    )


def _reliability_section(events: Iterable[Any], *, max_alerts: int = 50) -> str:
    """Run-health headline: cache hit ratio, degradations, SLO alerts.

    Rebuilt from the raw counter events (not collector aggregates) so
    the section renders identically from a live run or a replayed
    JSONL trace.
    """
    totals = {
        "convert.cache.hit": 0.0,
        "convert.cache.miss": 0.0,
        "kernel.fallback": 0.0,
        "executor.retry": 0.0,
        "storage.shard.attach": 0.0,
        "storage.shard.write": 0.0,
        "storage.shard.cache.hit": 0.0,
        "storage.shard.cache.miss": 0.0,
    }
    alerts: list[dict] = []
    for ev in _as_dicts(events):
        name = ev.get("name")
        if name in totals and ev.get("kind") == "counter":
            totals[name] += float(ev.get("value", 0.0))
        elif name == "obs.alert":
            alerts.append(ev)
    lookups = totals["convert.cache.hit"] + totals["convert.cache.miss"]
    ratio = totals["convert.cache.hit"] / lookups if lookups else 0.0
    degraded = totals["kernel.fallback"] or totals["executor.retry"] or alerts
    cls = "bad" if degraded else "ok"
    parts = [
        f"<p>Encode-cache hit ratio <b>{ratio:.1%}</b> "
        f"({totals['convert.cache.hit']:g} hits / "
        f"{totals['convert.cache.miss']:g} misses); "
        f"<span class='{cls}'>{totals['kernel.fallback']:g} kernel "
        f"fallbacks, {totals['executor.retry']:g} executor retries, "
        f"{len(alerts)} SLO alerts</span>.</p>"
    ]
    shard_lookups = (
        totals["storage.shard.cache.hit"] + totals["storage.shard.cache.miss"]
    )
    if shard_lookups or totals["storage.shard.attach"]:
        shard_ratio = (
            totals["storage.shard.cache.hit"] / shard_lookups
            if shard_lookups
            else 0.0
        )
        parts.append(
            f"<p>Shard storage: worker cache hit ratio "
            f"<b>{shard_ratio:.1%}</b> "
            f"({totals['storage.shard.cache.hit']:g} hits / "
            f"{totals['storage.shard.cache.miss']:g} misses), "
            f"{totals['storage.shard.attach']:g} attaches, "
            f"{totals['storage.shard.write']:g} shard writes.</p>"
        )
    if alerts:
        head = (
            "<tr><th class=l>rule</th><th class=l>expression</th>"
            "<th>observed</th><th>bound</th></tr>"
        )
        body = []
        for ev in alerts[:max_alerts]:
            attrs = ev.get("attrs", {})
            body.append(
                "<tr>"
                f"<td class=l>{_esc(attrs.get('rule', '?'))}</td>"
                f"<td class=l>{_esc(attrs.get('expr', '?'))}</td>"
                f"<td class=bad>{_esc(attrs.get('value', '?'))}</td>"
                f"<td>{_esc(attrs.get('threshold', '?'))}</td></tr>"
            )
        parts.append(f"<table>{head}{''.join(body)}</table>")
        if len(alerts) > max_alerts:
            parts.append(
                f"<p class=note>Showing {max_alerts} of {len(alerts)} "
                "alerts.</p>"
            )
    return "".join(parts)


def _workers_section(events: Iterable[Any]) -> str:
    """Per-worker table for process-backend runs.

    Built from the worker-emitted ``parallel.chunk`` spans merged back
    by ``repro.obs.xproc`` (they carry ``pid``), plus the parent's
    ``executor.retry`` events keyed by worker index.  p50/p99 are exact
    nearest-rank percentiles over the span durations -- the raw samples
    are all here, unlike the live histogram's bucketed estimate.
    """
    workers: dict[int, dict] = {}
    retries: dict[int, int] = {}
    for ev in _as_dicts(events):
        name = ev.get("name")
        attrs = ev.get("attrs", {})
        if (
            name == "parallel.chunk"
            and ev.get("kind") == "span"
            and "pid" in attrs
        ):
            w = int(attrs.get("worker", attrs.get("thread", 0)))
            rec = workers.setdefault(
                w, {"pids": set(), "durs_us": [], "busy_us": 0.0}
            )
            rec["pids"].add(int(attrs["pid"]))
            rec["durs_us"].append(float(ev.get("dur_us", 0.0)))
            rec["busy_us"] += float(ev.get("dur_us", 0.0))
        elif name == "executor.retry" and ev.get("kind") == "counter":
            if "thread" in attrs:
                t = int(attrs["thread"])
                retries[t] = retries.get(t, 0) + int(ev.get("value", 1))
    if not workers:
        return (
            "<p class=note>No process-backend worker spans in this run "
            "(thread backend, or observability was off in the parent "
            "when the chunks ran).</p>"
        )

    def rank(durs: list[float], q: float) -> float:
        durs = sorted(durs)
        idx = max(0, -(-int(q * len(durs)) // 100) - 1)
        return durs[min(idx, len(durs) - 1)]

    head = (
        "<tr><th>worker</th><th class=l>pid</th><th>chunks</th>"
        "<th>busy (ms)</th><th>p50 (ms)</th><th>p99 (ms)</th>"
        "<th>retries</th></tr>"
    )
    body = []
    for w in sorted(workers):
        rec = workers[w]
        pids = ", ".join(str(p) for p in sorted(rec["pids"]))
        durs = rec["durs_us"]
        body.append(
            "<tr>"
            f"<td>{w}</td><td class=l>{_esc(pids)}</td>"
            f"<td>{len(durs)}</td>"
            f"<td>{rec['busy_us'] / 1e3:.3f}</td>"
            f"<td>{rank(durs, 50) / 1e3:.3f}</td>"
            f"<td>{rank(durs, 99) / 1e3:.3f}</td>"
            f"<td>{retries.get(w, 0)}</td></tr>"
        )
    return f"<table>{head}{''.join(body)}</table>"


def _advisor_section(
    events: Iterable[Any], advisor: dict | None = None
) -> str:
    """Advisor quality: predicted config vs oracle, regret, error.

    Two sources, both optional: a ``BENCH_advisor.json`` bundle (the
    microbench's oracle sweep -- carries per-matrix regret) and the
    run's own ``advisor.pick`` events (advise/realized pairs emitted
    live by :func:`repro.perf.advisor.advise`).
    """
    parts: list[str] = []
    if advisor:
        summary = advisor.get("summary", {})
        geo = float(summary.get("geomean_regret", 0.0))
        bound = float(advisor.get("regret_bound", 0.0))
        cls = "ok" if not bound or geo <= bound else "bad"
        parts.append(
            f"<p>Oracle sweep over {int(summary.get('nmatrices', 0))} "
            f"matrices: geometric-mean regret "
            f"<span class='{cls}'><b>{geo:.3f}x</b></span>"
            + (f" (bound {bound:g}x)" if bound else "")
            + f", top-1 hit rate {float(summary.get('top1_rate', 0.0)):.0%}, "
            f"top-3 hit rate {float(summary.get('top3_rate', 0.0)):.0%}, "
            f"<code>--format auto</code> bit-identical: "
            f"<b>{summary.get('bit_identical', '?')}</b>.</p>"
        )
        results = advisor.get("results", [])
        if results:
            head = (
                "<tr><th class=l>matrix</th><th>nnz</th>"
                "<th class=l>predicted config</th>"
                "<th class=l>oracle config</th><th>predicted (s)</th>"
                "<th>measured (s)</th><th>oracle (s)</th><th>regret</th>"
                "<th>pred err</th></tr>"
            )
            body = []
            for r in results:
                regret = float(r.get("regret", 1.0))
                rcls = "bad" if bound and regret > bound else ""
                body.append(
                    "<tr>"
                    f"<td class=l>{_esc(r.get('matrix', '?'))}</td>"
                    f"<td>{int(r.get('nnz', 0))}</td>"
                    f"<td class=l>{_esc(r.get('predicted', '?'))}</td>"
                    f"<td class=l>{_esc(r.get('oracle', '?'))}</td>"
                    f"<td>{float(r.get('predicted_s', 0.0)):.3e}</td>"
                    f"<td>{float(r.get('measured_s', 0.0)):.3e}</td>"
                    f"<td>{float(r.get('oracle_s', 0.0)):.3e}</td>"
                    f"<td class='{rcls}'>{regret:.3f}</td>"
                    f"<td>{float(r.get('prediction_error', 0.0)):+.1%}</td>"
                    "</tr>"
                )
            parts.append(f"<table>{head}{''.join(body)}</table>")
    picks = [
        dict(ev.get("attrs", {}))
        for ev in _as_dicts(events)
        if ev.get("name") == "advisor.pick"
    ]
    if picks:
        head = (
            "<tr><th>matrix</th><th class=l>format</th><th class=l>kernel</th>"
            "<th>thr</th><th class=l>backend</th><th class=l>source</th>"
            "<th class=l>phase</th><th>predicted (s)</th>"
            "<th>realized (s)</th></tr>"
        )
        body = []
        for p in picks:
            body.append(
                "<tr>"
                f"<td>{_esc(p.get('matrix_id', '?'))}</td>"
                f"<td class=l>{_esc(p.get('format', '?'))}</td>"
                f"<td class=l>{_esc(p.get('kernel', '?'))}</td>"
                f"<td>{_esc(p.get('threads', '?'))}</td>"
                f"<td class=l>{_esc(p.get('backend', '?'))}</td>"
                f"<td class=l>{_esc(p.get('source', '?'))}</td>"
                f"<td class=l>{_esc(p.get('phase', '?'))}</td>"
                f"<td>{float(p.get('predicted_s', 0.0)):.3e}</td>"
                f"<td>{float(p.get('realized_s', 0.0)):.3e}</td>"
                "</tr>"
            )
        parts.append(
            f"<p class=note>{len(picks)} advisor.pick events in this "
            f"run.</p><table>{head}{''.join(body)}</table>"
        )
    if not parts:
        return (
            "<p class=note>No advisor data: pass --advisor-json with a "
            "BENCH_advisor.json, or run with --format/--kernel/--threads "
            "auto to emit advisor.pick events.</p>"
        )
    return "".join(parts)


def _delta_table(baseline: dict, current: dict, *, top: int = 20) -> str:
    deviations, mismatches = compare_runs(baseline, current)
    moved = sorted(deviations, key=lambda d: -d.relative)
    head = (
        "<tr><th class=l>result</th><th>baseline</th><th>current</th>"
        "<th>moved</th></tr>"
    )
    body = []
    for d in moved[:top]:
        cls = "bad" if d.relative > 0.02 else ""
        body.append(
            "<tr>"
            f"<td class=l>{_esc(d.path)}</td><td>{d.old:.6g}</td>"
            f"<td>{d.new:.6g}</td>"
            f"<td class='{cls}'>{d.relative:.2%}</td></tr>"
        )
    parts = [
        f"<p>{len(deviations)} shared results, "
        f"{len(mismatches)} structural mismatches; worst movements:</p>",
        f"<table>{head}{''.join(body)}</table>",
    ]
    if mismatches:
        items = "".join(f"<li>{_esc(p)}</li>" for p in mismatches[:top])
        parts.append(f"<p class=note>Only in one run:</p><ul>{items}</ul>")
    return "".join(parts)


def render_dashboard(
    events: Iterable[Any],
    *,
    title: str = "SpMV performance report",
    baseline: dict | None = None,
    current: dict | None = None,
    advisor: dict | None = None,
) -> str:
    """The full report as one self-contained HTML string."""
    evs = _as_dicts(events)
    rows = attribution_records(evs)
    sections = [
        f"<h1>{_esc(title)}</h1>",
        f"<h2>Attribution ({len(rows)} cells)</h2>",
        _attribution_table(rows),
        "<h2>Compression vs speedup</h2>",
        _correlation_section(rows),
        "<h2>Advisor (predicted vs oracle)</h2>",
        _advisor_section(evs, advisor),
        "<h2>Per-thread timelines</h2>",
        _timeline_svg(evs),
        "<h2>Parallel balance</h2>",
        _balance_table(evs),
        "<h2>Workers (process backend)</h2>",
        _workers_section(evs),
        "<h2>Reliability and SLO alerts</h2>",
        _reliability_section(evs),
    ]
    if baseline is not None and current is not None:
        sections.append("<h2>Baseline deltas</h2>")
        sections.append(_delta_table(baseline, current))
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body>{''.join(sections)}</body></html>\n"
    )


def write_dashboard(path, events: Iterable[Any], **kwargs) -> str:
    """Render and write the report; returns *path* (for logging)."""
    text = render_dashboard(events, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return str(path)
