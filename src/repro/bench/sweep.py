"""Sensitivity sweeps: where do the paper's conclusions hold?

The paper argues compression pays *because* memory bandwidth is the
bottleneck, and predicts the trade grows more favorable as core counts
rise (Section VII).  These sweeps make that argument quantitative on
the machine model:

* :func:`bandwidth_sweep` -- scale the memory-system bandwidth and
  watch the CSR-DU/CSR-VI advantage appear (bandwidth-starved) or
  vanish (bandwidth-rich): the compression *crossover*;
* :func:`cache_sweep` -- scale the L2 capacity and watch a matrix
  migrate between the ML (streaming) and MS (resident) regimes, the
  boundary the paper draws at 4xL2 + 1 MB;
* :func:`thread_sweep` -- formats x thread counts in one grid.

Each returns plain rows ready for the report/CSV layer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.formats.base import SparseMatrix
from repro.formats.conversions import convert
from repro.machine.costmodel import CostModel, default_cost_model
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import MachineSpec, clovertown_8core


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid."""

    knob: str
    knob_value: float
    format_name: str
    threads: int
    time_s: float
    mflops: float
    bound: str


def _scale_bandwidth(machine: MachineSpec, factor: float) -> MachineSpec:
    return dataclasses.replace(
        machine,
        core_bw=machine.core_bw * factor,
        die_bw=machine.die_bw * factor,
        fsb_bw=machine.fsb_bw * factor,
        mem_bw=machine.mem_bw * factor,
    )


def bandwidth_sweep(
    matrix: SparseMatrix,
    *,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    formats: tuple[str, ...] = ("csr", "csr-du", "csr-vi"),
    threads: int = 8,
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
) -> list[SweepPoint]:
    """Sweep DRAM-path bandwidth; compression wins shrink as it grows."""
    machine = machine or clovertown_8core()
    cost_model = cost_model or default_cost_model()
    converted = {fmt: convert(matrix, fmt) for fmt in formats}
    points = []
    for factor in factors:
        m = _scale_bandwidth(machine, factor)
        for fmt in formats:
            res = simulate_spmv(
                converted[fmt], threads, m, cost_model=cost_model
            )
            points.append(
                SweepPoint(
                    knob="bandwidth",
                    knob_value=factor,
                    format_name=fmt,
                    threads=threads,
                    time_s=res.time_s,
                    mflops=res.mflops,
                    bound=res.bound,
                )
            )
    return points


def cache_sweep(
    matrix: SparseMatrix,
    *,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    format_name: str = "csr",
    threads: int = 8,
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
) -> list[SweepPoint]:
    """Sweep L2 capacity; the MS/ML regime boundary moves with it."""
    machine = machine or clovertown_8core()
    cost_model = cost_model or default_cost_model()
    converted = convert(matrix, format_name)
    points = []
    for factor in factors:
        m = dataclasses.replace(
            machine,
            l2_bytes=max(1, int(machine.l2_bytes * factor)),
            name=f"{machine.name}-l2x{factor:g}",
        )
        res = simulate_spmv(converted, threads, m, cost_model=cost_model)
        points.append(
            SweepPoint(
                knob="l2_capacity",
                knob_value=factor,
                format_name=format_name,
                threads=threads,
                time_s=res.time_s,
                mflops=res.mflops,
                bound=res.bound,
            )
        )
    return points


def thread_sweep(
    matrix: SparseMatrix,
    *,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    formats: tuple[str, ...] = ("csr", "csr-du", "csr-vi", "csr-du-vi"),
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
) -> list[SweepPoint]:
    """Format x thread grid (the figures' underlying data)."""
    machine = machine or clovertown_8core()
    cost_model = cost_model or default_cost_model()
    points = []
    for fmt in formats:
        converted = convert(matrix, fmt)
        for t in thread_counts:
            res = simulate_spmv(converted, t, machine, cost_model=cost_model)
            points.append(
                SweepPoint(
                    knob="threads",
                    knob_value=float(t),
                    format_name=fmt,
                    threads=t,
                    time_s=res.time_s,
                    mflops=res.mflops,
                    bound=res.bound,
                )
            )
    return points


def format_sweep_table(points: list[SweepPoint]) -> str:
    """Aligned text rendering of any sweep's points."""
    lines = [
        f"{'knob':<14} {'value':>8} {'format':>10} {'thr':>4} "
        f"{'time':>12} {'MFLOPS':>9} bound"
    ]
    for p in points:
        lines.append(
            f"{p.knob:<14} {p.knob_value:>8.3g} {p.format_name:>10} "
            f"{p.threads:>4} {p.time_s:>12.4e} {p.mflops:>9.1f} {p.bound}"
        )
    return "\n".join(lines)
