"""Structured experiment recording (JSON), for archival and diffing.

``python -m repro.bench ... --json results.json`` serializes every
driver's result dataclasses with enough context (scale, machine name,
calibration constants, package version) that two runs can be compared
mechanically -- the reproducibility layer on top of the human-readable
tables.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro import __version__
from repro.bench.experiments import (
    AblationRow,
    FigResult,
    FrequencyPoint,
    SpeedupTableResult,
    Table2Result,
)
from repro.bench.harness import ExperimentConfig


def _keyed(d: dict) -> dict:
    """JSON object keys must be strings; tuples become 'a|b' keys."""
    out = {}
    for k, v in d.items():
        if isinstance(k, tuple):
            k = "|".join(str(p) for p in k)
        out[str(k)] = _convert(v)
    return out


def _convert(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _keyed(dataclasses.asdict(value))
    if isinstance(value, dict):
        return _keyed(value)
    if isinstance(value, (list, tuple)):
        return [_convert(v) for v in value]
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


def result_to_dict(result: Any) -> dict:
    """Serialize any experiment result dataclass to plain JSON types."""
    if isinstance(
        result,
        (Table2Result, SpeedupTableResult, FigResult, AblationRow, FrequencyPoint),
    ):
        return _convert(result)
    if isinstance(result, list):
        return {"rows": [_convert(r) for r in result]}
    if isinstance(result, dict):
        return _keyed(result)
    raise TypeError(f"cannot record {type(result).__name__}")


def run_payload(results: dict[str, Any], config: ExperimentConfig) -> dict:
    """The JSON-ready bundle for a set of named experiment results."""
    return {
        "library_version": __version__,
        "scale": config.scale,
        "machine": config.scaled_machine().name,
        "clock": config.clock,
        "kernel": config.kernel,
        "encoder": config.encoder,
        "cost_model": dataclasses.asdict(config.cost_model),
        "machine_spec": {
            k: v
            for k, v in dataclasses.asdict(config.scaled_machine()).items()
            if k != "cores"
        },
        "experiments": {
            name: result_to_dict(result) for name, result in results.items()
        },
    }


def record_run(
    results: dict[str, Any], config: ExperimentConfig, path
) -> None:
    """Write a named bundle of experiment results to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(run_payload(results, config), fh, indent=2, sort_keys=True)


def load_run(path) -> dict:
    """Read back a bundle written by :func:`record_run`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
