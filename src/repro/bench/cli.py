"""Command-line entry point: ``python -m repro.bench <experiment>``.

Regenerates any paper table/figure or ablation at a chosen scale::

    python -m repro.bench table2 --scale 0.0625
    python -m repro.bench table3 table4 --scale 1.0
    python -m repro.bench fig7 --limit 20
    python -m repro.bench all --scale 0.0625 --out results.txt

Telemetry: ``--trace PATH`` records every span/counter of the run as
JSONL, ``--chrome-trace PATH`` writes the same events for
``chrome://tracing``, and the ``profile`` pseudo-experiment runs the
experiments after it with telemetry on and prints the top spans and
counters instead of requiring a trace file::

    python -m repro.bench table2 --scale 0.0625 --trace /tmp/t.jsonl
    python -m repro.bench profile table2 --scale 0.0625 --top 10

Live observability: ``--obs`` installs a :mod:`repro.obs` runtime for
the run (chunk/cell latency histograms, windowed fallback/retry/cache
rates, resource gauges, the default SLO rule set), ``--metrics-out``
writes the final OpenMetrics snapshot (``--obs-interval N`` rewrites
it every N seconds while running), ``--rule`` adds SLO rules, and
``--stacks-out`` runs the sampling profiler, writing flamegraph
collapsed stacks::

    python -m repro.bench table2 --scale 0.0625 --obs \
        --metrics-out metrics.prom --obs-interval 5 \
        --rule 'rate(convert.cache.miss[10s]) > 100'
    python -m repro.bench table2 --scale 0.0625 --stacks-out stacks.txt

``report-html`` works like ``profile`` but renders the
:mod:`repro.bench.dashboard` report (attribution tables, per-thread
timelines, baseline deltas) instead; ``perf-gate`` delegates everything
after it to :mod:`repro.bench.baseline`::

    python -m repro.bench report-html table2 --scale 0.0625 --html report.html
    python -m repro.bench perf-gate run.json --history perf_history.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import telemetry
from repro.bench import experiments as exp
from repro.bench.harness import ExperimentConfig
from repro.bench.report import (
    format_fig_series,
    format_speedup_table,
    format_table2,
)
from repro.telemetry.export import export_all, summary

_EXPERIMENTS = ("table2", "table3", "table4", "fig7", "fig8", "ablations")


def _run_one(
    name: str, config: ExperimentConfig, limit: int | None
) -> tuple[str, object | None]:
    """Run one experiment; return (rendered text, structured result)."""
    if name == "table2":
        result = exp.table2(config, limit=limit)
        return format_table2(result), result
    if name == "table3":
        result = exp.table3(config, limit=limit)
        return format_speedup_table(result), result
    if name == "table4":
        result = exp.table4(config, limit=limit)
        return format_speedup_table(result), result
    if name == "fig7":
        result = exp.fig7(config, limit=limit)
        return format_fig_series(result), result
    if name == "fig8":
        result = exp.fig8(config, limit=limit)
        return format_fig_series(result), result
    if name == "ablations":
        chunks = []
        for title, rows in (
            ("ABL-1 unit policy", exp.ablation_unit_policy(config)),
            ("ABL-2 DCSR vs CSR-DU", exp.ablation_dcsr(config)),
            ("ABL-3 index width", exp.ablation_index_width(config)),
            ("ABL-5 CSR-DU-VI", exp.ablation_du_vi(config)),
            ("ABL-6 sequential units", exp.ablation_seq_units(config)),
            ("ABL-8 RCM reordering x CSR-DU", exp.ablation_rcm(config)),
        ):
            chunks.append(title)
            chunks.append(
                f"{'id':>4} {'variant':<14} {'idx bytes':>10} {'total':>10} "
                f"{'t(1)':>10} {'t(8)':>10}"
            )
            for r in rows:
                chunks.append(
                    f"{r.matrix_id:>4} {r.label:<14} {r.index_bytes:>10} "
                    f"{r.total_bytes:>10} {r.time_1t:>10.3e} {r.time_8t:>10.3e}"
                )
            chunks.append("")
        placement = exp.ablation_placement(config)
        chunks.append("ABL-4 placement (seconds)")
        for (mid, threads, pol), t in sorted(placement.items()):
            chunks.append(f"  id={mid} threads={threads} {pol:<7}: {t:.3e}")
        chunks.append("")
        chunks.append("ABL-7 serial compressed-vs-CSR ratio by clock")
        for p in exp.ablation_frequency(config):
            chunks.append(
                f"  id={p.matrix_id} {p.clock_ghz:4.2f} GHz "
                f"{p.format_name:<8}: {p.serial_ratio_vs_csr:.3f}"
            )
        return "\n".join(chunks), None
    raise SystemExit(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "perf-gate":
        from repro.bench.baseline import main as gate_main

        return gate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on the machine model.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            f"experiments to run: {', '.join(_EXPERIMENTS)}, or 'all'; "
            "prefix with 'profile' for a telemetry summary or "
            "'report-html' for the HTML dashboard; 'perf-gate ...' "
            "delegates to the regression gate"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="working-set scale (matrices and caches shrink together); 1.0 = paper size",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the number of matrices per set (deterministic subset)",
    )
    parser.add_argument(
        "--kernel",
        type=str,
        default="cached",
        help=(
            "kernel tier timed by the real clock (cached, batched, "
            "vectorized, reference, or auto -- the configuration "
            "advisor picks per matrix+format); the model clock "
            "ignores it"
        ),
    )
    parser.add_argument(
        "--format",
        type=str,
        default=None,
        dest="format_name",
        help=(
            "override the compressed format of every experiment "
            "(csr-du, csr-vi, csr-du-vi, ..., or auto -- the advisor "
            "picks per matrix); the CSR baseline column always stays"
        ),
    )
    parser.add_argument(
        "--threads",
        type=str,
        default=None,
        help=(
            "collapse each experiment's thread configurations to one: "
            "an integer pins the count, auto asks the advisor per "
            "matrix (GIL/CPU-aware under the real clock)"
        ),
    )
    parser.add_argument(
        "--encoder",
        type=str,
        default="batched",
        help=(
            "CSR-DU encode pipeline (batched = vectorized one-pass, "
            "reference = per-unit CtlWriter); both emit identical bytes"
        ),
    )
    parser.add_argument(
        "--backend",
        type=str,
        default="thread",
        choices=("thread", "process"),
        help=(
            "executor for real-clock multi-worker cells: thread "
            "(GIL-bound) or process (shared-memory shards, true "
            "multi-core); the model clock ignores it"
        ),
    )
    parser.add_argument(
        "--storage",
        type=str,
        default="mem",
        choices=("mem", "mmap"),
        help=(
            "shard storage for those cells: mem (RAM / shared memory) "
            "or mmap (out-of-core shard files)"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per real-clock executor cell; flows "
            "into shard builds and per-chunk waits, and expiry raises "
            "a typed DeadlineExceeded instead of hanging the sweep"
        ),
    )
    parser.add_argument(
        "--degrade",
        action="store_true",
        help=(
            "wrap real-clock executors in the resilience degradation "
            "ladder (backend process -> thread -> serial, storage "
            "mmap -> mem) so repeated typed failures fall back to a "
            "slower-but-correct rung instead of failing the cell"
        ),
    )
    parser.add_argument(
        "--resume",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "checkpoint JSONL: finished (matrix, format) cells are "
            "appended there as they complete, and a rerun pointing at "
            "the same file skips them (results are identical to an "
            "uninterrupted run; mismatched-configuration lines are "
            "ignored)"
        ),
    )
    parser.add_argument("--out", type=str, default=None, help="also write to a file")
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="record structured results (with machine/cost-model context) as JSON",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        help="enable telemetry and write the event stream as JSONL",
    )
    parser.add_argument(
        "--chrome-trace",
        type=str,
        default=None,
        help=(
            "enable telemetry and write a chrome://tracing JSON file; "
            "with --backend process the worker-side spans are merged "
            "in, one process track per worker pid"
        ),
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="span rows shown in the 'profile' summary (default 20)",
    )
    parser.add_argument(
        "--html",
        type=str,
        default="report.html",
        help="output path for the 'report-html' dashboard",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help=(
            "recorded run JSON to diff against in the dashboard's "
            "baseline-deltas section"
        ),
    )
    parser.add_argument(
        "--advisor-json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "BENCH_advisor.json to source the dashboard's advisor "
            "summary table from (predicted vs oracle configs, regret, "
            "prediction error)"
        ),
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "enable the live observability runtime (latency histograms, "
            "windowed rates, resource gauges, default SLO rules)"
        ),
    )
    parser.add_argument(
        "--obs-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "periodically evaluate SLO rules and flush a snapshot "
            "(rewrites --metrics-out in place each tick); 0 = final only"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "write the final OpenMetrics text snapshot here "
            "(implies --obs)"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="EXPR",
        help=(
            "additional SLO rule (repeatable), e.g. "
            "'rate(kernel.fallback[10s]) > 0' or "
            "'p99(spmv.chunk.seconds) > 5 * p50(spmv.chunk.seconds)'"
        ),
    )
    parser.add_argument(
        "--stacks-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "run the sampling wall-clock profiler and write flamegraph "
            "collapsed stacks here (implies --obs)"
        ),
    )
    parser.add_argument(
        "--stacks-hz",
        type=float,
        default=97.0,
        help="sampling profiler rate in Hz (default 97)",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    profile = html_report = False
    if names and names[0] == "profile":
        profile = True
        names = names[1:]
        if not names:
            parser.error("'profile' needs at least one experiment to run")
    elif names and names[0] == "report-html":
        html_report = True
        names = names[1:]
        if not names:
            parser.error("'report-html' needs at least one experiment to run")
    if "all" in names:
        names = list(_EXPERIMENTS)
    if args.threads is not None and args.threads != "auto":
        try:
            int(args.threads)
        except ValueError:
            parser.error("--threads takes an integer or 'auto'")
    config = ExperimentConfig(
        scale=args.scale,
        kernel=args.kernel,
        encoder=args.encoder,
        backend=args.backend,
        storage=args.storage,
        format_override=args.format_name,
        threads_choice=args.threads,
        checkpoint_path=args.resume,
        deadline_s=args.deadline,
        degrade=args.degrade,
    )
    trace_on = profile or html_report or args.trace or args.chrome_trace
    obs_on = bool(
        args.obs
        or args.metrics_out
        or args.stacks_out
        or args.rule
        or args.obs_interval
    )
    prev_collector = (
        telemetry.set_collector(telemetry.Collector()) if trace_on else None
    )
    runtime = prev_runtime = None
    if obs_on:
        from repro import obs
        from repro.obs.rules import default_rules, parse_rule

        rules = default_rules() + [parse_rule(r) for r in args.rule]
        runtime = obs.ObsRuntime(rules=rules)
        prev_runtime = obs.set_runtime(runtime)
        runtime.start_resource_monitor()
        if args.stacks_out:
            runtime.start_profiler(args.stacks_hz)
        if args.obs_interval > 0:
            runtime.start_flusher(args.obs_interval, args.metrics_out)
    try:
        blocks = []
        structured: dict[str, object] = {}
        for name in names:
            start = time.perf_counter()
            text, result = _run_one(name, config, args.limit)
            elapsed = time.perf_counter() - start
            blocks.append(
                f"=== {name} (scale={args.scale:g}, {elapsed:.1f}s) ===\n{text}\n"
            )
            if (args.json or html_report) and result is not None:
                structured[name] = result
        output = "\n".join(blocks)
        print(output)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(output)
        if args.json and structured:
            from repro.bench.record import record_run

            record_run(structured, config, args.json)
        if runtime is not None:
            # Resource monitor and rules get one final, deterministic
            # pass before anything is exported: the last sample, the
            # final rule evaluation, and the obs.snapshot event all
            # land in the trace written below.
            if runtime.monitor is not None:
                runtime.monitor.sample_once()
            runtime.flush_snapshot()
        if trace_on:
            collector = telemetry.get_collector()
            written = export_all(
                collector,
                jsonl_path=args.trace,
                chrome_path=args.chrome_trace,
                openmetrics_path=args.metrics_out,
                obs_runtime=runtime,
            )
            for kind, n in written.items():
                target = {
                    "jsonl": args.trace,
                    "chrome": args.chrome_trace,
                    "openmetrics": args.metrics_out,
                }[kind]
                unit = "series samples" if kind == "openmetrics" else "events"
                print(f"[telemetry] wrote {n} {kind} {unit} to {target}")
        elif runtime is not None and args.metrics_out:
            from repro.telemetry.export import write_openmetrics

            n = write_openmetrics(
                telemetry.Collector(), args.metrics_out, obs_runtime=runtime
            )
            print(
                f"[obs] wrote {n} openmetrics series samples to "
                f"{args.metrics_out}"
            )
        if runtime is not None:
            if args.stacks_out and runtime.profiler is not None:
                runtime.profiler.stop()
                stacks = runtime.profiler.write_collapsed(args.stacks_out)
                print(
                    f"[obs] wrote {stacks} collapsed stacks to "
                    f"{args.stacks_out}"
                )
            for alert in runtime.alerts:
                print(f"[obs] ALERT {alert.describe()}")
        if trace_on:
            if profile:
                from repro.perf.imbalance import format_report, summarize_parallel

                print()
                print(summary(collector, top=args.top))
                report = summarize_parallel(collector.snapshot())
                if report.ncalls:
                    print()
                    print(format_report(report))
            if html_report:
                from repro.bench.dashboard import write_dashboard
                from repro.bench.record import load_run, run_payload

                baseline = load_run(args.baseline) if args.baseline else None
                current = (
                    run_payload(structured, config)
                    if baseline is not None
                    else None
                )
                advisor_data = None
                if args.advisor_json:
                    import json as _json

                    with open(args.advisor_json, "r", encoding="utf-8") as fh:
                        advisor_data = _json.load(fh)
                path = write_dashboard(
                    args.html,
                    collector.snapshot(),
                    baseline=baseline,
                    current=current,
                    advisor=advisor_data,
                )
                print(f"[dashboard] wrote {path}")
    finally:
        if runtime is not None:
            from repro import obs

            runtime.close()
            obs.set_runtime(prev_runtime)
        if trace_on:
            telemetry.set_collector(prev_collector)
    return 0


if __name__ == "__main__":
    sys.exit(main())
