"""Experiment drivers: one function per paper table/figure plus ablations.

Every driver returns a plain-dataclass result that
:mod:`repro.bench.report` can format as the paper formats it, and that
EXPERIMENTS.md records against the paper's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import (
    SPEEDUP_THREADS,
    TABLE2_CONFIGS,
    ExperimentConfig,
    MatrixResult,
    aggregate,
    count_slowdowns,
    run_format_matrix,
    run_set,
)
from repro.formats.conversions import convert
from repro.machine.simulate import simulate_spmv
from repro.matrices.collection import (
    M0_IDS,
    M0_VI_IDS,
    ML_IDS,
    ML_VI_IDS,
    MS_IDS,
    MS_VI_IDS,
    realize,
)

_CLOSE = "close"


def _subset(ids: tuple[int, ...], limit: int | None) -> tuple[int, ...]:
    """Deterministic subset for reduced-cost runs (every k-th id)."""
    if limit is None or limit >= len(ids):
        return ids
    step = max(1, len(ids) // limit)
    return ids[::step][:limit]


# ---------------------------------------------------------------------------
# Table II: CSR serial MFLOPS and multithreaded speedups
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Result:
    """Rows of Table II: per thread configuration, per matrix set."""

    serial_mflops: dict[str, tuple[float, float, float]]  # set -> (avg, max, min)
    speedups: dict[tuple[int, str], dict[str, tuple[float, float, float]]]
    ids_used: dict[str, tuple[int, ...]]


def table2(
    config: ExperimentConfig | None = None, *, limit: int | None = None
) -> Table2Result:
    """EXP-T2: CSR performance over MS / ML / M0 (Table II)."""
    config = config or ExperimentConfig()
    ms = _subset(MS_IDS, limit)
    ml = _subset(ML_IDS, limit)
    ids = tuple(sorted(set(ms + ml)))
    results = run_set(ids, ("csr",), config, configs=TABLE2_CONFIGS)
    sets = {"MS": ms, "ML": ml, "M0": ids}
    serial = {
        name: aggregate([results[i]["csr"].mflops[(1, _CLOSE)] for i in sids])
        for name, sids in sets.items()
    }
    speedups: dict[tuple[int, str], dict[str, tuple[float, float, float]]] = {}
    for key in TABLE2_CONFIGS[1:]:
        # A --threads override collapses the run to (serial, picked);
        # aggregate only the configurations every matrix actually ran.
        if any(key not in results[i]["csr"].times for i in ids):
            continue
        speedups[key] = {
            name: aggregate([results[i]["csr"].scaling(key) for i in sids])
            for name, sids in sets.items()
        }
    return Table2Result(serial_mflops=serial, speedups=speedups, ids_used=sets)


# ---------------------------------------------------------------------------
# Tables III / IV: compressed format vs CSR at equal thread count
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpeedupTableResult:
    """Tables III/IV: per thread count, per set: (avg, max, min, n<0.98)."""

    format_name: str
    rows: dict[int, dict[str, tuple[float, float, float, int]]]
    per_matrix: dict[int, dict[int, float]] = field(repr=False, default_factory=dict)
    ids_used: dict[str, tuple[int, ...]] = field(default_factory=dict)


def _ran_format(result_map: dict, requested: str) -> str:
    """The compressed format that actually ran for one matrix.

    With ``config.format_override`` set (``--format``), the harness may
    have replaced *requested* with another format -- or with nothing
    but the CSR baseline, when the advisor's ``auto`` pick *is* plain
    CSR (the speedup then reads 1.0, honestly).
    """
    if requested in result_map:
        return requested
    compressed = [name for name in result_map if name != "csr"]
    return compressed[0] if compressed else "csr"


def _speedup_table(
    format_name: str,
    sets: dict[str, tuple[int, ...]],
    config: ExperimentConfig,
) -> SpeedupTableResult:
    all_ids = tuple(sorted({i for sids in sets.values() for i in sids}))
    configs = tuple((t, _CLOSE) for t in SPEEDUP_THREADS)
    results = run_set(all_ids, ("csr", format_name), config, configs=configs)
    # A --threads override collapses the sweep to (serial, picked);
    # tabulate only thread counts every matrix actually ran.
    threads_ran = tuple(
        t
        for t in SPEEDUP_THREADS
        if all((t, _CLOSE) in results[mid]["csr"].times for mid in all_ids)
    )
    rows: dict[int, dict[str, tuple[float, float, float, int]]] = {}
    per_matrix: dict[int, dict[int, float]] = {t: {} for t in threads_ran}
    for threads in threads_ran:
        key = (threads, _CLOSE)
        for mid in all_ids:
            ran = _ran_format(results[mid], format_name)
            per_matrix[threads][mid] = results[mid][ran].speedup_vs(
                results[mid]["csr"], key
            )
        rows[threads] = {}
        for name, sids in sets.items():
            vals = [per_matrix[threads][i] for i in sids]
            avg, mx, mn = aggregate(vals)
            rows[threads][name] = (avg, mx, mn, count_slowdowns(vals))
    return SpeedupTableResult(
        format_name=format_name, rows=rows, per_matrix=per_matrix, ids_used=sets
    )


def table3(
    config: ExperimentConfig | None = None, *, limit: int | None = None
) -> SpeedupTableResult:
    """EXP-T3: CSR-DU vs CSR over MS / ML / M0 (Table III)."""
    config = config or ExperimentConfig()
    ms, ml = _subset(MS_IDS, limit), _subset(ML_IDS, limit)
    sets = {"MS": ms, "ML": ml, "M0": tuple(sorted(set(ms + ml)))}
    return _speedup_table("csr-du", sets, config)


def table4(
    config: ExperimentConfig | None = None, *, limit: int | None = None
) -> SpeedupTableResult:
    """EXP-T4: CSR-VI vs CSR over the ttu > 5 sets (Table IV)."""
    config = config or ExperimentConfig()
    ms, ml = _subset(MS_VI_IDS, limit), _subset(ML_VI_IDS, limit)
    sets = {"MS_vi": ms, "ML_vi": ml, "M0_vi": tuple(sorted(set(ms + ml)))}
    return _speedup_table("csr-vi", sets, config)


# ---------------------------------------------------------------------------
# Figures 7 / 8: per-matrix detail
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FigSeries:
    """One matrix's bar group in Fig. 7/8.

    ``compressed_speedups[t]`` is the compressed format's speedup over
    *serial CSR* with t threads (the bars); ``csr_speedups[t]`` the CSR
    multithreaded speedup (the black squares); ``size_reduction`` the
    percentage printed above the bars.
    """

    matrix_id: int
    name: str
    size_reduction: float
    compressed_speedups: dict[int, float]
    csr_speedups: dict[int, float]


@dataclass(frozen=True)
class FigResult:
    format_name: str
    series: tuple[FigSeries, ...]  # sorted by 8-thread speedup, paper-style


def _figure(
    format_name: str,
    ids: tuple[int, ...],
    config: ExperimentConfig,
) -> FigResult:
    from repro.matrices.collection import entry

    configs = tuple((t, _CLOSE) for t in SPEEDUP_THREADS)
    results = run_set(ids, ("csr", format_name), config, configs=configs)
    series = []
    for mid in ids:
        csr_res = results[mid]["csr"]
        cmp_res = results[mid][_ran_format(results[mid], format_name)]
        csr_serial = csr_res.times[(1, _CLOSE)]
        threads_ran = tuple(
            t for t in SPEEDUP_THREADS if (t, _CLOSE) in csr_res.times
        )
        series.append(
            FigSeries(
                matrix_id=mid,
                name=entry(mid).name,
                size_reduction=cmp_res.size_reduction,
                compressed_speedups={
                    t: csr_serial / cmp_res.times[(t, _CLOSE)]
                    for t in threads_ran
                },
                csr_speedups={
                    t: csr_serial / csr_res.times[(t, _CLOSE)]
                    for t in threads_ran
                },
            )
        )
    series.sort(key=lambda s: s.compressed_speedups[max(s.compressed_speedups)])
    return FigResult(format_name=format_name, series=tuple(series))


def fig7(
    config: ExperimentConfig | None = None, *, limit: int | None = None
) -> FigResult:
    """EXP-F7: per-matrix CSR-DU speedups over M0 (Figure 7)."""
    config = config or ExperimentConfig()
    return _figure("csr-du", _subset(M0_IDS, limit), config)


def fig8(
    config: ExperimentConfig | None = None, *, limit: int | None = None
) -> FigResult:
    """EXP-F8: per-matrix CSR-VI speedups over M0_vi (Figure 8)."""
    config = config or ExperimentConfig()
    return _figure("csr-vi", _subset(M0_VI_IDS, limit), config)


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    matrix_id: int
    label: str
    index_bytes: int
    total_bytes: int
    time_8t: float
    time_1t: float


def ablation_unit_policy(
    config: ExperimentConfig | None = None, *, ids: tuple[int, ...] = (55, 69, 84)
) -> list[AblationRow]:
    """ABL-1: CSR-DU greedy vs aligned unit splitting."""
    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    rows = []
    for mid in ids:
        matrix = realize(mid, scale=config.scale)
        for policy in ("greedy", "aligned"):
            du = convert(matrix, "csr-du", policy=policy)
            rows.append(
                AblationRow(
                    matrix_id=mid,
                    label=f"csr-du/{policy}",
                    index_bytes=du.storage().index_bytes,
                    total_bytes=du.storage().total_bytes,
                    time_8t=simulate_spmv(du, 8, machine, cost_model=config.cost_model).time_s,
                    time_1t=simulate_spmv(du, 1, machine, cost_model=config.cost_model).time_s,
                )
            )
    return rows


def ablation_dcsr(
    config: ExperimentConfig | None = None, *, ids: tuple[int, ...] = (55, 69, 84)
) -> list[AblationRow]:
    """ABL-2: DCSR vs CSR-DU (Section III-B comparison)."""
    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    rows = []
    for mid in ids:
        matrix = realize(mid, scale=config.scale)
        for fmt in ("csr-du", "dcsr", "csr"):
            m = convert(matrix, fmt)
            rows.append(
                AblationRow(
                    matrix_id=mid,
                    label=fmt,
                    index_bytes=m.storage().index_bytes,
                    total_bytes=m.storage().total_bytes,
                    time_8t=simulate_spmv(m, 8, machine, cost_model=config.cost_model).time_s,
                    time_1t=simulate_spmv(m, 1, machine, cost_model=config.cost_model).time_s,
                )
            )
    return rows


def ablation_index_width(
    config: ExperimentConfig | None = None, *, ids: tuple[int, ...] = (41, 47, 55)
) -> list[AblationRow]:
    """ABL-3: 16-bit vs 32-bit CSR indices (Williams et al. [11] trick)."""
    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    rows = []
    for mid in ids:
        matrix = realize(mid, scale=config.scale)
        csr = convert(matrix, "csr")
        variants = [("csr/32-bit", csr)]
        if csr.ncols - 1 < (1 << 15):
            variants.append(
                ("csr/16-bit", csr.with_index_dtype(np.int16, cols_only=True))
            )
        for label, m in variants:
            rows.append(
                AblationRow(
                    matrix_id=mid,
                    label=label,
                    index_bytes=m.storage().index_bytes,
                    total_bytes=m.storage().total_bytes,
                    time_8t=simulate_spmv(m, 8, machine, cost_model=config.cost_model).time_s,
                    time_1t=simulate_spmv(m, 1, machine, cost_model=config.cost_model).time_s,
                )
            )
    return rows


def ablation_placement(
    config: ExperimentConfig | None = None, *, ids: tuple[int, ...] = (55, 69)
) -> dict[tuple[int, int, str], float]:
    """ABL-4: close vs spread placement at 2 and 4 threads (CSR).

    Returns ``{(matrix_id, threads, placement): seconds}``.
    """
    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    out: dict[tuple[int, int, str], float] = {}
    for mid in ids:
        csr = convert(realize(mid, scale=config.scale), "csr")
        for threads in (2, 4):
            for placement in ("close", "spread"):
                out[(mid, threads, placement)] = simulate_spmv(
                    csr,
                    threads,
                    machine,
                    placement=placement,
                    cost_model=config.cost_model,
                ).time_s
    return out


def ablation_du_vi(
    config: ExperimentConfig | None = None, *, ids: tuple[int, ...] = (47, 84, 93)
) -> list[AblationRow]:
    """ABL-5: the combined CSR-DU-VI format against its two halves."""
    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    rows = []
    for mid in ids:
        matrix = realize(mid, scale=config.scale)
        for fmt in ("csr", "csr-du", "csr-vi", "csr-du-vi"):
            m = convert(matrix, fmt)
            rows.append(
                AblationRow(
                    matrix_id=mid,
                    label=fmt,
                    index_bytes=m.storage().index_bytes,
                    total_bytes=m.storage().total_bytes,
                    time_8t=simulate_spmv(m, 8, machine, cost_model=config.cost_model).time_s,
                    time_1t=simulate_spmv(m, 1, machine, cost_model=config.cost_model).time_s,
                )
            )
    return rows


def ablation_seq_units(
    config: ExperimentConfig | None = None,
    *,
    half_bandwidths: tuple[int, ...] = (4, 16, 64),
) -> list[AblationRow]:
    """ABL-6: sequential (constant-stride) units vs the paper's greedy.

    Run on dense-band matrices (each row one contiguous column run),
    where the sequential-unit extension collapses per-element u8 deltas
    into constant-size unit headers (the CSX direction; see
    :mod:`repro.compress.delta`).  The catalog's scattered families
    have no long constant runs, so this ablation builds its own.
    """
    from repro.formats.conversions import to_csr
    from repro.matrices.generators import dense_band

    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    rows = []
    for k in half_bandwidths:
        n = max(64, int(120_000 * config.scale))
        matrix = to_csr(dense_band(n, k))
        for policy in ("greedy", "seq"):
            du = convert(matrix, "csr-du", policy=policy)
            rows.append(
                AblationRow(
                    matrix_id=k,  # labeled by half bandwidth
                    label=f"csr-du/{policy}",
                    index_bytes=du.storage().index_bytes,
                    total_bytes=du.storage().total_bytes,
                    time_8t=simulate_spmv(du, 8, machine, cost_model=config.cost_model).time_s,
                    time_1t=simulate_spmv(du, 1, machine, cost_model=config.cost_model).time_s,
                )
            )
    return rows


@dataclass(frozen=True)
class FrequencyPoint:
    """One cell of the ABL-7 frequency study."""

    matrix_id: int
    clock_ghz: float
    format_name: str
    serial_ratio_vs_csr: float


def ablation_frequency(
    config: ExperimentConfig | None = None,
    *,
    ids: tuple[int, ...] = (69, 84, 93),
    clocks_ghz: tuple[float, ...] = (1.5, 2.0, 2.66, 3.0),
) -> list[FrequencyPoint]:
    """ABL-7: the paper's own Section VI-D claim, reproduced.

    The paper found weaker *serial* CSR-DU/CSR-VI gains on the 2 GHz
    Clovertown than on the (faster-clocked) Woodcrest of [8], and
    verified by down-clocking the Woodcrest to 2 GHz.  Mechanism: a
    faster core makes the kernel more memory-bound, so trading cycles
    for bytes pays more.  This ablation sweeps the model's clock and
    reports the serial compressed-vs-CSR ratio, which must grow with
    frequency.
    """
    import dataclasses

    config = config or ExperimentConfig()
    base = config.scaled_machine()
    points = []
    for mid in ids:
        matrix = realize(mid, scale=config.scale)
        converted = {
            fmt: convert(matrix, fmt) for fmt in ("csr", "csr-du", "csr-vi")
        }
        for ghz in clocks_ghz:
            machine = dataclasses.replace(
                base, clock_hz=ghz * 1e9, name=f"{base.name}@{ghz:g}GHz"
            )
            t_csr = simulate_spmv(
                converted["csr"], 1, machine, cost_model=config.cost_model
            ).time_s
            for fmt in ("csr-du", "csr-vi"):
                t = simulate_spmv(
                    converted[fmt], 1, machine, cost_model=config.cost_model
                ).time_s
                points.append(
                    FrequencyPoint(
                        matrix_id=mid,
                        clock_ghz=ghz,
                        format_name=fmt,
                        serial_ratio_vs_csr=t_csr / t,
                    )
                )
    return points


def ablation_rcm(
    config: ExperimentConfig | None = None, *, grid: int = 64, seed: int = 17
) -> list[AblationRow]:
    """ABL-8: RCM reordering composed with CSR-DU.

    A banded stencil scrambled by a random symmetric permutation stands
    in for a badly ordered mesh.  RCM restores the band, shrinking the
    column deltas back into the u8 class -- reordering ([13] in the
    paper's related work) and index compression compound.
    """
    import numpy as np

    from repro.formats.conversions import to_csr
    from repro.matrices.generators import stencil_2d
    from repro.matrices.reorder import apply_symmetric_permutation, rcm_reorder
    from repro.matrices.values import continuous_values, set_matrix_values

    config = config or ExperimentConfig()
    machine = config.scaled_machine()
    side = max(16, int(grid * config.scale ** 0.5 * 8))
    pattern = to_csr(stencil_2d(side, side))
    matrix = set_matrix_values(pattern, continuous_values(pattern.nnz, seed))
    rng = np.random.default_rng(seed)
    scrambled = apply_symmetric_permutation(
        matrix, rng.permutation(matrix.nrows).astype(np.int64)
    )
    reordered, _ = rcm_reorder(scrambled)
    rows = []
    for label, m in (("scrambled", scrambled), ("rcm", reordered)):
        du = convert(m, "csr-du")
        rows.append(
            AblationRow(
                matrix_id=side,  # labeled by grid side
                label=f"csr-du/{label}",
                index_bytes=du.storage().index_bytes,
                total_bytes=du.storage().total_bytes,
                time_8t=simulate_spmv(du, 8, machine, cost_model=config.cost_model).time_s,
                time_1t=simulate_spmv(du, 1, machine, cost_model=config.cost_model).time_s,
            )
        )
    return rows


@dataclass(frozen=True)
class CoreScalingPoint:
    """One cell of the future-core-scaling study (Section VII)."""

    matrix_id: int
    cores: int
    format_name: str
    speedup_vs_csr: float
    csr_time_s: float = 0.0
    time_s: float = 0.0


def future_core_scaling(
    config: ExperimentConfig | None = None,
    *,
    ids: tuple[int, ...] = (69, 85),
    core_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
) -> list[CoreScalingPoint]:
    """Section VII's prediction, tested: with more cores behind the same
    memory controller, the compressed formats' advantage over CSR grows.

    Machines come from :func:`repro.machine.topology.smp_machine` with
    the calibrated Clovertown bandwidths and memory controller held
    fixed.  Cores per die grow (the actual multicore trend) so the die
    count -- and with it the aggregate L2 -- plateaus at the
    Clovertown's four dies: the matrices stay memory bound and the
    study isolates *bandwidth sharing*, which is what Section VII is
    about.
    """
    from repro.machine.topology import smp_machine

    config = config or ExperimentConfig()
    points = []
    for mid in ids:
        matrix = realize(mid, scale=config.scale)
        converted = {
            fmt: convert(matrix, fmt) for fmt in ("csr", "csr-du", "csr-vi")
        }
        for cores in core_counts:
            machine = smp_machine(cores, cores_per_die=max(2, cores // 4))
            if config.scale != 1.0:
                machine = machine.scaled(config.scale)
            t_csr = simulate_spmv(
                converted["csr"], cores, machine, cost_model=config.cost_model
            ).time_s
            for fmt in ("csr-du", "csr-vi"):
                t = simulate_spmv(
                    converted[fmt], cores, machine, cost_model=config.cost_model
                ).time_s
                points.append(
                    CoreScalingPoint(
                        matrix_id=mid,
                        cores=cores,
                        format_name=fmt,
                        speedup_vs_csr=t_csr / t,
                        csr_time_s=t_csr,
                        time_s=t,
                    )
                )
    return points
