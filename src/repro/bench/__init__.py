"""Experiment harness: the paper's tables and figures, regenerated."""

from repro.bench.harness import (
    ExperimentConfig,
    MatrixResult,
    run_format_matrix,
    run_set,
)
from repro.bench.experiments import (
    ablation_dcsr,
    ablation_du_vi,
    ablation_index_width,
    ablation_placement,
    ablation_frequency,
    ablation_rcm,
    ablation_seq_units,
    ablation_unit_policy,
    fig7,
    fig8,
    future_core_scaling,
    table2,
    table3,
    table4,
)
from repro.bench.report import (
    format_fig_series,
    format_speedup_table,
    format_table2,
)
from repro.bench.baseline import check_run, load_history, snapshot
from repro.bench.compare import compare_runs, format_comparison, structure_diff
from repro.bench.dashboard import render_dashboard, write_dashboard
from repro.bench.record import load_run, record_run, result_to_dict, run_payload
from repro.bench.sweep import (
    SweepPoint,
    bandwidth_sweep,
    cache_sweep,
    format_sweep_table,
    thread_sweep,
)

__all__ = [
    "ExperimentConfig",
    "MatrixResult",
    "run_format_matrix",
    "run_set",
    "table2",
    "table3",
    "table4",
    "fig7",
    "fig8",
    "future_core_scaling",
    "ablation_unit_policy",
    "ablation_dcsr",
    "ablation_index_width",
    "ablation_placement",
    "ablation_seq_units",
    "ablation_frequency",
    "ablation_rcm",
    "ablation_du_vi",
    "format_table2",
    "format_speedup_table",
    "format_fig_series",
    "SweepPoint",
    "bandwidth_sweep",
    "cache_sweep",
    "thread_sweep",
    "format_sweep_table",
    "compare_runs",
    "format_comparison",
    "structure_diff",
    "record_run",
    "load_run",
    "result_to_dict",
    "run_payload",
    "check_run",
    "load_history",
    "snapshot",
    "render_dashboard",
    "write_dashboard",
]
