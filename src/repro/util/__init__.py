"""Low-level utilities shared by the rest of the library."""

from repro.util.bitops import (
    decode_varint,
    decode_varint_array,
    encode_varint,
    encode_varint_array,
    varint_size,
    width_class,
    width_class_array,
    WIDTH_BYTES,
)
from repro.util.timing import Timer, measure
from repro.util.validation import (
    as_index_array,
    as_value_array,
    check_dimensions,
    check_monotone,
)

__all__ = [
    "decode_varint",
    "decode_varint_array",
    "encode_varint",
    "encode_varint_array",
    "varint_size",
    "width_class",
    "width_class_array",
    "WIDTH_BYTES",
    "Timer",
    "measure",
    "as_index_array",
    "as_value_array",
    "check_dimensions",
    "check_monotone",
]
