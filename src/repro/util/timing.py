"""Wall-clock measurement helpers.

The paper times 128 consecutive SpMV operations; :func:`measure` mirrors
that protocol (a fixed number of back-to-back calls, reporting the mean
per-call time) while :class:`Timer` is a small context-manager stopwatch
for ad-hoc instrumentation.

These are used only by the *real* clock of the benchmark harness; the
paper-shaped results come from the machine model, which does not depend
on this container's hardware.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.errors import ReproError


class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    Re-entering accumulates, so one ``Timer`` can wrap each iteration of
    a loop and report the total.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: int | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:
            raise ReproError(
                "Timer exited without entering (mismatched __enter__/__exit__)"
            )
        self.elapsed += (time.perf_counter_ns() - self._start) * 1e-9
        self._start = None


@dataclass(frozen=True)
class Measurement:
    """Result of :func:`measure`.

    Attributes
    ----------
    per_call:
        Mean seconds per call over the best repetition.
    total:
        Total seconds of the best repetition.
    calls:
        Calls per repetition.
    repeats:
        Repetitions performed.
    all_repeats:
        Per-repetition total seconds, best first not guaranteed.
    stdev:
        Population standard deviation of the per-call time across
        repetitions (0.0 with a single repetition).  A large value
        relative to ``per_call`` flags a noisy real-clock run.
    """

    per_call: float
    total: float
    calls: int
    repeats: int
    all_repeats: tuple[float, ...] = field(default_factory=tuple)
    stdev: float = 0.0


def measure(func, *, calls: int = 128, repeats: int = 3) -> Measurement:
    """Time ``calls`` back-to-back invocations of *func*, ``repeats`` times.

    Returns the repetition with the smallest total (the standard guard
    against OS noise); per-call time is that total divided by *calls*.
    """
    if calls < 1 or repeats < 1:
        raise ValueError("calls and repeats must be >= 1")
    totals = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for _ in range(calls):
            func()
        totals.append((time.perf_counter_ns() - start) * 1e-9)
    best = min(totals)
    per_call_times = [t / calls for t in totals]
    return Measurement(
        per_call=best / calls,
        total=best,
        calls=calls,
        repeats=repeats,
        all_repeats=tuple(totals),
        stdev=statistics.pstdev(per_call_times) if repeats > 1 else 0.0,
    )
