"""Byte-level primitives used by the compressed formats.

Two families live here:

* LEB128-style **variable-length integers** ("varints"), used for the
  ``ujmp`` field of CSR-DU units and for row jumps.  Seven payload bits
  per byte, most significant continuation bit, little-endian groups --
  the same scheme protobuf uses.
* **Width classes**: CSR-DU stores every delta of a unit at one of four
  fixed widths (1, 2, 4 or 8 bytes).  :func:`width_class` maps a
  non-negative integer to the narrowest class that can hold it, and
  :func:`width_class_array` does the same for a whole NumPy array at
  once (this is the hot path of the encoder).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError

#: Bytes per width class, indexed by class id (0 -> u8 ... 3 -> u64).
WIDTH_BYTES = (1, 2, 4, 8)

#: NumPy dtypes matching each width class (little-endian, unsigned).
WIDTH_DTYPES = (np.dtype("<u1"), np.dtype("<u2"), np.dtype("<u4"), np.dtype("<u8"))

_CLASS_LIMITS = (1 << 8, 1 << 16, 1 << 32, 1 << 64)


def width_class(value: int) -> int:
    """Return the smallest width class (0..3) that can store *value*.

    >>> width_class(0), width_class(255), width_class(256), width_class(1 << 40)
    (0, 0, 1, 3)
    """
    if value < 0:
        raise EncodingError(f"width_class requires a non-negative value, got {value}")
    for cls, limit in enumerate(_CLASS_LIMITS):
        if value < limit:
            return cls
    raise EncodingError(f"value {value} does not fit in 8 bytes")


def width_class_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`width_class` for an array of non-negative ints.

    Returns an ``int8`` array of class ids with the same shape.
    """
    values = np.asarray(values)
    if values.size and int(values.min()) < 0:
        raise EncodingError("width_class_array requires non-negative values")
    out = np.zeros(values.shape, dtype=np.int8)
    out += values >= _CLASS_LIMITS[0]
    out += values >= _CLASS_LIMITS[1]
    out += values >= _CLASS_LIMITS[2]
    return out


def varint_size(value: int) -> int:
    """Number of bytes :func:`encode_varint` will use for *value*."""
    if value < 0:
        raise EncodingError(f"varints are unsigned, got {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varint(value: int, out: bytearray) -> int:
    """Append *value* to *out* as a varint; return the number of bytes written."""
    if value < 0:
        raise EncodingError(f"varints are unsigned, got {value}")
    written = 0
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
            written += 1
        else:
            out.append(byte)
            return written + 1


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode one varint from *buf* starting at *pos*.

    Returns ``(value, next_pos)``.  Raises :class:`EncodingError` when the
    stream ends mid-varint or the value would exceed 64 bits.
    """
    value = 0
    shift = 0
    n = len(buf)
    while True:
        if pos >= n:
            raise EncodingError("truncated varint")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift >= 64:
            raise EncodingError("varint exceeds 64 bits")


#: Byte-size breakpoints of a varint: a value needs one more byte per
#: threshold it reaches (``2**7, 2**14, ... 2**63``; 10 bytes max).
_VARINT_THRESHOLDS = tuple(np.uint64(1) << np.uint64(7 * k) for k in range(1, 10))


def varint_size_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`varint_size`: per-element byte counts (int64).

    The loop below runs over the nine byte-size *breakpoints*, not the
    elements, so the cost is O(9) NumPy passes however long the array
    is.  CSR-DU's column jumps stop at the 1-5 byte widths (deltas are
    at most 64-bit column distances), so in practice only the first few
    comparisons see any ``True``.
    """
    values = np.asarray(values)
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    if values.dtype.kind == "i" and int(values.min()) < 0:
        raise EncodingError("varints are unsigned, got a negative value")
    v = values.astype(np.uint64, copy=False)
    out = np.ones(v.shape, dtype=np.int64)
    vmax = v.max()
    for threshold in _VARINT_THRESHOLDS:
        if vmax < threshold:
            break
        out += v >= threshold
    return out


def scatter_varints(
    buf: np.ndarray, values: np.ndarray, positions: np.ndarray, sizes: np.ndarray
) -> None:
    """Write each ``values[i]`` as a varint at ``buf[positions[i]:]``.

    *sizes* must be the matching :func:`varint_size_array` output; the
    caller has laid the stream out (prefix sums of sizes) and *buf* is
    the preallocated uint8 output.  One vectorized pass per byte
    position of the longest varint present.
    """
    if values.size == 0:
        return
    v = np.asarray(values).astype(np.uint64, copy=False)
    positions = np.asarray(positions, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    for k in range(int(sizes.max())):
        live = sizes > k
        chunk = (v[live] >> np.uint64(7 * k)) & np.uint64(0x7F)
        cont = (sizes[live] > k + 1).astype(np.uint64) << np.uint64(7)
        buf[positions[live] + k] = (chunk | cont).astype(np.uint8)


def encode_varint_array_reference(values: np.ndarray) -> bytes:
    """Per-element reference encoder (the original scalar loop)."""
    out = bytearray()
    for v in np.asarray(values).ravel().tolist():
        encode_varint(int(v), out)
    return bytes(out)


def encode_varint_array(values: np.ndarray) -> bytes:
    """Encode a whole array of non-negative integers as concatenated varints.

    Integer arrays take the vectorized path (size array, prefix-sum
    layout, byte-position scatter); anything else falls back to the
    scalar reference loop.  Output is byte-identical either way.
    """
    arr = np.asarray(values).ravel()
    if arr.size == 0:
        return b""
    if arr.dtype.kind not in "iu":
        return encode_varint_array_reference(arr)
    sizes = varint_size_array(arr)
    offsets = np.zeros(arr.size, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    buf = np.zeros(int(offsets[-1]) + int(sizes[-1]), dtype=np.uint8)
    scatter_varints(buf, arr, offsets, sizes)
    return buf.tobytes()


def decode_varint_array_reference(
    buf, count: int, pos: int = 0
) -> tuple[np.ndarray, int]:
    """Per-element reference decoder (the original scalar loop)."""
    out = np.empty(count, dtype=np.uint64)
    for i in range(count):
        value, pos = decode_varint(buf, pos)
        out[i] = value
    return out, pos


def decode_varint_array(buf, count: int, pos: int = 0) -> tuple[np.ndarray, int]:
    """Decode *count* varints from *buf*; return ``(uint64 array, next_pos)``.

    Vectorized: terminator bytes (high bit clear) mark varint ends, so
    one ``flatnonzero`` finds every boundary and one pass per byte
    position of the longest varint assembles the values.  Values match
    :func:`decode_varint_array_reference` exactly; truncated streams
    and values that overflow 64 bits raise :class:`EncodingError`.
    """
    if count == 0:
        return np.empty(0, dtype=np.uint64), pos
    data = np.frombuffer(buf, dtype=np.uint8) if isinstance(
        buf, (bytes, bytearray)
    ) else np.asarray(buf, dtype=np.uint8)
    terminators = np.flatnonzero((data[pos:] & 0x80) == 0)
    if terminators.size < count:
        raise EncodingError("truncated varint")
    ends = terminators[:count] + pos
    starts = np.empty(count, dtype=np.int64)
    starts[0] = pos
    starts[1:] = ends[:-1] + 1
    lens = ends - starts + 1
    max_len = int(lens.max())
    if max_len > 10 or (
        max_len == 10 and int((data[starts[lens == 10] + 9] & 0x7F).max()) > 1
    ):
        raise EncodingError("varint exceeds 64 bits")
    out = np.zeros(count, dtype=np.uint64)
    for k in range(max_len):
        live = lens > k
        out[live] |= (
            data[starts[live] + k].astype(np.uint64) & np.uint64(0x7F)
        ) << np.uint64(7 * k)
    return out, int(ends[-1]) + 1


def pack_fixed(values: np.ndarray, cls: int) -> bytes:
    """Pack *values* at the fixed width of class *cls* (little endian)."""
    values = np.asarray(values)
    limit = _CLASS_LIMITS[cls]
    if values.size and int(values.max()) >= limit:
        raise EncodingError(
            f"value {int(values.max())} does not fit width class {cls}"
        )
    return values.astype(WIDTH_DTYPES[cls], copy=False).tobytes()


def unpack_fixed(buf, count: int, cls: int, pos: int = 0) -> tuple[np.ndarray, int]:
    """Unpack *count* class-*cls* integers from *buf* at *pos*.

    Returns ``(uint64 array, next_pos)``.
    """
    width = WIDTH_BYTES[cls]
    end = pos + count * width
    if end > len(buf):
        raise EncodingError("truncated fixed-width run")
    arr = np.frombuffer(buf, dtype=WIDTH_DTYPES[cls], count=count, offset=pos)
    return arr.astype(np.uint64), end
