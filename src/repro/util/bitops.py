"""Byte-level primitives used by the compressed formats.

Two families live here:

* LEB128-style **variable-length integers** ("varints"), used for the
  ``ujmp`` field of CSR-DU units and for row jumps.  Seven payload bits
  per byte, most significant continuation bit, little-endian groups --
  the same scheme protobuf uses.
* **Width classes**: CSR-DU stores every delta of a unit at one of four
  fixed widths (1, 2, 4 or 8 bytes).  :func:`width_class` maps a
  non-negative integer to the narrowest class that can hold it, and
  :func:`width_class_array` does the same for a whole NumPy array at
  once (this is the hot path of the encoder).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError

#: Bytes per width class, indexed by class id (0 -> u8 ... 3 -> u64).
WIDTH_BYTES = (1, 2, 4, 8)

#: NumPy dtypes matching each width class (little-endian, unsigned).
WIDTH_DTYPES = (np.dtype("<u1"), np.dtype("<u2"), np.dtype("<u4"), np.dtype("<u8"))

_CLASS_LIMITS = (1 << 8, 1 << 16, 1 << 32, 1 << 64)


def width_class(value: int) -> int:
    """Return the smallest width class (0..3) that can store *value*.

    >>> width_class(0), width_class(255), width_class(256), width_class(1 << 40)
    (0, 0, 1, 3)
    """
    if value < 0:
        raise EncodingError(f"width_class requires a non-negative value, got {value}")
    for cls, limit in enumerate(_CLASS_LIMITS):
        if value < limit:
            return cls
    raise EncodingError(f"value {value} does not fit in 8 bytes")


def width_class_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`width_class` for an array of non-negative ints.

    Returns an ``int8`` array of class ids with the same shape.
    """
    values = np.asarray(values)
    if values.size and int(values.min()) < 0:
        raise EncodingError("width_class_array requires non-negative values")
    out = np.zeros(values.shape, dtype=np.int8)
    out += values >= _CLASS_LIMITS[0]
    out += values >= _CLASS_LIMITS[1]
    out += values >= _CLASS_LIMITS[2]
    return out


def varint_size(value: int) -> int:
    """Number of bytes :func:`encode_varint` will use for *value*."""
    if value < 0:
        raise EncodingError(f"varints are unsigned, got {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varint(value: int, out: bytearray) -> int:
    """Append *value* to *out* as a varint; return the number of bytes written."""
    if value < 0:
        raise EncodingError(f"varints are unsigned, got {value}")
    written = 0
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
            written += 1
        else:
            out.append(byte)
            return written + 1


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode one varint from *buf* starting at *pos*.

    Returns ``(value, next_pos)``.  Raises :class:`EncodingError` when the
    stream ends mid-varint or the value would exceed 64 bits.
    """
    value = 0
    shift = 0
    n = len(buf)
    while True:
        if pos >= n:
            raise EncodingError("truncated varint")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift >= 64:
            raise EncodingError("varint exceeds 64 bits")


def encode_varint_array(values: np.ndarray) -> bytes:
    """Encode a whole array of non-negative integers as concatenated varints."""
    out = bytearray()
    for v in np.asarray(values).ravel().tolist():
        encode_varint(int(v), out)
    return bytes(out)


def decode_varint_array(buf, count: int, pos: int = 0) -> tuple[np.ndarray, int]:
    """Decode *count* varints from *buf*; return ``(uint64 array, next_pos)``."""
    out = np.empty(count, dtype=np.uint64)
    for i in range(count):
        value, pos = decode_varint(buf, pos)
        out[i] = value
    return out, pos


def pack_fixed(values: np.ndarray, cls: int) -> bytes:
    """Pack *values* at the fixed width of class *cls* (little endian)."""
    values = np.asarray(values)
    limit = _CLASS_LIMITS[cls]
    if values.size and int(values.max()) >= limit:
        raise EncodingError(
            f"value {int(values.max())} does not fit width class {cls}"
        )
    return values.astype(WIDTH_DTYPES[cls], copy=False).tobytes()


def unpack_fixed(buf, count: int, cls: int, pos: int = 0) -> tuple[np.ndarray, int]:
    """Unpack *count* class-*cls* integers from *buf* at *pos*.

    Returns ``(uint64 array, next_pos)``.
    """
    width = WIDTH_BYTES[cls]
    end = pos + count * width
    if end > len(buf):
        raise EncodingError("truncated fixed-width run")
    arr = np.frombuffer(buf, dtype=WIDTH_DTYPES[cls], count=count, offset=pos)
    return arr.astype(np.uint64), end
