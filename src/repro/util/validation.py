"""Input validation helpers used by format constructors.

The formats accept anything array-like; these helpers normalize to the
canonical dtypes used throughout the library (matching the paper's
experimental setup: 32-bit indices, 64-bit values) and raise
:class:`~repro.errors.FormatError` with a precise message on bad input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

#: Canonical index dtype (the paper uses 32-bit indices).
INDEX_DTYPE = np.dtype(np.int32)

#: Canonical value dtype (the paper uses 64-bit floating point values).
VALUE_DTYPE = np.dtype(np.float64)


def as_index_array(data, name: str, dtype=INDEX_DTYPE) -> np.ndarray:
    """Return *data* as a 1-D contiguous integer array of *dtype*.

    Float inputs are rejected (silently truncating indices is a classic
    data-corruption bug); integer inputs of any width are converted,
    checking for overflow of the target dtype.
    """
    arr = np.asarray(data)
    if arr.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise FormatError(f"{name} must be an integer array, got dtype {arr.dtype}")
    info = np.iinfo(dtype)
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if lo < info.min or hi > info.max:
            raise FormatError(
                f"{name} values [{lo}, {hi}] overflow index dtype {dtype}"
            )
    return np.ascontiguousarray(arr, dtype=dtype)


def as_value_array(data, name: str, dtype=VALUE_DTYPE) -> np.ndarray:
    """Return *data* as a 1-D contiguous floating array of *dtype*."""
    arr = np.asarray(data)
    if arr.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got shape {arr.shape}")
    if not (np.issubdtype(arr.dtype, np.floating) or np.issubdtype(arr.dtype, np.integer)):
        raise FormatError(f"{name} must be numeric, got dtype {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=dtype)


def check_dimensions(nrows: int, ncols: int) -> tuple[int, int]:
    """Validate a matrix shape; return it as a plain ``(int, int)`` tuple."""
    nrows, ncols = int(nrows), int(ncols)
    if nrows < 0 or ncols < 0:
        raise FormatError(f"matrix shape ({nrows}, {ncols}) must be non-negative")
    return nrows, ncols


def check_monotone(arr: np.ndarray, name: str) -> None:
    """Require *arr* to be non-decreasing (row_ptr-style offset arrays)."""
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise FormatError(f"{name} must be non-decreasing")


def check_in_range(arr: np.ndarray, upper: int, name: str) -> None:
    """Require every element of *arr* to lie in ``[0, upper)``."""
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= upper:
            raise FormatError(
                f"{name} values [{lo}, {hi}] out of range [0, {upper})"
            )
