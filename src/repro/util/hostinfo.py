"""Host fingerprint: make results self-describing about where they ran.

Benchmarks on this project run wherever CI or a developer happens to
be -- often a single-CPU container whose numbers mean something very
different from an 8-core workstation's.  Instead of prose caveats
("judge the backend columns against host.cpus"), every artifact that
records wall-clock numbers embeds the same small fingerprint: logical
CPU count, platform string, Python version, and the id of the advisor
calibration in effect (if any).  ``BENCH_advisor.json`` carries it at
top level and ``perf.attribution`` telemetry events carry it per
record, so a dashboard or gate reading either can tell two hosts'
numbers apart without out-of-band context.
"""

from __future__ import annotations

import json
import os
import platform

#: Default on-disk location of the advisor calibration (repo root when
#: running from a checkout; see ``tools/calibrate.py --advisor-out``).
#: Overridable via the ``REPRO_ADVISOR_CALIBRATION`` environment
#: variable, which both this module and the advisor's loader honor.
CALIBRATION_ENV = "REPRO_ADVISOR_CALIBRATION"
DEFAULT_CALIBRATION_FILE = "advisor_calibration.json"


def calibration_path(path: str | None = None) -> str:
    """The calibration file to use: explicit arg > env var > default."""
    if path:
        return path
    return os.environ.get(CALIBRATION_ENV, DEFAULT_CALIBRATION_FILE)


def calibration_id_at(path: str | None = None) -> str | None:
    """The ``id`` stamped in the calibration file, or None if absent.

    Never raises: a missing, unreadable, or malformed file simply means
    "no calibration in effect" (the advisor falls back to its analytic
    prior the same way).
    """
    try:
        with open(calibration_path(path), "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    cal_id = data.get("id") if isinstance(data, dict) else None
    return str(cal_id) if cal_id else None


def host_fingerprint(calibration_id: str | None = None) -> dict:
    """The fingerprint dict recorded alongside wall-clock results.

    ``calibration_id`` defaults to whatever calibration file is in
    effect (see :func:`calibration_path`); pass an id explicitly when
    the caller already holds a loaded calibration.
    """
    if calibration_id is None:
        calibration_id = calibration_id_at()
    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "calibration_id": calibration_id,
    }
