"""Per-thread load attribution from the executor's recorded spans.

The parallel executors wrap every thread's slice of every call in a
``parallel.chunk`` span (attrs: ``thread``, ``lo``, ``hi``, ``nnz``,
``kind``) nested under one ``parallel.spmv`` span per call.  This
module replays those spans -- from a live
:class:`~repro.telemetry.core.Collector` or a parsed JSONL trace --
into per-call balance records:

* **busy time** per thread (the chunk span's duration);
* **barrier wait** per thread (call end minus that thread's chunk
  end -- how long the thread idled for the stragglers);
* **time imbalance** (busiest / mean busy) against the partitioner's
  **nnz imbalance** (from the chunk's nnz attrs), whose quotient is
  the ``nnz_vs_time`` ratio: ~1.0 means wall time tracked the static
  nnz balance, i.e. the paper's partitioning assumption held.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, is_dataclass
from typing import Any, Iterable


def _as_dicts(events: Iterable[Any]) -> list[dict]:
    """Normalize Collector Events / JSONL dicts into plain dicts."""
    out = []
    for ev in events:
        out.append(asdict(ev) if is_dataclass(ev) else dict(ev))
    return out


@dataclass(frozen=True)
class CallBalance:
    """Thread balance of one multithreaded SpMV call."""

    ts_us: float
    dur_us: float
    busy_us: dict[int, float]
    barrier_wait_us: dict[int, float]
    nnz: dict[int, float]

    @property
    def time_imbalance(self) -> float:
        """Busiest thread's busy time over the mean busy time."""
        if not self.busy_us:
            return 1.0
        vals = list(self.busy_us.values())
        mean = sum(vals) / len(vals)
        return max(vals) / mean if mean > 0 else 1.0

    @property
    def nnz_imbalance(self) -> float:
        """Static partitioner balance over the same threads."""
        if not self.nnz:
            return 1.0
        vals = list(self.nnz.values())
        mean = sum(vals) / len(vals)
        return max(vals) / mean if mean > 0 else 1.0

    @property
    def nnz_vs_time(self) -> float:
        """time imbalance / nnz imbalance (~1.0: time tracked nnz)."""
        nnz_imb = self.nnz_imbalance
        return self.time_imbalance / nnz_imb if nnz_imb > 0 else 1.0

    @property
    def total_barrier_wait_us(self) -> float:
        return sum(self.barrier_wait_us.values())


@dataclass(frozen=True)
class ParallelReport:
    """Aggregate over every multithreaded call in a trace."""

    calls: tuple[CallBalance, ...]

    @property
    def ncalls(self) -> int:
        return len(self.calls)

    @property
    def mean_time_imbalance(self) -> float:
        if not self.calls:
            return 1.0
        return sum(c.time_imbalance for c in self.calls) / len(self.calls)

    @property
    def mean_nnz_vs_time(self) -> float:
        if not self.calls:
            return 1.0
        return sum(c.nnz_vs_time for c in self.calls) / len(self.calls)

    @property
    def total_barrier_wait_us(self) -> float:
        return sum(c.total_barrier_wait_us for c in self.calls)


def _is_abandoned(chunk: dict, abandons: list[dict]) -> bool:
    """Was this chunk span's wait abandoned by the executor?

    An abandoned chunk keeps running past its call (threads cannot be
    cancelled), so its span ends *after* the call span and would
    otherwise be claimed — wrongly — by a later call whose interval
    happens to contain it.  The executor marks the abandonment with an
    ``executor.chunk.abandoned`` counter carrying the same thread and
    bounds; the mark's timestamp falls inside the abandoned span's
    interval, which is the match used here.
    """
    attrs = chunk["attrs"]
    start = chunk["ts_us"]
    end = start + chunk["dur_us"]
    for ab in abandons:
        a = ab["attrs"]
        if (
            a.get("thread") == attrs.get("thread")
            and a.get("lo") == attrs.get("lo")
            and a.get("hi") == attrs.get("hi")
            and start - 1e-9 <= ab["ts_us"] <= end + 1e-9
        ):
            return True
    return False


def call_balances(events: Iterable[Any]) -> list[CallBalance]:
    """Pair each ``parallel.spmv`` span with its ``parallel.chunk`` children.

    Chunks belong to the innermost enclosing call by time containment
    (spans are recorded at exit, so a call's chunks appear before it in
    the stream but always inside its interval).  Chunks whose wait was
    abandoned (``executor.chunk.abandoned``) are excluded entirely:
    their span duration measures the wait bound plus however long the
    orphaned thread kept running, not the work the partitioner
    assigned, so folding them in would corrupt the imbalance recovery.
    """
    evs = _as_dicts(events)
    calls = [e for e in evs if e["kind"] == "span" and e["name"] == "parallel.spmv"]
    abandons = [
        e
        for e in evs
        if e["kind"] == "counter" and e["name"] == "executor.chunk.abandoned"
    ]
    chunks = [
        e
        for e in evs
        if e["kind"] == "span"
        and e["name"] == "parallel.chunk"
        and not (abandons and _is_abandoned(e, abandons))
    ]
    out: list[CallBalance] = []
    claimed: set[int] = set()
    # Narrower calls first, so nested/overlapping traces claim inner-most.
    for call in sorted(calls, key=lambda e: e["dur_us"]):
        c_start, c_end = call["ts_us"], call["ts_us"] + call["dur_us"]
        busy: dict[int, float] = {}
        waits: dict[int, float] = {}
        nnz: dict[int, float] = {}
        for i, ch in enumerate(chunks):
            if i in claimed:
                continue
            start, end = ch["ts_us"], ch["ts_us"] + ch["dur_us"]
            if start < c_start - 1e-9 or end > c_end + 1e-9:
                continue
            claimed.add(i)
            t = int(ch["attrs"].get("thread", ch["tid"]))
            busy[t] = busy.get(t, 0.0) + ch["dur_us"]
            waits[t] = max(0.0, c_end - end)
            if "nnz" in ch["attrs"]:
                nnz[t] = nnz.get(t, 0.0) + float(ch["attrs"]["nnz"])
        out.append(
            CallBalance(
                ts_us=c_start,
                dur_us=call["dur_us"],
                busy_us=busy,
                barrier_wait_us=waits,
                nnz=nnz,
            )
        )
    out.sort(key=lambda c: c.ts_us)
    return out


def summarize_parallel(events: Iterable[Any]) -> ParallelReport:
    """Aggregate every multithreaded call found in *events*."""
    return ParallelReport(calls=tuple(call_balances(events)))


def format_report(report: ParallelReport) -> str:
    """Aligned text rendering (the ``profile`` subcommand's appendix)."""
    lines = [
        f"parallel calls: {report.ncalls}, "
        f"mean time imbalance {report.mean_time_imbalance:.3f}, "
        f"mean nnz-vs-time {report.mean_nnz_vs_time:.3f}, "
        f"barrier wait {report.total_barrier_wait_us / 1e3:.3f} ms total"
    ]
    for i, call in enumerate(report.calls):
        lines.append(
            f"  call {i}: {call.dur_us / 1e3:.3f} ms, "
            f"{len(call.busy_us)} threads, "
            f"imbalance {call.time_imbalance:.3f}, "
            f"nnz-vs-time {call.nnz_vs_time:.3f}, "
            f"wait {call.total_barrier_wait_us / 1e3:.3f} ms"
        )
    return "\n".join(lines)


def thread_timelines(
    events: Iterable[Any],
) -> dict[tuple[int, int], list[tuple[float, float, str]]]:
    """Span lanes per execution stream: ``{(pid, tid): [(ts_us, dur_us, name)]}``.

    The dashboard's timeline renderer consumes this; every span kind is
    included so single-threaded phases (encode, simulate) show too.
    The lane key pairs the ``pid`` attribute (0 for in-process spans)
    with the OS thread id: fork-pool workers inherit the parent main
    thread's ident, so ``tid`` alone would fold every worker of a
    process-backend run into one lane.
    """
    lanes: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
    for ev in _as_dicts(events):
        if ev["kind"] != "span":
            continue
        pid = ev["attrs"].get("pid", 0)
        pid = pid if isinstance(pid, int) and not isinstance(pid, bool) else 0
        lanes.setdefault((pid, int(ev["tid"])), []).append(
            (float(ev["ts_us"]), float(ev["dur_us"]), str(ev["name"]))
        )
    for spans in lanes.values():
        spans.sort()
    return lanes
