"""The :class:`Attribution` record: why a measured cell is what it is.

One record per ``(matrix, format, threads, placement)`` bench cell,
combining

* the exact byte stream (:mod:`repro.perf.bytes`) -> FLOP:byte ratio
  and effective GB/s at the cell's measured/predicted time;
* the machine model's roofline (:mod:`repro.machine.roofline` math) ->
  attainable MFLOPS and %-of-roofline, with the binding constraint;
* partitioner balance -> static nnz max/mean plus the model's
  per-thread compute-time max/mean;
* compression accounting -> size ratio vs CSR and speedup vs CSR at
  the same configuration (filled by the harness when both ran);
* kernel-plan cache hit/miss counts, read from the active telemetry
  collector when one is installed.

:func:`attribute_cell` is what the bench harness calls;
:func:`record` re-emits a built record as a ``perf.attribution``
telemetry event so traces and the HTML dashboard see the same numbers.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Sequence

from repro.formats.base import SparseMatrix, Storage
from repro.machine.costmodel import CostModel
from repro.machine.engine import SimResult
from repro.machine.roofline import machine_peak_flops
from repro.machine.topology import MachineSpec
from repro.perf.bytes import ByteBreakdown, bytes_per_iteration
from repro.telemetry import core as telemetry
from repro.telemetry.metrics import record_attribution


@dataclass(frozen=True)
class Attribution:
    """Performance attribution for one measured bench cell.

    ``bytes_per_iter`` is the exact streamed byte count (pre-residency,
    from the format's layout); ``dram_bytes`` the machine model's
    post-residency DRAM traffic (0 under the real clock).
    ``roofline_pct`` is achieved MFLOPS as a percentage of the
    roofline ceiling ``min(peak, bandwidth * intensity)``.
    """

    matrix_id: int
    format_name: str
    threads: int
    placement: str
    clock: str
    time_s: float
    mflops: float
    flops: int
    bytes_per_iter: int
    index_bytes: int
    value_bytes: int
    vector_bytes: int
    flops_per_byte: float
    effective_gbps: float
    dram_bytes: float
    attainable_mflops: float
    roofline_pct: float
    memory_bound: bool
    bound: str
    nnz_imbalance: float
    time_imbalance: float
    compression_ratio: float
    speedup_vs_csr: float = 0.0
    plan_hits: int = 0
    plan_misses: int = 0
    #: One-time setup cost of the cell: conversion (encode) plus kernel
    #: plan build, in seconds.  0.0 when the encode was a cache hit.
    setup_s: float = 0.0

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of kernel-plan lookups served from the cache."""
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0

    def with_speedup(self, csr_time_s: float) -> "Attribution":
        """A copy with ``speedup_vs_csr`` filled from the CSR baseline."""
        if csr_time_s <= 0 or self.time_s <= 0:
            return self
        return dataclasses.replace(self, speedup_vs_csr=csr_time_s / self.time_s)


def _plan_counters(format_name: str) -> tuple[int, int]:
    """(hits, misses) of the plan cache for *format_name*, if traced."""
    c = telemetry.get_collector()
    if c is None:
        return 0, 0
    hits = c.counters.get(f"plan.hit{{format={format_name}}}", 0.0)
    misses = c.counters.get(f"plan.miss{{format={format_name}}}", 0.0)
    return int(hits), int(misses)


def attribute_cell(
    matrix: SparseMatrix,
    *,
    threads: int,
    placement: str,
    time_s: float,
    machine: MachineSpec,
    cost_model: CostModel,
    matrix_id: int = -1,
    clock: str = "model",
    sim: SimResult | None = None,
    csr_storage: Storage | None = None,
    breakdown: ByteBreakdown | None = None,
    setup_s: float = 0.0,
) -> Attribution:
    """Build the attribution record for one measured cell.

    ``sim`` supplies the model clock's DRAM traffic, binding constraint
    and per-thread compute times; under the real clock it is ``None``
    and the streamed byte count stands in for traffic (``bound``
    becomes ``"wallclock"``).  ``breakdown`` lets callers measuring the
    same matrix at several placements reuse one byte census.
    ``setup_s`` is the cell's one-time preprocessing cost (encode +
    plan build) as the harness measured it.
    """
    bd = breakdown if breakdown is not None else bytes_per_iteration(matrix, threads)
    flops = bd.flops
    mflops = flops / time_s / 1e6 if time_s > 0 else 0.0
    effective_gbps = bd.total_bytes / time_s / 1e9 if time_s > 0 else 0.0

    if sim is not None:
        dram_bytes = float(sim.total_traffic)
        bound = sim.bound
        compute = sim.compute_s
        mean_c = sum(compute) / len(compute) if compute else 0.0
        time_imbalance = max(compute) / mean_c if mean_c > 0 else 1.0
    else:
        dram_bytes = 0.0
        bound = "wallclock"
        time_imbalance = 1.0

    # Roofline ceiling at this thread count: the model's DRAM traffic
    # sets the intensity when available (zero means cache-resident, so
    # the ceiling is compute peak), else the exact streamed bytes.
    traffic = dram_bytes if sim is not None else float(bd.total_bytes)
    peak = machine_peak_flops(machine, threads, cost_model)
    bandwidth = min(machine.mem_bw, threads * machine.core_bw)
    intensity = flops / traffic if traffic > 0 else float("inf")
    ridge = peak / bandwidth
    attainable = min(peak, bandwidth * intensity)
    attainable_mflops = attainable / 1e6
    roofline_pct = 100.0 * mflops / attainable_mflops if attainable_mflops > 0 else 0.0

    storage = matrix.storage()
    compression_ratio = (
        storage.ratio_to(csr_storage) if csr_storage is not None else 1.0
    )
    hits, misses = _plan_counters(matrix.name)
    return Attribution(
        matrix_id=matrix_id,
        format_name=matrix.name,
        threads=threads,
        placement=placement,
        clock=clock,
        time_s=time_s,
        mflops=mflops,
        flops=flops,
        bytes_per_iter=bd.total_bytes,
        index_bytes=bd.index_bytes,
        value_bytes=bd.value_bytes,
        vector_bytes=bd.vector_bytes,
        flops_per_byte=bd.flops_per_byte,
        effective_gbps=effective_gbps,
        dram_bytes=dram_bytes,
        attainable_mflops=attainable_mflops,
        roofline_pct=roofline_pct,
        memory_bound=intensity < ridge,
        bound=bound,
        nnz_imbalance=bd.nnz_imbalance,
        time_imbalance=time_imbalance,
        compression_ratio=compression_ratio,
        plan_hits=hits,
        plan_misses=misses,
        setup_s=setup_s,
    )


def record(att: Attribution) -> None:
    """Emit *att* as a ``perf.attribution`` telemetry event (if tracing).

    The event additionally carries the host fingerprint (cpus,
    platform, advisor-calibration id) so wall-clock records are
    self-describing about where they were measured; the frozen
    :class:`Attribution` itself stays host-free (it round-trips
    through checkpoints whose byte-identity must not depend on the
    machine reading them back).
    """
    from repro.util.hostinfo import host_fingerprint

    host = host_fingerprint()
    record_attribution(
        matrix_id=att.matrix_id,
        format_name=att.format_name,
        threads=att.threads,
        placement=att.placement,
        time_s=att.time_s,
        mflops=att.mflops,
        bytes_per_iter=att.bytes_per_iter,
        index_bytes=att.index_bytes,
        value_bytes=att.value_bytes,
        vector_bytes=att.vector_bytes,
        flops_per_byte=att.flops_per_byte,
        effective_gbps=att.effective_gbps,
        dram_bytes=att.dram_bytes,
        attainable_mflops=att.attainable_mflops,
        roofline_pct=att.roofline_pct,
        bound=att.bound,
        nnz_imbalance=att.nnz_imbalance,
        time_imbalance=att.time_imbalance,
        compression_ratio=att.compression_ratio,
        speedup_vs_csr=att.speedup_vs_csr,
        plan_hits=att.plan_hits,
        plan_misses=att.plan_misses,
        setup_s=att.setup_s,
        host_cpus=host["cpus"],
        host_platform=host["platform"],
        host_calibration=host["calibration_id"] or "",
    )


def compression_speedup_correlation(
    points: Sequence[tuple[float, float]],
) -> float:
    """Pearson correlation between size reduction and speedup.

    *points* are ``(size_reduction, speedup_vs_csr)`` pairs -- the
    paper's core claim is that this correlation is positive (smaller
    streams run faster once bandwidth binds).  Returns 0.0 when fewer
    than two points or either series is constant.
    """
    pts = [(float(a), float(b)) for a, b in points]
    n = len(pts)
    if n < 2:
        return 0.0
    mean_a = sum(a for a, _ in pts) / n
    mean_b = sum(b for _, b in pts) / n
    cov = sum((a - mean_a) * (b - mean_b) for a, b in pts)
    var_a = sum((a - mean_a) ** 2 for a, _ in pts)
    var_b = sum((b - mean_b) ** 2 for _, b in pts)
    if var_a <= 0 or var_b <= 0:
        return 0.0
    return cov / math.sqrt(var_a * var_b)
