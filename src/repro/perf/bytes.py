"""Exact bytes-per-iteration accounting from each format's real layout.

:func:`bytes_per_iteration` reuses the machine model's per-thread
traffic census (:func:`repro.machine.traffic.analyze_threads`, which
reads the *actual* arrays: ``ctl_offsets`` byte ranges for CSR-DU,
``val_ind`` item sizes for CSR-VI, ...) and folds it into one job-level
:class:`ByteBreakdown`: how many bytes one steady-state SpMV iteration
streams, split the way the paper splits storage --

* **index bytes** -- structure (``row_ptr``/``col_ind``, the ctl
  stream, DCSR command stream, BCSR block indices);
* **value bytes** -- numerics (``values``, ``vals_unique`` +
  ``val_ind``, block values);
* **vector bytes** -- the dense ``x`` gather footprint (cache-line
  granular, unioned across threads) plus the ``y`` writes.

No cache modeling happens here: this is the numerator of the paper's
"compression shrinks the stream" argument, before residency.  The
machine model's post-residency DRAM traffic rides along separately in
the :class:`~repro.perf.attribution.Attribution` record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.base import SparseMatrix
from repro.machine.traffic import LINE_SIZE, VALUE_SIZE, analyze_threads

#: Array names charged as index (structure) bytes.
INDEX_ARRAYS = frozenset(
    {"row_ptr", "col_ind", "ctl", "stream", "brow_ptr", "bcol_ind"}
)

#: Array names charged as value (numeric) bytes.
VALUE_ARRAYS = frozenset({"values", "val_ind", "vals_unique", "block_values"})

#: Array names charged as dense-vector bytes.
VECTOR_ARRAYS = frozenset({"x", "y"})


@dataclass(frozen=True)
class ByteBreakdown:
    """Bytes one SpMV iteration streams, job-wide.

    ``arrays`` maps array names to per-iteration bytes; shared arrays
    (``x``, ``vals_unique``) are counted once at their cross-thread
    union, not per thread.  ``nnz_imbalance`` is the static
    nnz-balanced partitioner's max/mean ratio for this thread count.
    """

    format_name: str
    threads: int
    nnz: int
    arrays: dict[str, int]
    index_bytes: int
    value_bytes: int
    vector_bytes: int
    nnz_imbalance: float

    @property
    def total_bytes(self) -> int:
        return self.index_bytes + self.value_bytes + self.vector_bytes

    @property
    def flops(self) -> int:
        """Useful floating-point operations (2 per nonzero)."""
        return 2 * self.nnz

    @property
    def flops_per_byte(self) -> float:
        total = self.total_bytes
        return self.flops / total if total else float("inf")


def _full_x_lines_bytes(ncols: int) -> int:
    """Upper bound on the x gather footprint: every line of x, once."""
    if ncols <= 0:
        return 0
    elems_per_line = LINE_SIZE // VALUE_SIZE
    lines = (ncols + elems_per_line - 1) // elems_per_line
    return lines * LINE_SIZE


def bytes_per_iteration(matrix: SparseMatrix, threads: int = 1) -> ByteBreakdown:
    """Exact per-iteration byte stream of *matrix* across *threads*.

    Private arrays sum across threads (each thread streams its own
    slice); the shared ``x`` footprint is capped by the whole vector's
    line-rounded size (threads overlap on shared lines) and
    ``vals_unique`` is counted once -- it is one physical array however
    many threads read it.
    """
    part, works = analyze_threads(matrix, threads)
    arrays: dict[str, int] = {}
    for w in works:
        for name, nbytes in w.private_bytes.items():
            arrays[name] = arrays.get(name, 0) + int(nbytes)
    x_sum = sum(w.shared_bytes.get("x", 0) for w in works)
    if x_sum:
        arrays["x"] = min(int(x_sum), _full_x_lines_bytes(matrix.ncols))
    for w in works:
        if "vals_unique" in w.shared_bytes:
            arrays["vals_unique"] = int(w.shared_bytes["vals_unique"])
            break
    index_bytes = sum(b for n, b in arrays.items() if n in INDEX_ARRAYS)
    value_bytes = sum(b for n, b in arrays.items() if n in VALUE_ARRAYS)
    vector_bytes = sum(b for n, b in arrays.items() if n in VECTOR_ARRAYS)
    unclassified = set(arrays) - INDEX_ARRAYS - VALUE_ARRAYS - VECTOR_ARRAYS
    if unclassified:
        # A new ThreadWork array name must be classified above, or the
        # index/value/vector split silently undercounts.
        raise ValueError(f"unclassified traffic arrays {sorted(unclassified)}")
    return ByteBreakdown(
        format_name=works[0].format_name if works else matrix.name,
        threads=threads,
        nnz=sum(w.nnz for w in works),
        arrays=arrays,
        index_bytes=index_bytes,
        value_bytes=value_bytes,
        vector_bytes=vector_bytes,
        nnz_imbalance=part.imbalance() if hasattr(part, "imbalance") else 1.0,
    )
