"""Performance attribution: connect measured cells to the memory wall.

The package sits between the telemetry collector and the bench harness
and answers, for every measured ``(matrix, format, threads, placement)``
cell, *which* bound the number hit:

* :mod:`repro.perf.bytes` -- exact bytes streamed per SpMV iteration,
  derived from each format's real byte layout (CSR arrays, the CSR-DU
  ctl stream, CSR-VI ``vals_unique`` + ``val_ind``), split into
  index/value/vector traffic;
* :mod:`repro.perf.attribution` -- the :class:`Attribution` record:
  FLOP:byte ratio, effective bandwidth, %-of-roofline, per-thread
  imbalance, compression ratio, kernel-plan hit rates;
* :mod:`repro.perf.imbalance` -- per-thread busy time, barrier-wait
  time and the nnz-vs-time imbalance ratio, recovered from the
  executor's ``parallel.chunk`` spans in a recorded trace.

The bench harness attaches one :class:`Attribution` per cell
(:class:`repro.bench.harness.MatrixResult.attributions`) and emits it
as a ``perf.attribution`` telemetry event when tracing is on; the HTML
dashboard (:mod:`repro.bench.dashboard`) and the perf gate
(:mod:`repro.bench.baseline`) consume those records downstream.
"""

from repro.perf.attribution import (
    Attribution,
    attribute_cell,
    compression_speedup_correlation,
)
from repro.perf.bytes import ByteBreakdown, bytes_per_iteration
from repro.perf.imbalance import (
    CallBalance,
    ParallelReport,
    call_balances,
    summarize_parallel,
)

__all__ = [
    "Attribution",
    "attribute_cell",
    "compression_speedup_correlation",
    "ByteBreakdown",
    "bytes_per_iteration",
    "CallBalance",
    "ParallelReport",
    "call_balances",
    "summarize_parallel",
]
