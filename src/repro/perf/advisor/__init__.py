"""Cost-model-driven configuration advisor: ``format="auto"`` et al.

The paper's central finding is that the best compression scheme
(CSR-DU vs CSR-VI vs plain CSR) depends on matrix *structure* -- delta
widths, value redundancy, bandwidth pressure -- yet until this package
every entry point made a human pick the format, kernel tier, thread
count and backend by hand.  The advisor closes that loop:

* :mod:`repro.perf.advisor.features` -- one cheap ``O(nnz)`` pass over
  a matrix producing a frozen, hashable :class:`MatrixFeatures` record
  (row-length stats, delta-width histogram, unique-value ratio,
  diagonal/bandwidth locality, density);
* :mod:`repro.perf.advisor.model` -- an analytic cost model scoring
  every candidate ``(format, kernel tier, threads, backend,
  partition)`` configuration from estimated bytes moved and kernel
  cycles, optionally sharpened by a wall-clock
  :class:`Calibration` measured on the current host
  (``tools/calibrate.py --advisor-out``);
* :mod:`repro.perf.advisor.advisor` -- :func:`advise` ranks the
  candidates into a :class:`RankedChoice`, folds recorded
  :class:`~repro.perf.attribution.Attribution` history over the
  analytic prior (measurements always win), emits ``advisor.pick``
  telemetry, and backs the ``"auto"`` format/kernel/threads choices
  wired through :func:`repro.parallel.backends.make_executor`, the
  bench CLI, and :meth:`repro.storage.shard.ShardStore.build`.

``benchmarks/microbench_advisor.py`` validates the whole stack against
an exhaustive oracle sweep (regret + top-1/top-3 hit rates in
``BENCH_advisor.json``).
"""

from repro.perf.advisor.advisor import (
    REGRET_BOUND,
    RankedChoice,
    advise,
    advise_format,
    advise_kernel,
    advise_threads,
    history_from_attributions,
    load_checkpoint_history,
    record_realized,
)
from repro.perf.advisor.features import MatrixFeatures, extract_features
from repro.perf.advisor.model import (
    Calibration,
    CandidateConfig,
    Prediction,
    candidate_configs,
    estimate_bytes,
    load_calibration,
    measure_calibration,
    predict,
)

__all__ = [
    "REGRET_BOUND",
    "RankedChoice",
    "advise",
    "advise_format",
    "advise_kernel",
    "advise_threads",
    "history_from_attributions",
    "load_checkpoint_history",
    "record_realized",
    "MatrixFeatures",
    "extract_features",
    "Calibration",
    "CandidateConfig",
    "Prediction",
    "candidate_configs",
    "estimate_bytes",
    "load_calibration",
    "measure_calibration",
    "predict",
]
