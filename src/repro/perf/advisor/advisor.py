"""``advise()``: rank candidate configurations for one matrix.

The ranking pipeline: extract features (or accept them pre-extracted),
score every candidate with :func:`repro.perf.advisor.model.predict`,
fold recorded history over the prior, sort ascending by predicted
seconds.  The **history-folding rule** is deliberately blunt: when a
real measurement exists for a candidate's ``(format, threads)`` at the
same clock (an :class:`~repro.perf.attribution.Attribution` cell from
a bench checkpoint or an in-process run), its mean measured time
*replaces* the model's prediction outright -- measurements override
the analytic prior, never blend with it.  An advisor that argues with
its own measurements is worse than either alone.

Every ``advise()`` emits one ``advisor.pick`` telemetry event for the
winning configuration (predicted seconds, ``realized_s=0``); callers
that go on to run the pick report the wall clock back through
:func:`record_realized`, which emits the paired event the dashboard
uses for prediction-error display.

:data:`REGRET_BOUND` is the documented safety contract, enforced by
``tests/perf/test_advisor.py`` and reported by
``benchmarks/microbench_advisor.py``: across the corpus, the advisor's
pick must not be worse than the geometric-mean bound relative to the
exhaustive-oracle best (and never materially worse than plain CSR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ReproError
from repro.machine.costmodel import CostModel
from repro.machine.topology import MachineSpec
from repro.perf.advisor.features import MatrixFeatures, extract_features
from repro.perf.advisor.model import (
    ADVISOR_FORMATS,
    ADVISOR_KERNELS,
    Calibration,
    CandidateConfig,
    Prediction,
    candidate_configs,
    load_calibration,
    predict,
)
from repro.telemetry.metrics import record_advisor_pick

__all__ = [
    "REGRET_BOUND",
    "RankedChoice",
    "advise",
    "advise_format",
    "advise_kernel",
    "advise_threads",
    "history_from_attributions",
    "load_checkpoint_history",
    "record_realized",
]

#: Documented safety bound: geometric-mean measured regret of the
#: advisor's picks vs the exhaustive oracle (and vs plain CSR) across
#: the corpus must stay at or below this factor.
REGRET_BOUND = 1.25

#: Sentinel: "load whatever calibration is in effect on this host".
_DEFAULT = "default"


@dataclass(frozen=True)
class RankedChoice:
    """The advisor's full verdict for one matrix.

    ``ranking`` is every scored candidate, ascending by predicted
    seconds; ``best`` is the pick.  ``calibration_id`` names the
    calibration that informed the scores (None = analytic only), so
    recorded picks are attributable to the exact throughput table that
    produced them.
    """

    matrix_id: int
    features: MatrixFeatures
    ranking: tuple[Prediction, ...]
    clock: str
    calibration_id: str | None = None

    @property
    def best(self) -> Prediction:
        return self.ranking[0]

    @property
    def config(self) -> CandidateConfig:
        return self.best.config

    def top(self, n: int) -> tuple[Prediction, ...]:
        return self.ranking[:n]


def history_from_attributions(
    records: Iterable,
    *,
    matrix_id: int = -1,
    clock: str | None = None,
) -> dict[tuple[str, int], float]:
    """Mean measured seconds per ``(format, threads)`` from history.

    *records* are :class:`~repro.perf.attribution.Attribution`
    instances (or anything with ``format_name``, ``threads``,
    ``time_s``, ``matrix_id``, ``clock`` attributes).  Records for a
    different matrix or a different clock are ignored -- a model-clock
    prediction must not be folded into a wall-clock ranking.
    """
    sums: dict[tuple[str, int], list[float]] = {}
    for rec in records:
        if matrix_id >= 0 and getattr(rec, "matrix_id", -1) != matrix_id:
            continue
        if clock is not None and getattr(rec, "clock", clock) != clock:
            continue
        t = float(getattr(rec, "time_s", 0.0))
        if t <= 0:
            continue
        key = (str(rec.format_name), int(rec.threads))
        sums.setdefault(key, []).append(t)
    return {k: sum(v) / len(v) for k, v in sums.items()}


def load_checkpoint_history(path) -> list:
    """Attribution records from a bench checkpoint JSONL.

    Tolerant the same way the checkpoint loader is: unreadable or
    foreign lines are skipped, never fatal (a checkpoint is a cache,
    not an authority).  Returns a flat list of
    :class:`~repro.perf.attribution.Attribution` suitable for
    :func:`history_from_attributions`.
    """
    import json

    from repro.bench.checkpoint import result_from_json

    out: list = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError:
        return out
    for line in lines:
        try:
            record = json.loads(line)
            result = result_from_json(record["result"])
        except (ValueError, KeyError, TypeError):
            continue
        out.extend(result.attributions.values())
    return out


def _fold_history(
    predictions: list[Prediction],
    history: Mapping[tuple[str, int], float],
) -> list[Prediction]:
    folded = []
    for p in predictions:
        measured = history.get((p.config.format_name, p.config.threads))
        if measured is not None:
            p = Prediction(
                config=p.config,
                seconds=measured,
                source="history",
                bytes_est=p.bytes_est,
            )
        folded.append(p)
    return folded


def advise(
    matrix,
    *,
    matrix_id: int = -1,
    clock: str = "real",
    formats: tuple[str, ...] = ADVISOR_FORMATS,
    kernels: tuple[str, ...] = ADVISOR_KERNELS,
    threads: tuple[int, ...] = (1,),
    backends: tuple[str, ...] = ("thread",),
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
    calibration=_DEFAULT,
    history=None,
    emit: bool = True,
) -> RankedChoice:
    """Rank every candidate configuration for *matrix*.

    *matrix* may be a :class:`~repro.formats.base.SparseMatrix` or a
    pre-extracted :class:`MatrixFeatures`.  ``calibration`` defaults
    to whatever ``tools/calibrate.py --advisor-out`` left on this host
    (pass ``None`` to force the analytic prior, or a
    :class:`Calibration` to pin one).  ``history`` is either a
    ``{(format, threads): seconds}`` mapping or an iterable of
    Attribution records, folded per the module-docstring rule.
    """
    features = (
        matrix
        if isinstance(matrix, MatrixFeatures)
        else extract_features(matrix)
    )
    if calibration is _DEFAULT:
        calibration = load_calibration() if clock == "real" else None
    if calibration is not None and not isinstance(calibration, Calibration):
        raise ReproError(
            "calibration must be a Calibration instance or None"
        )
    candidates = candidate_configs(
        formats=formats, kernels=kernels, threads=threads, backends=backends
    )
    predictions = [
        predict(
            features,
            c,
            machine=machine,
            cost_model=cost_model,
            calibration=calibration,
            clock=clock,
        )
        for c in candidates
    ]
    if history is not None:
        if not isinstance(history, Mapping):
            history = history_from_attributions(
                history, matrix_id=matrix_id, clock=clock
            )
        predictions = _fold_history(predictions, history)
    predictions.sort(key=lambda p: (p.seconds, p.config.describe()))
    choice = RankedChoice(
        matrix_id=matrix_id,
        features=features,
        ranking=tuple(predictions),
        clock=clock,
        calibration_id=(
            calibration.calibration_id if calibration is not None else None
        ),
    )
    if emit:
        best = choice.best
        record_advisor_pick(
            matrix_id=matrix_id,
            format_name=best.config.format_name,
            kernel=best.config.kernel,
            threads=best.config.threads,
            backend=best.config.backend,
            partition=best.config.partition,
            predicted_s=best.seconds,
            realized_s=0.0,
            source=best.source,
            phase="advise",
        )
    return choice


def record_realized(
    choice: RankedChoice | Prediction, realized_s: float, *, matrix_id: int | None = None
) -> None:
    """Report the wall clock a pick actually achieved.

    Emits the ``phase="realized"`` half of the ``advisor.pick`` pair;
    the dashboard divides predicted by realized seconds to chart
    prediction error.
    """
    best = choice.best if isinstance(choice, RankedChoice) else choice
    if matrix_id is None:
        matrix_id = (
            choice.matrix_id if isinstance(choice, RankedChoice) else -1
        )
    record_advisor_pick(
        matrix_id=matrix_id,
        format_name=best.config.format_name,
        kernel=best.config.kernel,
        threads=best.config.threads,
        backend=best.config.backend,
        partition=best.config.partition,
        predicted_s=best.seconds,
        realized_s=float(realized_s),
        source=best.source,
        phase="realized",
    )


# ---------------------------------------------------------------------------
# "auto" resolvers -- the narrow entry points the wiring layers call.


def advise_format(
    matrix,
    *,
    threads: int = 1,
    backend: str = "thread",
    clock: str = "real",
    formats: tuple[str, ...] = ADVISOR_FORMATS,
    matrix_id: int = -1,
    history=None,
) -> str:
    """The format ``"auto"`` resolves to for *matrix*."""
    choice = advise(
        matrix,
        matrix_id=matrix_id,
        clock=clock,
        formats=formats,
        kernels=("cached",),
        threads=(max(1, threads),),
        backends=(backend,),
        history=history,
    )
    return choice.config.format_name


def advise_kernel(
    matrix,
    format_name: str,
    *,
    clock: str = "real",
    matrix_id: int = -1,
) -> str:
    """The kernel tier ``"auto"`` resolves to for (*matrix*, format)."""
    choice = advise(
        matrix,
        matrix_id=matrix_id,
        clock=clock,
        formats=(format_name,),
        kernels=ADVISOR_KERNELS,
    )
    return choice.config.kernel


def advise_threads(
    matrix,
    *,
    format_name: str = "csr",
    backend: str = "thread",
    clock: str = "real",
    candidates: tuple[int, ...] = (1, 2, 4, 8),
    matrix_id: int = -1,
) -> int:
    """The thread count ``"auto"`` resolves to for *matrix*.

    Under the real clock the prediction already accounts for the GIL
    (thread backend) and the host CPU count (process backend), so on a
    single-CPU container this resolves to 1 rather than pretending
    parallel dispatch is free.
    """
    choice = advise(
        matrix,
        matrix_id=matrix_id,
        clock=clock,
        formats=(format_name,),
        kernels=("cached",),
        threads=tuple(sorted(set(candidates))),
        backends=(backend,),
    )
    return choice.config.threads
