"""Structural feature extraction: one cheap pass, one hashable record.

Everything the cost model needs to rank configurations without
converting the matrix to any compressed format:

* row-length statistics (mean/stdev/max nnz per row, empty rows) --
  the partitioner-balance and per-row-overhead signals;
* the delta-width histogram over the exact per-element column deltas
  CSR-DU would encode (:func:`repro.compress.delta.matrix_deltas`, the
  same vectorized pass the encoder itself starts from) plus an
  estimate of the unit count the greedy splitter would produce -- the
  ctl-stream-size and per-unit-overhead signals;
* the unique-value ratio (``ttu``, the paper's CSR-VI applicability
  criterion) via the same sort-based unique the encoder uses;
* diagonal fraction and normalized mean bandwidth -- locality signals
  for the x-gather;
* density.

The whole extraction is vectorized: one ``matrix_deltas`` pass
(``O(nnz)``), one ``np.unique`` (``O(nnz log nnz)``, the only
super-linear step, identical to what a CSR-VI encode would pay), and a
handful of reductions.  No Python-level per-element loop runs.

:class:`MatrixFeatures` is frozen and hashable so callers can memoize
advice per matrix (``{features: choice}``) and so it can serve as a
cache key across the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.delta import MAX_UNIT_SIZE, matrix_deltas
from repro.compress.unique import TTU_THRESHOLD
from repro.formats.base import SparseMatrix
from repro.formats.conversions import to_csr

__all__ = ["MatrixFeatures", "extract_features"]


@dataclass(frozen=True)
class MatrixFeatures:
    """Structural summary of one matrix (frozen, hashable).

    ``delta_hist`` counts column deltas by CSR-DU width class
    (u8/u16/u32/u64, row-opening deltas measured from column 0 exactly
    as the encoder does).  ``units_est`` estimates the greedy
    splitter's unit count from class-change run boundaries and the
    255-element size cap -- an estimate, not the encoder's exact count
    (greedy singleton-stealing is approximated), documented to land
    within a few percent on the catalog.  ``ttu`` is the paper's
    total-to-unique value ratio; ``bandwidth_mean`` is the mean
    ``|col - row|`` normalized by the column count (0 for a pure
    diagonal, ~1/3 for a dense matrix).
    """

    nrows: int
    ncols: int
    nnz: int
    density: float
    nnz_row_mean: float
    nnz_row_std: float
    nnz_row_max: int
    empty_rows: int
    delta_hist: tuple[int, int, int, int]
    units_est: int
    ttu: float
    unique_values: int
    diag_fraction: float
    bandwidth_mean: float

    @property
    def avg_unit_size(self) -> float:
        """Estimated nonzeros amortizing each CSR-DU unit header."""
        return self.nnz / self.units_est if self.units_est else 0.0

    @property
    def narrow_delta_fraction(self) -> float:
        """Fraction of deltas in the u8 class (CSR-DU's best case)."""
        return self.delta_hist[0] / self.nnz if self.nnz else 0.0

    @property
    def vi_applicable(self) -> bool:
        """The paper's Section VI-E criterion: ``ttu`` above threshold."""
        return self.ttu > TTU_THRESHOLD


def _estimated_units(
    classes: np.ndarray, starts: np.ndarray, nnz: int
) -> int:
    """Greedy-splitter unit count estimate from one vectorized pass.

    A unit boundary falls wherever the width class changes or a row
    opens; runs longer than the 255-element cap split further.  The
    greedy policy additionally *steals* a singleton run as the next
    unit's opening varint -- approximated here by discounting singleton
    runs that have a same-row successor (alternating singletons merge
    only pairwise, so this over-corrects slightly on pathological
    checkerboard delta patterns; the exact count is only known after a
    real encode).
    """
    if nnz == 0:
        return 0
    is_start = np.zeros(nnz, dtype=bool)
    is_start[starts] = True
    run_open = is_start.copy()
    if nnz > 1:
        run_open[1:] |= (classes[1:] != classes[:-1]) & ~is_start[1:]
    run_starts = np.flatnonzero(run_open)
    run_lengths = np.diff(np.append(run_starts, nnz))
    units = int(np.sum((run_lengths + MAX_UNIT_SIZE - 1) // MAX_UNIT_SIZE))
    # Singleton runs followed by another run of the *same row* vanish
    # into that run's opening varint under the greedy policy.
    if run_starts.size > 1:
        singleton = run_lengths[:-1] == 1
        successor_same_row = ~is_start[run_starts[1:]]
        units -= int(np.count_nonzero(singleton & successor_same_row))
    return max(units, int(starts.size))


def extract_features(matrix: SparseMatrix) -> MatrixFeatures:
    """One cheap pass over *matrix* (converted to CSR if it is not).

    The conversion is free for CSR input and is the same ``to_csr``
    every executor already performs; callers holding an exotic format
    pay one decode, never a compressed re-encode.
    """
    csr = to_csr(matrix)
    nrows, ncols, nnz = int(csr.nrows), int(csr.ncols), int(csr.nnz)
    row_ptr = np.asarray(csr.row_ptr, dtype=np.int64)
    col_ind = np.asarray(csr.col_ind, dtype=np.int64)
    row_lengths = np.diff(row_ptr)
    empty_rows = int(np.count_nonzero(row_lengths == 0)) if nrows else 0

    deltas, classes, starts = matrix_deltas(row_ptr, col_ind)
    del deltas  # only the classes and run structure matter here
    hist = [0, 0, 0, 0]
    if nnz:
        counts = np.bincount(classes, minlength=4)
        hist = [int(c) for c in counts[:4]]

    if nnz:
        values = np.asarray(csr.values)
        unique_values = int(np.unique(values).size)
        ttu = nnz / unique_values
        rows_of = np.repeat(
            np.arange(nrows, dtype=np.int64), row_lengths
        )
        diag_fraction = float(np.count_nonzero(col_ind == rows_of) / nnz)
        spread = np.abs(col_ind - rows_of)
        bandwidth_mean = float(spread.mean() / max(1, ncols - 1))
        nnz_row_mean = float(row_lengths.mean())
        nnz_row_std = float(row_lengths.std())
        nnz_row_max = int(row_lengths.max())
    else:
        unique_values = 0
        ttu = 0.0
        diag_fraction = 0.0
        bandwidth_mean = 0.0
        nnz_row_mean = nnz_row_std = 0.0
        nnz_row_max = 0

    return MatrixFeatures(
        nrows=nrows,
        ncols=ncols,
        nnz=nnz,
        density=nnz / (nrows * ncols) if nrows and ncols else 0.0,
        nnz_row_mean=nnz_row_mean,
        nnz_row_std=nnz_row_std,
        nnz_row_max=nnz_row_max,
        empty_rows=empty_rows,
        delta_hist=(hist[0], hist[1], hist[2], hist[3]),
        units_est=_estimated_units(classes, starts, nnz),
        ttu=float(ttu),
        unique_values=unique_values,
        diag_fraction=diag_fraction,
        bandwidth_mean=bandwidth_mean,
    )
