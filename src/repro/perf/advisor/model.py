"""Candidate scoring: features -> predicted seconds per configuration.

Two prediction regimes share one entry point (:func:`predict`):

* **Analytic** (always available): per-format streamed bytes are
  estimated from :class:`~repro.perf.advisor.features.MatrixFeatures`
  alone -- the same layout arithmetic :mod:`repro.perf.bytes` performs
  on a *converted* matrix, re-derived from the delta-width histogram
  and unique-value count so no conversion is needed -- and kernel
  cycles come from the calibrated
  :class:`~repro.machine.costmodel.CostModel`.  The score is a
  roofline: ``max(bytes / bandwidth(threads), cycles / (threads *
  clock))`` plus a fixed per-call overhead.  This is the machine-model
  regime; it is what ``clock="model"`` benches rank with.

* **Calibrated** (preferred under the real clock, graceful fallback
  when absent): a :class:`Calibration` measured on the current host
  (``tools/calibrate.py --advisor-out``) stores per-``(format, tier)``
  ns/nnz throughputs plus per-call and per-worker dispatch overheads.
  Wall-clock on this pure-Python stack is dominated by interpreter
  and NumPy dispatch costs the machine model does not see (e.g. the
  unitwise CSR-DU decode is ~2 orders of magnitude off its C-code
  cost), so measured throughput is the only honest real-clock
  predictor.  The thread backend's multi-worker cells are modeled as
  *undivided* serial work plus dispatch (the GIL), the process
  backend's as work divided over ``min(threads, host cpus)`` plus IPC
  overhead -- both shapes verified by ``BENCH_parallel.json``.

The analytic tier factors below encode the same Python reality for the
uncalibrated path: they are implementation-throughput ratios, not
machine-model quantities, and a real :class:`Calibration` replaces
them entirely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.compress.unique import index_dtype_for
from repro.errors import ReproError
from repro.machine.costmodel import CostModel, default_cost_model
from repro.machine.topology import MachineSpec, clovertown_8core
from repro.perf.advisor.features import MatrixFeatures
from repro.util import hostinfo

__all__ = [
    "ADVISOR_FORMATS",
    "ADVISOR_KERNELS",
    "Calibration",
    "CandidateConfig",
    "Prediction",
    "candidate_configs",
    "estimate_bytes",
    "load_calibration",
    "measure_calibration",
    "predict",
    "save_calibration",
]

#: Formats the advisor ranks: the paper's compression lattice.
ADVISOR_FORMATS = ("csr", "csr-vi", "csr-du", "csr-du-vi")

#: Kernel tiers the advisor ranks by default.  "batched" aliases
#: "vectorized" for the row-pointer formats and is within noise of
#: "cached" for the delta formats, so ranking these two spans the real
#: spread; "reference" is the ground-truth tier, never a perf choice.
ADVISOR_KERNELS = ("cached", "vectorized")

#: Analytic per-call overhead (Python call + argument checks), and the
#: uncalibrated implementation-throughput factors described above.
ANALYTIC_CALL_OVERHEAD_S = 5e-6
TIER_CYCLE_FACTOR = {
    ("csr-du", "vectorized"): 80.0,  # unitwise Python decode loop
    ("csr-du-vi", "vectorized"): 1.0,
}
REFERENCE_TIER_FACTOR = 50.0  # pure-Python per-element loops

#: Uncalibrated executor dispatch estimates (seconds per call): the
#: thread pool's per-worker wake/join, and the process pool's IPC.
THREAD_DISPATCH_S = 2e-4
PROCESS_DISPATCH_S = 2e-3

_VALUE_BYTES = 8
_INDEX_BYTES = 4
_CTL_HEADER_BYTES = 4  # flags + usize + ~2-byte ujmp varint, per unit
_CLASS_BYTES = (1, 2, 4, 8)


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the advisor's search space (frozen, hashable).

    ``partition`` is carried for completeness -- every executor in the
    repo splits by contiguous row blocks today, so ``"row"`` is the
    only value in play, but the axis is part of the ranking record so
    history stays comparable if column/block partitioners land.
    """

    format_name: str
    kernel: str = "cached"
    threads: int = 1
    backend: str = "thread"
    partition: str = "row"

    def describe(self) -> str:
        return (
            f"{self.format_name}/{self.kernel}"
            f" x{self.threads} {self.backend}/{self.partition}"
        )


@dataclass(frozen=True)
class Prediction:
    """A scored candidate: predicted seconds plus provenance.

    ``source`` is ``"analytic"`` (machine model + tier factors),
    ``"calibrated"`` (host-measured throughputs), or ``"history"``
    (a real :class:`~repro.perf.attribution.Attribution` measurement
    folded over the prior by the advisor).
    """

    config: CandidateConfig
    seconds: float
    source: str
    bytes_est: int = 0


def estimate_bytes(
    features: MatrixFeatures, format_name: str
) -> tuple[int, int, int]:
    """Estimated (index, value, vector) bytes streamed per iteration.

    Mirrors the exact per-format census of :mod:`repro.perf.bytes`
    from features alone: CSR-DU's ctl stream is rebuilt from the
    delta-width histogram and the estimated unit count (each unit's
    first delta rides in its ujmp varint, hence the subtraction),
    CSR-VI's value stream from the unique count and the paper's
    narrowest-index rule.  Vector traffic is one x read plus one y
    write.
    """
    nnz, nrows, ncols = features.nnz, features.nrows, features.ncols
    csr_index = _INDEX_BYTES * nnz + _INDEX_BYTES * (nrows + 1)
    csr_value = _VALUE_BYTES * nnz
    vector = _VALUE_BYTES * (ncols + nrows)
    if format_name == "csr":
        return csr_index, csr_value, vector
    if format_name == "csr-vi":
        width = index_dtype_for(features.unique_values).itemsize
        value = _VALUE_BYTES * features.unique_values + width * nnz
        return csr_index, value, vector
    if format_name in ("csr-du", "csr-du-vi"):
        body = sum(
            count * size
            for count, size in zip(features.delta_hist, _CLASS_BYTES)
        )
        ctl = _CTL_HEADER_BYTES * features.units_est + max(
            0, body - features.units_est
        )
        if format_name == "csr-du":
            return ctl, csr_value, vector
        width = index_dtype_for(features.unique_values).itemsize
        value = _VALUE_BYTES * features.unique_values + width * nnz
        return ctl, value, vector
    raise ReproError(
        f"advisor cannot estimate bytes for format {format_name!r}; "
        f"supported: {ADVISOR_FORMATS}"
    )


def candidate_configs(
    *,
    formats: tuple[str, ...] = ADVISOR_FORMATS,
    kernels: tuple[str, ...] = ADVISOR_KERNELS,
    threads: tuple[int, ...] = (1,),
    backends: tuple[str, ...] = ("thread",),
) -> tuple[CandidateConfig, ...]:
    """The cross product, restricted to registered kernels.

    Multi-worker cells always execute shard kernels (the format's own
    ``spmv``), so thread counts above one are emitted only at the
    ``"cached"`` tier -- ranking a per-call kernel tier the executor
    would never run would be noise.
    """
    from repro.kernels.registry import available_kernels

    registered = set(available_kernels())
    out: list[CandidateConfig] = []
    for fmt in formats:
        for tier in kernels:
            if (fmt, tier) not in registered:
                continue
            for backend in backends:
                for t in threads:
                    if t > 1 and tier != "cached":
                        continue
                    out.append(
                        CandidateConfig(
                            format_name=fmt,
                            kernel=tier,
                            threads=t,
                            backend=backend,
                        )
                    )
    if not out:
        raise ReproError("no candidate configurations are registered")
    return tuple(out)


# ---------------------------------------------------------------------------
# Calibration


@dataclass
class Calibration:
    """Host-measured throughputs (see module docstring).

    ``ns_per_nnz`` maps ``"format|tier"`` to nanoseconds per nonzero;
    ``per_call_s`` is the fixed kernel-call overhead and
    ``thread_call_overhead_s`` / ``process_call_overhead_s`` the
    per-worker dispatch costs of one executor call.  ``host`` records
    where the numbers were measured (they do not transfer between
    machines; the id makes that checkable).
    """

    ns_per_nnz: dict[str, float] = field(default_factory=dict)
    per_call_s: float = 0.0
    thread_call_overhead_s: float = THREAD_DISPATCH_S
    process_call_overhead_s: float = PROCESS_DISPATCH_S
    host: dict = field(default_factory=dict)
    version: int = 1

    @property
    def calibration_id(self) -> str:
        payload = json.dumps(
            {
                "ns_per_nnz": {
                    k: round(v, 4) for k, v in sorted(self.ns_per_nnz.items())
                },
                "per_call_s": round(self.per_call_s, 9),
                "thread_call_overhead_s": round(self.thread_call_overhead_s, 9),
                "process_call_overhead_s": round(
                    self.process_call_overhead_s, 9
                ),
                "version": self.version,
            },
            sort_keys=True,
        )
        return hashlib.sha1(payload.encode("ascii")).hexdigest()[:12]

    def lookup(self, format_name: str, tier: str) -> float | None:
        return self.ns_per_nnz.get(f"{format_name}|{tier}")

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "id": self.calibration_id,
            "host": self.host,
            "per_call_s": self.per_call_s,
            "thread_call_overhead_s": self.thread_call_overhead_s,
            "process_call_overhead_s": self.process_call_overhead_s,
            "ns_per_nnz": dict(sorted(self.ns_per_nnz.items())),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Calibration":
        return cls(
            ns_per_nnz={
                str(k): float(v)
                for k, v in dict(data.get("ns_per_nnz", {})).items()
            },
            per_call_s=float(data.get("per_call_s", 0.0)),
            thread_call_overhead_s=float(
                data.get("thread_call_overhead_s", THREAD_DISPATCH_S)
            ),
            process_call_overhead_s=float(
                data.get("process_call_overhead_s", PROCESS_DISPATCH_S)
            ),
            host=dict(data.get("host", {})),
            version=int(data.get("version", 1)),
        )


def save_calibration(cal: Calibration, path: str | None = None) -> str:
    """Write *cal* where :func:`load_calibration` will find it."""
    target = hostinfo.calibration_path(path)
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(cal.to_json(), fh, indent=2)
        fh.write("\n")
    return target


def load_calibration(path: str | None = None) -> Calibration | None:
    """Load the calibration in effect, or ``None`` (graceful fallback).

    Resolution order matches :func:`repro.util.hostinfo
    .calibration_path`: explicit path, then the
    ``REPRO_ADVISOR_CALIBRATION`` environment variable, then
    ``advisor_calibration.json`` in the working directory.  Any read
    or parse failure means "no calibration" -- the advisor's analytic
    prior takes over rather than the caller crashing.
    """
    try:
        with open(hostinfo.calibration_path(path), "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict):
            return None
        return Calibration.from_json(data)
    except (OSError, ValueError, TypeError):
        return None


def measure_calibration(
    *, probe_size: int = 20_000, calls: int = 8, repeats: int = 3
) -> Calibration:
    """Measure per-``(format, tier)`` throughputs on this host.

    Two probes: a banded random matrix with quantized values (so the
    VI formats compress representatively) sized to dominate per-call
    overhead, and a tiny band whose runtime *is* mostly overhead --
    a two-point fit separates ``per_call_s`` from the slope.  The
    thread-dispatch overhead comes from a 2-worker executor on the
    same probe.  Structure dependence (a power-law matrix decodes
    slower per nnz than a band) is deliberately averaged away: the
    advisor needs stable *ordering* across formats, which one probe
    preserves (DESIGN.md section 4.8).
    """
    import numpy as np

    from repro.formats.conversions import convert
    from repro.formats.csr import CSRMatrix
    from repro.kernels.registry import get_kernel
    from repro.matrices.generators import banded_random, dense_band
    from repro.matrices.values import quantized_values, set_matrix_values
    from repro.util.timing import measure

    probe = CSRMatrix.from_coo(banded_random(probe_size, 16, 8, seed=3))
    probe = set_matrix_values(
        probe, quantized_values(probe.nnz, 512, seed=3)
    )
    tiny = CSRMatrix.from_coo(dense_band(96, 2))
    rng = np.random.default_rng(0)
    x_probe = rng.random(probe.ncols)
    x_tiny = rng.random(tiny.ncols)

    def timed(matrix, fmt, tier, x):
        converted = convert(matrix, fmt) if fmt != "csr" else matrix
        kernel = get_kernel(fmt, tier)
        kernel(converted, x)  # warm decode caches / plans
        return measure(
            lambda: kernel(converted, x), calls=calls, repeats=repeats
        ).per_call

    t_probe_csr = timed(probe, "csr", "cached", x_probe)
    t_tiny_csr = timed(tiny, "csr", "cached", x_tiny)
    # Two-point fit: t = per_call + slope * nnz.
    denom = probe.nnz - tiny.nnz
    per_call = max(
        0.0, (t_tiny_csr * probe.nnz - t_probe_csr * tiny.nnz) / denom
    )

    ns_per_nnz: dict[str, float] = {}
    for fmt in ADVISOR_FORMATS:
        for tier in ADVISOR_KERNELS:
            try:
                t = (
                    t_probe_csr
                    if (fmt, tier) == ("csr", "cached")
                    else timed(probe, fmt, tier, x_probe)
                )
            except Exception:  # unregistered tier: simply not calibrated
                continue
            ns = max(0.01, (t - per_call) * 1e9 / probe.nnz)
            ns_per_nnz[f"{fmt}|{tier}"] = round(ns, 4)

    from repro.parallel.executor import ParallelSpMV

    executor = ParallelSpMV(probe, 2, format_name="csr")
    try:
        executor(x_probe)  # warm shard encodes
        t_exec = measure(
            lambda: executor(x_probe), calls=calls, repeats=repeats
        ).per_call
    finally:
        executor.close()
    thread_overhead = max(1e-6, (t_exec - t_probe_csr) / 2)

    cal = Calibration(
        ns_per_nnz=ns_per_nnz,
        per_call_s=per_call,
        thread_call_overhead_s=thread_overhead,
    )
    cal.host = hostinfo.host_fingerprint(calibration_id=cal.calibration_id)
    return cal


# ---------------------------------------------------------------------------
# Prediction


def _analytic_cycles(
    features: MatrixFeatures, config: CandidateConfig, cost_model: CostModel
) -> float:
    nnz, rows = features.nnz, features.nrows - features.empty_rows
    fmt = config.format_name
    if fmt == "csr":
        cost = cost_model.csr(nnz, rows)
    elif fmt == "csr-vi":
        cost = cost_model.csr_vi(nnz, rows)
    elif fmt == "csr-du":
        cost = cost_model.csr_du(nnz, rows, features.units_est)
    elif fmt == "csr-du-vi":
        cost = cost_model.csr_du_vi(nnz, rows, features.units_est)
    else:
        raise ReproError(f"advisor has no cycle model for {fmt!r}")
    factor = 1.0
    if config.kernel == "reference":
        factor = REFERENCE_TIER_FACTOR
    else:
        factor = TIER_CYCLE_FACTOR.get((fmt, config.kernel), 1.0)
    return cost.total * factor


def predict(
    features: MatrixFeatures,
    config: CandidateConfig,
    *,
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
    calibration: Calibration | None = None,
    clock: str = "real",
) -> Prediction:
    """Predicted seconds per SpMV call for one candidate.

    ``clock="model"`` always uses the analytic machine-model regime
    (that is what model-clock benches are ranked for); ``clock="real"``
    prefers *calibration* and falls back to the analytic regime with
    the Python tier factors when none is given.
    """
    machine = machine or clovertown_8core()
    cost_model = cost_model or default_cost_model()
    idx, val, vec = estimate_bytes(features, config.format_name)
    total_bytes = idx + val + vec

    ns = (
        calibration.lookup(config.format_name, config.kernel)
        if calibration is not None and clock == "real"
        else None
    )
    if ns is not None:
        serial = calibration.per_call_s + ns * 1e-9 * features.nnz
        if config.threads <= 1:
            seconds = serial
        else:
            # Multi-worker calls run shard kernels at the cached tier.
            ns_cached = (
                calibration.lookup(config.format_name, "cached") or ns
            )
            work = ns_cached * 1e-9 * features.nnz
            if config.backend == "thread":
                # The GIL serializes the chunks; dispatch is pure cost.
                seconds = (
                    calibration.per_call_s
                    + config.threads * calibration.thread_call_overhead_s
                    + work
                )
            else:
                cpus = int(self_host_cpus(calibration))
                effective = max(1, min(config.threads, cpus))
                seconds = (
                    calibration.per_call_s
                    + config.threads * calibration.process_call_overhead_s
                    + work / effective
                )
        return Prediction(
            config=config,
            seconds=seconds,
            source="calibrated",
            bytes_est=total_bytes,
        )

    cycles = _analytic_cycles(features, config, cost_model)
    bandwidth = min(machine.mem_bw, config.threads * machine.core_bw)
    if clock == "real" and config.threads > 1 and config.backend == "thread":
        # GIL: no compute-side division, plus dispatch.
        t_cpu = cycles / machine.clock_hz
        overhead = (
            ANALYTIC_CALL_OVERHEAD_S + config.threads * THREAD_DISPATCH_S
        )
        bandwidth = machine.core_bw
    else:
        t_cpu = cycles / (machine.clock_hz * config.threads)
        overhead = ANALYTIC_CALL_OVERHEAD_S
        if clock == "real" and config.backend == "process":
            overhead += config.threads * PROCESS_DISPATCH_S
    t_mem = total_bytes / bandwidth
    return Prediction(
        config=config,
        seconds=overhead + max(t_mem, t_cpu),
        source="analytic",
        bytes_est=total_bytes,
    )


def self_host_cpus(calibration: Calibration | None) -> int:
    """CPU count the prediction should divide by (calibrated host's)."""
    import os

    if calibration is not None and calibration.host.get("cpus"):
        return int(calibration.host["cpus"])
    return os.cpu_count() or 1
