"""Machine model: topology, caches, bandwidth domains, cost model, engine.

This package is the substitution for the paper's 2x Clovertown testbed
(see DESIGN.md section 3): it predicts SpMV execution time for a given
(matrix, format, thread placement) from the format's exact byte layout,
a calibrated per-format instruction cost model, and a fluid
bandwidth-contention solver over the machine's bandwidth domains.
"""

from repro.machine.topology import (
    Core,
    MachineSpec,
    clovertown_8core,
    place_threads,
    smp_machine,
    woodcrest_4core,
)
from repro.machine.cache import LRUCache, simulate_trace
from repro.machine.costmodel import CostModel, KernelCost, default_cost_model
from repro.machine.traffic import ThreadWork, analyze_threads
from repro.machine.engine import SimResult, solve_makespan
from repro.machine.roofline import RooflinePoint, format_roofline, roofline_point, roofline_table
from repro.machine.simulate import simulate_spmv, spmv_mflops
from repro.machine.tracesim import TraceResult, format_trace, run_trace

__all__ = [
    "Core",
    "MachineSpec",
    "clovertown_8core",
    "woodcrest_4core",
    "smp_machine",
    "place_threads",
    "LRUCache",
    "simulate_trace",
    "CostModel",
    "KernelCost",
    "default_cost_model",
    "ThreadWork",
    "analyze_threads",
    "SimResult",
    "solve_makespan",
    "simulate_spmv",
    "RooflinePoint",
    "roofline_point",
    "roofline_table",
    "format_roofline",
    "TraceResult",
    "format_trace",
    "run_trace",
    "spmv_mflops",
]
