"""Per-format instruction cost model.

The model assigns each kernel a cycle count built from the operation
census of the *reference kernels* (see :mod:`repro.kernels.reference`):
elements processed, non-empty rows visited, units decoded, commands
dispatched.  Constants are calibrated once against Table II's serial
band (DESIGN.md section 6) and then held fixed for every experiment.

The qualitative relationships the constants encode:

* CSR pays ``per_element`` (multiply-add, gather, loop) per nonzero and
  ``per_row`` per non-empty row (pointer load, accumulator write);
* CSR-DU adds a per-element delta decode and a per-unit header cost
  (flags/size parse plus one well-predicted dispatch branch) -- the
  paper's "coarse grain" argument is precisely that the per-unit cost
  amortizes over ``usize`` elements;
* CSR-VI adds one indirection per element (the ``val_ind`` gather);
* DCSR pays a dispatch *per command*, and a fraction of those branches
  mispredict (the Section III-B critique); RUN8 bodies behave like a
  small unit;
* BCSR processes stored elements (including fill) cheaper per element
  (no per-element column index) but does the fill's useless flops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MachineModelError


@dataclass(frozen=True)
class KernelCost:
    """Cycle count broken down by source (one thread's kernel run)."""

    element_cycles: float
    row_cycles: float
    dispatch_cycles: float

    @property
    def total(self) -> float:
        return self.element_cycles + self.row_cycles + self.dispatch_cycles


@dataclass(frozen=True)
class CostModel:
    """Calibrated cycle costs (see module docstring).

    All values are cycles.  ``branch_miss_penalty`` is charged per
    *mispredicted* dispatch; ``dcsr_mispredict_rate`` is the fraction of
    DCSR command dispatches assumed to mispredict (fine-grained,
    data-dependent branching), against ``du_mispredict_rate`` for
    CSR-DU's per-unit dispatch (coarse-grained, highly biased).
    """

    per_element: float = 3.0
    per_row: float = 7.3
    du_decode_per_element: float = 1.9
    du_seq_decode_per_element: float = 0.5
    du_per_unit: float = 12.5
    vi_extra_per_element: float = 3.9
    dcsr_per_command: float = 4.0
    dcsr_per_element: float = 1.2
    bcsr_per_stored_element: float = 3.2
    bcsr_per_block: float = 8.0
    branch_miss_penalty: float = 14.0
    du_mispredict_rate: float = 0.05
    dcsr_mispredict_rate: float = 0.35

    def __post_init__(self) -> None:
        # du_decode / vi_extra may be mildly negative: a 1-byte delta
        # load plus add can retire cheaper than a 4-byte index load.
        for field_name in (
            "per_element",
            "per_row",
            "du_per_unit",
            "dcsr_per_command",
            "dcsr_per_element",
            "bcsr_per_stored_element",
            "bcsr_per_block",
            "branch_miss_penalty",
        ):
            if getattr(self, field_name) < 0:
                raise MachineModelError(f"{field_name} must be non-negative")
        for field_name in ("du_decode_per_element", "vi_extra_per_element"):
            if getattr(self, field_name) < -self.per_element:
                raise MachineModelError(
                    f"{field_name} cannot make elements free"
                )
        for rate in (self.du_mispredict_rate, self.dcsr_mispredict_rate):
            if not 0 <= rate <= 1:
                raise MachineModelError("mispredict rates must be in [0, 1]")

    # -- per-format costs ---------------------------------------------------
    def csr(self, nnz: int, rows: int) -> KernelCost:
        return KernelCost(
            element_cycles=self.per_element * nnz,
            row_cycles=self.per_row * rows,
            dispatch_cycles=0.0,
        )

    def csr_du(
        self, nnz: int, rows: int, units: int, seq_elements: int = 0
    ) -> KernelCost:
        dispatch = units * (
            self.du_per_unit
            + self.du_mispredict_rate * self.branch_miss_penalty
        )
        plain = nnz - seq_elements
        decode = (
            self.du_decode_per_element * plain
            + self.du_seq_decode_per_element * seq_elements
        )
        return KernelCost(
            element_cycles=self.per_element * nnz + decode,
            row_cycles=self.per_row * rows,
            dispatch_cycles=dispatch,
        )

    def csr_vi(self, nnz: int, rows: int) -> KernelCost:
        return KernelCost(
            element_cycles=(self.per_element + self.vi_extra_per_element) * nnz,
            row_cycles=self.per_row * rows,
            dispatch_cycles=0.0,
        )

    def csr_du_vi(
        self, nnz: int, rows: int, units: int, seq_elements: int = 0
    ) -> KernelCost:
        base = self.csr_du(nnz, rows, units, seq_elements)
        return replace(
            base,
            element_cycles=base.element_cycles + self.vi_extra_per_element * nnz,
        )

    def dcsr(self, nnz: int, rows: int, commands: int) -> KernelCost:
        dispatch = commands * (
            self.dcsr_per_command
            + self.dcsr_mispredict_rate * self.branch_miss_penalty
        )
        return KernelCost(
            element_cycles=(self.per_element + self.dcsr_per_element) * nnz,
            row_cycles=self.per_row * rows,
            dispatch_cycles=dispatch,
        )

    def bcsr(self, stored_elements: int, blocks: int, block_rows: int) -> KernelCost:
        return KernelCost(
            element_cycles=self.bcsr_per_stored_element * stored_elements,
            row_cycles=self.per_row * block_rows,
            dispatch_cycles=self.bcsr_per_block * blocks,
        )


def default_cost_model() -> CostModel:
    """The calibrated constants used by every benchmark (DESIGN.md sec 6)."""
    return CostModel()
