"""Execution-time engine: cache residency + bandwidth-contention makespan.

Two modeled stages sit between the exact per-thread byte counts of
:mod:`repro.machine.traffic` and a predicted SpMV time:

**Cache residency** (per L2 domain, i.e. per die).  The steady-state
iterative regime of the paper (128 back-to-back SpMVs, no cache
pollution) means whatever fits in a cache stays there across calls.
For each die we gather the arrays its threads touch -- each thread's
private streams plus the die-level union of shared arrays (x,
vals_unique) -- and allocate effective capacity greedily,
smallest-array-first (small arrays are the frequently-reused ones: x,
y, row_ptr, vals_unique).  Arrays that fit are fully resident; the
first array that does not fit gets partial residency
``(leftover / size) ** residency_exponent`` -- the exponent > 1
approximates cyclic-LRU thrashing, where streaming a working set
slightly larger than the cache yields almost no reuse; anything after
it gets none.  DRAM traffic per iteration is the non-resident
remainder.

**Makespan.**  With per-thread compute times ``C_i`` (from the cost
model), DRAM traffic ``M_i`` and L2-served bytes ``L_i``, the finish
time is bounded by every bandwidth domain::

    t_i = M_i / core_bw + L_i / l2_core_bw           (transfer time)
    T = max( max_i [ max(C_i, t_i) + (1 - overlap) * min(C_i, t_i) ],
             max_dies     sum_{i in die} M_i / die_bw,
             max_dies     sum_{i in die} L_i / l2_die_bw,
             max_packages sum_{i in pkg} M_i / fsb_bw,
             sum_i M_i / mem_bw )

The per-thread term interpolates between the additive latency-bound
model (``overlap = 0``; SpMV's dependent gathers give one thread little
memory parallelism) and perfect pipelining (``overlap = 1``); the
domain terms assume full overlap because a saturated shared bus is
always busy.  Each term is a physical lower bound; taking their maximum
is the standard fluid (water-filling) approximation and is exact when
one domain dominates -- precisely the regime the paper studies (FSB /
MCH saturation).  The shared ``x`` footprint is inflated by the
machine's ``x_reload`` factor before allocation (gathers re-fetch lines
evicted mid-iteration).  The returned :class:`SimResult` names the
binding term so the benchmarks can report *why* a configuration is as
fast as it is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineModelError
from repro.machine.costmodel import CostModel
from repro.machine.topology import MachineSpec
from repro.machine.traffic import ThreadWork


@dataclass(frozen=True)
class SimResult:
    """Predicted execution of one SpMV iteration.

    Attributes
    ----------
    time_s:
        Seconds per SpMV call (steady state).
    mflops:
        Useful MFLOPS (2 flops per stored nonzero) at that time.
    bound:
        The binding constraint: ``"compute"``, ``"core-bw"`` (the
        per-thread compute+transfer term), ``"die-bw"``, ``"l2-bw"``,
        ``"fsb"``, or ``"mem"``.
    compute_s:
        Per-thread compute seconds.
    traffic_bytes:
        Per-thread DRAM traffic per iteration (post-residency).
    resident_fraction:
        Fraction of the total touched working set resident in cache.
    """

    time_s: float
    mflops: float
    bound: str
    compute_s: tuple[float, ...]
    traffic_bytes: tuple[float, ...]
    resident_fraction: float

    @property
    def total_traffic(self) -> float:
        return float(sum(self.traffic_bytes))


def _thread_cycles(work: ThreadWork, cost: CostModel) -> float:
    """Dispatch the cost model on the work's format."""
    fmt = work.format_name
    if fmt == "csr":
        return cost.csr(work.nnz, work.rows_nonempty).total
    if fmt == "csr-du":
        return cost.csr_du(
            work.nnz, work.rows_nonempty, work.units, work.seq_elements
        ).total
    if fmt == "csr-vi":
        return cost.csr_vi(work.nnz, work.rows_nonempty).total
    if fmt == "csr-du-vi":
        return cost.csr_du_vi(
            work.nnz, work.rows_nonempty, work.units, work.seq_elements
        ).total
    if fmt == "dcsr":
        return cost.dcsr(work.nnz, work.rows_nonempty, work.commands).total
    if fmt == "bcsr":
        return cost.bcsr(work.stored_elements, work.blocks, work.block_rows).total
    raise MachineModelError(f"no cost model for format {fmt!r}")


def _die_residency(
    works: list[ThreadWork],
    die_threads: list[int],
    machine: MachineSpec,
    total_shared: dict[str, int],
) -> tuple[dict[tuple, float], float, float]:
    """Allocate one die's L2 across the arrays its threads touch.

    Returns ``(residency, touched_bytes, resident_bytes)`` where
    *residency* maps item keys -- ``("private", thread, name)`` or
    ``("shared", name)`` -- to resident fractions in [0, 1].
    """
    items: list[tuple[tuple, int]] = []
    for t in die_threads:
        for name, nbytes in works[t].private_bytes.items():
            if nbytes > 0:
                items.append((("private", t, name), nbytes))
    shared_names = set()
    for t in die_threads:
        shared_names.update(works[t].shared_bytes)
    for name in sorted(shared_names):
        per_thread = sum(works[t].shared_bytes.get(name, 0) for t in die_threads)
        union = min(per_thread, total_shared.get(name, per_thread))
        if name == "x":
            union = int(union * machine.x_reload)
        if union > 0:
            items.append((("shared", name), union))
    items.sort(key=lambda kv: kv[1])
    capacity = machine.cache_effectiveness * machine.l2_bytes
    residency: dict[tuple, float] = {}
    used = 0.0
    touched = float(sum(b for _, b in items))
    resident = 0.0
    exhausted = False
    for key, nbytes in items:
        if exhausted:
            residency[key] = 0.0
            continue
        if used + nbytes <= capacity:
            residency[key] = 1.0
            used += nbytes
            resident += nbytes
        else:
            leftover = max(0.0, capacity - used)
            frac = (leftover / nbytes) ** machine.residency_exponent
            residency[key] = frac
            resident += frac * nbytes
            exhausted = True
    return residency, touched, resident


def solve_makespan(
    works: list[ThreadWork],
    cores: tuple[int, ...],
    machine: MachineSpec,
    cost: CostModel,
    *,
    total_shared: dict[str, int] | None = None,
) -> SimResult:
    """Predict one SpMV iteration's time for *works* placed on *cores*.

    ``total_shared`` caps the die-level union of shared arrays (e.g.
    ``{"x": ncols * 8}``); without it the union is the sum of
    per-thread footprints.
    """
    if len(works) != len(cores):
        raise MachineModelError(
            f"{len(works)} threads but {len(cores)} core assignments"
        )
    if len(set(cores)) != len(cores):
        raise MachineModelError("threads must map to distinct cores")
    total_shared = dict(total_shared or {})
    core_info = {c.core_id: c for c in machine.cores}
    for c in cores:
        if c not in core_info:
            raise MachineModelError(f"core {c} not in machine {machine.name}")

    # --- group threads by die ------------------------------------------
    die_threads: dict[int, list[int]] = {}
    for t, core_id in enumerate(cores):
        die_threads.setdefault(core_info[core_id].die_id, []).append(t)

    n = len(works)
    traffic = np.zeros(n, dtype=np.float64)
    l2_served = np.zeros(n, dtype=np.float64)
    touched_total = 0.0
    resident_total = 0.0
    for die, threads in die_threads.items():
        residency, touched, resident = _die_residency(
            works, threads, machine, total_shared
        )
        touched_total += touched
        resident_total += resident
        for t in threads:
            for name, nbytes in works[t].private_bytes.items():
                if nbytes > 0:
                    res = residency[("private", t, name)]
                    traffic[t] += (1.0 - res) * nbytes
                    l2_served[t] += res * nbytes
        # Shared arrays: die-level traffic split by footprint share.
        for name in {k[1] for k in residency if k[0] == "shared"}:
            per_thread = np.array(
                [works[t].shared_bytes.get(name, 0) for t in threads], dtype=float
            )
            total = per_thread.sum()
            if total <= 0:
                continue
            union = min(total, total_shared.get(name, total))
            if name == "x":
                union = union * machine.x_reload
            res = residency[("shared", name)]
            die_traffic = (1.0 - res) * union
            die_l2 = res * union
            traffic[np.asarray(threads)] += die_traffic * per_thread / total
            l2_served[np.asarray(threads)] += die_l2 * per_thread / total

    # --- makespan terms ---------------------------------------------------
    compute_s = np.array(
        [_thread_cycles(w, cost) / machine.clock_hz for w in works]
    )
    core_terms = traffic / machine.core_bw + l2_served / machine.l2_core_bw
    # Per-thread time: partial compute/transfer overlap (overlap=0 is
    # the additive latency-bound model; overlap=1 perfect pipelining).
    per_thread = np.maximum(compute_s, core_terms) + (1.0 - machine.overlap) * (
        np.minimum(compute_s, core_terms)
    )
    candidates = {
        "compute": float(compute_s.max()),
        "core-bw": float(per_thread.max()),
    }

    die_traffic: dict[int, float] = {}
    package_traffic: dict[int, float] = {}
    for t, core_id in enumerate(cores):
        die = core_info[core_id].die_id
        pkg = core_info[core_id].package_id
        die_traffic[die] = die_traffic.get(die, 0.0) + float(traffic[t])
        package_traffic[pkg] = package_traffic.get(pkg, 0.0) + float(traffic[t])
    candidates["die-bw"] = max(
        (v / machine.die_bw for v in die_traffic.values()), default=0.0
    )
    die_l2: dict[int, float] = {}
    for t, core_id in enumerate(cores):
        die = core_info[core_id].die_id
        die_l2[die] = die_l2.get(die, 0.0) + float(l2_served[t])
    candidates["l2-bw"] = max(
        (v / machine.l2_die_bw for v in die_l2.values()), default=0.0
    )
    candidates["fsb"] = max(
        (v / machine.fsb_bw for v in package_traffic.values()), default=0.0
    )
    candidates["mem"] = float(traffic.sum()) / machine.mem_bw

    time_s = max(
        float(per_thread.max()),
        candidates["die-bw"],
        candidates["l2-bw"],
        candidates["fsb"],
        candidates["mem"],
    )
    bound = max(candidates, key=lambda k: candidates[k])
    flops = sum(w.flops for w in works)
    mflops = flops / time_s / 1e6 if time_s > 0 else float("inf")
    return SimResult(
        time_s=time_s,
        mflops=mflops,
        bound=bound,
        compute_s=tuple(compute_s.tolist()),
        traffic_bytes=tuple(traffic.tolist()),
        resident_fraction=(resident_total / touched_total if touched_total else 1.0),
    )
