"""Machine topology: cores, dies, packages, caches, bandwidth domains.

The reference machine is the paper's testbed (Fig. 6): two Intel
Clovertown packages, each built from two Woodcrest dies, each die
holding two 2 GHz cores that share a 4 MB 16-way L2; packages meet the
Intel 5000p memory controller over front-side buses.

The bandwidth figures are *sustainable* (calibrated against the
paper's Tables II-IV via tools/calibrate.py, DESIGN.md sec. 6), not
peak: a single core streams ~3.9 GB/s, a die ~4.1 GB/s, one package's
FSB ~4.7 GB/s, and the memory controller ~6.3 GB/s -- together with
the x-gather reload factor these make Table II's 1 / 2 / 4 / 8-thread
CSR speedups come out near the paper's 1 / 1.15 / 1.28 / 2.1 band for
memory-bound matrices while the cacheable set scales to ~5.5x.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MachineModelError


@dataclass(frozen=True)
class Core:
    """One core and its position in the sharing hierarchy."""

    core_id: int
    die_id: int
    package_id: int


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory machine, as the model sees it.

    Attributes
    ----------
    name:
        Human-readable identifier.
    clock_hz:
        Core clock (all cores identical).
    cores:
        Tuple of :class:`Core`, ids dense from 0.
    l1_bytes:
        Per-core L1D capacity.
    l2_bytes:
        Per-die shared L2 capacity.
    l2_assoc, line_bytes:
        L2 geometry (used by the trace-driven cache simulator).
    core_bw, die_bw, fsb_bw, mem_bw:
        Sustainable stream bandwidth in bytes/s of one core, one die's
        L2-to-bus interface, one package's front-side bus, and the
        memory controller.
    l2_core_bw, l2_die_bw:
        Bandwidth at which cache-resident data is served: per core, and
        per die's shared L2 port.  Cache-resident execution is not
        free -- this is what keeps the model's MS-set 8-thread speedups
        in the paper's 6x band instead of exploding superlinearly.
    x_reload:
        Average number of times each touched x cache line is fetched
        per iteration (>= 1).  Irregular gathers re-fetch lines evicted
        mid-iteration; this applies to every format equally and damps
        the compressed formats' relative bandwidth savings.
    overlap:
        Fraction of compute/transfer overlap a single thread achieves
        (0 = none, the latency-bound additive model; 1 = perfect
        overlap).  SpMV's dependent gathers give threads little memory
        parallelism, so the calibrated default is low; saturated shared
        buses overlap fully regardless (that is the domain terms' job).
    cache_effectiveness:
        Usable fraction of L2 capacity (the paper's ws >= 3/4 L2
        borderline criterion motivates the 0.75 default: conflict
        misses eat the rest).
    residency_exponent:
        Shape parameter of the cache-residency model: the resident
        fraction of a working set ``ws`` under effective capacity ``C``
        is ``min(1, C/ws) ** residency_exponent``.  Values > 1 penalize
        partial fits, approximating cyclic-LRU thrashing.
    """

    name: str
    clock_hz: float
    cores: tuple[Core, ...]
    l1_bytes: int
    l2_bytes: int
    l2_assoc: int
    line_bytes: int
    core_bw: float
    die_bw: float
    fsb_bw: float
    mem_bw: float
    l2_core_bw: float = 8.0e9
    l2_die_bw: float = 12.0e9
    cache_effectiveness: float = 0.75
    residency_exponent: float = 2.5
    overlap: float = 0.0
    x_reload: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise MachineModelError("clock_hz must be positive")
        if not self.cores:
            raise MachineModelError("machine needs at least one core")
        ids = [c.core_id for c in self.cores]
        if sorted(ids) != list(range(len(ids))):
            raise MachineModelError("core ids must be dense from 0")
        for bw in (
            self.core_bw,
            self.die_bw,
            self.fsb_bw,
            self.mem_bw,
            self.l2_core_bw,
            self.l2_die_bw,
        ):
            if bw <= 0:
                raise MachineModelError("bandwidths must be positive")
        if not 0 < self.cache_effectiveness <= 1:
            raise MachineModelError("cache_effectiveness must be in (0, 1]")
        if not 0 <= self.overlap <= 1:
            raise MachineModelError("overlap must be in [0, 1]")
        if self.x_reload < 1.0:
            raise MachineModelError("x_reload must be >= 1")

    # -- structure queries ------------------------------------------------
    @property
    def ncores(self) -> int:
        return len(self.cores)

    def dies(self) -> dict[int, list[int]]:
        """Die id -> core ids on that die."""
        out: dict[int, list[int]] = {}
        for c in self.cores:
            out.setdefault(c.die_id, []).append(c.core_id)
        return out

    def packages(self) -> dict[int, list[int]]:
        """Package id -> core ids in that package."""
        out: dict[int, list[int]] = {}
        for c in self.cores:
            out.setdefault(c.package_id, []).append(c.core_id)
        return out

    def total_l2_bytes(self) -> int:
        return self.l2_bytes * len(self.dies())

    # -- derived machines --------------------------------------------------
    def scaled(self, factor: float) -> "MachineSpec":
        """Cache capacities scaled by *factor* (bandwidths, clock kept).

        Shrinking a matrix by ``factor`` *and* the machine's caches by
        the same factor preserves every residency ratio, so a scaled
        benchmark keeps each catalog matrix in its paper set (MS / ML)
        and reproduces the same speedup shapes in a fraction of the
        time.  Predicted absolute times scale by ``factor``.
        """
        if factor <= 0:
            raise MachineModelError("scale factor must be positive")
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            l1_bytes=max(1, int(self.l1_bytes * factor)),
            l2_bytes=max(1, int(self.l2_bytes * factor)),
        )


def clovertown_8core() -> MachineSpec:
    """The paper's testbed: 2 packages x 2 dies x 2 cores at 2 GHz.

    Core numbering follows the sharing hierarchy: cores (0, 1) share
    die 0's L2, (2, 3) die 1's, packages are {0..3} and {4..7}.
    """
    cores = tuple(
        Core(core_id=i, die_id=i // 2, package_id=i // 4) for i in range(8)
    )
    return MachineSpec(
        name="clovertown-8c",
        clock_hz=2.0e9,
        cores=cores,
        l1_bytes=32 * 1024,
        l2_bytes=4 * 1024 * 1024,
        l2_assoc=16,
        line_bytes=64,
        core_bw=3.9e9,
        die_bw=4.1e9,
        fsb_bw=4.7e9,
        mem_bw=6.3e9,
        l2_core_bw=1.1e10,
        l2_die_bw=1.5e10,
        cache_effectiveness=0.87,
        residency_exponent=2.5,
        overlap=0.9,
        x_reload=5.7,
    )


def woodcrest_4core() -> MachineSpec:
    """A 2-package Woodcrest system (the CF'08 companion's machine)."""
    cores = tuple(
        Core(core_id=i, die_id=i // 2, package_id=i // 2) for i in range(4)
    )
    return MachineSpec(
        name="woodcrest-4c",
        clock_hz=2.0e9,
        cores=cores,
        l1_bytes=32 * 1024,
        l2_bytes=4 * 1024 * 1024,
        l2_assoc=16,
        line_bytes=64,
        core_bw=4.2e9,
        die_bw=4.4e9,
        fsb_bw=5.0e9,
        mem_bw=6.6e9,
        l2_core_bw=1.2e10,
        l2_die_bw=1.6e10,
        cache_effectiveness=0.87,
        residency_exponent=2.5,
        overlap=0.9,
        x_reload=5.7,
    )


def place_threads(
    machine: MachineSpec, nthreads: int, policy: str = "close"
) -> tuple[int, ...]:
    """Map thread ids to core ids.

    ``"close"`` packs threads onto as few dies/packages as possible
    (the paper's default: 2 threads share an L2, 4 fill one package);
    ``"spread"`` distributes them one per die first (the paper's
    ``2 (2xL2)`` configuration is ``spread`` with 2 threads, which
    lands both threads on different dies of the *same* package, as in
    the paper -- same-package cores come first in the core ordering).
    """
    if nthreads < 1:
        raise MachineModelError(f"nthreads must be >= 1, got {nthreads}")
    if nthreads > machine.ncores:
        raise MachineModelError(
            f"{nthreads} threads exceed the machine's {machine.ncores} cores"
        )
    if policy == "close":
        # Cores are numbered along the sharing hierarchy already.
        return tuple(range(nthreads))
    if policy == "spread":
        dies = machine.dies()
        rotation: list[int] = []
        # Round-robin over dies, keeping die order (package-major).
        queues = [list(cores) for _, cores in sorted(dies.items())]
        while any(queues):
            for q in queues:
                if q:
                    rotation.append(q.pop(0))
        return tuple(rotation[:nthreads])
    raise MachineModelError(f"unknown placement policy {policy!r}")


def smp_machine(
    ncores: int,
    *,
    cores_per_die: int = 2,
    dies_per_package: int = 2,
    clock_hz: float = 2.0e9,
    l2_bytes: int = 4 * 1024 * 1024,
    core_bw: float = 3.9e9,
    die_bw: float = 4.1e9,
    fsb_bw: float = 4.7e9,
    mem_bw: float = 6.3e9,
) -> MachineSpec:
    """A configurable Clovertown-style machine for what-if studies.

    The paper's conclusion (Section VII) argues the compression trade
    grows more favorable "as the number of processing elements that
    share the memory subsystem increases"; this builder makes machines
    with more cores behind the *same* memory controller so the claim
    can be tested on the model (see ``bench.experiments
    .future_core_scaling``).  Cache and bandwidth parameters default to
    the calibrated Clovertown values; only the core count grows.
    """
    if ncores < 1:
        raise MachineModelError(f"ncores must be >= 1, got {ncores}")
    if cores_per_die < 1 or dies_per_package < 1:
        raise MachineModelError("topology group sizes must be >= 1")
    per_package = cores_per_die * dies_per_package
    cores = tuple(
        Core(
            core_id=i,
            die_id=i // cores_per_die,
            package_id=i // per_package,
        )
        for i in range(ncores)
    )
    return MachineSpec(
        name=f"smp-{ncores}c",
        clock_hz=clock_hz,
        cores=cores,
        l1_bytes=32 * 1024,
        l2_bytes=l2_bytes,
        l2_assoc=16,
        line_bytes=64,
        core_bw=core_bw,
        die_bw=die_bw,
        fsb_bw=fsb_bw,
        mem_bw=mem_bw,
        l2_core_bw=1.1e10,
        l2_die_bw=1.5e10,
        cache_effectiveness=0.87,
        residency_exponent=2.5,
        overlap=0.9,
        x_reload=5.7,
    )
