"""Roofline analysis: arithmetic intensity per format.

The roofline model makes the paper's "memory bound" claim a single
number: a kernel with arithmetic intensity ``I`` flops/byte on a
machine with peak compute ``P`` flops/s and bandwidth ``B`` bytes/s is
bandwidth-bound iff ``I < P / B`` (the *ridge point*).

SpMV's useful work is fixed (2 flops per nonzero), so compression
raises ``I`` purely by shrinking the denominator -- CSR-DU and CSR-VI
are literally "move the kernel rightward on the roofline" devices, and
this module quantifies how far each format gets and whether it crosses
the ridge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.base import SparseMatrix
from repro.machine.costmodel import CostModel, default_cost_model
from repro.machine.simulate import simulate_spmv
from repro.machine.topology import MachineSpec, clovertown_8core


@dataclass(frozen=True)
class RooflinePoint:
    """One format's position on the machine's roofline.

    Attributes
    ----------
    intensity:
        Useful flops per DRAM byte (steady state, post-residency).
    attainable_mflops:
        ``min(peak, bandwidth * intensity)`` -- the roofline ceiling.
    achieved_mflops:
        The engine's actual prediction (includes per-row/unit overheads
        and imperfect overlap; never above the ceiling by construction
        of the model's bounds, up to rounding).
    memory_bound:
        Whether the point lies left of the ridge.
    """

    format_name: str
    threads: int
    intensity: float
    ridge_intensity: float
    peak_mflops: float
    attainable_mflops: float
    achieved_mflops: float

    @property
    def memory_bound(self) -> bool:
        return self.intensity < self.ridge_intensity


def machine_peak_flops(
    machine: MachineSpec, threads: int, cost: CostModel
) -> float:
    """Peak useful flop rate: the cost model's 2 flops per
    ``per_element`` cycles, across *threads* cores."""
    return threads * machine.clock_hz * 2.0 / cost.per_element


def roofline_point(
    matrix: SparseMatrix,
    threads: int = 8,
    machine: MachineSpec | None = None,
    *,
    cost_model: CostModel | None = None,
) -> RooflinePoint:
    """Place one (matrix, format, threads) on the roofline."""
    machine = machine or clovertown_8core()
    cost_model = cost_model or default_cost_model()
    res = simulate_spmv(matrix, threads, machine, cost_model=cost_model)
    flops = 2.0 * matrix.nnz
    traffic = res.total_traffic
    bandwidth = min(machine.mem_bw, threads * machine.core_bw)
    peak = machine_peak_flops(machine, threads, cost_model)
    intensity = flops / traffic if traffic > 0 else float("inf")
    ridge = peak / bandwidth
    attainable = min(peak, bandwidth * intensity)
    return RooflinePoint(
        format_name=type(matrix).name,
        threads=threads,
        intensity=intensity,
        ridge_intensity=ridge,
        peak_mflops=peak / 1e6,
        attainable_mflops=attainable / 1e6,
        achieved_mflops=res.mflops,
    )


def roofline_table(
    matrix: SparseMatrix,
    *,
    formats: tuple[str, ...] = ("csr", "csr-du", "csr-vi", "csr-du-vi"),
    threads: int = 8,
    machine: MachineSpec | None = None,
    cost_model: CostModel | None = None,
) -> list[RooflinePoint]:
    """Roofline positions for several formats of the same matrix."""
    from repro.formats.conversions import convert

    return [
        roofline_point(
            convert(matrix, fmt),
            threads,
            machine,
            cost_model=cost_model,
        )
        for fmt in formats
    ]


def format_roofline(points: list[RooflinePoint]) -> str:
    """Aligned text rendering of roofline points."""
    lines = [
        f"{'format':>10} {'thr':>4} {'I (F/B)':>9} {'ridge':>7} "
        f"{'attainable':>11} {'achieved':>9}  regime"
    ]
    for p in points:
        regime = "memory-bound" if p.memory_bound else "compute-bound"
        lines.append(
            f"{p.format_name:>10} {p.threads:>4} {p.intensity:>9.3f} "
            f"{p.ridge_intensity:>7.3f} {p.attainable_mflops:>10.1f}M "
            f"{p.achieved_mflops:>8.1f}M  {regime}"
        )
    return "\n".join(lines)
