"""Per-thread work and memory-traffic accounting.

:func:`analyze_threads` takes a matrix in any supported format, splits
it with the paper's nnz-balanced row partitioning, and returns one
:class:`ThreadWork` per thread with

* the operation census the cost model charges cycles for (elements,
  non-empty rows, units, commands, blocks), and
* the exact per-iteration byte counts of every array the kernel
  streams, taken from the format's real storage (ctl byte ranges from
  ``ctl_offsets``, ``val_ind`` item sizes, ...), plus the thread's
  distinct-x footprint (computed exactly from its column indices).

This is deliberately *exact* accounting of the format's layout -- the
only modeled quantities downstream are cache residency and bandwidth
contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineModelError
from repro.formats.bcsr import BCSRMatrix
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.formats.dcsr import DCSRMatrix, encode_dcsr
from repro.parallel.partition import RowPartition, row_partition

#: Bytes per dense-vector element (the paper's 64-bit values).
VALUE_SIZE = 8


@dataclass(frozen=True)
class ThreadWork:
    """One thread's share of an SpMV iteration.

    ``private_bytes`` maps array names to this thread's streamed bytes
    per iteration; ``shared_bytes`` maps job-wide shared arrays (the
    ``x`` vector footprint of *this thread*, ``vals_unique``) that
    overlap between threads on a shared cache.
    """

    thread: int
    format_name: str
    nnz: int
    rows_assigned: int
    rows_nonempty: int
    private_bytes: dict[str, int] = field(default_factory=dict)
    shared_bytes: dict[str, int] = field(default_factory=dict)
    units: int = 0
    seq_units: int = 0
    seq_elements: int = 0
    commands: int = 0
    stored_elements: int = 0
    blocks: int = 0
    block_rows: int = 0

    @property
    def private_total(self) -> int:
        return sum(self.private_bytes.values())

    @property
    def flops(self) -> int:
        """Useful floating-point operations (2 per original nonzero)."""
        return 2 * self.nnz


#: Cache-line size assumed for x-gather footprints (64 B = 8 doubles).
LINE_SIZE = 64


def _distinct_cols_bytes(cols: np.ndarray) -> int:
    """Distinct-column footprint of a thread's x accesses, in bytes.

    Counted at cache-line granularity: the gather pulls whole 64-byte
    lines, so a thread touching scattered columns moves up to 8x the
    useful bytes.  This is the effect that keeps the compressed
    formats' bus savings from translating 1:1 into speedup (both
    formats pay the same x-line traffic), as the paper's sub-2x
    multithreaded gains reflect.
    """
    if cols.size == 0:
        return 0
    lines = np.unique(np.asarray(cols, dtype=np.int64) // (LINE_SIZE // VALUE_SIZE))
    return int(lines.size) * LINE_SIZE


def _nonempty_rows(row_ptr: np.ndarray, lo: int, hi: int) -> int:
    seg = np.asarray(row_ptr[lo : hi + 1], dtype=np.int64)
    return int(np.count_nonzero(np.diff(seg) > 0))


def _row_ptr_of(matrix: SparseMatrix) -> np.ndarray:
    """Row offsets for partitioning, for any supported format."""
    if isinstance(matrix, (CSRMatrix, CSRVIMatrix)):
        return matrix.row_ptr.astype(np.int64)
    if isinstance(matrix, (CSRDUMatrix, CSRDUVIMatrix)):
        du = matrix.units
        rows = np.repeat(du.rows, du.sizes)
        counts = (
            np.bincount(rows, minlength=matrix.nrows)
            if rows.size
            else np.zeros(matrix.nrows, dtype=np.int64)
        )
        out = np.zeros(matrix.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=out[1:])
        return out
    if isinstance(matrix, DCSRMatrix):
        return matrix.decoded.row_ptr.astype(np.int64)
    if isinstance(matrix, BCSRMatrix):
        # Partition at block-row granularity, expressed in rows below.
        raise MachineModelError("BCSR uses its own partitioning path")
    raise MachineModelError(
        f"traffic analysis does not support {type(matrix).__name__}"
    )


def analyze_threads(
    matrix: SparseMatrix, nthreads: int
) -> tuple[RowPartition, list[ThreadWork]]:
    """Partition *matrix* across *nthreads* and account each thread's work."""
    if nthreads < 1:
        raise MachineModelError(f"nthreads must be >= 1, got {nthreads}")
    if isinstance(matrix, BCSRMatrix):
        return _analyze_bcsr(matrix, nthreads)
    row_ptr = _row_ptr_of(matrix)
    part = row_partition(row_ptr, nthreads)
    works = []
    for t in range(nthreads):
        lo, hi = part.rows_of(t)
        works.append(_thread_work(matrix, row_ptr, t, lo, hi))
    return part, works


def _thread_work(
    matrix: SparseMatrix, row_ptr: np.ndarray, t: int, lo: int, hi: int
) -> ThreadWork:
    e_lo, e_hi = int(row_ptr[lo]), int(row_ptr[hi])
    nnz_t = e_hi - e_lo
    rows_assigned = hi - lo
    rows_ne = _nonempty_rows(row_ptr, lo, hi)
    y_bytes = rows_assigned * VALUE_SIZE
    index_size = 4

    if isinstance(matrix, CSRMatrix):
        cols = matrix.col_ind[e_lo:e_hi]
        index_size = matrix.col_ind.dtype.itemsize
        return ThreadWork(
            thread=t,
            format_name="csr",
            nnz=nnz_t,
            rows_assigned=rows_assigned,
            rows_nonempty=rows_ne,
            private_bytes={
                "row_ptr": (rows_assigned + 1) * matrix.row_ptr.dtype.itemsize,
                "col_ind": nnz_t * index_size,
                "values": nnz_t * VALUE_SIZE,
                "y": y_bytes,
            },
            shared_bytes={"x": _distinct_cols_bytes(cols)},
        )

    if isinstance(matrix, CSRVIMatrix):
        cols = matrix.col_ind[e_lo:e_hi]
        return ThreadWork(
            thread=t,
            format_name="csr-vi",
            nnz=nnz_t,
            rows_assigned=rows_assigned,
            rows_nonempty=rows_ne,
            private_bytes={
                "row_ptr": (rows_assigned + 1) * matrix.row_ptr.dtype.itemsize,
                "col_ind": nnz_t * matrix.col_ind.dtype.itemsize,
                "val_ind": nnz_t * matrix.val_ind.dtype.itemsize,
                "y": y_bytes,
            },
            shared_bytes={
                "x": _distinct_cols_bytes(cols),
                "vals_unique": matrix.vals_unique.nbytes,
            },
        )

    if isinstance(matrix, (CSRDUMatrix, CSRDUVIMatrix)):
        du = matrix.units
        u_lo = int(np.searchsorted(du.rows, lo, side="left"))
        u_hi = int(np.searchsorted(du.rows, hi, side="left"))
        ctl_bytes = int(du.ctl_offsets[u_hi] - du.ctl_offsets[u_lo])
        seq_mask = du.seq[u_lo:u_hi]
        seq_units = int(np.count_nonzero(seq_mask))
        seq_elements = int(du.sizes[u_lo:u_hi][seq_mask].sum())
        cols = du.columns[int(du.offsets[u_lo]) : int(du.offsets[u_hi])]
        if isinstance(matrix, CSRDUVIMatrix):
            private = {
                "ctl": ctl_bytes,
                "val_ind": nnz_t * matrix.val_ind.dtype.itemsize,
                "y": y_bytes,
            }
            shared = {
                "x": _distinct_cols_bytes(cols),
                "vals_unique": matrix.vals_unique.nbytes,
            }
            fmt = "csr-du-vi"
        else:
            private = {
                "ctl": ctl_bytes,
                "values": nnz_t * VALUE_SIZE,
                "y": y_bytes,
            }
            shared = {"x": _distinct_cols_bytes(cols)}
            fmt = "csr-du"
        return ThreadWork(
            thread=t,
            format_name=fmt,
            nnz=nnz_t,
            rows_assigned=rows_assigned,
            rows_nonempty=rows_ne,
            private_bytes=private,
            shared_bytes=shared,
            units=u_hi - u_lo,
            seq_units=seq_units,
            seq_elements=seq_elements,
        )

    if isinstance(matrix, DCSRMatrix):
        dec = matrix.decoded
        cols = dec.columns[e_lo:e_hi]
        # Exact per-thread stream: re-encode the thread's row slice (the
        # stream is row-aligned, so the slice encodes identically except
        # possibly a cheaper leading row command).
        sub_ptr = dec.row_ptr[lo : hi + 1] - dec.row_ptr[lo]
        sub_stream = encode_dcsr(sub_ptr, cols)
        commands = _count_dcsr_commands(sub_stream)
        return ThreadWork(
            thread=t,
            format_name="dcsr",
            nnz=nnz_t,
            rows_assigned=rows_assigned,
            rows_nonempty=rows_ne,
            private_bytes={
                "stream": len(sub_stream),
                "values": nnz_t * VALUE_SIZE,
                "y": y_bytes,
            },
            shared_bytes={"x": _distinct_cols_bytes(cols)},
            commands=commands,
        )

    raise MachineModelError(
        f"traffic analysis does not support {type(matrix).__name__}"
    )


def _count_dcsr_commands(stream: bytes) -> int:
    from repro.formats.dcsr import (
        CMD_DELTA8,
        CMD_DELTA16,
        CMD_DELTA32,
        CMD_NEWROW,
        CMD_ROWJMP,
        CMD_RUN8,
    )
    from repro.util.bitops import decode_varint

    pos = 0
    n = len(stream)
    commands = 0
    while pos < n:
        cmd = stream[pos]
        pos += 1
        commands += 1
        if cmd == CMD_NEWROW:
            pass
        elif cmd == CMD_ROWJMP:
            _, pos = decode_varint(stream, pos)
        elif cmd == CMD_DELTA8:
            pos += 1
        elif cmd == CMD_DELTA16:
            pos += 2
        elif cmd == CMD_DELTA32:
            pos += 4
        elif cmd == CMD_RUN8:
            pos += 1 + stream[pos]
        else:
            raise MachineModelError(f"unknown DCSR command {cmd}")
    return commands


def _analyze_bcsr(
    matrix: BCSRMatrix, nthreads: int
) -> tuple[RowPartition, list[ThreadWork]]:
    """BCSR path: partition at block-row granularity by stored elements."""
    brow_ptr = matrix.brow_ptr.astype(np.int64)
    part = row_partition(brow_ptr, nthreads)
    works = []
    r, c = matrix.r, matrix.c
    for t in range(nthreads):
        lo, hi = part.rows_of(t)
        b_lo, b_hi = int(brow_ptr[lo]), int(brow_ptr[hi])
        blocks = b_hi - b_lo
        stored = blocks * r * c
        bcols = matrix.bcol_ind[b_lo:b_hi]
        x_bytes = (
            int(np.unique(bcols).size) * c * VALUE_SIZE if bcols.size else 0
        )
        works.append(
            ThreadWork(
                thread=t,
                format_name="bcsr",
                nnz=stored,  # flops done, incl. fill
                rows_assigned=(hi - lo) * r,
                rows_nonempty=_nonempty_rows(brow_ptr, lo, hi) * r,
                private_bytes={
                    "brow_ptr": (hi - lo + 1) * matrix.brow_ptr.dtype.itemsize,
                    "bcol_ind": blocks * matrix.bcol_ind.dtype.itemsize,
                    "block_values": stored * VALUE_SIZE,
                    "y": (hi - lo) * r * VALUE_SIZE,
                },
                shared_bytes={"x": x_bytes},
                stored_elements=stored,
                blocks=blocks,
                block_rows=hi - lo,
            )
        )
    return part, works
