"""Trace-driven SpMV simulation: per-format address traces through a
two-level cache.

The analytic model in :mod:`repro.machine.engine` works with aggregate
byte counts; this module is its ground-truth companion: it generates
the *actual byte-address sequence* an SpMV kernel issues for a given
format, replays it through an L1+L2 LRU hierarchy, and reports DRAM
traffic per steady-state iteration.  The validation tests
(`tests/machine/test_tracesim.py`) pin the analytic residency model to
these measurements in both the fitting and streaming regimes.

Address-space layout: each array gets its own region, in declaration
order, 64-byte aligned, so traces of different formats are directly
comparable.  Traces are per-access (one entry per load/store), which
limits this path to small matrices -- exactly its intended use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineModelError
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.machine.cache import CacheStats, LRUCache

_ALIGN = 64


class _Layout:
    """Sequential 64-byte-aligned address regions per array."""

    def __init__(self) -> None:
        self._next = 0
        self.regions: dict[str, tuple[int, int]] = {}

    def add(self, name: str, nbytes: int) -> int:
        base = self._next
        self.regions[name] = (base, nbytes)
        self._next = base + ((nbytes + _ALIGN - 1) // _ALIGN) * _ALIGN
        return base


def csr_trace(matrix: CSRMatrix) -> np.ndarray:
    """Address trace of one CSR SpMV iteration (Section II-B kernel)."""
    lay = _Layout()
    rp = lay.add("row_ptr", matrix.row_ptr.nbytes)
    ci = lay.add("col_ind", matrix.col_ind.nbytes)
    va = lay.add("values", matrix.values.nbytes)
    xb = lay.add("x", matrix.ncols * 8)
    yb = lay.add("y", matrix.nrows * 8)
    isz = matrix.col_ind.dtype.itemsize
    rsz = matrix.row_ptr.dtype.itemsize
    trace: list[int] = []
    for i in range(matrix.nrows):
        trace.append(rp + (i + 1) * rsz)
        for j in range(int(matrix.row_ptr[i]), int(matrix.row_ptr[i + 1])):
            trace.append(ci + j * isz)
            trace.append(va + j * 8)
            trace.append(xb + int(matrix.col_ind[j]) * 8)
        trace.append(yb + i * 8)
    return np.asarray(trace, dtype=np.int64)


def csr_du_trace(matrix: CSRDUMatrix) -> np.ndarray:
    """Address trace of one CSR-DU SpMV iteration (Fig. 3 kernel).

    The ctl stream is touched byte-range by byte-range per unit (header
    plus deltas), values stream sequentially, x is gathered at the
    decoded columns.
    """
    lay = _Layout()
    cb = lay.add("ctl", len(matrix.ctl))
    va = lay.add("values", matrix.values.nbytes)
    xb = lay.add("x", matrix.ncols * 8)
    yb = lay.add("y", matrix.nrows * 8)
    du = matrix.units
    trace: list[int] = []
    for u in range(du.nunits):
        lo, hi = int(du.ctl_offsets[u]), int(du.ctl_offsets[u + 1])
        # One access per ctl byte of the unit (header + operand stream).
        trace.extend(range(cb + lo, cb + hi))
        e_lo, e_hi = int(du.offsets[u]), int(du.offsets[u + 1])
        row = int(du.rows[u])
        for e in range(e_lo, e_hi):
            trace.append(va + e * 8)
            trace.append(xb + int(du.columns[e]) * 8)
        trace.append(yb + row * 8)
    return np.asarray(trace, dtype=np.int64)


def csr_vi_trace(matrix: CSRVIMatrix) -> np.ndarray:
    """Address trace of one CSR-VI SpMV iteration (Fig. 5 kernel)."""
    lay = _Layout()
    rp = lay.add("row_ptr", matrix.row_ptr.nbytes)
    ci = lay.add("col_ind", matrix.col_ind.nbytes)
    vi = lay.add("val_ind", matrix.val_ind.nbytes)
    vu = lay.add("vals_unique", matrix.vals_unique.nbytes)
    xb = lay.add("x", matrix.ncols * 8)
    yb = lay.add("y", matrix.nrows * 8)
    isz = matrix.col_ind.dtype.itemsize
    vsz = matrix.val_ind.dtype.itemsize
    trace: list[int] = []
    for i in range(matrix.nrows):
        trace.append(rp + (i + 1) * matrix.row_ptr.dtype.itemsize)
        for j in range(int(matrix.row_ptr[i]), int(matrix.row_ptr[i + 1])):
            trace.append(ci + j * isz)
            trace.append(vi + j * vsz)
            trace.append(vu + int(matrix.val_ind[j]) * 8)
            trace.append(xb + int(matrix.col_ind[j]) * 8)
        trace.append(yb + i * 8)
    return np.asarray(trace, dtype=np.int64)


def format_trace(matrix: SparseMatrix) -> np.ndarray:
    """Dispatch to the right trace generator."""
    if isinstance(matrix, CSRVIMatrix):
        return csr_vi_trace(matrix)
    if isinstance(matrix, CSRDUMatrix):
        return csr_du_trace(matrix)
    if isinstance(matrix, CSRMatrix):
        return csr_trace(matrix)
    raise MachineModelError(
        f"no trace generator for {type(matrix).__name__}"
    )


@dataclass(frozen=True)
class TraceResult:
    """Steady-state measurement of one traced iteration.

    ``dram_bytes`` is L2-miss lines x line size -- the quantity the
    analytic model calls per-iteration traffic.
    """

    accesses: int
    l1: CacheStats
    l2: CacheStats
    line_bytes: int

    @property
    def dram_bytes(self) -> int:
        return self.l2.misses * self.line_bytes


def run_trace(
    trace: np.ndarray,
    *,
    l1_bytes: int = 32 * 1024,
    l1_assoc: int = 8,
    l2_bytes: int = 4 * 1024 * 1024,
    l2_assoc: int = 16,
    line_bytes: int = 64,
    repeats: int = 2,
) -> TraceResult:
    """Replay *trace* through an L1 + L2 hierarchy, ``repeats`` times.

    Reports the **last** repetition (steady state; compulsory misses
    amortized away, matching the paper's 128-iteration measurement).
    """
    if repeats < 1:
        raise MachineModelError("repeats must be >= 1")
    l1 = LRUCache(l1_bytes, assoc=l1_assoc, line_bytes=line_bytes)
    l2 = LRUCache(l2_bytes, assoc=l2_assoc, line_bytes=line_bytes)
    addresses = np.asarray(trace, dtype=np.int64).tolist()
    last_l1 = last_l2 = CacheStats()
    for _ in range(repeats):
        l1_before = (l1.stats.accesses, l1.stats.hits)
        l2_before = (l2.stats.accesses, l2.stats.hits)
        for addr in addresses:
            if not l1.access(addr):
                l2.access(addr)
        last_l1 = CacheStats(
            accesses=l1.stats.accesses - l1_before[0],
            hits=l1.stats.hits - l1_before[1],
        )
        last_l2 = CacheStats(
            accesses=l2.stats.accesses - l2_before[0],
            hits=l2.stats.hits - l2_before[1],
        )
    return TraceResult(
        accesses=len(addresses), l1=last_l1, l2=last_l2, line_bytes=line_bytes
    )
