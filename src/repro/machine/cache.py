"""Trace-driven set-associative LRU cache simulator.

The analytic residency model in :mod:`repro.machine.traffic` is what
the big experiments use; this simulator exists to (a) validate that
model on small matrices (tests cross-check the two), and (b) support
the cache-behaviour unit tests with a ground-truth LRU implementation.

Addresses are byte addresses; the cache maps them to lines of
``line_bytes`` and maintains true LRU order per set.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import MachineModelError


@dataclass
class CacheStats:
    """Hit/miss counters for one simulation run."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate


class LRUCache:
    """Set-associative cache with true LRU replacement.

    Parameters
    ----------
    capacity_bytes:
        Total capacity; must be ``assoc * line_bytes * nsets`` for a
        power-of-two number of sets.
    assoc:
        Ways per set.
    line_bytes:
        Line size (power of two).
    """

    def __init__(self, capacity_bytes: int, assoc: int = 8, line_bytes: int = 64):
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise MachineModelError("line_bytes must be a positive power of two")
        if assoc < 1:
            raise MachineModelError("associativity must be >= 1")
        nsets = capacity_bytes // (assoc * line_bytes)
        if nsets < 1:
            raise MachineModelError(
                f"capacity {capacity_bytes} too small for {assoc}-way "
                f"{line_bytes}-byte lines"
            )
        if nsets & (nsets - 1):
            raise MachineModelError(f"set count {nsets} must be a power of two")
        self.capacity_bytes = nsets * assoc * line_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.nsets = nsets
        # Per set: OrderedDict of tag -> None, LRU first.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(nsets)]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.nsets, line // self.nsets

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
        ways[tag] = None
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating residency probe."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()


def simulate_trace(
    cache: LRUCache, addresses: np.ndarray, *, repeats: int = 1
) -> CacheStats:
    """Run an address trace through *cache*, optionally repeated.

    Returns the stats of the *last* repetition (the steady-state
    iteration, matching the paper's 128-iteration measurement where
    compulsory misses amortize away).
    """
    if repeats < 1:
        raise MachineModelError("repeats must be >= 1")
    addresses = np.asarray(addresses, dtype=np.int64)
    last = CacheStats()
    for _ in range(repeats):
        before_acc, before_hit = cache.stats.accesses, cache.stats.hits
        for addr in addresses.tolist():
            cache.access(int(addr))
        last = CacheStats(
            accesses=cache.stats.accesses - before_acc,
            hits=cache.stats.hits - before_hit,
        )
    return last


def spmv_address_trace(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    *,
    index_size: int = 4,
    value_size: int = 8,
) -> np.ndarray:
    """Byte-address trace of one CSR SpMV iteration.

    Lays the arrays out consecutively (row_ptr, col_ind, values, x, y)
    and emits the kernel's access sequence: per row, the row_ptr read,
    then per nonzero the col_ind, values and x reads, then the y write.
    Used by the model-validation tests on small matrices.
    """
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    col_ind = np.asarray(col_ind, dtype=np.int64)
    nrows = row_ptr.size - 1
    nnz = col_ind.size
    base_rp = 0
    base_ci = base_rp + (nrows + 1) * index_size
    base_va = base_ci + nnz * index_size
    base_x = base_va + nnz * value_size
    ncols = int(col_ind.max()) + 1 if nnz else 0
    base_y = base_x + ncols * value_size
    trace: list[int] = []
    for i in range(nrows):
        trace.append(base_rp + (i + 1) * index_size)
        for j in range(int(row_ptr[i]), int(row_ptr[i + 1])):
            trace.append(base_ci + j * index_size)
            trace.append(base_va + j * value_size)
            trace.append(base_x + int(col_ind[j]) * value_size)
        trace.append(base_y + i * value_size)
    return np.asarray(trace, dtype=np.int64)
