"""High-level simulation entry point: matrix + threads -> predicted time.

This is what the benchmark harness calls for every (matrix, format,
thread count, placement) cell of the paper's tables:

>>> from repro.machine import clovertown_8core, simulate_spmv   # doctest: +SKIP
>>> res = simulate_spmv(matrix, threads=8, machine=clovertown_8core())
>>> res.mflops, res.bound                                       # doctest: +SKIP
"""

from __future__ import annotations

from repro.formats.base import SparseMatrix
from repro.machine.costmodel import CostModel, default_cost_model
from repro.machine.engine import SimResult, solve_makespan
from repro.machine.topology import MachineSpec, clovertown_8core, place_threads
from repro.machine.traffic import VALUE_SIZE, analyze_threads
from repro.telemetry import core as telemetry
from repro.telemetry.metrics import record_sim_result


def simulate_spmv(
    matrix: SparseMatrix,
    threads: int = 1,
    machine: MachineSpec | None = None,
    *,
    placement: str = "close",
    cost_model: CostModel | None = None,
) -> SimResult:
    """Predict one steady-state SpMV iteration on the machine model.

    Parameters
    ----------
    matrix:
        Matrix in any supported format (the format determines both the
        byte traffic and the kernel cost).
    threads:
        Thread count; threads are placed on cores with *placement*
        (``"close"`` / ``"spread"``, Section VI-A semantics).
    machine:
        Machine model; defaults to the paper's 8-core Clovertown.
    cost_model:
        Calibrated kernel costs; defaults to
        :func:`~repro.machine.costmodel.default_cost_model`.
    """
    machine = machine or clovertown_8core()
    cost_model = cost_model or default_cost_model()
    with telemetry.span(
        "sim.spmv", format=matrix.name, threads=threads, placement=placement
    ):
        cores = place_threads(machine, threads, placement)
        _, works = analyze_threads(matrix, threads)
        total_shared = {
            "x": matrix.ncols * VALUE_SIZE,
        }
        # vals_unique is the same physical array for every thread.
        for w in works:
            if "vals_unique" in w.shared_bytes:
                total_shared["vals_unique"] = w.shared_bytes["vals_unique"]
                break
        result = solve_makespan(
            works, cores, machine, cost_model, total_shared=total_shared
        )
    if telemetry.enabled():
        record_sim_result(
            format_name=matrix.name,
            threads=threads,
            placement=placement,
            bound=result.bound,
            dram_bytes=result.total_traffic,
            resident_fraction=result.resident_fraction,
        )
    return result


def spmv_mflops(result: SimResult) -> float:
    """Convenience accessor mirroring the paper's FLOPS reporting."""
    return result.mflops
