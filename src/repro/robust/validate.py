"""Integrity validators for the stored matrix formats.

The compressed formats are hand-rolled serializations — ``ctl`` byte
streams, narrow ``val_ind`` arrays, bit-packed deltas — exactly the
kind of data where one flipped byte silently corrupts ``y = A x``
instead of crashing.  This module is the trust layer:

* :func:`walk_ctl` — a **non-decoding** walk of a CSR-DU ``ctl``
  stream.  It advances through the unit headers without materializing
  any column array, checking flag bits, unit sizes, varint bounds,
  column monotonicity within rows, and row/nonzero coverage against
  the declared shape.  Failures raise :class:`~repro.errors.
  IntegrityError` carrying the byte offset and row where the walk
  stopped.
* :func:`verify_matrix` — per-format invariant checkers (``row_ptr``
  monotone, ``col_ind`` in range, ``val_ind < len(vals_unique)``,
  NaN/Inf policy) dispatched by registry name and exposed as
  ``matrix.verify()`` on every :class:`~repro.formats.base.
  SparseMatrix`.
* :func:`seal` / :func:`check_seal` — opt-in CRC32 checksums over the
  stored arrays.  Structural checks cannot catch a corruption that
  stays *plausible* (an in-range bit flip in a delta byte or a value);
  a sealed matrix closes that hole: ``verify()`` on a sealed matrix
  re-hashes every array and any byte difference raises.  Sealing is
  explicit, so unverified hot paths pay nothing.

Everything here is read-only and allocation-light: ``verify()`` never
mutates the matrix, and when no seal is present the checks are pure
NumPy reductions over the stored arrays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.compress.ctl import FLAG_NR, FLAG_RJMP, FLAG_SEQ, _CLASS_MASK, _KNOWN_MASK
from repro.errors import EncodingError, IntegrityError
from repro.telemetry import core as telemetry
from repro.util.bitops import WIDTH_BYTES, WIDTH_DTYPES, decode_varint

#: Attribute carrying a matrix's checksum seal (``{field: crc32}``).
SEAL_ATTR = "_integrity_seal"

#: Cache attributes excluded from sealing/verification (derived data,
#: rebuilt from the stored arrays; corruption there is caught when the
#: consumer decodes, and the fault injector clears them anyway).
_NON_CONTENT_ATTRS = frozenset({SEAL_ATTR})

#: Value policies for :func:`check_values` / :func:`verify_matrix`.
VALUE_POLICIES = ("finite", "no-nan", "any")


# ---------------------------------------------------------------------------
# Checksum seals
# ---------------------------------------------------------------------------


def _content_arrays(matrix) -> list[tuple[str, object]]:
    """``(name, array-or-bytes)`` pairs of the matrix's stored data.

    Every ``np.ndarray`` / ``bytes`` attribute in the instance dict
    participates (sorted by name, so the seal is deterministic); cached
    derived objects (decoded units, kernel plans, unit tables) are not
    arrays and fall out naturally.
    """
    out = []
    for name, value in sorted(vars(matrix).items()):
        if name in _NON_CONTENT_ATTRS:
            continue
        if isinstance(value, (np.ndarray, bytes, bytearray)):
            out.append((name, value))
    return out


def _digest(value) -> int:
    """CRC32 of one stored array/stream, covering dtype and shape too."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        crc = zlib.crc32(f"{arr.dtype.str}{arr.shape}".encode("ascii"))
        return zlib.crc32(arr.tobytes(), crc)
    return zlib.crc32(bytes(value))


def seal(matrix):
    """Stamp CRC32 digests of every stored array onto *matrix*.

    Returns the matrix (chaining).  A subsequent :func:`verify_matrix`
    (or ``matrix.verify()``) re-hashes the arrays and raises
    :class:`IntegrityError` on any difference — the only way to catch
    corruptions that keep the structure plausible, like an in-range bit
    flip inside a delta byte or a value.
    """
    setattr(matrix, SEAL_ATTR, {name: _digest(v) for name, v in _content_arrays(matrix)})
    return matrix


def is_sealed(matrix) -> bool:
    """Whether *matrix* carries a checksum seal."""
    return getattr(matrix, SEAL_ATTR, None) is not None


def check_seal(matrix) -> None:
    """Re-hash a sealed matrix's arrays; raise on any mismatch.

    A no-op for unsealed matrices.  The error names the corrupted field
    via its ``field`` attribute.
    """
    sealed = getattr(matrix, SEAL_ATTR, None)
    if sealed is None:
        return
    current = dict(_content_arrays(matrix))
    for name, expected in sealed.items():
        value = current.pop(name, None)
        if value is None:
            raise IntegrityError(
                f"sealed array {name!r} is missing from the matrix", field=name
            )
        if _digest(value) != expected:
            raise IntegrityError(
                f"checksum mismatch on stored array {name!r}: "
                "data changed since seal()",
                field=name,
            )
    if current:
        extra = sorted(current)
        raise IntegrityError(
            f"unsealed stored arrays appeared after seal(): {extra}",
            field=extra[0],
        )


# ---------------------------------------------------------------------------
# Non-decoding ctl stream walker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CtlStats:
    """What a full :func:`walk_ctl` pass learned about a stream."""

    nunits: int
    nnz: int
    #: Highest row index opened by the stream (-1 for an empty stream).
    last_row: int
    #: Highest column index reached by any unit.
    max_col: int


def walk_ctl(
    ctl,
    *,
    nnz: int | None = None,
    nrows: int | None = None,
    ncols: int | None = None,
) -> CtlStats:
    """Walk a CSR-DU ``ctl`` stream without decoding it.

    Advances unit by unit — header, optional varints, fixed-width delta
    body — keeping only the current row and column.  No column array is
    materialized, so a full check of an ``nnz``-element stream touches
    each byte once and allocates nothing beyond per-unit views.

    Checks, in stream order:

    * header present (2 bytes), no unknown flag bits, ``usize >= 1``;
    * ``RJMP`` only together with ``NR``; first unit opens a row;
    * varints terminate inside the stream and fit 64 bits;
    * in-row continuation units advance the column (``ujmp >= 1``);
    * sequential units have a positive stride;
    * fixed-width delta bodies lie inside the stream and contain no
      zero delta (columns strictly increase within a row);
    * rows stay below ``nrows`` and columns below ``ncols`` (when
      given); the decoded element count equals ``nnz`` (when given).

    Raises :class:`IntegrityError` with ``byte_offset``/``row`` context.
    """
    pos = 0
    n = len(ctl)
    row = -1
    col = 0
    total = 0
    nunits = 0
    max_col = -1

    while pos < n:
        unit_off = pos

        def die(msg: str) -> None:
            raise IntegrityError(
                f"ctl: {msg} (unit {nunits}, byte {unit_off}, row {row})",
                byte_offset=unit_off,
                row=row,
            )

        def varint(at: int) -> tuple[int, int]:
            try:
                return decode_varint(ctl, at)
            except EncodingError as exc:
                die(str(exc))
                raise AssertionError("unreachable")  # pragma: no cover

        if pos + 2 > n:
            die("truncated unit header")
        flags = ctl[pos]
        usize = ctl[pos + 1]
        pos += 2
        if flags & ~_KNOWN_MASK:
            die(f"unknown flag bits 0x{flags & ~_KNOWN_MASK:02x}")
        if usize == 0:
            die("unit size 0 is invalid")
        new_row = bool(flags & FLAG_NR)
        if flags & FLAG_RJMP:
            if not new_row:
                die("RJMP flag without NR")
            extra, pos = varint(pos)
            jump = 1 + extra
        else:
            jump = 1
        ujmp, pos = varint(pos)
        if new_row:
            row += jump
            col = ujmp
        else:
            if row < 0:
                die("stream does not start with a new-row unit")
            if ujmp < 1:
                die("in-row unit does not advance the column")
            col += ujmp
        cls = flags & _CLASS_MASK
        if flags & FLAG_SEQ:
            stride, pos = varint(pos)
            if usize > 1:
                if stride < 1:
                    die("sequential unit with non-positive stride")
                col += stride * (usize - 1)
        elif usize > 1:
            body = (usize - 1) * WIDTH_BYTES[cls]
            if pos + body > n:
                die("truncated unit body")
            deltas = np.frombuffer(ctl, WIDTH_DTYPES[cls], count=usize - 1, offset=pos)
            if int(deltas.min()) == 0:
                die("zero column delta inside a unit")
            col += int(np.sum(deltas, dtype=np.uint64))
            pos += body
        if nrows is not None and row >= nrows:
            die(f"row index {row} out of range for {nrows} rows")
        if ncols is not None and col >= ncols:
            die(f"column index {col} out of range for {ncols} columns")
        max_col = max(max_col, col)
        total += usize
        nunits += 1

    if nnz is not None and total != nnz:
        raise IntegrityError(
            f"ctl: stream covers {total} nonzeros, expected {nnz}",
            byte_offset=n,
            row=row,
        )
    return CtlStats(nunits=nunits, nnz=total, last_row=row, max_col=max_col)


# ---------------------------------------------------------------------------
# Per-format invariant checkers
# ---------------------------------------------------------------------------


def check_values(values: np.ndarray, name: str, policy: str = "finite") -> None:
    """Apply the NaN/Inf *policy* to a value array.

    ``"finite"`` forbids NaN and infinities, ``"no-nan"`` allows
    infinities, ``"any"`` disables the check.
    """
    if policy not in VALUE_POLICIES:
        raise IntegrityError(
            f"unknown value policy {policy!r}; choose from {VALUE_POLICIES}"
        )
    if policy == "any" or values.size == 0:
        return
    if policy == "finite":
        bad = ~np.isfinite(values)
        what = "non-finite"
    else:
        bad = np.isnan(values)
        what = "NaN"
    if np.any(bad):
        pos = int(np.argmax(bad))
        raise IntegrityError(
            f"{what} value at {name}[{pos}] (policy {policy!r})", field=name
        )


def _check_row_ptr(row_ptr: np.ndarray, nrows: int, nnz: int) -> None:
    if row_ptr.size != nrows + 1:
        raise IntegrityError(
            f"row_ptr has {row_ptr.size} entries, expected {nrows + 1}",
            field="row_ptr",
        )
    if int(row_ptr[0]) != 0:
        raise IntegrityError(
            f"row_ptr must start at 0, got {int(row_ptr[0])}", field="row_ptr", row=0
        )
    if int(row_ptr[-1]) != nnz:
        raise IntegrityError(
            f"row_ptr ends at {int(row_ptr[-1])} but the matrix stores {nnz} "
            "nonzeros",
            field="row_ptr",
            row=nrows - 1,
        )
    diffs = np.diff(row_ptr)
    if diffs.size and int(diffs.min()) < 0:
        row = int(np.argmax(diffs < 0))
        raise IntegrityError(
            f"row_ptr decreases at row {row}", field="row_ptr", row=row
        )


def _check_col_ind(
    col_ind: np.ndarray, row_ptr: np.ndarray, ncols: int
) -> None:
    if col_ind.size == 0:
        return
    if int(col_ind.min()) < 0 or int(col_ind.max()) >= ncols:
        pos = int(np.argmax((col_ind < 0) | (col_ind >= ncols)))
        raise IntegrityError(
            f"col_ind[{pos}] = {int(col_ind[pos])} out of range [0, {ncols})",
            field="col_ind",
        )
    # Columns must strictly increase within each row: a global adjacent
    # diff is non-positive only at row boundaries.
    deltas = np.diff(col_ind.astype(np.int64))
    starts = np.zeros(col_ind.size, dtype=bool)
    starts[row_ptr[:-1][row_ptr[:-1] < col_ind.size]] = True
    bad = (deltas <= 0) & ~starts[1:]
    if np.any(bad):
        pos = int(np.argmax(bad)) + 1
        row = int(np.searchsorted(row_ptr, pos, side="right")) - 1
        raise IntegrityError(
            f"col_ind not strictly increasing within row {row} "
            f"(position {pos})",
            field="col_ind",
            row=row,
        )


def _check_val_ind(val_ind: np.ndarray, nunique: int, nnz: int) -> None:
    if val_ind.size != nnz:
        raise IntegrityError(
            f"val_ind has {val_ind.size} entries, expected {nnz}", field="val_ind"
        )
    if val_ind.size and int(val_ind.max()) >= nunique:
        pos = int(np.argmax(val_ind >= nunique))
        raise IntegrityError(
            f"val_ind[{pos}] = {int(val_ind[pos])} out of range for "
            f"{nunique} unique values",
            field="val_ind",
        )


def _verify_csr(matrix, policy: str) -> None:
    _check_row_ptr(matrix.row_ptr, matrix.nrows, matrix.nnz)
    _check_col_ind(matrix.col_ind, matrix.row_ptr, matrix.ncols)
    check_values(matrix.values, "values", policy)


def _verify_csr_vi(matrix, policy: str) -> None:
    _check_row_ptr(matrix.row_ptr, matrix.nrows, matrix.nnz)
    _check_col_ind(matrix.col_ind, matrix.row_ptr, matrix.ncols)
    _check_val_ind(matrix.val_ind, matrix.vals_unique.size, matrix.nnz)
    check_values(matrix.vals_unique, "vals_unique", policy)


def _verify_csr_du(matrix, policy: str) -> None:
    walk_ctl(
        matrix.ctl, nnz=matrix.nnz, nrows=matrix.nrows, ncols=matrix.ncols
    )
    check_values(matrix.values, "values", policy)


def _verify_csr_du_vi(matrix, policy: str) -> None:
    walk_ctl(
        matrix.ctl, nnz=matrix.nnz, nrows=matrix.nrows, ncols=matrix.ncols
    )
    _check_val_ind(matrix.val_ind, matrix.vals_unique.size, matrix.nnz)
    check_values(matrix.vals_unique, "vals_unique", policy)


def _verify_coo(matrix, policy: str) -> None:
    rows, cols = matrix.rows, matrix.cols
    if rows.size:
        if int(rows.min()) < 0 or int(rows.max()) >= matrix.nrows:
            raise IntegrityError("COO row index out of range", field="rows")
        if int(cols.min()) < 0 or int(cols.max()) >= matrix.ncols:
            raise IntegrityError("COO column index out of range", field="cols")
    check_values(matrix.values, "values", policy)


def _verify_csc(matrix, policy: str) -> None:
    col_ptr = matrix.col_ptr
    if col_ptr.size != matrix.ncols + 1:
        raise IntegrityError(
            f"col_ptr has {col_ptr.size} entries, expected {matrix.ncols + 1}",
            field="col_ptr",
        )
    if int(col_ptr[0]) != 0 or int(col_ptr[-1]) != matrix.nnz:
        raise IntegrityError("col_ptr must run from 0 to nnz", field="col_ptr")
    if col_ptr.size > 1 and int(np.diff(col_ptr).min()) < 0:
        raise IntegrityError("col_ptr decreases", field="col_ptr")
    row_ind = matrix.row_ind
    if row_ind.size and (
        int(row_ind.min()) < 0 or int(row_ind.max()) >= matrix.nrows
    ):
        raise IntegrityError("row_ind out of range", field="row_ind")
    check_values(matrix.values, "values", policy)


def _verify_generic(matrix, policy: str) -> None:
    """Fallback for formats without a dedicated checker.

    Hashes nothing format-specific; instead it applies the value policy
    to every stored float array and replays :meth:`iter_entries` (the
    format's own reference decode) checking index bounds — the decode
    itself surfaces malformed streams as :class:`~repro.errors.
    EncodingError`.
    """
    for name, value in _content_arrays(matrix):
        if isinstance(value, np.ndarray) and np.issubdtype(
            value.dtype, np.floating
        ):
            check_values(value, name, policy)
    nrows, ncols = matrix.shape
    count = 0
    for i, j, _ in matrix.iter_entries():
        if not (0 <= i < nrows and 0 <= j < ncols):
            raise IntegrityError(
                f"entry ({i}, {j}) out of range for shape {matrix.shape}",
                row=i,
            )
        count += 1
    # Padding formats (BCSR blocks, ELL slabs) legitimately declare a
    # stored nnz above the decoded entry count, so only the impossible
    # direction is an error.
    if count > matrix.nnz:
        raise IntegrityError(
            f"format decodes {count} entries but declares nnz={matrix.nnz}"
        )


_VERIFIERS = {
    "csr": _verify_csr,
    "csr-vi": _verify_csr_vi,
    "csr-du": _verify_csr_du,
    "csr-du-vi": _verify_csr_du_vi,
    "coo": _verify_coo,
    "csc": _verify_csc,
}


def verify_matrix(matrix, *, value_policy: str = "finite"):
    """Run every applicable integrity check on *matrix*; return it.

    Dispatches on the registry name: the four paper formats get exact
    structural checkers (plus the non-decoding ctl walk for CSR-DU),
    everything else the generic decode-replay.  A checksum seal, when
    present (:func:`seal`), is verified first — it is the only check
    that catches corruptions which keep the structure plausible.

    Raises :class:`IntegrityError` (or :class:`~repro.errors.
    EncodingError` from a format's own decode) on the first failure;
    emits a ``validate`` span when telemetry is on.
    """
    with telemetry.span(
        "validate", format=matrix.name or type(matrix).__name__, nnz=matrix.nnz
    ):
        check_seal(matrix)
        checker = _VERIFIERS.get(matrix.name, _verify_generic)
        checker(matrix, value_policy)
    return matrix
