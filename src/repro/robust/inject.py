"""Deterministic fault injection for the adversarial integrity suite.

Each :class:`Fault` is a seeded, reproducible corruption of one stored
array — a bit flip in ``ctl``, an out-of-range ``val_ind``, a shuffled
``row_ptr``, a NaN value — tagged with what the validators owe us:

* ``structural`` — a *structural* validator (no checksum seal) must
  catch it: the corruption breaks an invariant the format declares.
* ``must_catch`` — ``verify()`` on a **sealed** matrix must catch it.
  Every fault here is must-catch: sealing closes the plausible-
  corruption hole (an in-range delta flip keeps the structure legal
  but changes ``y``), so a sealed matrix admits no silent corruption.

:func:`inject` returns a corrupted *copy* by default (the original is
untouched); cached derived state — decoded units, kernel plans, unit
tables — is dropped from the copy so the corruption is actually
observed by whatever consumes the matrix next.  The copy keeps the
original's checksum seal, modelling data corrupted *after* it was
sealed (the scenario the seal exists for).

``tools/smoke_faults.py`` sweeps this catalogue over every compressed
format and asserts the contract: 100% of must-catch corruptions raise,
and no injected fault ever produces a silently wrong ``y``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError

#: Derived/cache attributes dropped from a corrupted copy so stale
#: decodes cannot mask the injected fault.
_CACHE_ATTRS = ("units", "_kernel_plan", "_unit_table", "_encode_cache_token")


class FaultNotApplicable(ReproError):
    """The requested fault cannot be expressed on this matrix.

    E.g. a within-row column swap on a matrix whose rows all hold a
    single nonzero.  Sweeps skip these rather than fail.
    """


@dataclass(frozen=True)
class Fault:
    """One catalogued corruption.

    ``apply(matrix, rng)`` mutates the (already copied) matrix in
    place; it may raise :class:`FaultNotApplicable`.
    """

    name: str
    formats: tuple[str, ...]
    must_catch: bool
    structural: bool
    description: str
    apply: Callable


def _flip_ctl_bit(matrix, rng) -> None:
    ctl = bytearray(matrix.ctl)
    if not ctl:
        raise FaultNotApplicable("empty ctl stream")
    pos = int(rng.integers(len(ctl)))
    ctl[pos] ^= 1 << int(rng.integers(8))
    matrix.ctl = bytes(ctl)


def _truncate_ctl(matrix, rng) -> None:
    ctl = matrix.ctl
    if len(ctl) < 3:
        raise FaultNotApplicable("ctl too short to truncate")
    cut = 1 + int(rng.integers(min(4, len(ctl) - 2)))
    matrix.ctl = ctl[:-cut]


def _unknown_ctl_flag(matrix, rng) -> None:
    ctl = bytearray(matrix.ctl)
    if not ctl:
        raise FaultNotApplicable("empty ctl stream")
    # The first unit header is always at offset 0.
    ctl[0] |= 0x80
    matrix.ctl = bytes(ctl)


def _val_ind_out_of_range(matrix, rng) -> None:
    val_ind = matrix.val_ind.copy()
    if not val_ind.size:
        raise FaultNotApplicable("no value indices")
    pos = int(rng.integers(val_ind.size))
    val_ind[pos] = matrix.vals_unique.size + int(rng.integers(4))
    matrix.val_ind = val_ind


def _shuffle_row_ptr(matrix, rng) -> None:
    row_ptr = matrix.row_ptr.copy()
    interior = row_ptr[1:-1]
    if interior.size < 2 or int(interior.min()) == int(interior.max()):
        raise FaultNotApplicable("row_ptr has no distinct interior entries")
    for _ in range(16):
        perm = rng.permutation(interior.size)
        if np.any(interior[perm] != interior):
            row_ptr[1:-1] = interior[perm]
            matrix.row_ptr = row_ptr
            return
    raise FaultNotApplicable("permutation never changed row_ptr")


def _values_array_name(matrix) -> str:
    return "vals_unique" if hasattr(matrix, "vals_unique") else "values"


def _nan_value(matrix, rng) -> None:
    name = _values_array_name(matrix)
    values = getattr(matrix, name).copy()
    if not values.size:
        raise FaultNotApplicable("no stored values")
    values[int(rng.integers(values.size))] = np.nan
    setattr(matrix, name, values)


def _flip_value_bit(matrix, rng) -> None:
    name = _values_array_name(matrix)
    values = getattr(matrix, name).copy()
    if not values.size:
        raise FaultNotApplicable("no stored values")
    pos = int(rng.integers(values.size))
    bits = values.view(np.uint64)
    # Low mantissa bit: the result stays finite and *plausible* — the
    # corruption only a checksum seal can catch.
    bits[pos] ^= np.uint64(1)
    setattr(matrix, name, values)


def _col_ind_out_of_range(matrix, rng) -> None:
    col_ind = matrix.col_ind.copy()
    if not col_ind.size:
        raise FaultNotApplicable("no column indices")
    pos = int(rng.integers(col_ind.size))
    col_ind[pos] = matrix.ncols + int(rng.integers(4))
    matrix.col_ind = col_ind


def _col_ind_disorder(matrix, rng) -> None:
    row_ptr = matrix.row_ptr
    col_ind = matrix.col_ind.copy()
    lengths = np.diff(row_ptr)
    rows = np.flatnonzero(lengths >= 2)
    if not rows.size:
        raise FaultNotApplicable("no row with two or more nonzeros")
    row = int(rows[int(rng.integers(rows.size))])
    lo = int(row_ptr[row])
    col_ind[lo], col_ind[lo + 1] = col_ind[lo + 1], col_ind[lo]
    matrix.col_ind = col_ind


_DU = ("csr-du", "csr-du-vi")
_VI = ("csr-vi", "csr-du-vi")
_RP = ("csr", "csr-vi")

#: The fault catalogue the adversarial suite sweeps.
FAULTS: tuple[Fault, ...] = (
    Fault(
        "ctl-bit-flip", _DU, True, False,
        "flip one random bit of the ctl stream (may stay structurally legal)",
        _flip_ctl_bit,
    ),
    Fault(
        "ctl-truncate", _DU, True, True,
        "drop 1-4 trailing ctl bytes (walker: truncation or nnz shortfall)",
        _truncate_ctl,
    ),
    Fault(
        "ctl-unknown-flag", _DU, True, True,
        "set an undefined flag bit on the first unit header",
        _unknown_ctl_flag,
    ),
    Fault(
        "val-ind-out-of-range", _VI, True, True,
        "point one val_ind entry past the unique-value table",
        _val_ind_out_of_range,
    ),
    Fault(
        "row-ptr-shuffle", _RP, True, True,
        "permute interior row_ptr entries (breaks monotonicity)",
        _shuffle_row_ptr,
    ),
    Fault(
        "col-ind-out-of-range", _RP, True, True,
        "point one col_ind entry past ncols",
        _col_ind_out_of_range,
    ),
    Fault(
        "col-ind-disorder", _RP, True, True,
        "swap two adjacent column indices inside one row",
        _col_ind_disorder,
    ),
    Fault(
        "value-nan", ("csr", "csr-vi", "csr-du", "csr-du-vi"), True, True,
        "overwrite one stored value with NaN (value policy)",
        _nan_value,
    ),
    Fault(
        "value-bit-flip", ("csr", "csr-vi", "csr-du", "csr-du-vi"), True, False,
        "flip the low mantissa bit of one value (finite, plausible; "
        "only a checksum seal catches it)",
        _flip_value_bit,
    ),
)

_BY_NAME = {f.name: f for f in FAULTS}


def get_fault(name: str) -> Fault:
    """Look a fault up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown fault {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def applicable_faults(format_name: str) -> tuple[Fault, ...]:
    """All catalogued faults that target *format_name*."""
    return tuple(f for f in FAULTS if format_name in f.formats)


def inject(matrix, fault: Fault | str, seed: int, *, copy_matrix: bool = True):
    """Apply *fault* to *matrix* deterministically; return the victim.

    With ``copy_matrix=True`` (default) the original is untouched and a
    corrupted shallow copy is returned; with ``copy_matrix=False`` the
    matrix itself is mutated (executor/cache tests corrupting shared
    state on purpose).  Either way, cached derived state (decoded
    units, kernel plans, unit tables) is dropped from the victim so the
    corruption is observed, and an existing checksum seal is kept
    as-is — the model is data corrupted *after* sealing.
    """
    if isinstance(fault, str):
        fault = get_fault(fault)
    victim = copy.copy(matrix) if copy_matrix else matrix
    for attr in _CACHE_ATTRS:
        victim.__dict__.pop(attr, None)
    fault.apply(victim, np.random.default_rng(seed))
    for attr in _CACHE_ATTRS:
        victim.__dict__.pop(attr, None)
    return victim
