"""Guarded kernel execution: decode-failure fallback across tiers.

A compressed-format kernel can fail at decode time — a malformed
``ctl`` stream, a poisoned cached plan, a failed integrity check —
long after the matrix was built.  :class:`GuardedKernel` wraps the
registry's tier chain (batched → vectorized/unitwise → reference) so
one failing tier degrades instead of aborting: the cell re-runs on the
next tier, a ``kernel.fallback`` counter records the transition (the
dashboard surfaces degradation), and only a chain with *no* surviving
tier raises.

All tiers are bit-identical by construction (tier-1 locks that in), so
a successful fallback changes nothing about the answer — only how
expensively it was computed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError, FormatError, IntegrityError
from repro.kernels.registry import fallback_chain
from repro.obs import core as obs
from repro.telemetry import core as telemetry

#: Failure types a fallback may absorb.  Anything else (MemoryError,
#: programming errors) propagates immediately.
RECOVERABLE = (EncodingError, IntegrityError, FormatError)


def _tier_of(spec) -> str:
    return getattr(spec, "tier", getattr(spec, "__name__", "unknown"))


class GuardedKernel:
    """``kernel(matrix, x) -> y`` that walks a fallback chain.

    Parameters
    ----------
    format_name:
        Registry name the chain is built for.
    start_tier:
        First tier to try (default ``"batched"``); the chain continues
        through the registry's fallback order from there.
    chain:
        Explicit sequence of kernels to try instead (tests, custom
        orders).  Entries may be :class:`~repro.kernels.registry.
        KernelSpec` or plain callables.
    """

    def __init__(
        self,
        format_name: str,
        *,
        start_tier: str = "batched",
        chain=None,
    ):
        self.format_name = format_name
        self.chain = (
            tuple(chain) if chain is not None else fallback_chain(format_name, start_tier)
        )
        if not self.chain:
            raise FormatError(f"empty fallback chain for {format_name!r}")

    def __call__(self, matrix, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (matrix.ncols,):
            # A bad right-hand side fails on every tier; reject it up
            # front instead of burning the whole chain.
            raise FormatError(
                f"x has shape {x.shape}, expected ({matrix.ncols},)"
            )
        last_exc: Exception | None = None
        for i, spec in enumerate(self.chain):
            try:
                return spec(matrix, x)
            except RECOVERABLE as exc:
                last_exc = exc
                to_tier = (
                    _tier_of(self.chain[i + 1])
                    if i + 1 < len(self.chain)
                    else "none"
                )
                telemetry.count(
                    "kernel.fallback",
                    1,
                    extra={
                        "from_tier": _tier_of(spec),
                        "to_tier": to_tier,
                        "error": type(exc).__name__,
                    },
                    format=self.format_name,
                )
                # Live rate signal: the default SLO rule set alerts on
                # any nonzero fallback rate over 10s.
                obs.mark("kernel.fallback", 1, format=self.format_name)
        raise IntegrityError(
            f"all {len(self.chain)} kernel tiers failed for "
            f"{self.format_name!r}; last error: {last_exc}"
        ) from last_exc


def guarded_spmv(matrix, x: np.ndarray, *, start_tier: str = "batched") -> np.ndarray:
    """One-shot guarded ``y = A x`` using the matrix's own format chain."""
    return GuardedKernel(matrix.name, start_tier=start_tier)(matrix, x)
