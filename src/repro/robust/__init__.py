"""Integrity and fault tolerance (PR 5).

* :mod:`repro.robust.validate` — non-decoding ``ctl`` walker, per-format
  invariant checkers, checksum seals; surfaced as ``matrix.verify()``.
* :mod:`repro.robust.inject` — deterministic seeded fault catalogue for
  the adversarial "no silent wrong answer" suite.
* :mod:`repro.robust.guard` — kernel fallback chain (batched →
  unitwise → reference) with ``kernel.fallback`` telemetry.
"""

from repro.robust.guard import GuardedKernel, guarded_spmv
from repro.robust.inject import (
    FAULTS,
    Fault,
    FaultNotApplicable,
    applicable_faults,
    get_fault,
    inject,
)
from repro.robust.validate import (
    CtlStats,
    check_seal,
    check_values,
    is_sealed,
    seal,
    verify_matrix,
    walk_ctl,
)

__all__ = [
    "CtlStats",
    "Fault",
    "FaultNotApplicable",
    "FAULTS",
    "GuardedKernel",
    "applicable_faults",
    "check_seal",
    "check_values",
    "get_fault",
    "guarded_spmv",
    "inject",
    "is_sealed",
    "seal",
    "verify_matrix",
    "walk_ctl",
]
