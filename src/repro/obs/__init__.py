"""Live runtime observability for the SpMV reproduction.

The streaming counterpart to the post-hoc :mod:`repro.telemetry`:
where telemetry records an event stream to analyze after the run,
``repro.obs`` aggregates *while the system runs* and can answer, at
any instant:

* what is the p50/p99 of the per-chunk SpMV latency right now
  (:mod:`~repro.obs.histogram` -- log-bucketed, mergeable across
  threads, bounded-error percentiles);
* how often are fallbacks / retries / cache misses happening over the
  last N seconds (:mod:`~repro.obs.window` -- sliding-window rates
  over the existing counter vocabulary);
* is any SLO being violated (:mod:`~repro.obs.rules` -- declarative
  threshold/rate/tail-ratio rules evaluated on snapshots, alerts
  emitted as telemetry events);
* where is wall-clock time actually going
  (:mod:`~repro.obs.profiler` -- a sampling profiler with
  flamegraph-ready collapsed-stack output, zero cost to the sampled
  threads);
* what is the process doing to the machine
  (:mod:`~repro.obs.resource` -- RSS / GC / thread-count gauges).

State is exposed two ways: ``snapshot()`` (structured dict) and
``render_openmetrics()`` (Prometheus/OpenMetrics text for any
scraper).  Usage::

    from repro import obs

    obs.configure()                       # default SLO rules installed
    runtime = obs.get_runtime()
    runtime.start_resource_monitor()
    # ... any repro work: ParallelSpMV, run_set(), guarded_spmv() ...
    alerts = runtime.evaluate_rules()
    print(runtime.render_openmetrics())
    obs.configure(enabled=False)

Disabled (the default), every entry point is one attribute check --
the same zero-overhead contract as telemetry, pinned by the same
overhead test.
"""

from __future__ import annotations

from repro.obs.core import (
    ObsRuntime,
    configure,
    enabled,
    get_runtime,
    mark,
    observe,
    set_gauge,
    set_runtime,
)
from repro.obs.histogram import StreamingHistogram
from repro.obs.openmetrics import render_openmetrics
from repro.obs.profiler import SamplingProfiler
from repro.obs.resource import ResourceMonitor
from repro.obs.rules import Alert, Rule, RuleEngine, default_rules, parse_rule
from repro.obs.window import WindowedCounter
from repro.obs.xproc import (
    TraceContext,
    WorkerTelemetry,
    current_context,
    ingest_payload,
)

__all__ = [
    "ObsRuntime",
    "TraceContext",
    "WorkerTelemetry",
    "current_context",
    "ingest_payload",
    "StreamingHistogram",
    "WindowedCounter",
    "SamplingProfiler",
    "ResourceMonitor",
    "Alert",
    "Rule",
    "RuleEngine",
    "default_rules",
    "parse_rule",
    "render_openmetrics",
    "configure",
    "enabled",
    "get_runtime",
    "set_runtime",
    "observe",
    "mark",
    "set_gauge",
]
