"""Cross-process observability: one causal timeline from many workers.

PR 7's :class:`~repro.parallel.process_executor.ProcessParallelSpMV`
runs its chunks in fork-pool workers, and everything recorded inside a
worker -- spans, counters, obs histograms, cache hit/miss marks -- dies
with the worker's process-local module globals.  This module carries it
across the boundary in three pieces:

* :class:`TraceContext` -- the picklable enabling decision.  The parent
  snapshots *which* collection is on (telemetry? obs? what histogram
  bucketing?) plus identity (run id, parent span name, worker index)
  and ships it inside the worker's shard spec.  When both are off the
  context is ``None`` and the worker takes its plain fast path with
  zero observability calls (pinned by ``tests/telemetry/test_overhead``).
* :class:`WorkerTelemetry` -- the worker-side scope.  It installs a
  *fresh* process-local :class:`~repro.telemetry.core.Collector` and
  :class:`~repro.obs.core.ObsRuntime` (fork inherits the parent's
  module globals; recording into those would mutate a dead copy),
  restores them afterwards, and flushes everything as one JSON-safe
  payload in the worker's status dict: telemetry events + aggregate
  dicts, plus histogram/counter shards via ``to_shard()``.
* :func:`ingest_payload` -- the parent-side merge.  Worker event
  timestamps are rebased onto the parent collector's epoch (valid
  because ``time.perf_counter`` is CLOCK_MONOTONIC, shared across
  processes on Linux -- see DESIGN.md 4.7 for the caveat elsewhere),
  stamped with the worker ``pid`` (fork children inherit the parent
  main thread's ident, so ``tid`` alone cannot tell workers apart),
  and appended to the parent collector; histogram shards merge by
  bucket addition, counter shards by total.

After the merge, the parent's OpenMetrics exposition, SLO rules,
chrome trace and ``perf/imbalance.py`` see worker-side metrics exactly
as if the run had been single-process.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Any

from repro.obs import core as obs_core
from repro.obs.core import ObsRuntime
from repro.telemetry import core as telemetry
from repro.telemetry.core import Collector, Event

__all__ = [
    "TraceContext",
    "WorkerTelemetry",
    "current_context",
    "ingest_payload",
]


class TraceContext:
    """Picklable description of what a worker should collect.

    Built in the parent (:meth:`capture`), shipped as a plain dict
    inside the shard spec, rebuilt in the worker (:meth:`from_wire`).
    """

    __slots__ = (
        "run_id",
        "parent",
        "worker",
        "telemetry",
        "obs",
        "histogram_growth",
        "attrs",
    )

    def __init__(
        self,
        *,
        run_id: str,
        parent: str = "parallel.spmv",
        worker: int = 0,
        telemetry_on: bool = False,
        obs_on: bool = False,
        histogram_growth: float | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.run_id = run_id
        self.parent = parent
        self.worker = worker
        self.telemetry = telemetry_on
        self.obs = obs_on
        self.histogram_growth = histogram_growth
        self.attrs = dict(attrs) if attrs else {}

    @classmethod
    def capture(
        cls,
        *,
        run_id: str,
        parent: str = "parallel.spmv",
        worker: int = 0,
        **attrs,
    ) -> "TraceContext | None":
        """Snapshot the parent's enabling state, or ``None`` if all off.

        ``None`` is the zero-overhead signal: the worker sees no
        context key in its spec and makes no observability calls.
        """
        runtime = obs_core.get_runtime()
        telemetry_on = telemetry.enabled()
        if runtime is None and not telemetry_on:
            return None
        return cls(
            run_id=run_id,
            parent=parent,
            worker=worker,
            telemetry_on=telemetry_on,
            obs_on=runtime is not None,
            histogram_growth=(
                runtime.histogram_growth if runtime is not None else None
            ),
            attrs=attrs,
        )

    def to_wire(self) -> dict:
        return {
            "run_id": self.run_id,
            "parent": self.parent,
            "worker": self.worker,
            "telemetry": self.telemetry,
            "obs": self.obs,
            "histogram_growth": self.histogram_growth,
            "attrs": self.attrs,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "TraceContext":
        return cls(
            run_id=wire.get("run_id", ""),
            parent=wire.get("parent", "parallel.spmv"),
            worker=int(wire.get("worker", 0)),
            telemetry_on=bool(wire.get("telemetry")),
            obs_on=bool(wire.get("obs")),
            histogram_growth=wire.get("histogram_growth"),
            attrs=wire.get("attrs") or {},
        )


def current_context(
    *, run_id: str, parent: str = "parallel.spmv", worker: int = 0, **attrs
) -> dict | None:
    """Wire-format :meth:`TraceContext.capture`, ready for a spec dict."""
    ctx = TraceContext.capture(
        run_id=run_id, parent=parent, worker=worker, **attrs
    )
    return None if ctx is None else ctx.to_wire()


class WorkerTelemetry:
    """Worker-side collection scope for one chunk execution.

    ``begin()`` installs fresh process-local sinks per the context's
    flags, ``end()`` restores whatever the fork inherited, and
    ``payload()`` packages everything recorded in between.  The
    runtime is built with ``rules=()`` -- SLO evaluation is the
    parent's job; a worker only accumulates.
    """

    def __init__(self, ctx: TraceContext | dict) -> None:
        if isinstance(ctx, dict):
            ctx = TraceContext.from_wire(ctx)
        self.ctx = ctx
        self.collector: Collector | None = None
        self.runtime: ObsRuntime | None = None
        self._prev_collector: Collector | None = None
        self._prev_runtime: ObsRuntime | None = None
        self.began = False

    def begin(self) -> "WorkerTelemetry":
        if self.ctx.telemetry:
            self.collector = Collector()
            self._prev_collector = telemetry.set_collector(self.collector)
        if self.ctx.obs:
            growth = self.ctx.histogram_growth
            self.runtime = ObsRuntime(
                rules=(),
                **({"histogram_growth": growth} if growth else {}),
            )
            self._prev_runtime = obs_core.set_runtime(self.runtime)
        self.began = True
        return self

    def end(self) -> None:
        if not self.began:
            return
        if self.ctx.telemetry:
            telemetry.set_collector(self._prev_collector)
        if self.ctx.obs:
            obs_core.set_runtime(self._prev_runtime)

    def payload(self) -> dict:
        """Everything this scope recorded, as one JSON-safe dict."""
        out: dict[str, Any] = {
            "run_id": self.ctx.run_id,
            "worker": self.ctx.worker,
            "pid": os.getpid(),
        }
        if self.collector is not None:
            out["epoch_ns"] = self.collector.epoch_ns
            out["events"] = [asdict(ev) for ev in self.collector.snapshot()]
            out["counters"] = dict(self.collector.counters)
            out["gauges"] = dict(self.collector.gauges)
        if self.runtime is not None:
            out["shards"] = self.runtime.to_shards()
        return out

    def __enter__(self) -> "WorkerTelemetry":
        return self.begin()

    def __exit__(self, *exc) -> None:
        self.end()


def ingest_payload(
    payload: dict,
    *,
    collector: Collector | None = None,
    runtime: ObsRuntime | None = None,
) -> int:
    """Merge one worker payload into the parent's sinks.

    Event timestamps are rebased from the worker collector's epoch to
    the parent's (both are ``perf_counter_ns`` readings of the shared
    monotonic clock), and every ingested event is stamped with the
    worker's ``pid`` and ``worker`` index so downstream consumers
    (chrome tracks, timeline lanes, the dashboard workers table) can
    tell workers apart despite the fork-inherited thread ident.
    Returns the number of events ingested.
    """
    if collector is None:
        collector = telemetry.get_collector()
    if runtime is None:
        runtime = obs_core.get_runtime()
    ingested = 0
    if collector is not None and payload.get("events"):
        offset_us = (payload["epoch_ns"] - collector.epoch_ns) / 1e3
        pid = int(payload.get("pid", 0))
        worker = int(payload.get("worker", 0))
        events = []
        for raw in payload["events"]:
            attrs = dict(raw.get("attrs") or {})
            attrs.setdefault("pid", pid)
            attrs.setdefault("worker", worker)
            events.append(
                Event(
                    kind=raw["kind"],
                    name=raw["name"],
                    ts_us=float(raw["ts_us"]) + offset_us,
                    dur_us=float(raw["dur_us"]),
                    value=float(raw["value"]),
                    thread=raw["thread"],
                    tid=int(raw["tid"]),
                    depth=int(raw["depth"]),
                    attrs=attrs,
                )
            )
        ingested = collector.ingest(
            events,
            counters=payload.get("counters"),
            gauges=payload.get("gauges"),
        )
    if runtime is not None and "shards" in payload:
        runtime.merge_shards(payload["shards"])
    return ingested
