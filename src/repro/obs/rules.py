"""Declarative SLO rules evaluated on observability snapshots.

A rule is one comparison over the plain-data snapshot that
:meth:`repro.obs.core.ObsRuntime.snapshot` produces -- no live object
access, so rules are testable on hand-built dicts and evaluation can
never mutate the metrics it judges.  Four shapes, parsed from a small
text syntax (or built programmatically):

===============================  =============================================
syntax                           meaning
===============================  =============================================
``rate(NAME[10s]) > 0``          windowed rate (events/s summed across label
                                 sets) compared to a constant
``p99(NAME) > 5 * p50(NAME)``    percentile-ratio: tail blowup relative to the
                                 median (histograms merged across label sets)
``p99(NAME) > 0.25``             percentile against a constant (seconds, ...)
``NAME > 10``                    threshold on a gauge value or counter total
===============================  =============================================

Operators: ``>``, ``>=``, ``<``, ``<=``.  A rule whose metric has no
data yet (empty histogram) is *skipped*, not fired; absent counters
count as zero, so ``rate(kernel.fallback[10s]) > 0`` stays quiet until
the first fallback actually happens.

Fired rules produce :class:`Alert` records; the runtime appends them
to its bounded alert log and emits one ``obs.alert`` telemetry counter
event each, which is how they reach the bench summary, the dashboard
and the JSONL trace.  A per-rule ``cooldown_s`` stops a persistently
bad signal from re-alerting on every periodic snapshot.
"""

from __future__ import annotations

import operator
import re
import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import TelemetryError
from repro.obs.histogram import percentile_from_buckets

__all__ = [
    "Alert",
    "Rule",
    "RuleEngine",
    "parse_rule",
    "default_rules",
    "counter_total",
    "counter_rate",
    "gauge_value",
    "histogram_percentile",
]

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_NAME = r"[A-Za-z_][\w.]*"
_NUM = r"-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
_OP = r">=|<=|>|<"

_RATE_RE = re.compile(
    rf"^rate\(({_NAME})\[({_NUM})s\]\)\s*({_OP})\s*({_NUM})$"
)
_RATIO_RE = re.compile(
    rf"^p({_NUM})\(({_NAME})\)\s*({_OP})\s*({_NUM})\s*\*\s*p({_NUM})\(({_NAME})\)$"
)
_PCT_RE = re.compile(rf"^p({_NUM})\(({_NAME})\)\s*({_OP})\s*({_NUM})$")
_THRESHOLD_RE = re.compile(rf"^({_NAME})\s*({_OP})\s*({_NUM})$")


# ---------------------------------------------------------------------------
# Snapshot accessors (label sets are aggregated by base metric name).
# ---------------------------------------------------------------------------


def counter_total(snapshot: dict, name: str) -> float:
    """All-time total of *name* summed across label sets (0 if absent)."""
    return sum(
        c["total"] for c in snapshot.get("counters", ()) if c["name"] == name
    )


def counter_rate(snapshot: dict, name: str, window_s: float) -> float | None:
    """Windowed rate of *name* summed across label sets.

    ``None`` when the snapshot carries no rate for that window (the
    runtime computes every window its registered rules mention, so
    this only happens on hand-built snapshots).
    """
    key = f"{window_s:g}s"
    found = False
    total = 0.0
    for c in snapshot.get("counters", ()):
        if c["name"] != name:
            continue
        rate = c.get("rates", {}).get(key)
        if rate is None:
            continue
        found = True
        total += rate
    if not found:
        # An absent counter has a well-defined rate of zero; a present
        # counter without this window is a configuration gap -> None.
        present = any(c["name"] == name for c in snapshot.get("counters", ()))
        return None if present else 0.0
    return total


def gauge_value(snapshot: dict, name: str) -> float | None:
    """Last value of gauge *name* (first matching label set), or None."""
    for g in snapshot.get("gauges", ()):
        if g["name"] == name:
            return float(g["value"])
    return None


def histogram_percentile(snapshot: dict, name: str, q: float) -> float | None:
    """Percentile of *name* with all label sets merged; None if empty."""
    merged: dict[float, list[float]] = {}
    count = 0.0
    lo_clamp = None
    hi_clamp = None
    for h in snapshot.get("histograms", ()):
        if h["name"] != name or not h.get("count"):
            continue
        count += h["count"]
        lo_clamp = h["min"] if lo_clamp is None else min(lo_clamp, h["min"])
        hi_clamp = h["max"] if hi_clamp is None else max(hi_clamp, h["max"])
        for lo, hi, n in h.get("buckets", ()):
            entry = merged.setdefault(lo, [hi, 0.0])
            entry[1] += n
    if not count:
        return None
    buckets = sorted(
        (lo, hi, n) for lo, (hi, n) in merged.items()
    )
    return percentile_from_buckets(
        buckets, count, q, lo_clamp=lo_clamp, hi_clamp=hi_clamp
    )


# ---------------------------------------------------------------------------
# Rules and alerts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alert:
    """One fired rule: what was observed against what bound, when."""

    rule: str
    expr: str
    metric: str
    value: float
    threshold: float
    fired_at: float

    def describe(self) -> str:
        return (
            f"[{self.rule}] {self.expr}: observed {self.value:g} vs "
            f"bound {self.threshold:g}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "expr": self.expr,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "fired_at": self.fired_at,
        }


@dataclass(frozen=True)
class Rule:
    """One parsed SLO rule (see the module doc for the text syntax)."""

    name: str
    expr: str
    kind: str  # "rate" | "ratio" | "percentile" | "threshold"
    metric: str
    op: str
    value: float
    window_s: float | None = None
    q: float | None = None
    rhs_q: float | None = None
    rhs_metric: str | None = None
    #: Seconds a fired rule stays quiet before it may fire again.
    cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TelemetryError(f"unknown rule operator {self.op!r}")
        if self.kind not in ("rate", "ratio", "percentile", "threshold"):
            raise TelemetryError(f"unknown rule kind {self.kind!r}")

    def _observe(self, snapshot: dict) -> tuple[float, float] | None:
        """(observed LHS, computed RHS bound), or None to skip."""
        if self.kind == "rate":
            lhs = counter_rate(snapshot, self.metric, self.window_s or 10.0)
            if lhs is None:
                return None
            return lhs, self.value
        if self.kind == "percentile":
            lhs = histogram_percentile(snapshot, self.metric, self.q or 99.0)
            if lhs is None:
                return None
            return lhs, self.value
        if self.kind == "ratio":
            lhs = histogram_percentile(snapshot, self.metric, self.q or 99.0)
            rhs = histogram_percentile(
                snapshot, self.rhs_metric or self.metric, self.rhs_q or 50.0
            )
            if lhs is None or rhs is None:
                return None
            return lhs, self.value * rhs
        # threshold: gauges win over counter totals (a name should not
        # be both; if it is, the gauge is the intended live signal).
        lhs = gauge_value(snapshot, self.metric)
        if lhs is None:
            lhs = counter_total(snapshot, self.metric)
        return lhs, self.value

    def evaluate(self, snapshot: dict, now: float | None = None) -> Alert | None:
        """The alert this rule fires on *snapshot*, or None."""
        observed = self._observe(snapshot)
        if observed is None:
            return None
        lhs, bound = observed
        if not _OPS[self.op](lhs, bound):
            return None
        return Alert(
            rule=self.name,
            expr=self.expr,
            metric=self.metric,
            value=float(lhs),
            threshold=float(bound),
            fired_at=time.time() if now is None else now,
        )


def parse_rule(
    expr: str, *, name: str | None = None, cooldown_s: float = 10.0
) -> Rule:
    """Parse one rule expression; raises TelemetryError on bad syntax."""
    text = expr.strip()
    m = _RATE_RE.match(text)
    if m:
        metric, window, op, value = m.groups()
        return Rule(
            name=name or f"rate:{metric}",
            expr=text,
            kind="rate",
            metric=metric,
            op=op,
            value=float(value),
            window_s=float(window),
            cooldown_s=cooldown_s,
        )
    m = _RATIO_RE.match(text)
    if m:
        q, metric, op, mult, rhs_q, rhs_metric = m.groups()
        return Rule(
            name=name or f"ratio:{metric}",
            expr=text,
            kind="ratio",
            metric=metric,
            op=op,
            value=float(mult),
            q=float(q),
            rhs_q=float(rhs_q),
            rhs_metric=rhs_metric,
            cooldown_s=cooldown_s,
        )
    m = _PCT_RE.match(text)
    if m:
        q, metric, op, value = m.groups()
        return Rule(
            name=name or f"p{q}:{metric}",
            expr=text,
            kind="percentile",
            metric=metric,
            op=op,
            value=float(value),
            q=float(q),
            cooldown_s=cooldown_s,
        )
    m = _THRESHOLD_RE.match(text)
    if m:
        metric, op, value = m.groups()
        return Rule(
            name=name or f"threshold:{metric}",
            expr=text,
            kind="threshold",
            metric=metric,
            op=op,
            value=float(value),
            cooldown_s=cooldown_s,
        )
    raise TelemetryError(f"cannot parse SLO rule {expr!r}")


def default_rules() -> list[Rule]:
    """The stock rule set installed by ``--obs``.

    Fallbacks and retries are never expected in a healthy run, so any
    nonzero 10-second rate alerts; the chunk-latency tail rule is the
    paper's imbalance question stated as an SLO (a p99 that runs away
    from the median means some thread's rows decode much slower).  The
    resilience rules surface the PR-10 recovery machinery: a breaker
    opening means some shard or backend failed repeatedly, and any
    backend degradation (``resilience.degrade.total`` is the obs
    counter the ladder bumps per transition) means the run finished on
    a slower rung than the one requested.
    """
    return [
        parse_rule(
            "rate(kernel.fallback[10s]) > 0", name="kernel-fallback"
        ),
        parse_rule(
            "rate(executor.retry[10s]) > 0", name="executor-retry"
        ),
        parse_rule(
            "p99(spmv.chunk.seconds) > 5 * p50(spmv.chunk.seconds)",
            name="chunk-tail-latency",
        ),
        parse_rule(
            "rate(resilience.breaker.open[10s]) > 0", name="breaker-open"
        ),
        parse_rule(
            "resilience.degrade.total > 0", name="backend-degraded"
        ),
    ]


class RuleEngine:
    """A rule set plus per-rule cooldown state.

    ``evaluate`` runs every rule against one snapshot and returns the
    alerts that fired (respecting cooldowns).  The engine never stores
    metric data -- only when each rule last fired.
    """

    def __init__(self, rules: Iterable[Rule | str] = ()) -> None:
        self.rules: list[Rule] = [
            parse_rule(r) if isinstance(r, str) else r for r in rules
        ]
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise TelemetryError(f"duplicate rule names in {names}")
        self._last_fired: dict[str, float] = {}

    def add(self, rule: Rule | str) -> Rule:
        parsed = parse_rule(rule) if isinstance(rule, str) else rule
        if any(r.name == parsed.name for r in self.rules):
            raise TelemetryError(f"duplicate rule name {parsed.name!r}")
        self.rules.append(parsed)
        return parsed

    def evaluate(
        self, snapshot: dict, now: float | None = None
    ) -> list[Alert]:
        """Alerts fired by *snapshot* (cooldown-suppressed ones omitted)."""
        if now is None:
            now = time.time()
        fired: list[Alert] = []
        for rule in self.rules:
            last = self._last_fired.get(rule.name)
            if last is not None and now - last < rule.cooldown_s:
                continue
            alert = rule.evaluate(snapshot, now)
            if alert is not None:
                self._last_fired[rule.name] = now
                fired.append(alert)
        return fired
