"""Low-overhead sampling wall-clock profiler (collapsed-stack output).

Span tracing answers "how long did this annotated region take", but
annotating a hot path costs two clock reads and an event append per
call -- too much for per-unit decode loops.  The sampling profiler
inverts the cost: a background thread wakes ``hz`` times a second,
grabs every other thread's current Python frame via
:func:`sys._current_frames` (one C-level dict copy, no cooperation
from the sampled threads), and tallies the collapsed stack.  The
sampled threads pay *nothing*; total overhead is the sampler thread's
own work, bounded by ``hz``.

Output is the flamegraph "collapsed" format -- one line per distinct
stack, outermost frame first, semicolon-separated, trailing sample
count -- consumable by ``flamegraph.pl``, speedscope, and most trace
viewers::

    MainThread;run_set;run_format_matrix;simulate_spmv 42

The default 97 Hz is prime so the sampler cannot phase-lock with
periodic work and systematically miss (or always hit) the same phase.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter

__all__ = ["SamplingProfiler", "DEFAULT_HZ"]

#: Prime sampling rate (avoids aliasing against periodic workloads).
DEFAULT_HZ = 97.0


def _frame_label(frame) -> str:
    code = frame.f_code
    qualname = getattr(code, "co_qualname", code.co_name)
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{qualname}"


class SamplingProfiler:
    """Background sampler of all thread stacks.

    Parameters
    ----------
    hz:
        Samples per second (per pass over all threads).
    max_depth:
        Frames kept per stack (innermost beyond the limit are dropped;
        the root stays, so collapsed stacks still merge at the base).
    prefix_thread:
        Prepend the sampled thread's name as the stack root, giving
        one flamegraph root per thread.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        max_depth: int = 64,
        prefix_thread: bool = True,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self.prefix_thread = prefix_thread
        self.samples: Counter[tuple[str, ...]] = Counter()
        self.sample_passes = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling ----------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every other thread; returns stacks recorded."""
        own = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        recorded = 0
        frames = sys._current_frames()
        try:
            for tid, frame in frames.items():
                if tid == own:
                    continue
                stack: list[str] = []
                f = frame
                while f is not None and len(stack) < self.max_depth:
                    stack.append(_frame_label(f))
                    f = f.f_back
                stack.reverse()  # outermost first (collapsed convention)
                if self.prefix_thread:
                    stack.insert(0, names.get(tid, f"tid-{tid}"))
                with self._lock:
                    self.samples[tuple(stack)] += 1
                recorded += 1
        finally:
            del frames  # drop frame references promptly
        with self._lock:
            self.sample_passes += 1
        return recorded

    def _run(self) -> None:
        period = 1.0 / self.hz
        while not self._stop.wait(period):
            self.sample_once()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- output ------------------------------------------------------------
    def collapsed(self) -> str:
        """All stacks in flamegraph collapsed format, heaviest first."""
        with self._lock:
            items = self.samples.most_common()
        return "\n".join(f"{';'.join(stack)} {n}" for stack, n in items)

    def write_collapsed(self, path: str) -> int:
        """Write :meth:`collapsed` to *path*; returns distinct stacks."""
        text = self.collapsed()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text)
                fh.write("\n")
        with self._lock:
            return len(self.samples)

    def snapshot(self) -> dict:
        """Plain-data profiler state for the obs snapshot."""
        with self._lock:
            return {
                "hz": self.hz,
                "sample_passes": self.sample_passes,
                "distinct_stacks": len(self.samples),
                "total_samples": sum(self.samples.values()),
            }
