"""Process resource monitor: RSS, GC collections, thread count.

A daemon thread sampling cheap process-level signals into observability
gauges (and, when telemetry is enabled, ``obs.resource.*`` gauge
events) at a fixed interval.  Memory matters here specifically: SpMV
is memory-bound, and the paper's formats trade index bytes for decode
work -- a serving layer needs to see the resident-set cost of encode
caches and partition chunks move in real time.

RSS is read from ``/proc/self/statm`` (field 2 x page size) on Linux;
when that is unavailable the fallback is ``resource.getrusage``'s
``ru_maxrss`` peak (documented as such via the ``rss_is_peak`` gauge
label -- a scraper must not confuse peak with current).

``sample_once`` is public and synchronous so tests and the smoke
checker can drive it deterministically without the thread.
"""

from __future__ import annotations

import gc
import os
import threading

from repro.telemetry import core as telemetry

__all__ = ["ResourceMonitor", "rss_bytes", "gc_collections", "DEFAULT_INTERVAL_S"]

DEFAULT_INTERVAL_S = 0.5

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> tuple[int, bool]:
    """(resident set bytes, is_peak_fallback)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE, False
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; both are peaks.
        factor = 1 if usage.ru_maxrss > 1 << 30 else 1024
        return int(usage.ru_maxrss) * factor, True
    except (ImportError, ValueError):
        return 0, True


def gc_collections() -> int:
    """Total garbage collections across all generations so far."""
    return sum(s.get("collections", 0) for s in gc.get_stats())


class ResourceMonitor:
    """Daemon thread feeding process gauges into an obs runtime.

    Parameters
    ----------
    runtime:
        The :class:`~repro.obs.core.ObsRuntime` receiving the gauges.
    interval_s:
        Sampling period of the background thread.
    """

    def __init__(self, runtime, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.runtime = runtime
        self.interval_s = float(interval_s)
        self.samples_taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_once(self) -> dict[str, float]:
        """Take one sample; returns the gauge values it recorded."""
        rss, is_peak = rss_bytes()
        values = {
            "obs.resource.rss_bytes": float(rss),
            "obs.resource.gc_collections": float(gc_collections()),
            "obs.resource.threads": float(threading.active_count()),
        }
        for name, value in values.items():
            if name == "obs.resource.rss_bytes":
                self.runtime.set_gauge(
                    name, value, rss_is_peak="true" if is_peak else "false"
                )
            else:
                self.runtime.set_gauge(name, value)
            # Mirror into the trace (no-op when telemetry is off) so a
            # JSONL consumer can plot resource use over the run.
            telemetry.gauge(name, value)
        self.samples_taken += 1
        return values

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> "ResourceMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-resource-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "ResourceMonitor":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        return self

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
