"""OpenMetrics / Prometheus text exposition of an observability snapshot.

Renders the plain-data snapshot dict of
:meth:`repro.obs.core.ObsRuntime.snapshot` as the OpenMetrics text
format (https://prometheus.io/docs/specs/om/open_metrics_spec/), so
any scraper -- or a human with ``curl`` -- can read the live state:

* windowed counters -> ``# TYPE x counter`` with ``x_total`` samples,
  plus a ``x_rate`` gauge family labelled ``window="10s"`` etc.;
* gauges -> ``# TYPE x gauge``;
* streaming histograms -> ``# TYPE x histogram`` with cumulative
  ``x_bucket{le="..."}`` samples, ``x_sum``/``x_count``, plus explicit
  ``x_p50``/``x_p90``/``x_p95``/``x_p99`` gauges (scrapers should not
  have to re-derive quantiles from geometric buckets);
* fired alerts -> an ``obs_alerts_fired`` counter labelled by rule.

Metric names are sanitized to the OpenMetrics grammar (dots become
underscores); label values are escaped per the spec.  The output ends
with the mandatory ``# EOF``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable

__all__ = ["render_openmetrics", "metric_name", "escape_label_value"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize a dotted event name into an OpenMetrics metric name."""
    out = _NAME_BAD_CHARS.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def escape_label_value(value: Any) -> str:
    """Escape a label value per the OpenMetrics text grammar."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: dict[str, Any], extra: dict[str, Any] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{metric_name(str(k))}="{escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _num(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def _counter_block(entries: list[dict], name: str) -> list[str]:
    lines = [f"# TYPE {name} counter"]
    for e in entries:
        lines.append(
            f"{name}_total{_labels(e.get('labels', {}))} {_num(e['total'])}"
        )
    rate_lines: list[str] = []
    for e in entries:
        for window, rate in sorted(e.get("rates", {}).items()):
            rate_lines.append(
                f"{name}_rate"
                f"{_labels(e.get('labels', {}), {'window': window})} "
                f"{_num(rate)}"
            )
    if rate_lines:
        lines.append(f"# TYPE {name}_rate gauge")
        lines.extend(rate_lines)
    return lines


def _histogram_block(entries: list[dict], name: str) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    for e in entries:
        labels = e.get("labels", {})
        cumulative = 0.0
        for lo, hi, n in e.get("buckets", ()):
            cumulative += n
            lines.append(
                f"{name}_bucket{_labels(labels, {'le': _num(hi)})} "
                f"{_num(cumulative)}"
            )
        lines.append(
            f"{name}_bucket{_labels(labels, {'le': '+Inf'})} "
            f"{_num(e['count'])}"
        )
        lines.append(f"{name}_sum{_labels(labels)} {_num(e['sum'])}")
        lines.append(f"{name}_count{_labels(labels)} {_num(e['count'])}")
    for q in (50, 90, 95, 99):
        key = f"p{q}"
        q_lines = [
            f"{name}_{key}{_labels(e.get('labels', {}))} {_num(e[key])}"
            for e in entries
            if key in e
        ]
        if q_lines:
            lines.append(f"# TYPE {name}_{key} gauge")
            lines.extend(q_lines)
    return lines


def _gauge_block(entries: list[dict], name: str) -> list[str]:
    lines = [f"# TYPE {name} gauge"]
    for e in entries:
        lines.append(
            f"{name}{_labels(e.get('labels', {}))} {_num(e['value'])}"
        )
    return lines


def _group_by_name(entries: Iterable[dict]) -> dict[str, list[dict]]:
    groups: dict[str, list[dict]] = {}
    for e in entries:
        groups.setdefault(metric_name(e["name"]), []).append(e)
    return groups


def render_openmetrics(snapshot: dict) -> str:
    """The whole snapshot as OpenMetrics text (ends with ``# EOF``)."""
    lines: list[str] = []
    if "ts" in snapshot:
        lines.append("# TYPE obs_snapshot_timestamp_seconds gauge")
        lines.append(
            f"obs_snapshot_timestamp_seconds {_num(snapshot['ts'])}"
        )
    if "uptime_s" in snapshot:
        lines.append("# TYPE obs_uptime_seconds gauge")
        lines.append(f"obs_uptime_seconds {_num(snapshot['uptime_s'])}")
    for name, entries in sorted(
        _group_by_name(snapshot.get("counters", ())).items()
    ):
        lines.extend(_counter_block(entries, name))
    for name, entries in sorted(
        _group_by_name(snapshot.get("gauges", ())).items()
    ):
        lines.extend(_gauge_block(entries, name))
    for name, entries in sorted(
        _group_by_name(snapshot.get("histograms", ())).items()
    ):
        lines.extend(_histogram_block(entries, name))
    alerts = snapshot.get("alerts", ())
    if alerts:
        by_rule: dict[str, int] = {}
        for a in alerts:
            by_rule[a["rule"]] = by_rule.get(a["rule"], 0) + 1
        lines.append("# TYPE obs_alerts_fired counter")
        for rule, n in sorted(by_rule.items()):
            lines.append(
                f"obs_alerts_fired_total{_labels({'rule': rule})} {n}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
