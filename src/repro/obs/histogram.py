"""Log-bucketed streaming histogram: mergeable, bounded-error percentiles.

The live-observability counterpart to a span trace: instead of keeping
every chunk latency (unbounded memory, post-hoc percentiles), each
observation lands in a geometric bucket and the histogram keeps only
``{bucket index: count}``.  Properties the rest of :mod:`repro.obs`
relies on:

* **Bounded relative error.**  Bucket *i* covers
  ``[min_value * growth**i, min_value * growth**(i+1))``; a percentile
  is estimated as the geometric midpoint of the bucket holding its
  rank, so the estimate and the true sample value share a bucket and
  the relative error is at most ``sqrt(growth) - 1`` (~9.1% at the
  default ``growth = 2**0.25``).  ``min``/``max`` are tracked exactly
  and clamp the estimate, so p0/p100 are exact.
* **Mergeable.**  Two histograms with the same bucketing merge by
  adding counts -- merge is associative and commutative, so per-thread
  shards can be combined in any order and equal the histogram of the
  concatenated stream (pinned by ``tests/obs/test_histogram.py``).
* **Cheap.**  One ``log`` and one dict increment per observation under
  a lock; memory is O(occupied buckets), ~100 buckets per four decades
  at the default growth.

Non-positive observations (a latency can be measured as exactly 0.0 on
a coarse clock) land in a dedicated zero bucket below ``min_value``.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = [
    "StreamingHistogram",
    "percentile_from_buckets",
    "DEFAULT_GROWTH",
    "DEFAULT_MIN_VALUE",
]

#: Default bucket growth factor: four buckets per octave (~9.1% max
#: relative percentile error from the geometric-midpoint estimator).
DEFAULT_GROWTH = 2.0 ** 0.25

#: Smallest distinctly-bucketed value (1 ns as seconds); anything at or
#: below it shares the zero/underflow bucket.
DEFAULT_MIN_VALUE = 1e-9


def percentile_from_buckets(
    buckets: Iterable[tuple[float, float, float]],
    count: float,
    q: float,
    *,
    lo_clamp: float = 0.0,
    hi_clamp: float = math.inf,
) -> float:
    """Nearest-rank percentile from ``(lo, hi, count)`` bucket triples.

    *buckets* must be sorted by lower bound and non-cumulative; *count*
    is the total observation count.  Shared by
    :meth:`StreamingHistogram.percentile` and the rule engine's
    merged-across-labels evaluation, so both agree bit-for-bit.
    """
    if count <= 0:
        raise ValueError("percentile of an empty histogram")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    # The extremes are tracked exactly by the clamps; return them
    # directly so p0/p100 carry no bucket error at all.
    if q == 0.0:
        return lo_clamp
    if q == 100.0 and math.isfinite(hi_clamp):
        return hi_clamp
    rank = max(1.0, math.ceil(q / 100.0 * count))
    seen = 0.0
    estimate = lo_clamp
    for lo, hi, n in buckets:
        if n <= 0:
            continue
        seen += n
        if seen >= rank:
            if lo <= 0.0:
                estimate = 0.0
            else:
                estimate = math.sqrt(lo * hi)
            break
    else:
        estimate = hi_clamp
    return min(max(estimate, lo_clamp), hi_clamp)


class StreamingHistogram:
    """Thread-safe geometric-bucket histogram of non-negative values.

    Parameters
    ----------
    growth:
        Bucket width ratio (> 1).  Smaller = tighter percentile error,
        more buckets.
    min_value:
        Lower edge of bucket 0; observations at or below it count into
        the zero bucket (reported as 0.0 by percentiles).
    """

    __slots__ = (
        "growth",
        "min_value",
        "_log_growth",
        "_counts",
        "zero_count",
        "count",
        "sum",
        "min",
        "max",
        "_lock",
    )

    def __init__(
        self,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        self._counts: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def _index_of(self, value: float) -> int:
        return int(math.floor(math.log(value / self.min_value) / self._log_growth))

    def observe(self, value: float) -> None:
        """Record one observation (non-finite values are rejected)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"cannot observe non-finite value {value!r}")
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if value <= self.min_value:
                self.zero_count += 1
            else:
                idx = self._index_of(value)
                self._counts[idx] = self._counts.get(idx, 0) + 1

    # -- merging -----------------------------------------------------------
    def _compatible(self, other: "StreamingHistogram") -> bool:
        return (
            self.growth == other.growth and self.min_value == other.min_value
        )

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold *other*'s counts into this histogram (returns self)."""
        if not self._compatible(other):
            raise ValueError(
                "cannot merge histograms with different bucketing: "
                f"growth {self.growth} vs {other.growth}, "
                f"min_value {self.min_value} vs {other.min_value}"
            )
        # Snapshot other under its lock, then apply under ours (two
        # short critical sections; no lock ordering to deadlock on).
        with other._lock:
            counts = dict(other._counts)
            zero, cnt = other.zero_count, other.count
            total, mn, mx = other.sum, other.min, other.max
        with self._lock:
            for idx, n in counts.items():
                self._counts[idx] = self._counts.get(idx, 0) + n
            self.zero_count += zero
            self.count += cnt
            self.sum += total
            self.min = min(self.min, mn)
            self.max = max(self.max, mx)
        return self

    @classmethod
    def merged(
        cls, shards: Iterable["StreamingHistogram"]
    ) -> "StreamingHistogram":
        """A fresh histogram holding the union of all *shards*."""
        out: StreamingHistogram | None = None
        for shard in shards:
            if out is None:
                out = cls(shard.growth, shard.min_value)
            out.merge(shard)
        if out is None:
            raise ValueError("merged() needs at least one shard")
        return out

    # -- cross-process shard codec -----------------------------------------
    def to_shard(self) -> dict:
        """JSON-safe dict carrying the full merge state of this histogram.

        The payload crosses process boundaries (pickled in a worker
        status dict or serialized to JSONL), so it holds only plain
        types: ``min``/``max`` become ``None`` when empty instead of
        the in-memory ``inf`` sentinels, and the sparse bucket counts
        become ``[index, count]`` pairs.
        """
        with self._lock:
            return {
                "growth": self.growth,
                "min_value": self.min_value,
                "counts": sorted([idx, n] for idx, n in self._counts.items()),
                "zero_count": self.zero_count,
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            }

    @classmethod
    def from_shard(cls, shard: dict) -> "StreamingHistogram":
        """Rebuild a histogram from :meth:`to_shard` output.

        ``merge(from_shard(a), from_shard(b))`` equals the histogram of
        the concatenated sample streams -- the property the parent
        relies on when folding worker shards (pinned by
        ``tests/obs/test_xproc.py``).
        """
        hist = cls(float(shard["growth"]), float(shard["min_value"]))
        for idx, n in shard.get("counts", ()):
            hist._counts[int(idx)] = int(n)
        hist.zero_count = int(shard.get("zero_count", 0))
        hist.count = int(shard.get("count", 0))
        hist.sum = float(shard.get("sum", 0.0))
        mn = shard.get("min")
        mx = shard.get("max")
        hist.min = math.inf if mn is None else float(mn)
        hist.max = -math.inf if mx is None else float(mx)
        return hist

    # -- inspection --------------------------------------------------------
    def bucket_bounds(self, idx: int) -> tuple[float, float]:
        """The ``[lo, hi)`` value range of bucket *idx*."""
        lo = self.min_value * self.growth**idx
        return lo, lo * self.growth

    def buckets(self) -> list[tuple[float, float, int]]:
        """Sorted non-cumulative ``(lo, hi, count)`` triples (zero first)."""
        with self._lock:
            counts = sorted(self._counts.items())
            zero = self.zero_count
        out: list[tuple[float, float, int]] = []
        if zero:
            out.append((0.0, self.min_value, zero))
        for idx, n in counts:
            lo, hi = self.bucket_bounds(idx)
            out.append((lo, hi, n))
        return out

    def percentile(self, q: float) -> float:
        """Estimated *q*-th percentile (error bound in the module doc)."""
        return percentile_from_buckets(
            self.buckets(),
            self.count,
            q,
            lo_clamp=self.min if self.count else 0.0,
            hi_clamp=self.max if self.count else 0.0,
        )

    def snapshot(self) -> dict:
        """Plain-data view: stats, quantiles and bucket triples."""
        with self._lock:
            count, total = self.count, self.sum
            mn = self.min if self.count else 0.0
            mx = self.max if self.count else 0.0
        snap = {
            "count": count,
            "sum": total,
            "min": mn,
            "max": mx,
            "growth": self.growth,
            "min_value": self.min_value,
            "buckets": [list(b) for b in self.buckets()],
        }
        if count:
            for q in (50, 90, 95, 99):
                snap[f"p{q}"] = self.percentile(q)
        return snap

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"StreamingHistogram(count={self.count}, min={self.min!r}, "
            f"max={self.max!r}, buckets={len(self._counts)})"
        )
