"""Live observability runtime: the streaming counterpart to telemetry.

:mod:`repro.telemetry` records an *event stream* for post-hoc analysis;
this module aggregates *while the system runs*: histograms of chunk
latencies, sliding-window rates of the fallback/retry/cache counters,
process gauges from the resource monitor, and SLO rules evaluated on
point-in-time snapshots.  Its contract mirrors telemetry's exactly:

* **Disabled by default.**  The module-level ``_runtime`` is ``None``
  and every entry point (:func:`observe`, :func:`mark`,
  :func:`set_gauge`) is a single attribute load plus ``is None`` test,
  pinned by ``tests/telemetry/test_overhead.py`` -- hot paths pay
  nothing, and results are bit-identical either way.
* **Scoped enabling.**  :func:`configure` installs a fresh
  :class:`ObsRuntime`; :func:`set_runtime` swaps an explicit one in
  and returns the previous (tests, the bench CLI's ``--obs``).
* **Telemetry is the event sink.**  Fired alerts and periodic
  snapshots are emitted as ``obs.alert`` / ``obs.snapshot`` counter
  events through :mod:`repro.telemetry.core` (no-ops when tracing is
  off), so the JSONL trace, the bench summary and the HTML dashboard
  all see what the live engine saw.

Metric keys are ``(name, sorted labels)`` exactly like the telemetry
collector's, so ``kernel.fallback{format=csr-du}`` aggregates the same
way in both worlds.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Iterable

from repro.obs.histogram import DEFAULT_GROWTH, StreamingHistogram
from repro.obs.openmetrics import render_openmetrics
from repro.obs.profiler import DEFAULT_HZ, SamplingProfiler
from repro.obs.resource import DEFAULT_INTERVAL_S, ResourceMonitor
from repro.obs.rules import Alert, Rule, RuleEngine, default_rules
from repro.obs.window import WindowedCounter
from repro.telemetry import core as telemetry

__all__ = [
    "ObsRuntime",
    "configure",
    "get_runtime",
    "set_runtime",
    "enabled",
    "observe",
    "mark",
    "set_gauge",
]

#: Rate windows always present in snapshots (rules add their own).
DEFAULT_WINDOWS = (10.0, 60.0)

#: Fired alerts kept in the runtime's bounded log.
MAX_ALERTS = 256

_KeyT = tuple[str, tuple[tuple[str, Any], ...]]


def _key(name: str, labels: dict[str, Any]) -> _KeyT:
    return (name, tuple(sorted(labels.items())) if labels else ())


class _SnapshotFlusher(threading.Thread):
    """Periodic rule evaluation + snapshot flush (the ``--obs-interval``
    machinery); writes the OpenMetrics file in place on every tick so a
    scraper tailing the path always sees a complete exposition."""

    def __init__(
        self, runtime: "ObsRuntime", interval_s: float, path: str | None
    ) -> None:
        super().__init__(name="obs-flusher", daemon=True)
        self.runtime = runtime
        self.interval_s = interval_s
        self.path = path
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.runtime.flush_snapshot(self.path)

    def stop(self) -> None:
        self._stop.set()
        self.join(timeout=5.0)


class ObsRuntime:
    """Aggregating metric runtime: histograms, windowed counters,
    gauges, rules, and the optional monitor/profiler/flusher threads.

    Parameters
    ----------
    rules:
        SLO rules (Rule objects or rule-syntax strings); ``None``
        installs :func:`repro.obs.rules.default_rules`, ``()`` none.
    histogram_growth:
        Bucket growth factor for every histogram this runtime creates.
    clock:
        Monotonic clock shared by all windowed counters (injectable
        for deterministic tests).
    """

    def __init__(
        self,
        *,
        rules: Iterable[Rule | str] | None = None,
        histogram_growth: float = DEFAULT_GROWTH,
        clock=time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._histogram_growth = histogram_growth
        self._histograms: dict[_KeyT, StreamingHistogram] = {}
        self._counters: dict[_KeyT, WindowedCounter] = {}
        self._gauges: dict[_KeyT, float] = {}
        self.engine = RuleEngine(
            default_rules() if rules is None else rules
        )
        self.alerts: deque[Alert] = deque(maxlen=MAX_ALERTS)
        self.created_at = time.time()
        self._created_mono = clock()
        self.monitor: ResourceMonitor | None = None
        self.profiler: SamplingProfiler | None = None
        self._flusher: _SnapshotFlusher | None = None

    # -- recording ---------------------------------------------------------
    def observe(self, name: str, value: float, **labels) -> None:
        """Record *value* into the histogram ``name`` + *labels*."""
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            with self._lock:
                hist = self._histograms.setdefault(
                    key, StreamingHistogram(growth=self._histogram_growth)
                )
        hist.observe(value)

    def mark(self, name: str, value: float = 1.0, **labels) -> None:
        """Accumulate *value* onto the windowed counter ``name`` + *labels*."""
        key = _key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    key, WindowedCounter(clock=self._clock)
                )
        counter.add(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Record the current *value* of ``name`` (last write wins)."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    # -- cross-process shards ----------------------------------------------
    @property
    def histogram_growth(self) -> float:
        """Bucket growth factor of every histogram this runtime creates.

        Worker-side runtimes must be built with the same growth or the
        parent cannot merge their shards (``StreamingHistogram.merge``
        rejects mismatched bucketing).
        """
        return self._histogram_growth

    def to_shards(self) -> dict:
        """JSON-safe dump of all histograms, counter totals and gauges.

        The payload format is what :meth:`merge_shards` accepts; a
        worker process ships it back in its status dict so the parent
        runtime sees worker-side metrics as if recorded locally.
        """
        with self._lock:
            histograms = list(self._histograms.items())
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
        return {
            "histograms": [
                {"name": name, "labels": dict(labels), "shard": h.to_shard()}
                for (name, labels), h in histograms
            ],
            "counters": [
                {"name": name, "labels": dict(labels), "shard": c.to_shard()}
                for (name, labels), c in counters
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in gauges
            ],
        }

    def merge_shards(self, payload: dict) -> None:
        """Fold a :meth:`to_shards` payload into this runtime.

        Histograms merge by bucket-count addition (merge-of-shards ==
        histogram-of-concatenation), counters by adding the shard's
        total at the merge instant (rates lag by one flush -- see
        ``DESIGN.md`` 4.7), gauges last-write-wins.
        """
        for item in payload.get("histograms", ()):
            key = _key(item["name"], item["labels"])
            shard = StreamingHistogram.from_shard(item["shard"])
            hist = self._histograms.get(key)
            if hist is None:
                with self._lock:
                    hist = self._histograms.setdefault(
                        key,
                        StreamingHistogram(
                            growth=shard.growth, min_value=shard.min_value
                        ),
                    )
            hist.merge(shard)
        for item in payload.get("counters", ()):
            key = _key(item["name"], item["labels"])
            counter = self._counters.get(key)
            if counter is None:
                with self._lock:
                    counter = self._counters.setdefault(
                        key, WindowedCounter(clock=self._clock)
                    )
            counter.merge_shard(item["shard"])
        for item in payload.get("gauges", ()):
            with self._lock:
                self._gauges[_key(item["name"], item["labels"])] = float(
                    item["value"]
                )

    # -- snapshots ---------------------------------------------------------
    def _rate_windows(self) -> tuple[float, ...]:
        windows = set(DEFAULT_WINDOWS)
        for rule in self.engine.rules:
            if rule.kind == "rate" and rule.window_s:
                windows.add(float(rule.window_s))
        return tuple(sorted(windows))

    def snapshot(self) -> dict:
        """Structured point-in-time state (plain data, JSON-safe)."""
        windows = self._rate_windows()
        with self._lock:
            histograms = list(self._histograms.items())
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
        # Label values may mix types (thread ints, format strings), so
        # order by the stringified key, never by comparing values.
        by_key = lambda kv: (kv[0][0], str(kv[0][1]))  # noqa: E731
        snap: dict[str, Any] = {
            "ts": time.time(),
            "uptime_s": self._clock() - self._created_mono,
            "histograms": [
                {"name": name, "labels": dict(labels), **hist.snapshot()}
                for (name, labels), hist in sorted(histograms, key=by_key)
            ],
            "counters": [
                {
                    "name": name,
                    "labels": dict(labels),
                    **counter.snapshot(windows),
                }
                for (name, labels), counter in sorted(counters, key=by_key)
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(gauges, key=by_key)
            ],
            "alerts": [a.as_dict() for a in self.alerts],
            "rules": [
                {"name": r.name, "expr": r.expr} for r in self.engine.rules
            ],
        }
        if self.profiler is not None:
            snap["profiler"] = self.profiler.snapshot()
        return snap

    def render_openmetrics(self) -> str:
        """The current snapshot as OpenMetrics text."""
        return render_openmetrics(self.snapshot())

    # -- rules -------------------------------------------------------------
    def evaluate_rules(self, now: float | None = None) -> list[Alert]:
        """Evaluate every rule on a fresh snapshot; log + emit alerts."""
        fired = self.engine.evaluate(self.snapshot(), now)
        for alert in fired:
            self.alerts.append(alert)
            telemetry.count(
                "obs.alert",
                1,
                extra={
                    "expr": alert.expr,
                    "metric": alert.metric,
                    "value": alert.value,
                    "threshold": alert.threshold,
                },
                rule=alert.rule,
            )
        return fired

    def flush_snapshot(self, path: str | None = None) -> dict:
        """Evaluate rules, take a snapshot, optionally write OpenMetrics.

        One ``obs.snapshot`` telemetry counter event records the flush
        (sizes only -- the full state lives in the OpenMetrics file,
        not the trace).
        """
        self.evaluate_rules()
        snap = self.snapshot()
        telemetry.count(
            "obs.snapshot",
            1,
            extra={
                "histograms": len(snap["histograms"]),
                "counters": len(snap["counters"]),
                "gauges": len(snap["gauges"]),
                "alerts": len(snap["alerts"]),
            },
        )
        if path:
            text = render_openmetrics(snap)
            tmp = f"{path}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)
            import os

            os.replace(tmp, path)
        return snap

    def write_snapshot_json(self, path: str) -> dict:
        """Write :meth:`snapshot` as JSON (machine-readable sibling)."""
        snap = self.snapshot()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=1, sort_keys=True)
        return snap

    # -- background threads ------------------------------------------------
    def start_resource_monitor(
        self, interval_s: float = DEFAULT_INTERVAL_S
    ) -> ResourceMonitor:
        if self.monitor is None:
            self.monitor = ResourceMonitor(self, interval_s).start()
        return self.monitor

    def start_profiler(self, hz: float = DEFAULT_HZ) -> SamplingProfiler:
        if self.profiler is None:
            self.profiler = SamplingProfiler(hz).start()
        return self.profiler

    def start_flusher(
        self, interval_s: float, path: str | None = None
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if self._flusher is None:
            self._flusher = _SnapshotFlusher(self, interval_s, path)
            self._flusher.start()

    def close(self) -> None:
        """Stop every background thread (idempotent)."""
        if self._flusher is not None:
            self._flusher.stop()
            self._flusher = None
        if self.monitor is not None:
            self.monitor.stop()
        if self.profiler is not None:
            self.profiler.stop()

    def __enter__(self) -> "ObsRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Module-level surface: one attribute check when disabled.
# ---------------------------------------------------------------------------

_runtime: ObsRuntime | None = None


def configure(enabled: bool = True, **kwargs) -> ObsRuntime | None:
    """Install a fresh :class:`ObsRuntime` (or disable observability).

    Returns the new runtime (``None`` when disabling).  The previous
    runtime's background threads are stopped.
    """
    global _runtime
    if _runtime is not None:
        _runtime.close()
    _runtime = ObsRuntime(**kwargs) if enabled else None
    return _runtime


def get_runtime() -> ObsRuntime | None:
    """The active runtime, or ``None`` when observability is disabled."""
    return _runtime


def set_runtime(runtime: ObsRuntime | None) -> ObsRuntime | None:
    """Swap the active runtime; returns the previous one (scoped use)."""
    global _runtime
    prev = _runtime
    _runtime = runtime
    return prev


def enabled() -> bool:
    """True when a runtime is installed."""
    return _runtime is not None


def observe(name: str, value: float, **labels) -> None:
    """Histogram observation on the active runtime (no-op if disabled)."""
    r = _runtime
    if r is not None:
        r.observe(name, value, **labels)


def mark(name: str, value: float = 1.0, **labels) -> None:
    """Windowed counter increment on the active runtime (no-op if disabled)."""
    r = _runtime
    if r is not None:
        r.mark(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Gauge write on the active runtime (no-op if disabled)."""
    r = _runtime
    if r is not None:
        r.set_gauge(name, value, **labels)
