"""Sliding-window rate aggregation over counter increments.

A :class:`WindowedCounter` is the live view of one telemetry counter
(``kernel.fallback``, ``executor.retry``, ``convert.cache.hit`` ...):
it keeps the all-time total *and* a ring of coarse time buckets so
"events per second over the last N seconds" is answerable at any
moment without replaying an event stream.

The ring is bounded: increments older than ``horizon_s`` are dropped
on every touch, so a counter costs O(horizon / resolution) floats no
matter how long the process runs.  The clock is injectable (monotonic
by default) so the rule-engine tests can drive time deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["WindowedCounter", "DEFAULT_HORIZON_S", "DEFAULT_RESOLUTION_S"]

#: How far back a window may reach (longest supported rate window).
DEFAULT_HORIZON_S = 120.0

#: Bucket width: rates are accurate to one bucket edge.
DEFAULT_RESOLUTION_S = 1.0


class WindowedCounter:
    """All-time total plus a bounded ring of recent increments.

    Parameters
    ----------
    horizon_s:
        Maximum lookback; ``rate(window_s)`` with a larger window is
        clamped to it.
    resolution_s:
        Ring bucket width.  Increments within one bucket share a
        timestamp, so a window boundary can be off by at most one
        resolution step.
    clock:
        0-argument callable returning seconds (monotonic by default).
    """

    __slots__ = ("horizon_s", "resolution_s", "_clock", "total", "_ring", "_lock")

    def __init__(
        self,
        horizon_s: float = DEFAULT_HORIZON_S,
        resolution_s: float = DEFAULT_RESOLUTION_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if horizon_s <= 0 or resolution_s <= 0:
            raise ValueError(
                f"horizon_s and resolution_s must be positive, got "
                f"{horizon_s}, {resolution_s}"
            )
        if resolution_s > horizon_s:
            raise ValueError(
                f"resolution_s {resolution_s} exceeds horizon_s {horizon_s}"
            )
        self.horizon_s = float(horizon_s)
        self.resolution_s = float(resolution_s)
        self._clock = clock
        self.total = 0.0
        #: (bucket id, accumulated value), oldest first.
        self._ring: deque[tuple[int, float]] = deque()
        self._lock = threading.Lock()

    def _bucket(self, now: float) -> int:
        return int(now / self.resolution_s)

    def _evict(self, now: float) -> None:
        oldest_keep = self._bucket(now - self.horizon_s)
        while self._ring and self._ring[0][0] < oldest_keep:
            self._ring.popleft()

    def add(self, value: float = 1.0, now: float | None = None) -> None:
        """Accumulate *value* at the current (or given) time."""
        if now is None:
            now = self._clock()
        bucket = self._bucket(now)
        with self._lock:
            self.total += value
            if self._ring and self._ring[-1][0] == bucket:
                bid, acc = self._ring[-1]
                self._ring[-1] = (bid, acc + value)
            else:
                self._ring.append((bucket, value))
            self._evict(now)

    def sum_over(self, window_s: float, now: float | None = None) -> float:
        """Total value accumulated within the trailing *window_s*."""
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        window_s = min(window_s, self.horizon_s)
        if now is None:
            now = self._clock()
        first = self._bucket(now - window_s)
        with self._lock:
            self._evict(now)
            return sum(v for b, v in self._ring if b >= first)

    def rate(self, window_s: float, now: float | None = None) -> float:
        """Mean events (value) per second over the trailing *window_s*."""
        window_s = min(window_s, self.horizon_s)
        return self.sum_over(window_s, now) / window_s

    # -- cross-process shard codec -----------------------------------------
    def to_shard(self) -> dict:
        """JSON-safe dict carrying this counter's mergeable state.

        Only the all-time total crosses the process boundary: ring
        buckets are stamped with the *worker's* monotonic clock, which
        shares no epoch with the parent's ring, so shipping them would
        splice two unrelated timelines.  See ``DESIGN.md`` section 4.7
        for the resulting rate semantics.
        """
        with self._lock:
            return {
                "total": self.total,
                "horizon_s": self.horizon_s,
                "resolution_s": self.resolution_s,
            }

    def merge_shard(self, shard: dict, now: float | None = None) -> None:
        """Fold a :meth:`to_shard` payload into this counter.

        The shard's total lands in the ring at the merge instant, so
        sliding-window rates see worker increments when the parent
        merges them (once per chunk completion), not when the worker
        recorded them -- rates lag by at most one chunk duration, while
        ``total`` stays exact.
        """
        value = float(shard["total"])
        if value:
            self.add(value, now=now)

    def snapshot(self, windows: tuple[float, ...] = (10.0, 60.0)) -> dict:
        """Plain-data view: total plus rates for the given windows."""
        now = self._clock()
        return {
            "total": self.total,
            "rates": {
                f"{w:g}s": self.rate(w, now) for w in windows
            },
        }

    def __repr__(self) -> str:
        return f"WindowedCounter(total={self.total}, buckets={len(self._ring)})"
