"""Backend degradation ladder: keep answering, more slowly, on failure.

The guarded kernel chain (PR 5) established the pattern at the kernel
tier: when the fast path fails, fall back to a slower bit-identical
one and record the transition.  This module lifts that pattern to the
**backend axis**.  A :class:`ResilientExecutor` wraps the whole
``make_executor`` configuration space as an explicit ladder::

    (process, mmap) -> (process, mem) -> (thread, mem) -> (serial, mem)

Each rung is guarded by its own circuit breaker
(:class:`~repro.resilience.breaker.BreakerBoard`), so a rung that
keeps failing is skipped without being re-attempted every call, and —
because open breakers cool down into half-open — a recovered upper
rung is automatically re-probed and re-adopted.  Every transition is
emitted as ``resilience.degrade`` telemetry and a
``resilience.degrade.total`` obs counter (the default SLO rule set
alerts on it), so degradation is always *visible*: the system never
silently runs slower.

What degrades and what doesn't:

* :class:`~repro.errors.ExecutionError`, :class:`~repro.errors.
  StorageError` and :class:`~repro.errors.BreakerOpenError` from a
  rung move the call down the ladder — a crashed pool, a torn shard
  file and an open shard breaker are all problems a simpler rung can
  sidestep.
* :class:`~repro.errors.DeadlineExceeded` propagates immediately: a
  spent wall-clock budget cannot be bought back by a slower backend.
* Everything else (``TypeError``, ``MemoryError``, bad input shapes)
  propagates too — the ladder absorbs *infrastructure* failures, not
  caller bugs.

The bottom rung, :class:`SerialSpMV`, is deliberately boring: one
in-process cached encode driven through the PR-5
:class:`~repro.robust.guard.GuardedKernel` tier chain.  It shares the
conversion-cache key of a 1-thread executor's single chunk, so landing
on it after a degradation usually costs no re-encode at all.
"""

from __future__ import annotations

import numpy as np

from repro.compress.encode_cache import DEFAULT_CACHE
from repro.errors import (
    BreakerOpenError,
    DeadlineExceeded,
    ExecutionError,
    FormatError,
    PartitionError,
    StorageError,
)
from repro.formats.base import check_out_aliasing
from repro.formats.conversions import to_csr
from repro.obs import core as obs
from repro.resilience.breaker import BreakerBoard
from repro.resilience.policy import Deadline, RetryPolicy
from repro.robust.guard import GuardedKernel
from repro.telemetry import core as telemetry

__all__ = ["BACKEND_LADDER", "ResilientExecutor", "SerialSpMV", "ladder_for"]

#: Backend rungs from most parallel to most boring.
BACKEND_LADDER = ("process", "thread", "serial")

#: Failures a rung transition may absorb (DeadlineExceeded is an
#: ExecutionError subclass and is re-raised explicitly before this
#: tuple is consulted).
_DEGRADABLE = (ExecutionError, StorageError, BreakerOpenError)


def ladder_for(backend: str, storage: str) -> tuple[tuple[str, str], ...]:
    """The degradation rungs starting from (*backend*, *storage*).

    Storage degrades first (``mmap -> mem``: drop the disk dependency
    before giving up parallelism) and stays degraded — a lower rung
    never re-introduces the storage axis that just failed.  The final
    rung is always ``("serial", "mem")``.
    """
    if backend not in BACKEND_LADDER:
        raise PartitionError(
            f"unknown backend {backend!r}; choose from {BACKEND_LADDER}"
        )
    rungs: list[tuple[str, str]] = []
    start = BACKEND_LADDER.index(backend)
    for b in BACKEND_LADDER[start:]:
        if b == "serial":
            rungs.append((b, "mem"))
            continue
        if storage == "mmap" and b == backend:
            rungs.append((b, "mmap"))
        rungs.append((b, "mem"))
    return tuple(rungs)


class SerialSpMV:
    """The ladder's bottom rung: single-threaded guarded SpMV.

    Executor-shaped (``__call__(x, out=)``, ``close()``, context
    manager) so the ladder and the bench harness treat it uniformly.
    The matrix is one cached encode over the full row range — the same
    cache key a 1-thread executor's chunk uses — and every multiply
    runs through the :class:`~repro.robust.guard.GuardedKernel` tier
    chain, so even this rung degrades gracefully *within* itself.
    """

    backend = "serial"
    storage = "mem"
    nthreads = 1

    def __init__(
        self,
        matrix,
        *,
        format_name: str = "csr",
        convert_cache=None,
        **format_kwargs,
    ):
        csr = to_csr(matrix)
        self.nrows, self.ncols = csr.shape
        self._format_name = format_name
        cache = DEFAULT_CACHE if convert_cache is None else convert_cache
        self.chunk = cache.get_or_convert(
            csr, format_name, rows=(0, self.nrows), **format_kwargs
        )
        self._guard = GuardedKernel(self.chunk.name)

    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(
                f"x has shape {x.shape}, expected ({self.ncols},)"
            )
        y = self._guard(self.chunk, x)
        if out is None:
            return y
        check_out_aliasing(out, x)
        np.copyto(out, y)
        return out

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialSpMV":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ResilientExecutor:
    """``make_executor`` with an explicit degradation ladder around it.

    Parameters mirror :func:`~repro.parallel.backends.make_executor`
    (*backend*/*storage* name the **top** rung) plus the resilience
    knobs: *retry_policy* and *deadline* are forwarded to each rung's
    executor, and *breaker_threshold*/*breaker_cooldown_s* configure
    the per-rung breakers (one consecutive-failure gate per rung; an
    open rung is skipped until its cooldown admits a half-open probe,
    which is how the ladder climbs *back up* after recovery).

    Built rung executors are cached; a rung that fails is closed and
    evicted so its next probe starts from clean state (fresh pool,
    fresh shard attachments).
    """

    def __init__(
        self,
        matrix,
        nworkers=None,
        *,
        backend: str = "process",
        storage: str = "mem",
        format_name: str = "csr",
        directory: str | None = None,
        convert_cache=None,
        chunk_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        deadline: Deadline | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        clock=None,
        **format_kwargs,
    ):
        self._matrix = matrix
        self._nworkers = nworkers
        self._format_name = format_name
        self._directory = directory
        self._convert_cache = convert_cache
        self._chunk_timeout = chunk_timeout
        self._retry_policy = retry_policy
        self._deadline = deadline
        self._format_kwargs = dict(format_kwargs)
        self.ladder = ladder_for(backend, storage)
        kwargs = {
            "failure_threshold": breaker_threshold,
            "cooldown_s": breaker_cooldown_s,
        }
        if clock is not None:
            kwargs["clock"] = clock
        self.breakers = BreakerBoard(**kwargs)
        self._executors: dict[tuple[str, str], object] = {}
        #: Rung of the last successful call (observability, reporting).
        self.active_rung: tuple[str, str] = self.ladder[0]
        self._closed = False

    # -- rung management ---------------------------------------------------
    @property
    def backend(self) -> str:
        return self.active_rung[0]

    @property
    def storage(self) -> str:
        return self.active_rung[1]

    def _rung_key(self, rung: tuple[str, str]) -> str:
        return f"backend:{rung[0]}:{rung[1]}"

    def _executor_for(self, rung: tuple[str, str]):
        existing = self._executors.get(rung)
        if existing is not None:
            return existing
        b, s = rung
        if b == "serial":
            built = SerialSpMV(
                self._matrix,
                format_name=self._format_name,
                convert_cache=self._convert_cache,
                **self._format_kwargs,
            )
        else:
            # Imported lazily: backends.py imports this module for its
            # degrade= path, so a top-level import would be circular.
            from repro.parallel.backends import make_executor

            built = make_executor(
                self._matrix,
                self._nworkers,
                backend=b,
                storage=s,
                format_name=self._format_name,
                directory=self._directory if s == "mmap" else None,
                convert_cache=self._convert_cache,
                chunk_timeout=self._chunk_timeout,
                retry_policy=self._retry_policy,
                deadline=self._deadline,
                **self._format_kwargs,
            )
        self._executors[rung] = built
        return built

    def _evict(self, rung: tuple[str, str]) -> None:
        executor = self._executors.pop(rung, None)
        if executor is not None:
            try:
                executor.close()
            except Exception:
                pass

    def _emit_degrade(
        self,
        from_rung: tuple[str, str],
        to_rung: tuple[str, str],
        exc: BaseException,
    ) -> None:
        telemetry.count(
            "resilience.degrade",
            1,
            extra={
                "from_backend": from_rung[0],
                "from_storage": from_rung[1],
                "to_backend": to_rung[0],
                "to_storage": to_rung[1],
                "error": type(exc).__name__,
            },
            format=self._format_name,
        )
        # The obs counter is literally named resilience.degrade.total so
        # the stock SLO rule `resilience.degrade.total > 0` reads it.
        obs.mark(
            "resilience.degrade.total",
            1,
            backend=to_rung[0],
            storage=to_rung[1],
        )

    # -- the call ----------------------------------------------------------
    def __call__(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._closed:
            raise ExecutionError("executor is closed")
        last_exc: BaseException | None = None
        last_rung: tuple[str, str] | None = None
        for i, rung in enumerate(self.ladder):
            if self._deadline is not None:
                self._deadline.check("resilience.rung")
            breaker = self.breakers.get(self._rung_key(rung))
            if not breaker.allow():
                continue
            if last_rung is not None:
                # We got here because a higher rung just failed.
                self._emit_degrade(last_rung, rung, last_exc)
            try:
                executor = self._executor_for(rung)
                y = executor(x, out=out)
            except DeadlineExceeded:
                raise
            except _DEGRADABLE as exc:
                breaker.record_failure()
                self._evict(rung)
                last_exc = exc
                last_rung = rung
                continue
            breaker.record_success()
            self.active_rung = rung
            return y
        if last_exc is not None:
            raise ExecutionError(
                f"all rungs of the degradation ladder failed; last rung "
                f"{last_rung}: {type(last_exc).__name__}: {last_exc}",
                failures=getattr(last_exc, "failures", ()),
            ) from last_exc
        raise BreakerOpenError(
            "every rung's circuit breaker is open",
            key=self._rung_key(self.ladder[0]),
            retry_after_s=min(
                self.breakers.get(self._rung_key(r)).retry_after_s()
                for r in self.ladder
            ),
        )

    def close(self) -> None:
        self._closed = True
        for rung in list(self._executors):
            self._evict(rung)

    def __enter__(self) -> "ResilientExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
