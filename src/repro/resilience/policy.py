"""Declarative retry policies and wall-clock deadlines.

Before this module the runtime's recovery knobs were scattered: the
row thread executor hardcoded one cache-invalidating retry, the
column/block executors retried nothing, the process executor had its
own single rebuild+resubmit, and every executor took an independent
``chunk_timeout`` with no overall bound.  :class:`RetryPolicy` and
:class:`Deadline` replace those with two declarative objects that flow
from ``make_executor`` / ``streamed_spmv`` down to every per-chunk and
per-shard decision:

* :class:`RetryPolicy` -- how many attempts a unit of work gets
  (``max_attempts``), which **error classes** are worth retrying
  (``retry_on``, see :data:`ERROR_CLASSES`), how attempts are spaced
  (exponential backoff with *full jitter*: ``delay ~ U(0, min(cap,
  base * 2**(attempt-1)))``), and how many retries the whole run may
  spend in total (``budget`` -> one shared :class:`RetryBudget` per
  executor, so a systemic failure cannot multiply into an unbounded
  rebuild storm).
* :class:`Deadline` -- one wall-clock budget for a whole operation.
  ``deadline.cap(timeout)`` turns it into per-chunk wait bounds (the
  tighter of the local ``chunk_timeout`` and the time remaining), and
  ``deadline.check(label)`` raises a typed
  :class:`~repro.errors.DeadlineExceeded` at clean cut points (before
  a call, between streamed shards) instead of letting work run long.

Everything is deterministic under test: the backoff RNG is seeded per
policy/run, and the deadline clock is injectable.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceeded,
    EncodingError,
    FormatError,
    IntegrityError,
    PartitionError,
    StorageError,
)
from repro.obs import core as obs
from repro.telemetry import core as telemetry

__all__ = [
    "ERROR_CLASSES",
    "DEFAULT_RETRY_POLICY",
    "Deadline",
    "RetryBudget",
    "RetryPolicy",
    "classify_error",
]

#: Named error classes a policy can declare retryable.  ``decode`` is
#: the class the PR-5 executors already retried (possibly-stale cached
#: encodes: invalidate, rebuild, try again); ``storage`` covers shard
#: store/provider failures (a rebuild rewrites the backing bytes);
#: ``timeout`` is a worker that blew its chunk budget and ``worker`` a
#: process that died outright -- both usually better served by the
#: degradation ladder than by an in-place retry, so neither is in the
#: default ``retry_on``.
ERROR_CLASSES: dict[str, tuple[type[BaseException], ...]] = {
    "decode": (EncodingError, IntegrityError, FormatError),
    "storage": (StorageError,),
    "timeout": (TimeoutError,),
    "worker": (ConnectionError, BrokenPipeError, ProcessLookupError),
}


def classify_error(exc: BaseException) -> str | None:
    """The :data:`ERROR_CLASSES` name of *exc*, or ``None``.

    Classes are checked in a fixed order so an exception matching two
    (none do today) classifies deterministically.
    """
    for name in ("decode", "storage", "timeout", "worker"):
        if isinstance(exc, ERROR_CLASSES[name]):
            return name
    return None


class RetryBudget:
    """Thread-safe count of retries one run may still spend.

    Shared by every chunk of an executor (and across its calls), so a
    failure mode that touches all chunks at once -- a corrupted source,
    a dead disk -- stops rebuilding after ``limit`` attempts total
    instead of ``limit`` per chunk.  ``limit=None`` never exhausts.
    """

    def __init__(self, limit: int | None):
        if limit is not None and limit < 0:
            raise PartitionError(f"retry budget must be >= 0, got {limit}")
        self.limit = limit
        self._spent = 0
        self._lock = threading.Lock()

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> int | None:
        if self.limit is None:
            return None
        return max(0, self.limit - self._spent)

    def try_spend(self) -> bool:
        """Reserve one retry; False when the budget is exhausted."""
        with self._lock:
            if self.limit is not None and self._spent >= self.limit:
                return False
            self._spent += 1
            return True


class Deadline:
    """A wall-clock budget propagated down a call tree.

    Create with :meth:`after`; pass the *same* object to every layer of
    one logical operation (executor construction, per-chunk waits,
    streamed shards) so they all drain the one budget instead of each
    starting a fresh ``chunk_timeout``.
    """

    def __init__(self, seconds: float, *, clock=time.monotonic):
        if seconds <= 0:
            raise PartitionError(f"deadline must be positive, got {seconds}")
        self.budget_s = float(seconds)
        self._clock = clock
        self._expires_at = clock() + float(seconds)

    @classmethod
    def after(cls, seconds: float, *, clock=time.monotonic) -> "Deadline":
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def cap(self, timeout: float | None) -> float | None:
        """The tighter of *timeout* and the time remaining.

        ``None`` means "no local bound", so the deadline's remainder
        becomes the bound; an expired deadline returns a tiny positive
        wait rather than 0/negative (``future.result(timeout=0)``
        means poll-forever-zero semantics differ across versions).
        """
        rem = self.remaining()
        capped = rem if timeout is None else min(timeout, rem)
        return max(capped, 1e-3)

    def check(self, label: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired."""
        if self.expired():
            telemetry.count(
                "resilience.deadline.expired",
                1,
                extra={"budget_s": self.budget_s},
                label=label,
            )
            obs.mark("resilience.deadline.expired", 1, label=label)
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:g}s exhausted"
                + (f" at {label}" if label else ""),
                label=label,
                budget_s=self.budget_s,
            )


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failed unit of work is retried.

    The default reproduces the PR-5/PR-7 executor behavior exactly --
    decode-class errors get one immediate cache-invalidating retry --
    while making every knob explicit and shared across the row, column,
    block and process executors.

    Parameters
    ----------
    max_attempts:
        Total tries per unit of work (1 = never retry).
    retry_on:
        Names from :data:`ERROR_CLASSES` worth retrying.
    base_delay_s / max_delay_s:
        Exponential backoff schedule; attempt *n*'s delay is drawn
        uniformly from ``[0, min(max_delay_s, base_delay_s *
        2**(n-1))]`` (full jitter).  The default base of 0 keeps the
        thread executors' historical retry-immediately behavior.
    budget:
        Total retries one run may spend across all its chunks and
        calls (``None`` = unbounded).  Executors materialize this as
        one shared :class:`RetryBudget` via :meth:`new_budget`.
    seed:
        Jitter RNG seed (``new_rng`` derives one RNG per executor), so
        chaos runs replay byte-for-byte.
    """

    max_attempts: int = 2
    retry_on: tuple[str, ...] = ("decode",)
    base_delay_s: float = 0.0
    max_delay_s: float = 1.0
    budget: int | None = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PartitionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise PartitionError("backoff delays must be >= 0")
        unknown = set(self.retry_on) - set(ERROR_CLASSES)
        if unknown:
            raise PartitionError(
                f"unknown retry_on error classes {sorted(unknown)}; "
                f"choose from {sorted(ERROR_CLASSES)}"
            )

    # -- derivation --------------------------------------------------------
    def new_budget(self) -> RetryBudget:
        return RetryBudget(self.budget)

    def new_rng(self, salt: int = 0) -> random.Random:
        return random.Random(f"{self.seed}:{salt}")

    # -- decisions ---------------------------------------------------------
    def retryable(self, exc: BaseException) -> bool:
        """Is *exc* of an error class this policy retries?"""
        cls = classify_error(exc)
        return cls is not None and cls in self.retry_on

    def should_retry(
        self,
        exc: BaseException,
        attempt: int,
        *,
        budget: RetryBudget | None = None,
        deadline: Deadline | None = None,
    ) -> bool:
        """Decide one more attempt after failure number *attempt*.

        Checks, in order: error class, attempt ceiling, deadline, then
        the shared budget (checked last so a refused retry does not
        also burn budget).
        """
        if not self.retryable(exc):
            return False
        if attempt >= self.max_attempts:
            return False
        if deadline is not None and deadline.expired():
            return False
        if budget is not None and not budget.try_spend():
            return False
        return True

    def backoff_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """Full-jitter delay before attempt ``attempt + 1``."""
        if self.base_delay_s <= 0:
            return 0.0
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
        if rng is None:
            rng = self.new_rng()
        return rng.uniform(0.0, cap)

    # -- the loop ----------------------------------------------------------
    def run(
        self,
        attempt_fn,
        *,
        target=None,
        rebuild=None,
        budget: RetryBudget | None = None,
        deadline: Deadline | None = None,
        rng: random.Random | None = None,
        on_retry=None,
        sleep=time.sleep,
    ):
        """Run ``attempt_fn(target)`` under this policy.

        The one retry loop every executor shares (the PR-10
        unification).  ``rebuild()`` -- when given -- produces a fresh
        target before each retry (the cache-invalidating re-encode);
        ``on_retry(exc, attempt)`` fires after the decision to retry
        and before the backoff sleep (telemetry hook).  The final
        failure propagates unchanged.
        """
        attempt = 1
        while True:
            try:
                return attempt_fn(target)
            except Exception as exc:
                if not self.should_retry(
                    exc, attempt, budget=budget, deadline=deadline
                ):
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt)
                delay = self.backoff_s(attempt, rng)
                if deadline is not None:
                    delay = min(delay, deadline.remaining())
                if delay > 0:
                    sleep(delay)
                if rebuild is not None:
                    target = rebuild()
                attempt += 1


#: The stock policy installed by every executor when none is passed:
#: one immediate retry of decode-class failures, 32 retries per run.
DEFAULT_RETRY_POLICY = RetryPolicy()
