"""Deterministic fault injection hooks for the chaos harness.

``tools/smoke_chaos.py`` needs to make precise bad things happen at
precise moments: kill a pool worker *mid-chunk*, stall one chunk past
its timeout, raise a decode error inside shard *k* at generation *g*
only.  This module is the seam: production code calls
:func:`trip` at a handful of named **sites**, and the harness (or a
test) :func:`arm`\\ s faults against those sites.  With nothing armed,
:func:`trip` is one truthiness check on an empty tuple — the hooks
cost nothing in normal operation.

Sites currently wired:

=====================  ======================================================
site                   where / context keys
=====================  ======================================================
``thread.chunk``       inside a thread executor's chunk, before the kernel;
                       ``thread``, ``lo``, ``hi``, ``kind``
``worker.chunk``       inside a pool worker, before the shard kernel;
                       ``index``, ``generation``, ``pid``
``stream.shard``       ``streamed_spmv`` loop, before shard *k*'s multiply;
                       ``shard``, ``generation``
``stream.checkpoint``  between shard *k*'s y-partial flush and the
                       progress.json write (the torn-checkpoint window);
                       ``shard``
=====================  ======================================================

Faults **match** when every key in their ``match`` dict equals the
site's context value — so a fault armed with ``{"index": 1,
"generation": 0}`` stops firing the moment the executor rebuilds the
shard (generation bump), which is what lets recovery converge.

Fork semantics (the subtle part): the process pool uses ``fork``, so
faults armed in the parent are inherited by every worker.  Each
fault's ``times`` budget decrements in whichever process trips it, and
a child's decrement is *not* visible to the parent or to workers
forked later — so a kill fault that should fire once must be matched
on state that changes after the first firing (index + generation), not
on ``times`` alone.

Actions:

* ``"raise"`` — raise ``exc_factory()`` at the site.
* ``"sleep"`` — block ``sleep_s`` seconds (straggler injection).
* ``"kill"`` — ``SIGKILL`` the *current process* (no cleanup, no
  atexit: the honest simulation of an OOM kill or machine loss).

Nothing here is exported through ``repro.resilience.__init__`` for
production use; the harness and tests import it explicitly.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

__all__ = ["Fault", "arm", "disarm_all", "faults", "trip"]


@dataclass
class Fault:
    """One armed fault. Mutable: ``times`` counts down as it fires."""

    site: str
    action: str  # "raise" | "sleep" | "kill"
    match: dict = field(default_factory=dict)
    times: int = 1
    sleep_s: float = 0.0
    exc_factory: object = None
    #: Diagnostic tag echoed in harness logs.
    tag: str = ""

    def matches(self, context: dict) -> bool:
        if self.times <= 0:
            return False
        return all(context.get(k) == v for k, v in self.match.items())

    def fire(self) -> None:
        self.times -= 1
        if self.action == "kill":
            # SIGKILL ourselves: no Python-level unwinding, no flushes —
            # the process simply ceases, as a real OOM kill would.
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == "sleep":
            time.sleep(self.sleep_s)
        elif self.action == "raise":
            exc = self.exc_factory() if self.exc_factory else RuntimeError(
                f"chaos fault at {self.site}"
            )
            raise exc
        else:  # pragma: no cover - arm() validates
            raise ValueError(f"unknown chaos action {self.action!r}")


# Module-level so a fork()ed pool worker inherits whatever the parent
# armed.  Tuple (not list) so trip()'s fast path is one truthiness
# check on an immutable snapshot and arm/disarm are atomic rebinds.
_FAULTS: tuple[Fault, ...] = ()


def arm(
    site: str,
    action: str,
    *,
    match: dict | None = None,
    times: int = 1,
    sleep_s: float = 0.0,
    exc_factory=None,
    tag: str = "",
) -> Fault:
    """Arm one fault; returns it so callers can inspect ``times`` left."""
    global _FAULTS
    if action not in ("raise", "sleep", "kill"):
        raise ValueError(f"unknown chaos action {action!r}")
    fault = Fault(
        site=site,
        action=action,
        match=dict(match or {}),
        times=times,
        sleep_s=sleep_s,
        exc_factory=exc_factory,
        tag=tag,
    )
    _FAULTS = _FAULTS + (fault,)
    return fault


def disarm_all() -> None:
    global _FAULTS
    _FAULTS = ()


def faults() -> tuple[Fault, ...]:
    return _FAULTS


def trip(site: str, **context) -> None:
    """Production hook: fire the first armed fault matching *site*.

    The empty fast path is a single global read + truthiness check.
    """
    if not _FAULTS:
        return
    for fault in _FAULTS:
        if fault.site == site and fault.matches(context):
            fault.fire()
            return
