"""Resilience layer: retry policies, deadlines, breakers, degradation.

One coherent policy surface over the recovery behaviors PRs 5/7/8
scattered across the executors and the shard store:

* :mod:`repro.resilience.policy` — declarative :class:`RetryPolicy`
  (attempts, error classes, full-jitter backoff, per-run budget) and
  wall-clock :class:`Deadline` propagation.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` /
  :class:`BreakerBoard` (closed → open → half-open with cooldown).
* :mod:`repro.resilience.degrade` — the :class:`ResilientExecutor`
  backend ladder ``process → thread → serial`` (+ ``mmap → mem``).
* :mod:`repro.resilience.chaos` — fault-injection hooks for
  ``tools/smoke_chaos.py`` (not re-exported here; import explicitly).
"""

from repro.resilience.breaker import BreakerBoard, CircuitBreaker
from repro.resilience.degrade import (
    BACKEND_LADDER,
    ResilientExecutor,
    SerialSpMV,
    ladder_for,
)
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    ERROR_CLASSES,
    Deadline,
    RetryBudget,
    RetryPolicy,
    classify_error,
)

__all__ = [
    "BACKEND_LADDER",
    "BreakerBoard",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "Deadline",
    "ERROR_CLASSES",
    "ladder_for",
    "ResilientExecutor",
    "RetryBudget",
    "RetryPolicy",
    "SerialSpMV",
    "classify_error",
]
