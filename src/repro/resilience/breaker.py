"""Circuit breakers: stop burning rebuild cycles on a failing resource.

The retry layer (:mod:`repro.resilience.policy`) answers "is this one
failure worth another attempt?".  A :class:`CircuitBreaker` answers the
longer-horizon question: "has this *resource* — one shard at one
generation, one backend rung — failed so consistently that attempts
should stop entirely for a while?".  Without it, a shard whose backing
file is gone gets rebuilt (encode + CRC seal + store) on every single
call, turning one dead resource into a whole-run slowdown.

State machine (the classic three states)::

      closed ──(failure_threshold consecutive failures)──> open
      open ──(cooldown_s elapsed)──> half-open
      half-open ──(probe succeeds)──> closed
      half-open ──(probe fails)──> open        (cooldown restarts)

* **closed** — normal operation; every call is allowed.  Consecutive
  failures are counted; any success resets the count.
* **open** — calls are refused without being attempted:
  :meth:`allow` returns ``False`` and :meth:`guard` raises a typed
  :class:`~repro.errors.BreakerOpenError` carrying ``retry_after_s``.
* **half-open** — after the cooldown one probe call is admitted; its
  outcome decides between closing (recovered) and re-opening.

Every transition is emitted as a ``resilience.breaker.*`` telemetry
counter and obs mark, so the SLO rule engine can alert on
``rate(resilience.breaker.open[10s]) > 0``.

:class:`BreakerBoard` is the keyed registry executors use — one
breaker per ``shard:<index>:g<generation>`` in the process executor
(a rebuilt shard gets a *fresh* breaker: the generation bump changed
the bytes, so past failures are no longer evidence), one per ladder
rung in :class:`~repro.resilience.degrade.ResilientExecutor`.

The clock is injectable (``clock=time.monotonic``) so tests and the
chaos harness step through cooldowns without sleeping.
"""

from __future__ import annotations

import threading
import time

from repro.errors import BreakerOpenError, PartitionError
from repro.obs import core as obs
from repro.telemetry import core as telemetry

__all__ = ["BreakerBoard", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One resource's failure gate (thread-safe).

    Parameters
    ----------
    key:
        Identity string for telemetry and :class:`~repro.errors.
        BreakerOpenError` (e.g. ``"shard:1:g0"``,
        ``"backend:process:mem"``).
    failure_threshold:
        Consecutive failures that trip closed -> open.  The default of
        3 sits above the retry layer's attempt count, so a fault the
        retry policy can absorb never trips the breaker.
    cooldown_s:
        Seconds an open breaker refuses calls before admitting one
        half-open probe.
    clock:
        Injectable monotonic clock (tests, chaos replay).
    """

    def __init__(
        self,
        key: str,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise PartitionError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise PartitionError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.key = key
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    # -- observation -------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._peek()

    def _peek(self) -> str:
        """Current state with cooldown expiry applied (lock held)."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            return HALF_OPEN
        return self._state

    def retry_after_s(self) -> float:
        """Seconds until an open breaker admits its half-open probe."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self.cooldown_s - (self._clock() - self._opened_at)
            )

    # -- transitions -------------------------------------------------------
    def _emit(self, transition: str) -> None:
        telemetry.count(
            f"resilience.breaker.{transition}",
            1,
            extra={"failures": self._consecutive_failures},
            key=self.key,
        )
        obs.mark(f"resilience.breaker.{transition}", 1, key=self.key)

    def allow(self) -> bool:
        """May a call be attempted right now?

        An expired cooldown transitions open -> half-open as a side
        effect (emitted once), and the half-open probe slot is claimed
        by this call: a second concurrent :meth:`allow` while the probe
        is in flight is refused.
        """
        with self._lock:
            state = self._peek()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._state == OPEN:
                # Claim the single probe slot.
                self._state = HALF_OPEN
                self._emit("half_open")
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._emit("close")
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._emit("open")

    # -- convenience -------------------------------------------------------
    def guard(self) -> None:
        """Raise :class:`~repro.errors.BreakerOpenError` unless allowed."""
        if not self.allow():
            after = self.retry_after_s()
            raise BreakerOpenError(
                f"circuit breaker {self.key!r} is open; "
                f"retry in {after:.3g}s",
                key=self.key,
                retry_after_s=after,
            )

    def record(self, ok: bool) -> None:
        if ok:
            self.record_success()
        else:
            self.record_failure()


class BreakerBoard:
    """A keyed get-or-create registry of breakers sharing one config.

    The process executor keys breakers as ``shard:<i>:g<gen>`` so a
    rebuild (generation bump) starts clean; the degradation ladder
    keys them per rung (``backend:<name>:<storage>``).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    key,
                    failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    clock=self._clock,
                )
                self._breakers[key] = breaker
            return breaker

    def states(self) -> dict[str, str]:
        """Snapshot of every breaker's current state (for reports)."""
        with self._lock:
            return {k: b.state for k, b in self._breakers.items()}
