"""Segmented array operations.

A *segmentation* of a length-``n`` array is given CSR-style by an offsets
array ``off`` of length ``nseg + 1`` with ``off[0] == 0``,
``off[-1] == n`` and ``off`` non-decreasing; segment ``s`` is the slice
``[off[s], off[s+1])``.  Empty segments are allowed everywhere -- sparse
matrices have empty rows, and every helper here is tested against them.

These primitives are the substrate of the vectorized SpMV kernels:

* CSR's row reduction is :func:`segmented_reduce` over ``row_ptr``;
* CSR-DU's on-the-fly delta decoding is :func:`segmented_cumsum` over the
  unit boundaries (each unit's column indices are the running sum of its
  deltas, restarting at the unit's initial column).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError


def _check_offsets(offsets: np.ndarray, n: int) -> np.ndarray:
    offsets = np.asarray(offsets)
    if offsets.ndim != 1 or offsets.size == 0:
        raise FormatError("offsets must be a non-empty 1-D array")
    if offsets[0] != 0 or offsets[-1] != n:
        raise FormatError(
            f"offsets must start at 0 and end at {n}, got [{offsets[0]}, {offsets[-1]}]"
        )
    if np.any(np.diff(offsets) < 0):
        raise FormatError("offsets must be non-decreasing")
    return offsets


def segment_lengths(offsets: np.ndarray) -> np.ndarray:
    """Lengths of each segment: ``diff(offsets)``."""
    return np.diff(np.asarray(offsets))


def segment_ids_from_offsets(offsets: np.ndarray, n: int) -> np.ndarray:
    """Expand CSR-style *offsets* into a per-element segment-id array.

    >>> segment_ids_from_offsets(np.array([0, 2, 2, 5]), 5).tolist()
    [0, 0, 2, 2, 2]
    """
    offsets = _check_offsets(offsets, n)
    nseg = offsets.size - 1
    return np.repeat(np.arange(nseg, dtype=np.intp), segment_lengths(offsets))


def first_in_segment_mask(offsets: np.ndarray, n: int) -> np.ndarray:
    """Boolean mask marking the first element of each non-empty segment."""
    offsets = _check_offsets(offsets, n)
    mask = np.zeros(n, dtype=bool)
    starts = np.asarray(offsets[:-1])
    lens = segment_lengths(offsets)
    mask[starts[lens > 0]] = True
    return mask


def segmented_cumsum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Inclusive cumulative sum restarting at each segment boundary.

    >>> segmented_cumsum(np.array([1, 2, 3, 4]), np.array([0, 2, 4])).tolist()
    [1, 3, 3, 7]

    Implemented with the standard "global cumsum minus per-segment base"
    trick, so it is a handful of vectorized passes regardless of how many
    segments there are.
    """
    values = np.asarray(values)
    offsets = _check_offsets(offsets, values.size)
    if values.size == 0:
        return values.copy()
    total = np.cumsum(values)
    starts = np.asarray(offsets[:-1], dtype=np.intp)
    lens = segment_lengths(offsets)
    nonempty = starts[lens > 0]
    # Base for segment starting at s is total[s-1] (0 for s == 0).
    bases = np.zeros(nonempty.size, dtype=total.dtype)
    inner = nonempty > 0
    bases[inner] = total[nonempty[inner] - 1]
    # Scatter bases and broadcast them forward within each segment.
    per_elem_base = np.zeros(values.size, dtype=total.dtype)
    per_elem_base[nonempty] = bases
    seg_of = np.cumsum(first_in_segment_mask(offsets, values.size)) - 1
    per_elem_base = per_elem_base[nonempty][seg_of]
    return total - per_elem_base


def segmented_reduce(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum of each segment; empty segments contribute ``0``.

    This is ``np.add.reduceat`` made safe for empty segments (reduceat's
    documented behaviour for an empty slice is to return the *single
    element at the start index*, which is wrong for our purposes).

    >>> segmented_reduce(np.array([1., 2., 3.]), np.array([0, 2, 2, 3])).tolist()
    [3.0, 0.0, 3.0]

    Callers reducing many value arrays over one fixed segmentation (the
    SpMV hot path) should build a :class:`SegmentedReducer` once instead:
    it validates the offsets a single time and skips the per-call dtype
    normalization done here.
    """
    values = np.asarray(values)
    offsets = _check_offsets(offsets, values.size)
    nseg = offsets.size - 1
    out_dtype = values.dtype if values.dtype.kind == "f" else np.result_type(values.dtype, np.int64)
    if nseg == 0:
        return np.empty(0, dtype=out_dtype)
    if values.size == 0:
        return np.zeros(nseg, dtype=out_dtype)
    starts = np.asarray(offsets[:-1], dtype=np.intp)
    lens = segment_lengths(offsets)
    out = np.zeros(nseg, dtype=out_dtype)
    nonempty = lens > 0
    if not np.any(nonempty):
        return out
    # reduceat over the starts of non-empty segments only, then scatter.
    ne_starts = starts[nonempty]
    vals = values if values.dtype == out_dtype else values.astype(out_dtype)
    reduced = np.add.reduceat(vals, ne_starts)
    out[nonempty] = reduced
    return out


class SegmentedReducer:
    """Pre-validated segmented sum over one fixed offsets array.

    The constructor does everything :func:`segmented_reduce` does per
    call that depends only on the segmentation -- offsets validation,
    the non-empty-segment scan, the ``intp`` cast of the reduceat start
    indices -- so each :meth:`reduce` is just a ``reduceat`` plus (when
    empty segments exist) a scatter.  This is the fast-path entry point
    the SpMV kernel plans use: one reducer per matrix, one call per
    SpMV iteration.

    ``reduce`` accepts 1-D values (SpMV products) or 2-D values reduced
    along axis 0 (SpMM products, one column per right-hand side).  The
    caller guarantees ``values.shape[0] == self.n`` and a float dtype;
    neither is re-checked here.
    """

    __slots__ = ("n", "nseg", "_ne_starts", "_nonempty", "_all_nonempty")

    def __init__(self, offsets: np.ndarray, n: int | None = None):
        offsets = np.asarray(offsets)
        if n is None:
            n = int(offsets[-1]) if offsets.size else 0
        offsets = _check_offsets(offsets, n)
        self.n = int(n)
        self.nseg = offsets.size - 1
        lens = np.diff(offsets)
        nonempty = np.asarray(lens > 0)
        self._all_nonempty = bool(nonempty.all()) if self.nseg else True
        self._nonempty = nonempty
        self._ne_starts = np.asarray(offsets[:-1], dtype=np.intp)[nonempty]

    def reduce(self, values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Per-segment sums of *values* (summation along axis 0).

        With ``out=`` the result is written in place (the whole buffer
        is overwritten, empty segments included) and returned.
        """
        shape = (self.nseg,) + values.shape[1:]
        if self._ne_starts.size == 0:
            if out is None:
                return np.zeros(shape, dtype=values.dtype)
            out[...] = 0
            return out
        reduced = np.add.reduceat(values, self._ne_starts, axis=0)
        if self._all_nonempty:
            if out is None:
                return reduced
            np.copyto(out, reduced)
            return out
        if out is None:
            out = np.zeros(shape, dtype=values.dtype)
        else:
            out[...] = 0
        out[self._nonempty] = reduced
        return out
