"""Segmented NumPy primitives underlying the vectorized kernels."""

from repro.nputil.segops import (
    SegmentedReducer,
    segment_ids_from_offsets,
    segment_lengths,
    segmented_cumsum,
    segmented_reduce,
    first_in_segment_mask,
)

__all__ = [
    "SegmentedReducer",
    "segment_ids_from_offsets",
    "segment_lengths",
    "segmented_cumsum",
    "segmented_reduce",
    "first_in_segment_mask",
]
