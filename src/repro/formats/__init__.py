"""Sparse-matrix storage formats.

The paper's cast, all implemented from scratch:

* :class:`~repro.formats.coo.COOMatrix` -- interchange format;
* :class:`~repro.formats.csr.CSRMatrix` -- the baseline (Fig. 1);
* :class:`~repro.formats.csc.CSCMatrix` -- column-major mirror;
* :class:`~repro.formats.csr_du.CSRDUMatrix` -- delta-unit index
  compression (Section IV, the paper's first contribution);
* :class:`~repro.formats.csr_vi.CSRVIMatrix` -- value indexing
  (Section V, the second contribution);
* :class:`~repro.formats.csr_du_vi.CSRDUVIMatrix` -- both combined
  (from the CF'08 companion paper);
* :class:`~repro.formats.dcsr.DCSRMatrix` -- the Willcock & Lumsdaine
  byte-command baseline the paper compares against;
* :class:`~repro.formats.bcsr.BCSRMatrix` -- classic register blocking;
* :class:`~repro.formats.ellpack.ELLMatrix` /
  :class:`~repro.formats.jagged.JDSMatrix` -- the padded / jagged
  vector-machine formats from the related-work list (Section III-A).
"""

from repro.formats.base import (
    SparseMatrix,
    Storage,
    available_formats,
    csr_working_set_bytes,
    get_format,
    register_format,
    working_set_bytes,
)
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.conversions import convert, to_csr
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csr_du import CSRDUMatrix
from repro.formats.csr_du_vi import CSRDUVIMatrix
from repro.formats.csr_vi import CSRVIMatrix
from repro.formats.dcsr import DCSRMatrix
from repro.formats.ellpack import ELLMatrix
from repro.formats.jagged import JDSMatrix

__all__ = [
    "SparseMatrix",
    "Storage",
    "available_formats",
    "csr_working_set_bytes",
    "get_format",
    "register_format",
    "working_set_bytes",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "CSRDUMatrix",
    "CSRVIMatrix",
    "CSRDUVIMatrix",
    "DCSRMatrix",
    "BCSRMatrix",
    "ELLMatrix",
    "JDSMatrix",
    "convert",
    "to_csr",
]
