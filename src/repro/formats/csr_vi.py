"""CSR-VI: CSR with Value-Indexed numerical data (Section V).

Structure (Fig. 4 of the paper): ``row_ptr`` and ``col_ind`` as in CSR;
``values`` replaced by ``vals_unique`` (distinct values) and ``val_ind``
(per-nonzero index into ``vals_unique``, at the narrowest width that
addresses the unique count).

With 8-byte values and, say, a 1-byte ``val_ind``, value storage drops
by nearly 8x for high-redundancy matrices -- which is why the paper's
CSR-VI gains (Table IV) exceed the CSR-DU gains (Table III): values are
2/3 of the CSR working set.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.compress.unique import TTU_THRESHOLD, UniqueValues, unique_index_values
from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix
from repro.util.validation import (
    as_index_array,
    as_value_array,
    check_in_range,
    check_monotone,
)


@register_format
class CSRVIMatrix(SparseMatrix):
    """CSR Value Index matrix."""

    name = "csr-vi"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr,
        col_ind,
        vals_unique,
        val_ind,
    ):
        super().__init__(nrows, ncols)
        row_ptr = as_index_array(row_ptr, "row_ptr")
        col_ind = as_index_array(col_ind, "col_ind")
        vals_unique = as_value_array(vals_unique, "vals_unique")
        val_ind = np.asarray(val_ind)
        if val_ind.ndim != 1 or not np.issubdtype(val_ind.dtype, np.unsignedinteger):
            raise FormatError("val_ind must be a 1-D unsigned integer array")
        if row_ptr.size != nrows + 1:
            raise FormatError(f"row_ptr has {row_ptr.size} entries, expected {nrows + 1}")
        if row_ptr.size and (row_ptr[0] != 0 or int(row_ptr[-1]) != val_ind.size):
            raise FormatError("row_ptr must run from 0 to nnz")
        if col_ind.size != val_ind.size:
            raise FormatError("col_ind and val_ind length mismatch")
        check_monotone(row_ptr, "row_ptr")
        check_in_range(col_ind, ncols, "col_ind")
        if val_ind.size and int(val_ind.max()) >= vals_unique.size:
            raise FormatError(
                f"val_ind reaches {int(val_ind.max())} but only "
                f"{vals_unique.size} unique values exist"
            )
        self.row_ptr = row_ptr
        self.col_ind = col_ind
        self.vals_unique = vals_unique
        self.val_ind = val_ind

    # -- SparseMatrix interface --------------------------------------------
    @property
    def nnz(self) -> int:
        return self.val_ind.size

    @property
    def unique_count(self) -> int:
        return self.vals_unique.size

    @property
    def ttu(self) -> float:
        """Total-to-unique ratio (the paper's applicability criterion)."""
        return self.nnz / self.unique_count if self.unique_count else 0.0

    def is_profitable(self, threshold: float = TTU_THRESHOLD) -> bool:
        """The paper's ``ttu > 5`` selection rule."""
        return self.ttu > threshold

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.row_ptr.nbytes + self.col_ind.nbytes,
            value_bytes=self.vals_unique.nbytes + self.val_ind.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        values = self.vals_unique[self.val_ind]
        row = 0
        for k in range(self.nnz):
            while k >= int(self.row_ptr[row + 1]):
                row += 1
            yield row, int(self.col_ind[k]), float(values[k])

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Fig. 5 kernel, vectorized: one extra gather through val_ind.

        Plan-cached: the row-pointer cast and reducer validation are
        built once (:mod:`repro.kernels.plan`); the value gather stays
        per call, as in the paper's kernel.
        """
        from repro.kernels.plan import _check_x, get_plan

        x = _check_x(x, self.ncols)
        return get_plan(self).spmv(self.vals_unique[self.val_ind], x, out=out)

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector ``Y = A X`` sharing one value gather per call."""
        from repro.kernels.plan import _check_xmat, get_plan

        X = _check_xmat(X, self.ncols)
        return get_plan(self).spmm(self.vals_unique[self.val_ind], X, out=out)

    # -- conversions ----------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSRVIMatrix":
        uv: UniqueValues = unique_index_values(csr.values)
        return cls(
            csr.nrows,
            csr.ncols,
            csr.row_ptr,
            csr.col_ind,
            uv.vals_unique,
            uv.val_ind,
        )

    def to_csr(self) -> CSRMatrix:
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.row_ptr,
            self.col_ind,
            self.vals_unique[self.val_ind],
        )
