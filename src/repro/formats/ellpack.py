"""ELLPACK-ITPACK (ELL) format.

One of the classic CSR alternatives the paper's related work lists
(Section III-A, via SPARSKIT [18]): every row is padded to the maximum
row length ``K`` and stored in two dense ``nrows x K`` arrays
(column indices and values), giving perfectly regular, vectorizable
accesses.  The cost is padding: a single long row inflates the whole
matrix, which is why ELL suits regular meshes and fails on power-law
graphs -- a useful structural contrast to CSR-DU, whose unit scheme
adapts to irregularity instead of padding it away.

Padding entries store column index ``-1`` and value 0; kernels mask
them out (the 0 value alone would suffice numerically, but masked
gathers keep x accesses in range).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix


@register_format
class ELLMatrix(SparseMatrix):
    """ELLPACK storage: dense ``nrows x K`` index/value slabs."""

    name = "ell"

    def __init__(self, nrows: int, ncols: int, col_slab, value_slab):
        super().__init__(nrows, ncols)
        col_slab = np.ascontiguousarray(col_slab, dtype=np.int32)
        value_slab = np.ascontiguousarray(value_slab, dtype=np.float64)
        if col_slab.ndim != 2 or value_slab.ndim != 2:
            raise FormatError("ELL slabs must be 2-D")
        if col_slab.shape != value_slab.shape:
            raise FormatError(
                f"slab shapes differ: {col_slab.shape} vs {value_slab.shape}"
            )
        if col_slab.shape[0] != nrows:
            raise FormatError(
                f"slabs have {col_slab.shape[0]} rows, expected {nrows}"
            )
        valid = col_slab >= 0
        if col_slab[valid].size and int(col_slab[valid].max()) >= ncols:
            raise FormatError("column index out of range")
        if np.any(value_slab[~valid] != 0.0):
            raise FormatError("padding entries must have zero values")
        self.col_slab = col_slab
        self.value_slab = value_slab
        self._valid = valid

    @property
    def K(self) -> int:
        """Padded row length (max nonzeros per row)."""
        return self.col_slab.shape[1]

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._valid))

    @property
    def padding_ratio(self) -> float:
        """Stored slots / real nonzeros (1.0 = no padding)."""
        nnz = self.nnz
        return (self.nrows * self.K) / nnz if nnz else 0.0

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.col_slab.nbytes,
            value_bytes=self.value_slab.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        for i in range(self.nrows):
            for k in range(self.K):
                if self._valid[i, k]:
                    yield i, int(self.col_slab[i, k]), float(self.value_slab[i, k])

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Column-of-slab kernel: K dense gather-multiply-accumulates."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        safe_cols = np.where(self._valid, self.col_slab, 0)
        y = np.einsum("ik,ik->i", self.value_slab, x[safe_cols])
        if out is not None:
            out[:] = y
            return out
        return y

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "ELLMatrix":
        lens = csr.row_lengths()
        K = int(lens.max()) if lens.size else 0
        col_slab = np.full((csr.nrows, max(K, 1)), -1, dtype=np.int32)
        value_slab = np.zeros((csr.nrows, max(K, 1)), dtype=np.float64)
        if csr.nnz:
            rows = csr.row_of_entry()
            # Lane = position within the row.
            lane = np.arange(csr.nnz) - csr.row_ptr[:-1].astype(np.int64)[rows]
            col_slab[rows, lane] = csr.col_ind
            value_slab[rows, lane] = csr.values
        return cls(csr.nrows, csr.ncols, col_slab, value_slab)

    def to_csr(self) -> CSRMatrix:
        lens = self._valid.sum(axis=1)
        row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(lens, out=row_ptr[1:])
        mask = self._valid.ravel()
        return CSRMatrix(
            self.nrows,
            self.ncols,
            row_ptr.astype(np.int32),
            self.col_slab.ravel()[mask],
            self.value_slab.ravel()[mask],
        )
