"""CSR-DU: CSR with Delta-Unit compressed column indices (Section IV).

The ``col_ind`` and ``row_ptr`` arrays of CSR are replaced by a single
byte stream ``ctl`` (see :mod:`repro.compress.ctl` for the wire format);
``values`` is unchanged.  Index storage drops from
``(nnz + nrows + 1) * 4`` bytes to roughly ``nnz * (1..2)`` bytes for
matrices with local column patterns, which is exactly the paper's
working-set reduction.

Three SpMV tiers exist for this format:

* :meth:`CSRDUMatrix.spmv` -- vectorized; decodes the unit structure
  once (cached) and reuses it, which mirrors the iterative-solver usage
  the paper times (the *memory traffic* of the real kernel is what the
  machine model accounts for, from the actual ``ctl`` byte counts);
* :func:`repro.kernels.spmv.spmv_csr_du_unitwise` -- decodes the stream
  on the fly every call (NumPy per unit);
* :func:`repro.kernels.spmv.spmv_csr_du_reference` -- the paper's Fig. 3
  kernel, line for line, in pure Python.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator

import numpy as np

from repro.compress.ctl import CtlWriter, DecodedUnits, decode_units
from repro.compress.delta import MAX_UNIT_SIZE, unitize
from repro.compress.encode_batched import encode_ctl_batched
from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix
from repro.util.validation import as_value_array


@register_format
class CSRDUMatrix(SparseMatrix):
    """CSR Delta Unit matrix.

    Parameters
    ----------
    nrows, ncols:
        Matrix shape.
    ctl:
        Serialized unit stream (see :mod:`repro.compress.ctl`).
    values:
        Nonzero values in row-major order (same as CSR).
    policy, max_unit:
        Recorded encoding parameters (informational; the stream itself
        is self-describing).
    """

    name = "csr-du"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        ctl: bytes,
        values,
        *,
        policy: str = "greedy",
        max_unit: int = MAX_UNIT_SIZE,
    ):
        super().__init__(nrows, ncols)
        if not isinstance(ctl, (bytes, bytearray)):
            raise FormatError(f"ctl must be bytes, got {type(ctl).__name__}")
        self.ctl = bytes(ctl)
        self.values = as_value_array(values, "values")
        self.policy = policy
        self.max_unit = max_unit

    # -- decode cache -----------------------------------------------------
    @cached_property
    def units(self) -> DecodedUnits:
        """Structure-of-arrays decode of the ctl stream (built lazily once)."""
        du = decode_units(self.ctl, self.values.size)
        if du.rows.size and int(du.rows[-1]) >= self.nrows:
            raise FormatError(
                f"ctl stream reaches row {int(du.rows[-1])} "
                f"but the matrix has {self.nrows} rows"
            )
        if du.columns.size and int(du.columns.max()) >= self.ncols:
            raise FormatError("ctl stream reaches a column beyond ncols")
        return du

    # -- SparseMatrix interface --------------------------------------------
    @property
    def nnz(self) -> int:
        return self.values.size

    def storage(self) -> Storage:
        return Storage(index_bytes=len(self.ctl), value_bytes=self.values.nbytes)

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        du = self.units
        rows = np.repeat(du.rows, du.sizes)
        for i, j, v in zip(rows.tolist(), du.columns.tolist(), self.values.tolist()):
            yield i, j, v

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Width-class batched SpMV through the cached kernel plan.

        The plan amortizes the unit-header parse; the column indices
        are still re-decoded from the ctl bytes every call, and rows
        accumulate in element order (bit-identical to the reference
        and unitwise kernels).
        """
        from repro.kernels.plan import _check_x, get_plan

        x = _check_x(x, self.ncols)
        return get_plan(self).spmv(self.values, x, out=out)

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector ``Y = A X``: one ctl decode for all columns."""
        from repro.kernels.plan import _check_xmat, get_plan

        X = _check_xmat(X, self.ncols)
        return get_plan(self).spmm(self.values, X, out=out)

    # -- unit statistics ----------------------------------------------------
    def unit_class_histogram(self) -> dict[int, int]:
        """Units per width class, e.g. ``{0: 812, 1: 37}``."""
        du = self.units
        classes, counts = np.unique(du.classes, return_counts=True)
        return dict(zip(classes.tolist(), counts.tolist()))

    def mean_unit_size(self) -> float:
        """Average nonzeros per unit (larger means lower decode overhead)."""
        du = self.units
        return float(du.sizes.mean()) if du.nunits else 0.0

    # -- conversions ----------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        csr: CSRMatrix,
        *,
        policy: str = "greedy",
        max_unit: int = MAX_UNIT_SIZE,
        encoder: str = "batched",
    ) -> "CSRDUMatrix":
        """Encode a CSR matrix (one ``O(nnz)`` pass, Section IV).

        ``encoder`` selects the pipeline: ``"batched"`` (default) runs
        the whole-matrix vectorized encoder and hands its unit table to
        the kernel plan; ``"reference"`` walks units one by one through
        :class:`~repro.compress.ctl.CtlWriter`.  Both produce the same
        bytes -- the reference path is the executable specification the
        equivalence tests compare against.
        """
        row_ptr = csr.row_ptr.astype(np.int64)
        col_ind = csr.col_ind.astype(np.int64)
        if encoder == "batched":
            enc = encode_ctl_batched(
                row_ptr, col_ind, policy=policy, max_unit=max_unit
            )
            matrix = cls(
                csr.nrows,
                csr.ncols,
                enc.ctl,
                csr.values,
                policy=policy,
                max_unit=max_unit,
            )
            matrix._unit_table = enc.table
            return matrix
        if encoder != "reference":
            raise FormatError(
                f"unknown encoder {encoder!r}; choose 'batched' or 'reference'"
            )
        writer = CtlWriter()
        for unit in unitize(row_ptr, col_ind, policy=policy, max_unit=max_unit):
            writer.append(unit)
        return cls(
            csr.nrows,
            csr.ncols,
            writer.getvalue(),
            csr.values,
            policy=policy,
            max_unit=max_unit,
        )

    def to_csr(self) -> CSRMatrix:
        """Decode back to plain CSR (exact round-trip)."""
        du = self.units
        rows = np.repeat(du.rows, du.sizes)
        counts = np.bincount(rows, minlength=self.nrows) if rows.size else np.zeros(
            self.nrows, dtype=np.int64
        )
        row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return CSRMatrix(
            self.nrows,
            self.ncols,
            row_ptr.astype(np.int32),
            du.columns.astype(np.int32),
            self.values,
        )
