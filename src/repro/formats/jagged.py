"""JDS (Jagged Diagonal Storage).

The other classic vector-machine format from the paper's related-work
list (Section III-A).  Rows are sorted by decreasing length; the k-th
nonzeros of all rows long enough form the k-th *jagged diagonal*, a
dense strip processed with unit stride.  A permutation array maps
results back to original row order.

JDS removes ELL's padding (each jagged diagonal is exactly as long as
the number of rows that reach it) at the price of the permutation
indirection -- the historical stepping stone between padded formats and
CSR-style adaptivity.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.csr import CSRMatrix
from repro.util.validation import as_index_array, as_value_array, check_monotone


@register_format
class JDSMatrix(SparseMatrix):
    """Jagged Diagonal Storage.

    Arrays: ``perm`` (sorted-row -> original-row), ``jd_ptr`` (offsets
    of each jagged diagonal, non-increasing widths), ``col_ind`` and
    ``values`` (diagonal-major concatenation).
    """

    name = "jds"

    def __init__(self, nrows: int, ncols: int, perm, jd_ptr, col_ind, values):
        super().__init__(nrows, ncols)
        perm = as_index_array(perm, "perm")
        jd_ptr = as_index_array(jd_ptr, "jd_ptr", dtype=np.dtype(np.int64))
        col_ind = as_index_array(col_ind, "col_ind")
        values = as_value_array(values, "values")
        if perm.size != nrows:
            raise FormatError(f"perm has {perm.size} entries, expected {nrows}")
        if sorted(perm.tolist()) != list(range(nrows)):
            raise FormatError("perm must be a permutation of the rows")
        check_monotone(jd_ptr, "jd_ptr")
        if jd_ptr.size == 0 or jd_ptr[0] != 0 or int(jd_ptr[-1]) != values.size:
            raise FormatError("jd_ptr must run from 0 to nnz")
        widths = np.diff(jd_ptr)
        if widths.size > 1 and np.any(np.diff(widths) > 0):
            raise FormatError("jagged diagonals must have non-increasing widths")
        if col_ind.size != values.size:
            raise FormatError("col_ind and values length mismatch")
        if col_ind.size and int(col_ind.max()) >= ncols:
            raise FormatError("column index out of range")
        self.perm = perm
        self.jd_ptr = jd_ptr
        self.col_ind = col_ind
        self.values = values

    @property
    def nnz(self) -> int:
        return self.values.size

    @property
    def ndiagonals(self) -> int:
        return self.jd_ptr.size - 1

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.perm.nbytes + self.jd_ptr.nbytes + self.col_ind.nbytes,
            value_bytes=self.values.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        entries: list[tuple[int, int, float]] = []
        for d in range(self.ndiagonals):
            lo, hi = int(self.jd_ptr[d]), int(self.jd_ptr[d + 1])
            for k in range(hi - lo):
                entries.append(
                    (
                        int(self.perm[k]),
                        int(self.col_ind[lo + k]),
                        float(self.values[lo + k]),
                    )
                )
        entries.sort()
        yield from entries

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Diagonal-major kernel: one dense AXPY-like pass per diagonal."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        y_sorted = np.zeros(self.nrows, dtype=np.float64)
        for d in range(self.ndiagonals):
            lo, hi = int(self.jd_ptr[d]), int(self.jd_ptr[d + 1])
            width = hi - lo
            y_sorted[:width] += self.values[lo:hi] * x[self.col_ind[lo:hi]]
        y = np.zeros(self.nrows, dtype=np.float64)
        y[self.perm] = y_sorted
        if out is not None:
            out[:] = y
            return out
        return y

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "JDSMatrix":
        lens = csr.row_lengths()
        # Stable sort keeps equal-length rows in original order.
        perm = np.argsort(-lens, kind="stable").astype(np.int32)
        sorted_lens = lens[perm]
        K = int(sorted_lens.max()) if sorted_lens.size else 0
        widths = [int(np.count_nonzero(sorted_lens > d)) for d in range(K)]
        jd_ptr = np.zeros(K + 1, dtype=np.int64)
        np.cumsum(widths, out=jd_ptr[1:])
        col_ind = np.empty(csr.nnz, dtype=np.int32)
        values = np.empty(csr.nnz, dtype=np.float64)
        for d in range(K):
            width = widths[d]
            rows = perm[:width].astype(np.int64)
            src = csr.row_ptr[:-1].astype(np.int64)[rows] + d
            lo = int(jd_ptr[d])
            col_ind[lo : lo + width] = csr.col_ind[src]
            values[lo : lo + width] = csr.values[src]
        return cls(csr.nrows, csr.ncols, perm, jd_ptr, col_ind, values)

    def to_csr(self) -> CSRMatrix:
        rows, cols, vals = [], [], []
        for i, j, v in self.iter_entries():
            rows.append(i)
            cols.append(j)
            vals.append(v)
        from repro.formats.coo import COOMatrix

        return CSRMatrix.from_coo(
            COOMatrix(
                self.nrows,
                self.ncols,
                np.asarray(rows, dtype=np.int32),
                np.asarray(cols, dtype=np.int32),
                np.asarray(vals, dtype=np.float64),
            )
        )
