"""Compressed Sparse Row (CSR) -- the paper's baseline format.

Three arrays (Fig. 1 of the paper): ``values`` holds the nonzeros in
row-major order, ``col_ind`` their column numbers, and ``row_ptr`` the
offset of each row's first nonzero (``nrows + 1`` entries).

The paper's experimental setup uses 32-bit indices and 64-bit values;
those are the defaults here.  A 16-bit ``col_ind`` option is provided
because Williams et al. [11] use exactly that as a simple index
reduction when ``ncols < 2**16`` -- it is the ABL-3 ablation baseline.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.coo import COOMatrix
from repro.nputil.segops import segment_ids_from_offsets
from repro.util.validation import (
    as_index_array,
    as_value_array,
    check_in_range,
    check_monotone,
)


@register_format
class CSRMatrix(SparseMatrix):
    """CSR matrix with the paper's canonical invariants.

    Invariants enforced at construction: ``row_ptr`` is non-decreasing
    with ``row_ptr[0] == 0`` and ``row_ptr[-1] == nnz``; within each row
    the columns are strictly increasing (sorted, no duplicates).
    """

    name = "csr"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr,
        col_ind,
        values,
        *,
        index_dtype=np.int32,
        col_index_dtype=None,
    ):
        super().__init__(nrows, ncols)
        col_index_dtype = col_index_dtype or index_dtype
        row_ptr = as_index_array(row_ptr, "row_ptr", dtype=np.dtype(index_dtype))
        col_ind = as_index_array(col_ind, "col_ind", dtype=np.dtype(col_index_dtype))
        values = as_value_array(values, "values")
        if row_ptr.size != nrows + 1:
            raise FormatError(
                f"row_ptr has {row_ptr.size} entries, expected nrows+1={nrows + 1}"
            )
        if row_ptr.size and (row_ptr[0] != 0 or int(row_ptr[-1]) != values.size):
            raise FormatError(
                f"row_ptr must run from 0 to nnz={values.size}, "
                f"got [{row_ptr[0]}, {row_ptr[-1]}]"
            )
        if col_ind.size != values.size:
            raise FormatError(
                f"col_ind ({col_ind.size}) and values ({values.size}) length mismatch"
            )
        check_monotone(row_ptr, "row_ptr")
        check_in_range(col_ind, ncols, "col_ind")
        # Strictly increasing columns within each row: the only places a
        # non-positive col diff may occur are row starts.
        if col_ind.size > 1:
            bad = np.flatnonzero(np.diff(col_ind.astype(np.int64)) <= 0) + 1
            if bad.size:
                ok = np.isin(bad, row_ptr[1:-1].astype(np.int64))
                if not ok.all():
                    idx = int(bad[~ok][0])
                    raise FormatError(
                        f"columns not strictly increasing at position {idx}"
                    )
        self.row_ptr = row_ptr
        self.col_ind = col_ind
        self.values = values

    # -- SparseMatrix interface ----------------------------------------
    @property
    def nnz(self) -> int:
        return self.values.size

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.row_ptr.nbytes + self.col_ind.nbytes,
            value_bytes=self.values.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        for row in range(self.nrows):
            for k in range(int(self.row_ptr[row]), int(self.row_ptr[row + 1])):
                yield row, int(self.col_ind[k]), float(self.values[k])

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Vectorized CSR SpMV: gather x, multiply, row-reduce.

        Runs through the cached kernel plan (:mod:`repro.kernels.plan`),
        so the ``int64`` row-pointer cast and the offsets validation are
        paid once per matrix, not per call.
        """
        from repro.kernels.plan import _check_x, get_plan

        x = _check_x(x, self.ncols)
        return get_plan(self).spmv(self.values, x, out=out)

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector ``Y = A X``: one gather/reduce pass for all columns."""
        from repro.kernels.plan import _check_xmat, get_plan

        X = _check_xmat(X, self.ncols)
        return get_plan(self).spmm(self.values, X, out=out)

    # -- helpers ----------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Nonzeros per row."""
        return np.diff(self.row_ptr.astype(np.int64))

    def row_of_entry(self) -> np.ndarray:
        """Row index of each stored nonzero."""
        return segment_ids_from_offsets(self.row_ptr.astype(np.int64), self.nnz)

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Sub-matrix of rows ``[start, stop)`` (shares column space).

        This is what row partitioning hands each thread: a contiguous
        block of rows with re-based ``row_ptr``.
        """
        if not 0 <= start <= stop <= self.nrows:
            raise FormatError(f"row slice [{start}, {stop}) out of range")
        lo, hi = int(self.row_ptr[start]), int(self.row_ptr[stop])
        return CSRMatrix(
            stop - start,
            self.ncols,
            (self.row_ptr[start : stop + 1].astype(np.int64) - lo).astype(
                self.row_ptr.dtype
            ),
            self.col_ind[lo:hi],
            self.values[lo:hi],
        )

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, index_dtype=np.int32) -> "CSRMatrix":
        """Build from (canonicalized) COO in ``O(nnz)``."""
        return cls(
            coo.nrows,
            coo.ncols,
            coo.row_ptr().astype(index_dtype),
            coo.cols,
            coo.values,
            index_dtype=index_dtype,
        )

    @classmethod
    def from_dense(cls, dense, *, index_dtype=np.int32) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), index_dtype=index_dtype)

    @classmethod
    def from_csr(cls, csr: "CSRMatrix") -> "CSRMatrix":
        return csr

    def to_coo(self) -> COOMatrix:
        return COOMatrix(
            self.nrows,
            self.ncols,
            self.row_of_entry().astype(np.int32),
            self.col_ind,
            self.values,
        )

    def with_index_dtype(self, index_dtype, *, cols_only: bool = False) -> "CSRMatrix":
        """Same matrix with a different index width (ABL-3 ablation).

        With ``cols_only`` the narrower dtype applies to ``col_ind``
        alone, leaving ``row_ptr`` untouched -- the Williams et al. [11]
        variant, usable whenever ``ncols`` (not nnz) fits the width.
        Overflowing indices raise rather than wrap.
        """
        index_dtype = np.dtype(index_dtype)
        info = np.iinfo(index_dtype)
        if self.ncols - 1 > info.max:
            raise FormatError(
                f"ncols={self.ncols} does not fit index dtype {index_dtype}"
            )
        if not cols_only and self.nnz > info.max:
            raise FormatError(
                f"nnz={self.nnz} does not fit row_ptr dtype {index_dtype}; "
                "use cols_only=True to narrow col_ind alone"
            )
        row_dtype = self.row_ptr.dtype if cols_only else index_dtype
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.row_ptr.astype(row_dtype),
            self.col_ind.astype(index_dtype),
            self.values,
            index_dtype=row_dtype,
            col_index_dtype=index_dtype,
        )
