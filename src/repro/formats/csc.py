"""Compressed Sparse Column (CSC).

The column-major mirror of CSR (Section II-B mentions it as the other
generic format).  It exists here because *column partitioning*
(Section II-C) is most natural on CSC: each thread owns a block of
columns and accumulates into a private ``y``, reduced at the end.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseMatrix, Storage, register_format
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.nputil.segops import segment_ids_from_offsets
from repro.util.validation import (
    as_index_array,
    as_value_array,
    check_in_range,
    check_monotone,
)


@register_format
class CSCMatrix(SparseMatrix):
    """CSC matrix: ``col_ptr`` offsets, ``row_ind`` per nonzero, ``values``."""

    name = "csc"

    def __init__(self, nrows: int, ncols: int, col_ptr, row_ind, values):
        super().__init__(nrows, ncols)
        col_ptr = as_index_array(col_ptr, "col_ptr")
        row_ind = as_index_array(row_ind, "row_ind")
        values = as_value_array(values, "values")
        if col_ptr.size != ncols + 1:
            raise FormatError(
                f"col_ptr has {col_ptr.size} entries, expected ncols+1={ncols + 1}"
            )
        if col_ptr.size and (col_ptr[0] != 0 or int(col_ptr[-1]) != values.size):
            raise FormatError("col_ptr must run from 0 to nnz")
        if row_ind.size != values.size:
            raise FormatError("row_ind and values length mismatch")
        check_monotone(col_ptr, "col_ptr")
        check_in_range(row_ind, nrows, "row_ind")
        self.col_ptr = col_ptr
        self.row_ind = row_ind
        self.values = values

    @property
    def nnz(self) -> int:
        return self.values.size

    def storage(self) -> Storage:
        return Storage(
            index_bytes=self.col_ptr.nbytes + self.row_ind.nbytes,
            value_bytes=self.values.nbytes,
        )

    def iter_entries(self) -> Iterator[tuple[int, int, float]]:
        # Row-major order required by the interface: go through COO.
        coo = self.to_coo()
        yield from coo.iter_entries()

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Column-oriented SpMV: scatter-add each column's contribution."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise FormatError(f"x has shape {x.shape}, expected ({self.ncols},)")
        col_of = segment_ids_from_offsets(self.col_ptr.astype(np.int64), self.nnz)
        y = out if out is not None else np.zeros(self.nrows, dtype=np.float64)
        if out is not None:
            y[:] = 0.0
        np.add.at(y, self.row_ind, self.values * x[col_of])
        return y

    def col_slice(self, start: int, stop: int) -> "CSCMatrix":
        """Sub-matrix of columns ``[start, stop)`` (for column partitioning)."""
        if not 0 <= start <= stop <= self.ncols:
            raise FormatError(f"col slice [{start}, {stop}) out of range")
        lo, hi = int(self.col_ptr[start]), int(self.col_ptr[stop])
        return CSCMatrix(
            self.nrows,
            stop - start,
            (self.col_ptr[start : stop + 1].astype(np.int64) - lo).astype(np.int32),
            self.row_ind[lo:hi],
            self.values[lo:hi],
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        order = np.lexsort((coo.rows, coo.cols))
        counts = np.bincount(coo.cols, minlength=coo.ncols)
        col_ptr = np.zeros(coo.ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=col_ptr[1:])
        return cls(
            coo.nrows,
            coo.ncols,
            col_ptr.astype(np.int32),
            coo.rows[order],
            coo.values[order],
        )

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        return cls.from_coo(csr.to_coo())

    def to_coo(self) -> COOMatrix:
        col_of = segment_ids_from_offsets(self.col_ptr.astype(np.int64), self.nnz)
        return COOMatrix(
            self.nrows,
            self.ncols,
            self.row_ind,
            col_of.astype(np.int32),
            self.values,
        )
